# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autograd_test "/root/repo/build/tests/autograd_test")
set_tests_properties(autograd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_test "/root/repo/build/tests/text_test")
set_tests_properties(text_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kb_test "/root/repo/build/tests/kb_test")
set_tests_properties(kb_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(downstream_test "/root/repo/build/tests/downstream_test")
set_tests_properties(downstream_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tools_test "/root/repo/build/tests/tools_test")
set_tests_properties(tools_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;add_bootleg_test;/root/repo/tests/CMakeLists.txt;0;")

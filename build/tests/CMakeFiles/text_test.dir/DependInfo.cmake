
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/text_test.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/text_test.dir/text_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bootleg_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bootleg_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/downstream/CMakeFiles/bootleg_downstream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bootleg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/bootleg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bootleg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/bootleg_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bootleg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bootleg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bootleg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bootleg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

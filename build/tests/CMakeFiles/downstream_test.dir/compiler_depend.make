# Empty compiler generated dependencies file for downstream_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/downstream_test.dir/downstream_test.cc.o"
  "CMakeFiles/downstream_test.dir/downstream_test.cc.o.d"
  "downstream_test"
  "downstream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_rare_proportion.
# This may be replaced when dependencies are built.

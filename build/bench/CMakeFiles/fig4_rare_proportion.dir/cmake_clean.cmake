file(REMOVE_RECURSE
  "CMakeFiles/fig4_rare_proportion.dir/fig4_rare_proportion.cpp.o"
  "CMakeFiles/fig4_rare_proportion.dir/fig4_rare_proportion.cpp.o.d"
  "fig4_rare_proportion"
  "fig4_rare_proportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rare_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

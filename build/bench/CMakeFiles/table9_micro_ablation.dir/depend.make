# Empty dependencies file for table9_micro_ablation.
# This may be replaced when dependencies are built.

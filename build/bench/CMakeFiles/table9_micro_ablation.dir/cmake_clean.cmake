file(REMOVE_RECURSE
  "CMakeFiles/table9_micro_ablation.dir/table9_micro_ablation.cpp.o"
  "CMakeFiles/table9_micro_ablation.dir/table9_micro_ablation.cpp.o.d"
  "table9_micro_ablation"
  "table9_micro_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_micro_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table3_tacred.dir/table3_tacred.cpp.o"
  "CMakeFiles/table3_tacred.dir/table3_tacred.cpp.o.d"
  "table3_tacred"
  "table3_tacred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tacred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

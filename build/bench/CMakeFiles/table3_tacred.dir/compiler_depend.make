# Empty compiler generated dependencies file for table3_tacred.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_main_ablation.dir/table2_main_ablation.cpp.o"
  "CMakeFiles/table2_main_ablation.dir/table2_main_ablation.cpp.o.d"
  "table2_main_ablation"
  "table2_main_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_main_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

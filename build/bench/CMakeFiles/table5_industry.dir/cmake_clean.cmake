file(REMOVE_RECURSE
  "CMakeFiles/table5_industry.dir/table5_industry.cpp.o"
  "CMakeFiles/table5_industry.dir/table5_industry.cpp.o.d"
  "table5_industry"
  "table5_industry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_industry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

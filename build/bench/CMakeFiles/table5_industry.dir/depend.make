# Empty dependencies file for table5_industry.
# This may be replaced when dependencies are built.

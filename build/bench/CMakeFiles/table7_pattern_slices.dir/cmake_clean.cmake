file(REMOVE_RECURSE
  "CMakeFiles/table7_pattern_slices.dir/table7_pattern_slices.cpp.o"
  "CMakeFiles/table7_pattern_slices.dir/table7_pattern_slices.cpp.o.d"
  "table7_pattern_slices"
  "table7_pattern_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_pattern_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table7_pattern_slices.
# This may be replaced when dependencies are built.

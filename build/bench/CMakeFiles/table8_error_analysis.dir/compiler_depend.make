# Empty compiler generated dependencies file for table8_error_analysis.
# This may be replaced when dependencies are built.

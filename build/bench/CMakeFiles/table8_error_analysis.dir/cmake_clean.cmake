file(REMOVE_RECURSE
  "CMakeFiles/table8_error_analysis.dir/table8_error_analysis.cpp.o"
  "CMakeFiles/table8_error_analysis.dir/table8_error_analysis.cpp.o.d"
  "table8_error_analysis"
  "table8_error_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_error_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table11_weak_labeling.
# This may be replaced when dependencies are built.

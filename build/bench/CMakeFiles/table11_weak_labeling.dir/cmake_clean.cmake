file(REMOVE_RECURSE
  "CMakeFiles/table11_weak_labeling.dir/table11_weak_labeling.cpp.o"
  "CMakeFiles/table11_weak_labeling.dir/table11_weak_labeling.cpp.o.d"
  "table11_weak_labeling"
  "table11_weak_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_weak_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

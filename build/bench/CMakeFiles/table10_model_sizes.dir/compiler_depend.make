# Empty compiler generated dependencies file for table10_model_sizes.
# This may be replaced when dependencies are built.

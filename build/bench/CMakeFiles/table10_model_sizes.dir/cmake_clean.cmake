file(REMOVE_RECURSE
  "CMakeFiles/table10_model_sizes.dir/table10_model_sizes.cpp.o"
  "CMakeFiles/table10_model_sizes.dir/table10_model_sizes.cpp.o.d"
  "table10_model_sizes"
  "table10_model_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_model_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

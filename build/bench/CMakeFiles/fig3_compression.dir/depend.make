# Empty dependencies file for fig3_compression.
# This may be replaced when dependencies are built.

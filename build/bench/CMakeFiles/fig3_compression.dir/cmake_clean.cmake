file(REMOVE_RECURSE
  "CMakeFiles/fig3_compression.dir/fig3_compression.cpp.o"
  "CMakeFiles/fig3_compression.dir/fig3_compression.cpp.o.d"
  "fig3_compression"
  "fig3_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig1_f1_vs_occurrence.
# This may be replaced when dependencies are built.

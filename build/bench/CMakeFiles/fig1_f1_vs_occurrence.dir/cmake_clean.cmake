file(REMOVE_RECURSE
  "CMakeFiles/fig1_f1_vs_occurrence.dir/fig1_f1_vs_occurrence.cpp.o"
  "CMakeFiles/fig1_f1_vs_occurrence.dir/fig1_f1_vs_occurrence.cpp.o.d"
  "fig1_f1_vs_occurrence"
  "fig1_f1_vs_occurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_f1_vs_occurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

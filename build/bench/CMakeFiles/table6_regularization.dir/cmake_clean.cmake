file(REMOVE_RECURSE
  "CMakeFiles/table6_regularization.dir/table6_regularization.cpp.o"
  "CMakeFiles/table6_regularization.dir/table6_regularization.cpp.o.d"
  "table6_regularization"
  "table6_regularization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table6_regularization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bootleg_baseline.dir/ned_base.cc.o"
  "CMakeFiles/bootleg_baseline.dir/ned_base.cc.o.d"
  "CMakeFiles/bootleg_baseline.dir/prior_model.cc.o"
  "CMakeFiles/bootleg_baseline.dir/prior_model.cc.o.d"
  "libbootleg_baseline.a"
  "libbootleg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

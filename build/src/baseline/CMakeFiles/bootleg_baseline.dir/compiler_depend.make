# Empty compiler generated dependencies file for bootleg_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbootleg_baseline.a"
)

# Empty compiler generated dependencies file for bootleg_kb.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/candidate_map.cc" "src/kb/CMakeFiles/bootleg_kb.dir/candidate_map.cc.o" "gcc" "src/kb/CMakeFiles/bootleg_kb.dir/candidate_map.cc.o.d"
  "/root/repo/src/kb/cooccurrence.cc" "src/kb/CMakeFiles/bootleg_kb.dir/cooccurrence.cc.o" "gcc" "src/kb/CMakeFiles/bootleg_kb.dir/cooccurrence.cc.o.d"
  "/root/repo/src/kb/kb.cc" "src/kb/CMakeFiles/bootleg_kb.dir/kb.cc.o" "gcc" "src/kb/CMakeFiles/bootleg_kb.dir/kb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bootleg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

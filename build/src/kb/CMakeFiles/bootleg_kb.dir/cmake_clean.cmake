file(REMOVE_RECURSE
  "CMakeFiles/bootleg_kb.dir/candidate_map.cc.o"
  "CMakeFiles/bootleg_kb.dir/candidate_map.cc.o.d"
  "CMakeFiles/bootleg_kb.dir/cooccurrence.cc.o"
  "CMakeFiles/bootleg_kb.dir/cooccurrence.cc.o.d"
  "CMakeFiles/bootleg_kb.dir/kb.cc.o"
  "CMakeFiles/bootleg_kb.dir/kb.cc.o.d"
  "libbootleg_kb.a"
  "libbootleg_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbootleg_kb.a"
)

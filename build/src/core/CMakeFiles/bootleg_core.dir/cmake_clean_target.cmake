file(REMOVE_RECURSE
  "libbootleg_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bootleg_core.dir/model.cc.o"
  "CMakeFiles/bootleg_core.dir/model.cc.o.d"
  "CMakeFiles/bootleg_core.dir/regularization.cc.o"
  "CMakeFiles/bootleg_core.dir/regularization.cc.o.d"
  "CMakeFiles/bootleg_core.dir/trainer.cc.o"
  "CMakeFiles/bootleg_core.dir/trainer.cc.o.d"
  "libbootleg_core.a"
  "libbootleg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bootleg_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bootleg_util.dir/io.cc.o"
  "CMakeFiles/bootleg_util.dir/io.cc.o.d"
  "CMakeFiles/bootleg_util.dir/logging.cc.o"
  "CMakeFiles/bootleg_util.dir/logging.cc.o.d"
  "CMakeFiles/bootleg_util.dir/rng.cc.o"
  "CMakeFiles/bootleg_util.dir/rng.cc.o.d"
  "CMakeFiles/bootleg_util.dir/status.cc.o"
  "CMakeFiles/bootleg_util.dir/status.cc.o.d"
  "CMakeFiles/bootleg_util.dir/string_util.cc.o"
  "CMakeFiles/bootleg_util.dir/string_util.cc.o.d"
  "libbootleg_util.a"
  "libbootleg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

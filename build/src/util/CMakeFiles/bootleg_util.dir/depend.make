# Empty dependencies file for bootleg_util.
# This may be replaced when dependencies are built.

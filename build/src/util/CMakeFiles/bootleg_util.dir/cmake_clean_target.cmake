file(REMOVE_RECURSE
  "libbootleg_util.a"
)

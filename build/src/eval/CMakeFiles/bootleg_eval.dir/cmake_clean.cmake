file(REMOVE_RECURSE
  "CMakeFiles/bootleg_eval.dir/error_analysis.cc.o"
  "CMakeFiles/bootleg_eval.dir/error_analysis.cc.o.d"
  "CMakeFiles/bootleg_eval.dir/evaluator.cc.o"
  "CMakeFiles/bootleg_eval.dir/evaluator.cc.o.d"
  "libbootleg_eval.a"
  "libbootleg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

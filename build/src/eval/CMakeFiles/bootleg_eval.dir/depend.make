# Empty dependencies file for bootleg_eval.
# This may be replaced when dependencies are built.

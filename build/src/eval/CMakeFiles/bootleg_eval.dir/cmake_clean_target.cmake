file(REMOVE_RECURSE
  "libbootleg_eval.a"
)

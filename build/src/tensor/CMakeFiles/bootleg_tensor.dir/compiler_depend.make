# Empty compiler generated dependencies file for bootleg_tensor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbootleg_tensor.a"
)

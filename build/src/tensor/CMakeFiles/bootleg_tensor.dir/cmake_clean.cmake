file(REMOVE_RECURSE
  "CMakeFiles/bootleg_tensor.dir/autograd.cc.o"
  "CMakeFiles/bootleg_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/bootleg_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/bootleg_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/bootleg_tensor.dir/tensor.cc.o"
  "CMakeFiles/bootleg_tensor.dir/tensor.cc.o.d"
  "libbootleg_tensor.a"
  "libbootleg_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

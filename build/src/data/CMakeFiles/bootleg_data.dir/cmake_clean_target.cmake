file(REMOVE_RECURSE
  "libbootleg_data.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus_io.cc" "src/data/CMakeFiles/bootleg_data.dir/corpus_io.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/corpus_io.cc.o.d"
  "/root/repo/src/data/example.cc" "src/data/CMakeFiles/bootleg_data.dir/example.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/example.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/bootleg_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/generator.cc.o.d"
  "/root/repo/src/data/mention_extractor.cc" "src/data/CMakeFiles/bootleg_data.dir/mention_extractor.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/mention_extractor.cc.o.d"
  "/root/repo/src/data/slices.cc" "src/data/CMakeFiles/bootleg_data.dir/slices.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/slices.cc.o.d"
  "/root/repo/src/data/weak_label.cc" "src/data/CMakeFiles/bootleg_data.dir/weak_label.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/weak_label.cc.o.d"
  "/root/repo/src/data/world.cc" "src/data/CMakeFiles/bootleg_data.dir/world.cc.o" "gcc" "src/data/CMakeFiles/bootleg_data.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/bootleg_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bootleg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bootleg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bootleg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bootleg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

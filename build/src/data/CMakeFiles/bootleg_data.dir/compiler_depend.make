# Empty compiler generated dependencies file for bootleg_data.
# This may be replaced when dependencies are built.

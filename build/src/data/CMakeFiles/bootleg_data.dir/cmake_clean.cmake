file(REMOVE_RECURSE
  "CMakeFiles/bootleg_data.dir/corpus_io.cc.o"
  "CMakeFiles/bootleg_data.dir/corpus_io.cc.o.d"
  "CMakeFiles/bootleg_data.dir/example.cc.o"
  "CMakeFiles/bootleg_data.dir/example.cc.o.d"
  "CMakeFiles/bootleg_data.dir/generator.cc.o"
  "CMakeFiles/bootleg_data.dir/generator.cc.o.d"
  "CMakeFiles/bootleg_data.dir/mention_extractor.cc.o"
  "CMakeFiles/bootleg_data.dir/mention_extractor.cc.o.d"
  "CMakeFiles/bootleg_data.dir/slices.cc.o"
  "CMakeFiles/bootleg_data.dir/slices.cc.o.d"
  "CMakeFiles/bootleg_data.dir/weak_label.cc.o"
  "CMakeFiles/bootleg_data.dir/weak_label.cc.o.d"
  "CMakeFiles/bootleg_data.dir/world.cc.o"
  "CMakeFiles/bootleg_data.dir/world.cc.o.d"
  "libbootleg_data.a"
  "libbootleg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

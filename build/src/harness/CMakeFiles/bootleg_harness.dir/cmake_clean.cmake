file(REMOVE_RECURSE
  "CMakeFiles/bootleg_harness.dir/experiment.cc.o"
  "CMakeFiles/bootleg_harness.dir/experiment.cc.o.d"
  "libbootleg_harness.a"
  "libbootleg_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

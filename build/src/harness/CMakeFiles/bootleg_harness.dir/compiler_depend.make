# Empty compiler generated dependencies file for bootleg_harness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbootleg_harness.a"
)

file(REMOVE_RECURSE
  "libbootleg_text.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bootleg_text.dir/vocabulary.cc.o"
  "CMakeFiles/bootleg_text.dir/vocabulary.cc.o.d"
  "CMakeFiles/bootleg_text.dir/word_encoder.cc.o"
  "CMakeFiles/bootleg_text.dir/word_encoder.cc.o.d"
  "libbootleg_text.a"
  "libbootleg_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

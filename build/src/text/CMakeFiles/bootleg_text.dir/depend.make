# Empty dependencies file for bootleg_text.
# This may be replaced when dependencies are built.

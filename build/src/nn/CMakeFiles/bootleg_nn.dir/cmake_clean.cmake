file(REMOVE_RECURSE
  "CMakeFiles/bootleg_nn.dir/attention.cc.o"
  "CMakeFiles/bootleg_nn.dir/attention.cc.o.d"
  "CMakeFiles/bootleg_nn.dir/embedding.cc.o"
  "CMakeFiles/bootleg_nn.dir/embedding.cc.o.d"
  "CMakeFiles/bootleg_nn.dir/layers.cc.o"
  "CMakeFiles/bootleg_nn.dir/layers.cc.o.d"
  "CMakeFiles/bootleg_nn.dir/optimizer.cc.o"
  "CMakeFiles/bootleg_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/bootleg_nn.dir/param_store.cc.o"
  "CMakeFiles/bootleg_nn.dir/param_store.cc.o.d"
  "libbootleg_nn.a"
  "libbootleg_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/bootleg_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/bootleg_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/bootleg_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/bootleg_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/bootleg_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/bootleg_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/bootleg_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/bootleg_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/param_store.cc" "src/nn/CMakeFiles/bootleg_nn.dir/param_store.cc.o" "gcc" "src/nn/CMakeFiles/bootleg_nn.dir/param_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/bootleg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bootleg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

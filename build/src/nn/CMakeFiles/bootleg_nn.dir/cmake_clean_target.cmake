file(REMOVE_RECURSE
  "libbootleg_nn.a"
)

# Empty dependencies file for bootleg_nn.
# This may be replaced when dependencies are built.

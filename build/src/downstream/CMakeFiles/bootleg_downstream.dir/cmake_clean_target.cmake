file(REMOVE_RECURSE
  "libbootleg_downstream.a"
)

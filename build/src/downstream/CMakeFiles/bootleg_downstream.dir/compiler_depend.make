# Empty compiler generated dependencies file for bootleg_downstream.
# This may be replaced when dependencies are built.

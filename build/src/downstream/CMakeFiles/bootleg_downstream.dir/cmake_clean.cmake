file(REMOVE_RECURSE
  "CMakeFiles/bootleg_downstream.dir/overton.cc.o"
  "CMakeFiles/bootleg_downstream.dir/overton.cc.o.d"
  "CMakeFiles/bootleg_downstream.dir/relation_extraction.cc.o"
  "CMakeFiles/bootleg_downstream.dir/relation_extraction.cc.o.d"
  "libbootleg_downstream.a"
  "libbootleg_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/relation_extraction.dir/relation_extraction.cpp.o"
  "CMakeFiles/relation_extraction.dir/relation_extraction.cpp.o.d"
  "relation_extraction"
  "relation_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for relation_extraction.
# This may be replaced when dependencies are built.

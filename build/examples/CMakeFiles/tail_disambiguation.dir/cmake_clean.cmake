file(REMOVE_RECURSE
  "CMakeFiles/tail_disambiguation.dir/tail_disambiguation.cpp.o"
  "CMakeFiles/tail_disambiguation.dir/tail_disambiguation.cpp.o.d"
  "tail_disambiguation"
  "tail_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tail_disambiguation.
# This may be replaced when dependencies are built.

# Empty dependencies file for embedding_compression.
# This may be replaced when dependencies are built.

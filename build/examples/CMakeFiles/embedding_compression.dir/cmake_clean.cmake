file(REMOVE_RECURSE
  "CMakeFiles/embedding_compression.dir/embedding_compression.cpp.o"
  "CMakeFiles/embedding_compression.dir/embedding_compression.cpp.o.d"
  "embedding_compression"
  "embedding_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

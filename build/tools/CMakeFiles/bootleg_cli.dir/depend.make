# Empty dependencies file for bootleg_cli.
# This may be replaced when dependencies are built.

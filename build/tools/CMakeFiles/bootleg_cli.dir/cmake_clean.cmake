file(REMOVE_RECURSE
  "CMakeFiles/bootleg_cli.dir/bootleg_cli.cc.o"
  "CMakeFiles/bootleg_cli.dir/bootleg_cli.cc.o.d"
  "bootleg_cli"
  "bootleg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootleg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

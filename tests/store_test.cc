// Embedding-store subsystem: int8 quantization must round-trip within the
// per-row half-step bound, float stores must reproduce their source bytes
// exactly, every corrupted shard or manifest variant (truncation, byte flip,
// trailing garbage) must fail with kCorruption and never crash, the
// generation scan must pick the newest servable directory and skip corrupt
// ones, and an engine serving from a float store must be bit-identical to
// the in-memory frozen path (int8 within tolerance, identical argmax).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/world.h"
#include "serve/inference_engine.h"
#include "store/embedding_store.h"
#include "util/crc32.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bootleg_store_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<float> RandomTable(int64_t rows, int64_t cols, uint64_t seed,
                               float magnitude = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * cols));
  for (float& v : data) {
    v = magnitude * (2.0f * static_cast<float>(rng.Uniform()) - 1.0f);
  }
  return data;
}

// --- Quantization ------------------------------------------------------------

TEST(QuantizeTest, RoundTripErrorWithinHalfStepPerRow) {
  util::Rng rng(99);
  const int64_t cols = 37;
  std::vector<float> row(static_cast<size_t>(cols));
  std::vector<int8_t> q(static_cast<size_t>(cols));
  std::vector<float> back(static_cast<size_t>(cols));

  // Property sweep over magnitudes spanning tiny to large rows: every
  // reconstructed value must sit within RowErrorBound(scale) = scale/2, and
  // the row maximum must quantize to ±127 exactly (symmetric scheme).
  for (const float magnitude : {1e-4f, 0.01f, 1.0f, 35.0f, 1e4f}) {
    for (int trial = 0; trial < 20; ++trial) {
      for (float& v : row) {
        v = magnitude * (2.0f * static_cast<float>(rng.Uniform()) - 1.0f);
      }
      const float scale = store::QuantizeRow(row.data(), cols, q.data());
      ASSERT_GT(scale, 0.0f);
      store::DequantizeRow(q.data(), cols, scale, back.data());
      float max_abs = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        max_abs = std::max(max_abs, std::fabs(row[static_cast<size_t>(j)]));
        EXPECT_LE(std::fabs(row[static_cast<size_t>(j)] -
                            back[static_cast<size_t>(j)]),
                  store::RowErrorBound(scale) * (1.0f + 1e-5f))
            << "magnitude=" << magnitude << " trial=" << trial << " col=" << j;
      }
      EXPECT_FLOAT_EQ(scale, max_abs / 127.0f);
    }
  }
}

TEST(QuantizeTest, ZeroRowsAndConstantRowsAreExact) {
  const int64_t cols = 16;
  std::vector<float> row(static_cast<size_t>(cols), 0.0f);
  std::vector<int8_t> q(static_cast<size_t>(cols), 111);
  std::vector<float> back(static_cast<size_t>(cols), 1.0f);

  // All-zero row: scale 0, every quantized byte 0, exact reconstruction.
  EXPECT_EQ(store::QuantizeRow(row.data(), cols, q.data()), 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
  store::DequantizeRow(q.data(), cols, 0.0f, back.data());
  for (float v : back) EXPECT_EQ(v, 0.0f);

  // Constant row: every value is the row max, so it maps to exactly ±127
  // and reconstructs with zero error.
  for (size_t j = 0; j < row.size(); ++j) row[j] = (j % 2 == 0) ? 0.5f : -0.5f;
  const float scale = store::QuantizeRow(row.data(), cols, q.data());
  store::DequantizeRow(q.data(), cols, scale, back.data());
  for (size_t j = 0; j < row.size(); ++j) EXPECT_FLOAT_EQ(back[j], row[j]);
}

// --- Write / open round trips ------------------------------------------------

TEST(EmbeddingStoreTest, FloatStoreRoundTripsBitExactly) {
  const std::string dir = TestDir("float_roundtrip");
  const int64_t rows = 23, cols = 12;  // uneven: last shard is short
  const std::vector<float> data = RandomTable(rows, cols, 7);

  store::WriteOptions options;
  options.dtype = store::Dtype::kFloat32;
  options.shards = 4;
  ASSERT_TRUE(
      store::WriteStore(dir, {{"static", data.data(), rows, cols}}, options)
          .ok());

  auto opened = store::EmbeddingStore::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const store::EmbeddingStore& es = *opened.value();
  ASSERT_TRUE(es.Verify().ok());
  ASSERT_EQ(es.tables().size(), 1u);
  EXPECT_EQ(es.tables()[0].rows, rows);
  EXPECT_EQ(es.tables()[0].cols, cols);
  EXPECT_EQ(es.tables()[0].shards.size(), 4u);
  EXPECT_EQ(es.tables()[0].max_abs_error, 0.0);
  EXPECT_GT(es.mapped_bytes(), 0u);
  EXPECT_EQ(es.num_shards(), 4);

  auto view = es.View("static");
  ASSERT_TRUE(view.ok());
  std::vector<float> got(static_cast<size_t>(cols));
  for (int64_t r = 0; r < rows; ++r) {
    // Zero-copy pointer must exist for float storage and match the source
    // bytes exactly (the bit-identical serving guarantee rests on this).
    const float* p = view.value()->RowPtr(r);
    ASSERT_NE(p, nullptr);
    view.value()->GatherRow(r, got.data());
    for (int64_t j = 0; j < cols; ++j) {
      const float want = data[static_cast<size_t>(r * cols + j)];
      EXPECT_EQ(p[j], want) << "row " << r << " col " << j;
      EXPECT_EQ(got[static_cast<size_t>(j)], want);
    }
  }
  EXPECT_FALSE(es.View("missing").ok());
}

TEST(EmbeddingStoreTest, Int8StoreRoundTripsWithinRecordedErrorBound) {
  const std::string dir = TestDir("int8_roundtrip");
  const int64_t rows = 40, cols = 9;
  std::vector<float> data = RandomTable(rows, cols, 21, 3.0f);
  // Include an all-zero row: it must survive quantization untouched.
  for (int64_t j = 0; j < cols; ++j) data[static_cast<size_t>(5 * cols + j)] = 0.0f;

  store::WriteOptions options;
  options.dtype = store::Dtype::kInt8;
  options.shards = 3;
  ASSERT_TRUE(
      store::WriteStore(dir, {{"static", data.data(), rows, cols}}, options)
          .ok());

  auto opened = store::EmbeddingStore::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened.value()->Verify().ok());
  const store::TableInfo* info = opened.value()->FindTable("static");
  ASSERT_NE(info, nullptr);
  EXPECT_GT(info->max_abs_error, 0.0);
  EXPECT_GT(info->mean_abs_error, 0.0);
  EXPECT_LE(info->mean_abs_error, info->max_abs_error);

  auto view = opened.value()->View("static");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value()->RowPtr(0), nullptr);  // int8 has no raw float rows
  std::vector<float> got(static_cast<size_t>(cols));
  double max_err = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    view.value()->GatherRow(r, got.data());
    float row_max = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      row_max =
          std::max(row_max, std::fabs(data[static_cast<size_t>(r * cols + j)]));
    }
    const float bound = store::RowErrorBound(row_max / 127.0f);
    for (int64_t j = 0; j < cols; ++j) {
      const double err =
          std::fabs(static_cast<double>(got[static_cast<size_t>(j)]) -
                    static_cast<double>(data[static_cast<size_t>(r * cols + j)]));
      EXPECT_LE(err, static_cast<double>(bound) * (1.0 + 1e-5))
          << "row " << r << " col " << j;
      max_err = std::max(max_err, err);
    }
    if (r == 5) {
      for (float v : got) EXPECT_EQ(v, 0.0f);  // the zeroed row, exact
    }
  }
  // The manifest's recorded maximum must match what the mapped rows deliver.
  EXPECT_NEAR(max_err, info->max_abs_error, 1e-7);
}

TEST(EmbeddingStoreTest, BatchGatherRowsIsBitIdenticalToPerRowGather) {
  // GatherRows is the model's hot serving path; its contract is bitwise
  // equality with n GatherRow calls for any id order, including repeats,
  // shard boundaries, and batches shorter than its prefetch window.
  const std::string dir = TestDir("batch_gather");
  const int64_t rows = 101, cols = 37;  // uneven shards, odd row width
  const std::vector<float> data = RandomTable(rows, cols, 33, 2.0f);

  for (const store::Dtype dtype :
       {store::Dtype::kFloat32, store::Dtype::kInt8}) {
    store::WriteOptions options;
    options.dtype = dtype;
    options.shards = 4;
    const std::string sub = dir + "/" + store::DtypeName(dtype);
    ASSERT_TRUE(
        store::WriteStore(sub, {{"static", data.data(), rows, cols}}, options)
            .ok());
    auto opened = store::EmbeddingStore::Open(sub);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto view = opened.value()->View("static");
    ASSERT_TRUE(view.ok());

    // Ids crossing every shard boundary, repeating, and out of order.
    std::vector<int64_t> ids;
    util::Rng rng(91);
    for (int i = 0; i < 400; ++i) ids.push_back(rng.UniformInt(0, rows - 1));
    ids.push_back(0);
    ids.push_back(rows - 1);
    for (const int64_t n :
         {int64_t{1}, int64_t{3}, int64_t{40},
          static_cast<int64_t>(ids.size())}) {
      std::vector<float> batch(static_cast<size_t>(n * cols), -1.0f);
      view.value()->GatherRows(ids.data(), n, batch.data());
      std::vector<float> row(static_cast<size_t>(cols));
      for (int64_t i = 0; i < n; ++i) {
        view.value()->GatherRow(ids[static_cast<size_t>(i)], row.data());
        ASSERT_EQ(std::memcmp(row.data(), batch.data() + i * cols,
                              static_cast<size_t>(cols) * sizeof(float)),
                  0)
            << store::DtypeName(dtype) << " batch n=" << n << " row " << i;
      }
    }
  }
}

// --- Corruption fuzzing ------------------------------------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Open + full checksum walk — the reload probe the fuzz sweep drives.
util::Status OpenAndVerify(const std::string& dir) {
  auto opened = store::EmbeddingStore::Open(dir);
  if (!opened.ok()) return opened.status();
  return opened.value()->Verify();
}

/// Every truncation offset, every single-byte flip, and trailing garbage of
/// `target` (one file inside the store directory) must yield kCorruption
/// from Open+Verify — never a crash or a silent success.
void FuzzStoreFile(const std::string& dir, const std::string& target) {
  const std::string good = ReadAll(target);
  ASSERT_FALSE(good.empty());
  ASSERT_TRUE(OpenAndVerify(dir).ok());

  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteAll(target, good.substr(0, cut));
    const util::Status st = OpenAndVerify(dir);
    ASSERT_FALSE(st.ok()) << target << " truncated at " << cut << " loaded";
    ASSERT_EQ(st.code(), util::StatusCode::kCorruption)
        << target << " truncated at " << cut << ": " << st.ToString();
  }
  for (size_t at = 0; at < good.size(); ++at) {
    std::string flipped = good;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    WriteAll(target, flipped);
    const util::Status st = OpenAndVerify(dir);
    ASSERT_FALSE(st.ok()) << target << " flip at " << at << " loaded";
    ASSERT_EQ(st.code(), util::StatusCode::kCorruption)
        << target << " flip at " << at << ": " << st.ToString();
  }
  WriteAll(target, good + std::string(16, '\x5a'));
  const util::Status st = OpenAndVerify(dir);
  ASSERT_FALSE(st.ok());
  ASSERT_EQ(st.code(), util::StatusCode::kCorruption);

  WriteAll(target, good);  // restore for the next sweep
  ASSERT_TRUE(OpenAndVerify(dir).ok());
}

TEST(StoreFuzzTest, CorruptShardsAndManifestAlwaysFailAsCorruption) {
  const std::string dir = TestDir("fuzz");
  const int64_t rows = 8, cols = 4;  // tiny: the sweep is O(file bytes²)
  const std::vector<float> data = RandomTable(rows, cols, 3);
  for (const store::Dtype dtype :
       {store::Dtype::kFloat32, store::Dtype::kInt8}) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    store::WriteOptions options;
    options.dtype = dtype;
    options.shards = 2;
    ASSERT_TRUE(
        store::WriteStore(dir, {{"static", data.data(), rows, cols}}, options)
            .ok());
    FuzzStoreFile(dir, dir + "/static.shard_000000.bin");
    FuzzStoreFile(dir, dir + "/static.shard_000001.bin");
    FuzzStoreFile(dir, dir + "/MANIFEST");
  }
}

TEST(StoreFuzzTest, MissingShardFailsWithoutCrashing) {
  const std::string dir = TestDir("missing_shard");
  const std::vector<float> data = RandomTable(6, 4, 11);
  store::WriteOptions options;
  options.shards = 2;
  ASSERT_TRUE(
      store::WriteStore(dir, {{"static", data.data(), 6, 4}}, options).ok());
  fs::remove(dir + "/static.shard_000001.bin");
  EXPECT_FALSE(store::EmbeddingStore::Open(dir).ok());
}

// --- Adversarial (internally consistent but malformed) stores ----------------

// The on-disk constants, duplicated from the writer on purpose: these tests
// craft stores byte-by-byte to exercise geometries the writer never emits.
constexpr uint32_t kTestManifestMagic = 0xB007E5D0;
constexpr uint32_t kTestShardMagic = 0xB007E5D1;
constexpr uint32_t kTestVersion = 1;
constexpr uint64_t kTestPayloadAlign = 64;

/// Writes one float32 shard file exactly as the store writer would (header,
/// aligned payload, payload CRC word, footer) for an arbitrary row range,
/// and fills `info` with the matching manifest entry.
void CraftFloatShard(const std::string& dir, const std::string& table,
                     int64_t shard_index, const std::vector<float>& data,
                     int64_t row_begin, int64_t row_count, int64_t cols,
                     store::ShardInfo* info) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard_%06lld.bin",
                static_cast<long long>(shard_index));
  info->file = table + suffix;
  info->row_begin = row_begin;
  info->row_count = row_count;

  util::BinaryWriter w(dir + "/" + info->file);
  w.WriteU32(kTestShardMagic);
  w.WriteU32(kTestVersion);
  w.BeginSection();
  w.WriteString(table);
  w.WriteU32(0);  // Dtype::kFloat32
  w.WriteI64(row_begin);
  w.WriteI64(row_count);
  w.WriteI64(cols);
  const uint64_t payload_bytes =
      static_cast<uint64_t>(row_count) * static_cast<uint64_t>(cols) * 4;
  w.WriteU64(payload_bytes);
  w.EndSection();
  const uint64_t aligned = (w.bytes_written() + kTestPayloadAlign - 1) /
                           kTestPayloadAlign * kTestPayloadAlign;
  const std::string zeros(aligned - w.bytes_written(), '\0');
  w.WriteRaw(zeros.data(), zeros.size());
  const float* rows = data.data() + row_begin * cols;
  info->payload_crc = util::Crc32(rows, payload_bytes);
  w.WriteRaw(rows, payload_bytes);
  w.WriteU32(info->payload_crc);
  w.WriteFooter();
  info->file_bytes = w.bytes_written();
  ASSERT_TRUE(w.Finish().ok());
}

void CraftManifest(const std::string& dir, const std::string& table,
                   int64_t rows, int64_t cols,
                   const std::vector<store::ShardInfo>& shards) {
  util::BinaryWriter w(dir + "/MANIFEST");
  w.WriteU32(kTestManifestMagic);
  w.WriteU32(kTestVersion);
  w.BeginSection();
  w.WriteU64(1);  // one table
  w.WriteString(table);
  w.WriteI64(rows);
  w.WriteI64(cols);
  w.WriteU32(0);     // Dtype::kFloat32
  w.WriteF64(0.0);   // max_abs_error
  w.WriteF64(0.0);   // mean_abs_error
  w.WriteU64(shards.size());
  for (const store::ShardInfo& s : shards) {
    w.WriteString(s.file);
    w.WriteI64(s.row_begin);
    w.WriteI64(s.row_count);
    w.WriteU64(s.file_bytes);
    w.WriteU32(s.payload_crc);
  }
  w.EndSection();
  w.WriteFooter();
  ASSERT_TRUE(w.Finish().ok());
}

/// Crafts a store whose shard ranges are `{begin, count}` pairs over `data`,
/// with shard files fully consistent with the manifest (valid headers, CRCs,
/// footers) — only the geometry itself can be objectionable.
void CraftStore(const std::string& dir, const std::vector<float>& data,
                int64_t rows, int64_t cols,
                const std::vector<std::pair<int64_t, int64_t>>& ranges) {
  std::vector<store::ShardInfo> shards(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    CraftFloatShard(dir, "static", static_cast<int64_t>(i), data,
                    ranges[i].first, ranges[i].second, cols, &shards[i]);
  }
  CraftManifest(dir, "static", rows, cols, shards);
}

TEST(StoreFuzzTest, NonUniformTilingsOpenAndGatherEveryRow) {
  const int64_t rows = 30, cols = 4;
  const std::vector<float> data = RandomTable(rows, cols, 17);

  // Control: the writer's uniform-tile geometry must open — proving the
  // crafted bytes are valid before exercising the ragged geometries.
  const std::string good = TestDir("crafted_uniform");
  CraftStore(good, data, rows, cols, {{0, 15}, {15, 30 - 15}});
  ASSERT_TRUE(OpenAndVerify(good).ok());

  // Ragged tilings are what a delta chain produces: a big base shard plus
  // small appended shards (or vice versa). Each must open, verify, and
  // gather every row bit-exactly through the binary-search lookup path.
  const std::vector<std::vector<std::pair<int64_t, int64_t>>> tilings = {
      {{0, 10}, {10, 20}},                     // oversized last shard
      {{0, 27}, {27, 2}, {29, 1}},             // delta chain: base + 2 adds
      {{0, 1}, {1, 4}, {5, 20}, {25, 5}},      // fully irregular
  };
  int case_id = 0;
  for (const auto& ranges : tilings) {
    const std::string dir = TestDir("ragged_" + std::to_string(case_id++));
    CraftStore(dir, data, rows, cols, ranges);
    ASSERT_TRUE(OpenAndVerify(dir).ok());
    auto opened = store::EmbeddingStore::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto view = opened.value()->View("static");
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    std::vector<float> row(static_cast<size_t>(cols));
    for (int64_t r = 0; r < rows; ++r) {
      view.value()->GatherRow(r, row.data());
      for (int64_t c = 0; c < cols; ++c) {
        ASSERT_EQ(row[c], data[r * cols + c]) << "row " << r << " col " << c;
      }
    }
  }

  // Still rejected: gaps, overlaps, and coverage shortfalls.
  struct Bad {
    const char* name;
    std::vector<std::pair<int64_t, int64_t>> ranges;
  };
  const std::vector<Bad> bad = {
      {"gap", {{0, 10}, {12, 18}}},
      {"overlap", {{0, 12}, {10, 20}}},
      {"short", {{0, 10}, {10, 10}}},
  };
  for (const Bad& b : bad) {
    const std::string dir = TestDir(std::string("bad_") + b.name);
    CraftStore(dir, data, rows, cols, b.ranges);
    const util::Status st = OpenAndVerify(dir);
    ASSERT_FALSE(st.ok()) << b.name;
    EXPECT_EQ(st.code(), util::StatusCode::kCorruption) << b.name;
  }
}

// --- Generation scan ---------------------------------------------------------

TEST(GenerationScanTest, NewestValidGenerationWinsAndCorruptOnesAreSkipped) {
  const std::string dir = TestDir("generations");
  const std::vector<float> data = RandomTable(10, 6, 13);
  store::WriteOptions options;
  options.shards = 2;
  for (const std::string gen : {"gen_000001", "gen_000002", "gen_000003"}) {
    ASSERT_TRUE(store::WriteStore(dir + "/" + gen,
                                  {{"static", data.data(), 10, 6}}, options)
                    .ok());
  }
  // Corrupt the newest generation's manifest: the scan must fall back to 2.
  {
    const std::string manifest = dir + "/gen_000003/MANIFEST";
    std::string bytes = ReadAll(manifest);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    WriteAll(manifest, bytes);
  }
  int64_t generation = -1;
  auto opened = store::OpenNewestGeneration(dir, &generation);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(generation, 2);
  EXPECT_TRUE(opened.value()->dir().find("gen_000002") != std::string::npos);

  // A directory holding a MANIFEST directly is generation 0.
  int64_t flat_generation = -1;
  auto flat = store::OpenNewestGeneration(dir + "/gen_000001", &flat_generation);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat_generation, 0);

  // Nothing servable at all.
  const std::string empty = TestDir("generations_empty");
  EXPECT_EQ(store::OpenNewestGeneration(empty, &generation).status().code(),
            util::StatusCode::kNotFound);
}

TEST(GenerationScanTest, SignPrefixedGenerationNamesAreIgnored) {
  const std::string dir = TestDir("generations_signed");
  const std::vector<float> data = RandomTable(6, 4, 19);
  store::WriteOptions options;
  options.shards = 1;
  // Perfectly valid stores under sign-prefixed names: strtoll would happily
  // parse "gen_-1" (colliding with the engine's -1 "no store" sentinel) and
  // "gen_+1"; the scan must treat these — and outright non-numeric names —
  // as foreign directories, not generations.
  for (const std::string gen : {"gen_-1", "gen_+1", "gen_x"}) {
    ASSERT_TRUE(store::WriteStore(dir + "/" + gen,
                                  {{"static", data.data(), 6, 4}}, options)
                    .ok());
  }
  int64_t generation = -7;
  EXPECT_EQ(store::OpenNewestGeneration(dir, &generation).status().code(),
            util::StatusCode::kNotFound);

  // A digit-named sibling is still picked up among the ignored ones.
  ASSERT_TRUE(store::WriteStore(dir + "/gen_5",
                                {{"static", data.data(), 6, 4}}, options)
                  .ok());
  auto opened = store::OpenNewestGeneration(dir, &generation);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(generation, 5);
}

// --- Engine equivalence ------------------------------------------------------

/// One tiny world + saved dataset + saved model, shared across engine tests
/// (mirrors serve_test's fixture; rebuilt here so the two test binaries stay
/// independent).
struct StoreWorld {
  std::string data_dir;
  std::string model_path;
  std::string store_root;
  data::SynthWorld world;
  data::Corpus corpus;
};

core::BootlegConfig ServingConfig() {
  core::BootlegConfig config;
  config.encoder.max_len = 32;
  return config;
}

const StoreWorld& GetStoreWorld() {
  static const StoreWorld* shared = [] {
    auto* sw = new StoreWorld();
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_pages = 40;
    sw->world = data::BuildWorld(config);
    data::CorpusGenerator generator(&sw->world);
    sw->corpus = generator.Generate();
    sw->data_dir = TestDir("engine_world");
    BOOTLEG_CHECK(sw->world.kb.Save(sw->data_dir + "/kb.bin").ok());
    BOOTLEG_CHECK(
        sw->world.candidates.Save(sw->data_dir + "/candidates.bin").ok());
    BOOTLEG_CHECK(sw->world.vocab.Save(sw->data_dir + "/vocab.bin").ok());
    core::BootlegModel model(&sw->world.kb, sw->world.vocab.size(),
                             ServingConfig(), /*seed=*/123);
    sw->model_path = sw->data_dir + "/model.bin";
    BOOTLEG_CHECK(model.store().Save(sw->model_path).ok());

    // Export both dtypes from the model's own frozen table: generation 1 is
    // the float store, generation 2 the int8 store.
    model.PrepareFrozenInference();
    const tensor::Tensor& frozen = model.frozen_static();
    sw->store_root = TestDir("engine_store");
    store::WriteOptions wo;
    wo.shards = 3;
    wo.dtype = store::Dtype::kFloat32;
    BOOTLEG_CHECK(store::WriteStore(sw->store_root + "/gen_000001",
                                    {{"static", frozen.data(), frozen.size(0),
                                      frozen.size(1)}},
                                    wo)
                      .ok());
    wo.dtype = store::Dtype::kInt8;
    BOOTLEG_CHECK(store::WriteStore(sw->store_root + "/gen_000002",
                                    {{"static", frozen.data(), frozen.size(0),
                                      frozen.size(1)}},
                                    wo)
                      .ok());
    return sw;
  }();
  return *shared;
}

std::unique_ptr<serve::InferenceEngine> MakeEngine(
    const std::string& store_dir, int64_t resident_budget_bytes = 0,
    int64_t resident_sweep_ms = 1000) {
  const StoreWorld& sw = GetStoreWorld();
  serve::EngineOptions options;
  options.data_dir = sw.data_dir;
  options.model_path = sw.model_path;
  options.store_dir = store_dir;
  options.resident_budget_bytes = resident_budget_bytes;
  options.resident_sweep_ms = resident_sweep_ms;
  auto engine = serve::InferenceEngine::Create(options);
  BOOTLEG_CHECK_MSG(engine.ok(), engine.status().ToString());
  return std::move(engine.value());
}

std::vector<data::SentenceExample> DevExamples() {
  const StoreWorld& sw = GetStoreWorld();
  data::ExampleBuilder builder(&sw.world.candidates, &sw.world.vocab);
  data::ExampleOptions options;
  options.include_weak_labels = false;
  return builder.BuildAll(sw.corpus.dev, options);
}

TEST(StoreEngineTest, FloatStoreServingIsBitIdenticalToHeapPath) {
  const std::vector<data::SentenceExample> examples = DevExamples();
  ASSERT_GT(examples.size(), 8u);

  auto heap_engine = MakeEngine("");
  auto store_engine = MakeEngine(GetStoreWorld().store_root + "/gen_000001");
  ASSERT_TRUE(store_engine->model().frozen_from_store());
  EXPECT_FALSE(heap_engine->model().frozen_from_store());
  EXPECT_EQ(store_engine->store_generation(), 0);  // flat dir: generation 0

  core::BootlegModel::InferenceScratch heap_scratch, store_scratch;
  for (const int threads : {1, 4}) {
    util::ThreadPool::ResetGlobal(threads);
    for (const size_t batch_size :
         {size_t{1}, size_t{3}, size_t{8}, examples.size()}) {
      for (size_t begin = 0; begin < examples.size(); begin += batch_size) {
        const size_t end = std::min(examples.size(), begin + batch_size);
        std::vector<const data::SentenceExample*> batch;
        for (size_t i = begin; i < end; ++i) batch.push_back(&examples[i]);
        const auto want = heap_engine->PredictExamples(batch, &heap_scratch);
        const auto got = store_engine->PredictExamples(batch, &store_scratch);
        ASSERT_EQ(got, want) << "batch_size=" << batch_size
                             << " threads=" << threads << " begin=" << begin;
      }
    }
  }
  util::ThreadPool::ResetGlobal(1);
}

TEST(StoreEngineTest, Int8StoreMatchesArgmaxOnSyntheticWorld) {
  const std::vector<data::SentenceExample> examples = DevExamples();
  auto heap_engine = MakeEngine("");
  // The store root holds gen_000001 (float) and gen_000002 (int8); the scan
  // must serve the int8 generation.
  auto int8_engine = MakeEngine(GetStoreWorld().store_root);
  EXPECT_EQ(int8_engine->store_generation(), 2);
  ASSERT_NE(int8_engine->entity_store(), nullptr);
  EXPECT_EQ(int8_engine->entity_store()->FindTable("static")->dtype,
            store::Dtype::kInt8);

  core::BootlegModel::InferenceScratch heap_scratch, int8_scratch;
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  const auto want = heap_engine->PredictExamples(batch, &heap_scratch);
  const auto got = int8_engine->PredictExamples(batch, &int8_scratch);
  // Quantization error (≤ scale/2 per feature) is far below the synthetic
  // world's score margins: the argmax must not move on any mention.
  EXPECT_EQ(got, want);
}

TEST(StoreEngineTest, ReloadSwapsToNewerGenerationAndKeepsServingOnFailure) {
  const StoreWorld& sw = GetStoreWorld();
  const std::string root = TestDir("reload_generations");
  const auto copy_gen = [&](const std::string& name, const std::string& from) {
    fs::create_directories(root + "/" + name);
    fs::copy(from, root + "/" + name,
             fs::copy_options::overwrite_existing | fs::copy_options::recursive);
  };
  copy_gen("gen_000001", sw.store_root + "/gen_000001");
  auto engine = MakeEngine(root);
  EXPECT_EQ(engine->store_generation(), 1);

  // No newer generation: reload is a clean no-op.
  ASSERT_TRUE(engine->Reload().ok());
  EXPECT_EQ(engine->store_generation(), 1);

  // A corrupt newer generation is skipped; serving stays on 1.
  copy_gen("gen_000003", sw.store_root + "/gen_000002");
  {
    std::string bytes = ReadAll(root + "/gen_000003/MANIFEST");
    bytes[10] = static_cast<char>(bytes[10] ^ 0x40);
    WriteAll(root + "/gen_000003/MANIFEST", bytes);
  }
  ASSERT_TRUE(engine->Reload().ok());
  EXPECT_EQ(engine->store_generation(), 1);

  // A valid newer generation swaps in, and predictions keep matching the
  // heap reference (gen 2 here is the int8 export).
  copy_gen("gen_000002", sw.store_root + "/gen_000002");
  ASSERT_TRUE(engine->Reload().ok());
  EXPECT_EQ(engine->store_generation(), 2);

  const std::vector<data::SentenceExample> examples = DevExamples();
  auto heap_engine = MakeEngine("");
  core::BootlegModel::InferenceScratch a, b;
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  EXPECT_EQ(engine->PredictExamples(batch, &a),
            heap_engine->PredictExamples(batch, &b));
}

TEST(StoreEngineTest, StatsSnapshotSurvivesConcurrentGenerationSwap) {
  const StoreWorld& sw = GetStoreWorld();
  const std::string root = TestDir("stats_race");
  const auto copy_gen = [&](const std::string& name, const std::string& from) {
    fs::create_directories(root + "/" + name);
    fs::copy(from, root + "/" + name,
             fs::copy_options::overwrite_existing | fs::copy_options::recursive);
  };
  copy_gen("gen_000001", sw.store_root + "/gen_000001");
  auto engine = MakeEngine(root);

  // Stats-op readers hammer the store snapshot exactly as the server does —
  // dereferencing num_shards()/mapped_bytes()/dir() — while the main thread
  // swaps generations underneath them. The shared_ptr snapshot must keep
  // whichever generation a reader grabbed mapped until it lets go (the
  // sanitizer gates turn a use-after-munmap here into a hard failure).
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto [es, generation] = engine->store_snapshot();
        EXPECT_NE(es, nullptr);
        if (es == nullptr) return;
        EXPECT_GT(es->num_shards(), 0);
        EXPECT_GT(es->mapped_bytes(), 0u);
        EXPECT_FALSE(es->dir().empty());
        EXPECT_GE(generation, 1);
      }
    });
  }
  for (int gen = 2; gen <= 20; ++gen) {
    char name[32];
    std::snprintf(name, sizeof(name), "gen_%06d", gen);
    // Alternate float and int8 exports so the swap also flips view types.
    copy_gen(name, sw.store_root +
                       (gen % 2 == 0 ? "/gen_000002" : "/gen_000001"));
    ASSERT_TRUE(engine->Reload().ok());
    EXPECT_EQ(engine->store_generation(), gen);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
}

// --- Hot-set residency -------------------------------------------------------

TEST(ResidencyTest, AdvisoriesNeverChangeGatherResults) {
  const int64_t rows = 256;
  const int64_t cols = 16;
  const std::vector<float> data = RandomTable(rows, cols, 77, 2.0f);
  for (const store::Dtype dtype :
       {store::Dtype::kFloat32, store::Dtype::kInt8}) {
    const bool is_float = dtype == store::Dtype::kFloat32;
    const std::string dir =
        TestDir(is_float ? "residency_f32" : "residency_i8");
    store::WriteOptions options;
    options.shards = 8;
    options.dtype = dtype;
    ASSERT_TRUE(
        store::WriteStore(dir, {{"static", data.data(), rows, cols}}, options)
            .ok());

    auto unmanaged = std::move(store::EmbeddingStore::Open(dir).value());
    auto managed = std::move(store::EmbeddingStore::Open(dir).value());
    store::ResidencyOptions ro;
    // Budget well below table size so the clock must evict; manual sweeps
    // keep the schedule deterministic.
    ro.budget_bytes = static_cast<int64_t>(managed->mapped_bytes() / 4);
    ro.start_sweeper = false;
    managed->EnableResidency(ro);
    ASSERT_NE(managed->residency(), nullptr);

    auto uview = std::move(unmanaged->View("static").value());
    auto mview = std::move(managed->View("static").value());
    EXPECT_EQ(uview->residency_policy(), nullptr);  // unmanaged: no hooks
    ASSERT_NE(mview->residency_policy(), nullptr);

    // Zipf-flavored id stream: every row once, plus a hot head revisited.
    std::vector<int64_t> ids;
    for (int64_t id = 0; id < rows; ++id) ids.push_back(id);
    for (int rep = 0; rep < 4; ++rep) {
      for (int64_t id = 0; id < rows / 8; ++id) ids.push_back(id);
    }
    const int64_t n = static_cast<int64_t>(ids.size());
    std::vector<float> want(static_cast<size_t>(n * cols));
    std::vector<float> got(static_cast<size_t>(n * cols));
    std::vector<float> wrow(static_cast<size_t>(cols));
    std::vector<float> grow(static_cast<size_t>(cols));
    for (int pass = 0; pass < 4; ++pass) {
      uview->GatherRows(ids.data(), n, want.data());
      mview->WillGather(ids.data(), n);  // batch-ahead advisory
      mview->GatherRows(ids.data(), n, got.data());
      ASSERT_EQ(std::memcmp(want.data(), got.data(),
                            want.size() * sizeof(float)),
                0)
          << "pass=" << pass << " dtype=" << store::DtypeName(dtype);
      for (int64_t id = 0; id < rows; ++id) {
        uview->GatherRow(id, wrow.data());
        mview->GatherRow(id, grow.data());
        ASSERT_EQ(
            std::memcmp(wrow.data(), grow.data(), wrow.size() * sizeof(float)),
            0)
            << "pass=" << pass << " id=" << id;
        if (is_float) {
          // Float rows must also stay bit-identical to the exported source,
          // advisories or not.
          ASSERT_EQ(std::memcmp(grow.data(), data.data() + id * cols,
                                wrow.size() * sizeof(float)),
                    0)
              << "pass=" << pass << " id=" << id;
        }
      }
      managed->residency()->SweepOnce(/*warm_kept=*/pass == 0);
    }

    // The tight budget forced real clock activity: evictions happened and
    // later gathers re-faulted evicted shards back in — with zero effect on
    // the gathered bytes above.
    const store::ResidencyStats rs = managed->residency_stats();
    EXPECT_EQ(rs.budget_bytes, ro.budget_bytes);
    EXPECT_EQ(rs.sweeps, 4);
    EXPECT_GT(rs.evictions, 0);
    EXPECT_GT(rs.cold_faults, 0);
    EXPECT_GT(rs.prefetch_issued, 0);
    EXPECT_GT(rs.resident_shards, 0);  // the head stays pinned
  }
}

TEST(ResidencyTest, BudgetEdgeCases) {
  const int64_t rows = 64;
  const int64_t cols = 8;
  const std::vector<float> data = RandomTable(rows, cols, 91);
  const std::string dir = TestDir("residency_edges");
  store::WriteOptions options;
  options.shards = 4;
  ASSERT_TRUE(
      store::WriteStore(dir, {{"static", data.data(), rows, cols}}, options)
          .ok());

  // budget = 0: management stays off entirely — no manager, zeroed stats,
  // views carry no hooks.
  {
    auto store = std::move(store::EmbeddingStore::Open(dir).value());
    store::ResidencyOptions ro;
    ro.budget_bytes = 0;
    store->EnableResidency(ro);
    EXPECT_EQ(store->residency(), nullptr);
    EXPECT_EQ(store->residency_stats().budget_bytes, 0);
    auto view = std::move(store->View("static").value());
    EXPECT_EQ(view->residency_policy(), nullptr);
    std::vector<float> row(static_cast<size_t>(cols));
    view->GatherRow(0, row.data());
    EXPECT_EQ(std::memcmp(row.data(), data.data(), row.size() * sizeof(float)),
              0);
  }

  // budget ≥ table size: everything stays resident, nothing is ever evicted
  // and no access ever cold-faults.
  {
    auto store = std::move(store::EmbeddingStore::Open(dir).value());
    store::ResidencyOptions ro;
    ro.budget_bytes = static_cast<int64_t>(store->mapped_bytes()) * 2;
    ro.start_sweeper = false;
    store->EnableResidency(ro);
    ASSERT_NE(store->residency(), nullptr);
    auto view = std::move(store->View("static").value());
    std::vector<int64_t> ids;
    for (int64_t id = 0; id < rows; ++id) ids.push_back(id);
    std::vector<float> buf(static_cast<size_t>(rows * cols));
    for (int pass = 0; pass < 3; ++pass) {
      view->GatherRows(ids.data(), rows, buf.data());
      store->residency()->SweepOnce(/*warm_kept=*/pass == 0);
    }
    ASSERT_EQ(std::memcmp(buf.data(), data.data(), buf.size() * sizeof(float)),
              0);
    const store::ResidencyStats rs = store->residency_stats();
    EXPECT_EQ(rs.evictions, 0);
    EXPECT_EQ(rs.cold_faults, 0);
    EXPECT_EQ(rs.resident_shards, store->num_shards());
    EXPECT_GT(rs.resident_bytes, 0);  // mincore sees the gathered pages
  }
}

TEST(ResidencyTest, EvictionAndPrefetchRaceGenerationSwapsSafely) {
  const StoreWorld& sw = GetStoreWorld();
  const std::string root = TestDir("residency_race");
  const auto copy_gen = [&](const std::string& name, const std::string& from) {
    fs::create_directories(root + "/" + name);
    fs::copy(from, root + "/" + name,
             fs::copy_options::overwrite_existing | fs::copy_options::recursive);
  };
  copy_gen("gen_000001", sw.store_root + "/gen_000001");
  // Tiny budget + aggressive sweep cadence: the background clock evicts and
  // re-admits shards continuously while traffic gathers through them and the
  // main thread swaps (and unmaps) generations. The sanitizer gates turn an
  // advisory chasing a dead mapping or a racy counter into a hard failure.
  auto engine = MakeEngine(root, /*resident_budget_bytes=*/16 << 10,
                           /*resident_sweep_ms=*/2);
  auto heap_engine = MakeEngine("");
  const std::vector<data::SentenceExample> examples = DevExamples();
  // A small batch keeps each traffic iteration short, so reloads (which
  // exclude traffic) interleave tightly with gathers instead of queueing
  // behind long predictions.
  std::vector<const data::SentenceExample*> batch;
  for (size_t i = 0; i < std::min<size_t>(examples.size(), 4); ++i) {
    batch.push_back(&examples[i]);
  }
  core::BootlegModel::InferenceScratch heap_scratch;
  const auto want = heap_engine->PredictExamples(batch, &heap_scratch);

  // Mirror the server's reload discipline: traffic holds the shared side,
  // generation swaps the exclusive side (the batcher's reload_mu_).
  std::shared_mutex reload_mu;
  std::atomic<bool> stop{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&] {
      core::BootlegModel::InferenceScratch scratch;
      while (!stop.load(std::memory_order_relaxed)) {
        {
          std::shared_lock<std::shared_mutex> lock(reload_mu);
          // Both the float and the int8 generation must keep matching the
          // heap reference mid-race (bit-identical / argmax-identical).
          EXPECT_EQ(engine->PredictExamples(batch, &scratch), want);
        }
        // Breathe between iterations so swaps (unique lock) don't starve
        // behind back-to-back shared holds.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (int gen = 2; gen <= 8; ++gen) {
    char name[32];
    std::snprintf(name, sizeof(name), "gen_%06d", gen);
    copy_gen(name, sw.store_root +
                       (gen % 2 == 0 ? "/gen_000002" : "/gen_000001"));
    {
      std::unique_lock<std::shared_mutex> lock(reload_mu);
      ASSERT_TRUE(engine->Reload().ok());
    }
    EXPECT_EQ(engine->store_generation(), gen);
    // Let the new generation's sweeper run a few 2ms passes against live
    // traffic before the next swap displaces it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : traffic) th.join();

  ASSERT_NE(engine->entity_store(), nullptr);
  const store::ResidencyStats rs = engine->entity_store()->residency_stats();
  EXPECT_EQ(rs.budget_bytes, 16 << 10);
  // The final generation's sweeper has had time to run at the 2ms cadence.
  EXPECT_GT(rs.sweeps + rs.prefetch_issued, 0);
}

TEST(StoreEngineTest, MismatchedStoreSchemaIsRejectedAtCreate) {
  const StoreWorld& sw = GetStoreWorld();
  // A store whose "static" table has the wrong width must be rejected up
  // front (exported under a different ablation), not crash at gather time.
  const std::string dir = TestDir("bad_schema");
  const std::vector<float> data = RandomTable(sw.world.kb.num_entities(), 8, 5);
  store::WriteOptions options;
  ASSERT_TRUE(store::WriteStore(
                  dir, {{"static", data.data(), sw.world.kb.num_entities(), 8}},
                  options)
                  .ok());
  serve::EngineOptions eo;
  eo.data_dir = sw.data_dir;
  eo.model_path = sw.model_path;
  eo.store_dir = dir;
  auto engine = serve::InferenceEngine::Create(eo);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);

  // store_dir with checkpoint_dir is a config error, caught before any IO.
  serve::EngineOptions bad;
  bad.data_dir = sw.data_dir;
  bad.checkpoint_dir = sw.data_dir;
  bad.store_dir = dir;
  EXPECT_EQ(serve::InferenceEngine::Create(bad).status().code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bootleg

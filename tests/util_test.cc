#include <filesystem>

#include <gtest/gtest.h>

#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace bootleg::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusTest, StatusOrHoldsError) {
  StatusOr<int> v(Status::IOError("disk on fire"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIOError);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfIsMonotoneDecreasing) {
  Rng rng(3);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(10, 1.1))];
  }
  // The head must dominate; counts roughly decrease with rank.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[1], counts[8]);
  EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Zipf(17, 0.9);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  int64_t hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Categorical({1.0, 9.0}) == 1) ++hits;
  }
  EXPECT_GT(hits, 4200);
  EXPECT_LT(hits, 4800);
}

TEST(RngTest, CategoricalZeroWeightNeverDrawn) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(rng.Categorical({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(StringTest, SplitDropsEmpty) {
  const auto parts = Split("  a b  c ", " ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, ToLower) { EXPECT_EQ(ToLower("AbC9!"), "abc9!"); }

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("encoder.w", "encoder"));
  EXPECT_FALSE(StartsWith("enc", "encoder"));
  EXPECT_TRUE(EndsWith("model.ckpt", ".ckpt"));
}

TEST(StringTest, ContainsDigit) {
  EXPECT_TRUE(ContainsDigit("games_1976"));
  EXPECT_FALSE(ContainsDigit("games"));
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(IoTest, BinaryRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "io_test.bin").string();
  {
    BinaryWriter w(path);
    w.WriteU32(123u);
    w.WriteI64(-42);
    w.WriteF32(2.5f);
    w.WriteString("hello");
    w.WriteFloatVector({1.0f, 2.0f});
    w.WriteI64Vector({7, 8, 9});
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 123u);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadF32(), 2.5f);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(r.ReadI64Vector(), (std::vector<int64_t>{7, 8, 9}));
  EXPECT_TRUE(r.status().ok());
  std::filesystem::remove(path);
}

TEST(IoTest, ShortReadIsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "io_short.bin").string();
  {
    BinaryWriter w(path);
    w.WriteU32(1u);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  (void)r.ReadU64();  // asks for more bytes than exist
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(IoTest, MissingFileIsIOError) {
  BinaryReader r("/nonexistent/path/file.bin");
  EXPECT_FALSE(r.status().ok());
}

TEST(IoTest, TextFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "io_text.txt").string();
  ASSERT_TRUE(WriteTextFile(path, "line1\nline2").ok());
  auto contents = ReadTextFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "line1\nline2");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace bootleg::util

#include "core/model.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "core/regularization.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"

namespace bootleg::core {
namespace {

TEST(RegularizationTest, PaperAnchorValues) {
  RegConfig inv{RegScheme::kInvPopPow, 0.0f};
  // f(1) = 0.95, f(10000) ≈ 0.05 (paper Appendix B).
  EXPECT_NEAR(inv.MaskProbability(1), 0.95f, 1e-3f);
  EXPECT_NEAR(inv.MaskProbability(10000), 0.05f, 0.01f);

  RegConfig pop{RegScheme::kPopPow, 0.0f};
  EXPECT_NEAR(pop.MaskProbability(1), 0.05f, 0.01f);
  EXPECT_NEAR(pop.MaskProbability(10000), 0.95f, 1e-3f);
}

TEST(RegularizationTest, InvPopSchemesAreMonotoneDecreasing) {
  for (RegScheme scheme : {RegScheme::kInvPopPow, RegScheme::kInvPopLin,
                           RegScheme::kInvPopLog}) {
    RegConfig config{scheme, 0.0f};
    float prev = 1.0f;
    for (int64_t count : {1, 10, 100, 1000, 10000}) {
      const float p = config.MaskProbability(count);
      EXPECT_LE(p, prev) << RegSchemeName(scheme) << " at " << count;
      EXPECT_GE(p, 0.05f - 1e-6f);
      EXPECT_LE(p, 0.95f + 1e-6f);
      prev = p;
    }
  }
}

TEST(RegularizationTest, FixedAndNone) {
  RegConfig fixed{RegScheme::kFixed, 0.8f};
  EXPECT_EQ(fixed.MaskProbability(1), 0.8f);
  EXPECT_EQ(fixed.MaskProbability(100000), 0.8f);
  RegConfig none{RegScheme::kNone, 0.0f};
  EXPECT_EQ(none.MaskProbability(1), 0.0f);
}

TEST(RegularizationTest, ZeroCountTreatedAsOne) {
  RegConfig inv{RegScheme::kInvPopPow, 0.0f};
  EXPECT_EQ(inv.MaskProbability(0), inv.MaskProbability(1));
}

TEST(ConfigTest, AblationSwitches) {
  BootlegConfig base;
  const BootlegConfig ent = BootlegConfig::EntOnly(base);
  EXPECT_TRUE(ent.use_entity);
  EXPECT_FALSE(ent.use_type);
  EXPECT_FALSE(ent.use_kg);
  const BootlegConfig type = BootlegConfig::TypeOnly(base);
  EXPECT_FALSE(type.use_entity);
  EXPECT_TRUE(type.use_type);
  const BootlegConfig kg = BootlegConfig::KgOnly(base);
  EXPECT_TRUE(kg.use_kg);
  EXPECT_FALSE(kg.use_entity);
  EXPECT_FALSE(kg.use_type);
}

class ModelTest : public ::testing::Test {
 protected:
  ModelTest() {
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_entities = 300;
    config.num_pages = 80;
    world_ = data::BuildWorld(config);
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    data::ApplyWeakLabeling(world_.kb, &corpus_.train);
    counts_ = data::EntityCounts::FromTraining(corpus_.train);
    builder_ = std::make_unique<data::ExampleBuilder>(&world_.candidates,
                                                      &world_.vocab);
    examples_ = builder_->BuildAll(corpus_.train, data::ExampleOptions());
    model_config_.hidden = 32;
    model_config_.entity_dim = 32;
    model_config_.type_dim = 16;
    model_config_.coarse_dim = 8;
    model_config_.rel_dim = 16;
    model_config_.ff_inner = 64;
    model_config_.encoder.hidden = 32;
    model_config_.encoder.ff_inner = 64;
    model_config_.encoder.max_len = 24;
  }

  data::SentenceExample FirstTrainable() const {
    for (const data::SentenceExample& ex : examples_) {
      for (const data::MentionExample& m : ex.mentions) {
        if (m.gold_index >= 0) return ex;
      }
    }
    ADD_FAILURE() << "no trainable example";
    return {};
  }

  data::SynthWorld world_;
  data::Corpus corpus_;
  data::EntityCounts counts_;
  std::unique_ptr<data::ExampleBuilder> builder_;
  std::vector<data::SentenceExample> examples_;
  BootlegConfig model_config_;
};

TEST_F(ModelTest, PredictShapes) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  for (size_t i = 0; i < 20 && i < examples_.size(); ++i) {
    const auto preds = model.Predict(examples_[i]);
    ASSERT_EQ(preds.size(), examples_[i].mentions.size());
    for (size_t m = 0; m < preds.size(); ++m) {
      const int64_t k =
          static_cast<int64_t>(examples_[i].mentions[m].candidates.size());
      if (k == 0) {
        EXPECT_EQ(preds[m], -1);
      } else {
        EXPECT_GE(preds[m], 0);
        EXPECT_LT(preds[m], k);
      }
    }
  }
}

TEST_F(ModelTest, LossIsFiniteAndPositive) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  const data::SentenceExample ex = FirstTrainable();
  tensor::Var loss = model.Loss(ex, /*train=*/true);
  ASSERT_TRUE(loss.defined());
  EXPECT_GT(loss.value().at(0), 0.0f);
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
}

TEST_F(ModelTest, LossUndefinedForEmptySentence) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  data::SentenceExample empty;
  EXPECT_FALSE(model.Loss(empty, true).defined());
  EXPECT_TRUE(model.Predict(empty).empty());
}

TEST_F(ModelTest, TrainingReducesLoss) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  std::vector<data::SentenceExample> subset(
      examples_.begin(), examples_.begin() + std::min<size_t>(60, examples_.size()));
  auto avg_loss = [&]() {
    double total = 0.0;
    int64_t n = 0;
    for (const auto& ex : subset) {
      tensor::Var l = model.Loss(ex, /*train=*/false);
      if (l.defined()) {
        total += l.value().at(0);
        ++n;
      }
    }
    return total / n;
  };
  const double before = avg_loss();
  Trainable<BootlegModel> trainable(&model);
  TrainOptions options;
  options.epochs = 3;
  Train(&trainable, subset, options);
  const double after = avg_loss();
  EXPECT_LT(after, before);
}

TEST_F(ModelTest, AblationsRunForward) {
  for (const BootlegConfig& config :
       {BootlegConfig::EntOnly(model_config_),
        BootlegConfig::TypeOnly(model_config_),
        BootlegConfig::KgOnly(model_config_)}) {
    BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
    model.SetEntityCounts(&counts_);
    const data::SentenceExample ex = FirstTrainable();
    tensor::Var loss = model.Loss(ex, /*train=*/true);
    ASSERT_TRUE(loss.defined());
    EXPECT_TRUE(std::isfinite(loss.value().at(0)));
  }
}

TEST_F(ModelTest, BenchmarkExtrasRunForward) {
  BootlegConfig config = model_config_;
  config.use_cooccurrence_kg = true;
  config.use_title_feature = true;
  kb::CooccurrenceStats cooc(2);
  for (const data::Sentence& s : corpus_.train) {
    for (size_t i = 0; i < s.mentions.size(); ++i) {
      for (size_t j = i + 1; j < s.mentions.size(); ++j) {
        cooc.AddPair(s.mentions[i].gold, s.mentions[j].gold);
      }
    }
  }
  BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
  model.SetEntityCounts(&counts_);
  model.SetCooccurrence(&cooc);
  std::vector<int64_t> titles;
  for (kb::EntityId e = 0; e < world_.kb.num_entities(); ++e) {
    titles.push_back(world_.vocab.Id(world_.kb.entity(e).title));
  }
  model.SetTitleTokenIds(std::move(titles));
  tensor::Var loss = model.Loss(FirstTrainable(), true);
  ASSERT_TRUE(loss.defined());
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
}

TEST_F(ModelTest, OneDimensionalDropoutRunsForward) {
  BootlegConfig config = model_config_;
  config.regularization.two_dimensional = false;
  BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
  model.SetEntityCounts(&counts_);
  tensor::Var loss = model.Loss(FirstTrainable(), /*train=*/true);
  ASSERT_TRUE(loss.defined());
  tensor::Backward(loss);
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
}

TEST_F(ModelTest, NonEnsembleScoringRunsForward) {
  BootlegConfig config = model_config_;
  config.ensemble_scoring = false;
  BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
  model.SetEntityCounts(&counts_);
  tensor::Var loss = model.Loss(FirstTrainable(), /*train=*/true);
  ASSERT_TRUE(loss.defined());
  tensor::Backward(loss);
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
}

TEST_F(ModelTest, TwoHopKgRunsForward) {
  BootlegConfig config = model_config_;
  config.use_two_hop_kg = true;
  BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
  model.SetEntityCounts(&counts_);
  tensor::Var loss = model.Loss(FirstTrainable(), /*train=*/true);
  ASSERT_TRUE(loss.defined());
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
  // The extra adjacency registers an extra learned scalar per layer.
  EXPECT_TRUE(model.store().HasParam("layer0.kg_w1"));
}

TEST_F(ModelTest, TwoHopAdjacencyIsDownWeighted) {
  BootlegConfig config = model_config_;
  config.use_two_hop_kg = true;
  BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
  // Find a 2-hop-connected but not 1-hop-connected pair in the KB.
  kb::EntityId a = kb::kInvalidId, b = kb::kInvalidId;
  for (kb::EntityId x = 0; x < world_.kb.num_entities() && a == kb::kInvalidId;
       ++x) {
    for (kb::EntityId y = 0; y < world_.kb.num_entities(); ++y) {
      if (x != y && world_.kb.TwoHopConnected(x, y)) {
        a = x;
        b = y;
        break;
      }
    }
  }
  ASSERT_NE(a, kb::kInvalidId);
  data::SentenceExample ex;
  const tensor::Tensor adj = model.BuildAdjacencyForTest(
      ex, {a, b}, {0, 1}, BootlegModel::AdjacencyKind::kTwoHop);
  EXPECT_EQ(adj.at(0, 1), 0.5f);
  const tensor::Tensor direct = model.BuildAdjacencyForTest(
      ex, {a, b}, {0, 1}, BootlegModel::AdjacencyKind::kWikidata);
  EXPECT_EQ(direct.at(0, 1), 0.0f);
}

TEST_F(ModelTest, DeterministicPredictionsAtEval) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  const data::SentenceExample ex = FirstTrainable();
  EXPECT_EQ(model.Predict(ex), model.Predict(ex));
}

TEST_F(ModelTest, ContextualEmbeddingsAlignWithMentions) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  for (size_t i = 0; i < 10 && i < examples_.size(); ++i) {
    const auto ctx = model.ContextualEmbeddings(examples_[i]);
    ASSERT_EQ(ctx.size(), examples_[i].mentions.size());
    for (const auto& cm : ctx) {
      EXPECT_EQ(cm.embedding.size(),
                static_cast<size_t>(model_config_.hidden));
    }
  }
}

TEST_F(ModelTest, CompressionReplacesAndRestores) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  nn::Embedding* emb = model.store().GetEmbedding("entity_emb");
  // Perturb rows so they differ before compression.
  util::Rng rng(5);
  emb->table() = tensor::Tensor::Randn({emb->rows(), emb->cols()}, &rng);
  const tensor::Tensor original = emb->table();

  model.CompressEntityEmbeddings(0.05, counts_);
  // Most rows now share one embedding.
  std::set<float> distinct_first_values;
  for (int64_t r = 0; r < emb->rows(); ++r) {
    distinct_first_values.insert(emb->table().at(r, 0));
  }
  EXPECT_LT(static_cast<int64_t>(distinct_first_values.size()),
            emb->rows() / 4);

  model.RestoreEntityEmbeddings();
  for (int64_t i = 0; i < original.numel(); ++i) {
    EXPECT_EQ(emb->table().at(i), original.at(i));
  }
}

TEST_F(ModelTest, CompressionKeepsPopularRows) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  nn::Embedding* emb = model.store().GetEmbedding("entity_emb");
  util::Rng rng(6);
  emb->table() = tensor::Tensor::Randn({emb->rows(), emb->cols()}, &rng);
  const tensor::Tensor original = emb->table();
  model.CompressEntityEmbeddings(0.10, counts_);
  // The most popular entity (id 0 by construction) keeps its row.
  for (int64_t j = 0; j < emb->cols(); ++j) {
    EXPECT_EQ(emb->table().at(0, j), original.at(0, j));
  }
  model.RestoreEntityEmbeddings();
}

TEST_F(ModelTest, SizeReportOrdering) {
  BootlegModel full(&world_.kb, world_.vocab.size(), model_config_, 1);
  BootlegModel type_only(&world_.kb, world_.vocab.size(),
                         BootlegConfig::TypeOnly(model_config_), 1);
  BootlegModel kg_only(&world_.kb, world_.vocab.size(),
                       BootlegConfig::KgOnly(model_config_), 1);
  // The entity table dominates: Type-only and KG-only are far smaller.
  EXPECT_GT(full.Size().embedding_bytes, 10 * type_only.Size().embedding_bytes);
  EXPECT_GT(type_only.Size().embedding_bytes, kg_only.Size().embedding_bytes);
  EXPECT_GT(full.Size().network_bytes, 0);
}

TEST_F(ModelTest, CheckpointRoundTripPreservesPredictions) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bootleg_ckpt_test.bin").string();
  BootlegModel a(&world_.kb, world_.vocab.size(), model_config_, 1);
  a.SetEntityCounts(&counts_);
  Trainable<BootlegModel> trainable(&a);
  TrainOptions options;
  options.epochs = 1;
  std::vector<data::SentenceExample> subset(
      examples_.begin(), examples_.begin() + std::min<size_t>(40, examples_.size()));
  Train(&trainable, subset, options);
  ASSERT_TRUE(a.store().Save(path).ok());

  BootlegModel b(&world_.kb, world_.vocab.size(), model_config_, 2);
  b.SetEntityCounts(&counts_);
  ASSERT_TRUE(b.store().Load(path).ok());
  for (size_t i = 0; i < 10 && i < examples_.size(); ++i) {
    EXPECT_EQ(a.Predict(examples_[i]), b.Predict(examples_[i]));
  }
  std::filesystem::remove(path);
}

TEST_F(ModelTest, TrainerSkipsUntrainableSentences) {
  BootlegModel model(&world_.kb, world_.vocab.size(), model_config_, 1);
  model.SetEntityCounts(&counts_);
  std::vector<data::SentenceExample> with_empty = {data::SentenceExample{},
                                                   FirstTrainable()};
  Trainable<BootlegModel> trainable(&model);
  TrainOptions options;
  options.epochs = 1;
  const TrainStats stats = Train(&trainable, with_empty, options);
  EXPECT_EQ(stats.sentences_seen, 2);
  EXPECT_GE(stats.steps, 1);
}

/// Parameterized sweep over regularization schemes: each must yield a valid
/// training step (the mask path exercises differently per scheme).
class RegSchemeModelTest : public ModelTest,
                           public ::testing::WithParamInterface<RegScheme> {};

TEST_P(RegSchemeModelTest, TrainStepSucceeds) {
  BootlegConfig config = model_config_;
  config.regularization.scheme = GetParam();
  config.regularization.fixed_p = 0.5f;
  BootlegModel model(&world_.kb, world_.vocab.size(), config, 1);
  model.SetEntityCounts(&counts_);
  tensor::Var loss = model.Loss(FirstTrainable(), /*train=*/true);
  ASSERT_TRUE(loss.defined());
  tensor::Backward(loss);
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RegSchemeModelTest,
    ::testing::Values(RegScheme::kNone, RegScheme::kFixed,
                      RegScheme::kInvPopPow, RegScheme::kInvPopLin,
                      RegScheme::kInvPopLog, RegScheme::kPopPow),
    [](const ::testing::TestParamInfo<RegScheme>& info) {
      return RegSchemeName(info.param);
    });

/// Parameterized sweep over candidate-list sizes K.
class CandidateCountTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(CandidateCountTest, ForwardHandlesK) {
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_entities = 200;
  config.num_pages = 40;
  config.max_candidates = GetParam();
  data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  data::Corpus corpus = generator.Generate();
  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  BootlegConfig model_config;
  model_config.hidden = 32;
  model_config.entity_dim = 32;
  model_config.type_dim = 16;
  model_config.coarse_dim = 8;
  model_config.rel_dim = 16;
  model_config.ff_inner = 64;
  model_config.encoder.hidden = 32;
  model_config.encoder.ff_inner = 64;
  model_config.encoder.max_len = 24;
  BootlegModel model(&world.kb, world.vocab.size(), model_config, 1);
  for (size_t i = 0; i < 10 && i < corpus.dev.size(); ++i) {
    const data::SentenceExample ex =
        builder.Build(corpus.dev[i], data::ExampleOptions());
    const auto preds = model.Predict(ex);
    EXPECT_EQ(preds.size(), ex.mentions.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, CandidateCountTest, ::testing::Values(1, 2, 5, 8));

}  // namespace
}  // namespace bootleg::core

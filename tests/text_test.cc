#include <filesystem>

#include <gtest/gtest.h>

#include "text/vocabulary.h"
#include "text/word_encoder.h"

namespace bootleg::text {
namespace {

TEST(VocabularyTest, ReservedTokens) {
  Vocabulary v;
  EXPECT_EQ(v.Id("[PAD]"), kPadId);
  EXPECT_EQ(v.Id("[UNK]"), kUnkId);
  EXPECT_EQ(v.Id("[SEP]"), kSepId);
  EXPECT_EQ(v.Id("[CLS]"), kClsId);
  EXPECT_EQ(v.size(), 4);
}

TEST(VocabularyTest, AddIsIdempotent) {
  Vocabulary v;
  const int64_t a = v.AddToken("hello");
  const int64_t b = v.AddToken("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 5);
}

TEST(VocabularyTest, UnknownMapsToUnk) {
  Vocabulary v;
  EXPECT_EQ(v.Id("never-seen"), kUnkId);
  EXPECT_FALSE(v.Contains("never-seen"));
}

TEST(VocabularyTest, TokenRoundTrip) {
  Vocabulary v;
  const int64_t id = v.AddToken("word");
  EXPECT_EQ(v.Token(id), "word");
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vocab.bin").string();
  Vocabulary v;
  v.AddToken("alpha");
  v.AddToken("beta");
  ASSERT_TRUE(v.Save(path).ok());
  Vocabulary loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), v.size());
  EXPECT_EQ(loaded.Id("beta"), v.Id("beta"));
  EXPECT_EQ(loaded.Id("[SEP]"), kSepId);
  std::filesystem::remove(path);
}

TEST(TokenizeTest, LowercasesAndSplits) {
  const auto tokens = Tokenize("The Lincoln was Tall");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "lincoln");
}

TEST(TokenizeTest, PeelsTrailingPunctuation) {
  const auto tokens = Tokenize("where is lincoln?");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2], "lincoln");
  EXPECT_EQ(tokens[3], "?");
}

TEST(TokenizeTest, MultiplePunctuation) {
  const auto tokens = Tokenize("really?!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "really");
  EXPECT_EQ(tokens[1], "?");
  EXPECT_EQ(tokens[2], "!");
}

TEST(TokenizeTest, EncodeMapsUnknowns) {
  Vocabulary v;
  v.AddToken("known");
  const auto ids = Encode(v, {"known", "unknown"});
  EXPECT_EQ(ids[0], v.Id("known"));
  EXPECT_EQ(ids[1], kUnkId);
}

class WordEncoderTest : public ::testing::Test {
 protected:
  WordEncoderTest() : rng_(3) {
    config_.hidden = 16;
    config_.num_layers = 2;
    config_.num_heads = 2;
    config_.ff_inner = 32;
    config_.max_len = 8;
    encoder_ = std::make_unique<WordEncoder>(&store_, "enc", 50, config_, &rng_);
  }
  util::Rng rng_;
  nn::ParameterStore store_;
  WordEncoderConfig config_;
  std::unique_ptr<WordEncoder> encoder_;
};

TEST_F(WordEncoderTest, OutputShape) {
  tensor::Var w = encoder_->Encode({1, 2, 3, 4, 5}, &rng_, /*train=*/false);
  EXPECT_EQ(w.value().size(0), 5);
  EXPECT_EQ(w.value().size(1), 16);
  EXPECT_TRUE(tensor::AllFinite(w.value()));
}

TEST_F(WordEncoderTest, TruncatesAtMaxLen) {
  std::vector<int64_t> ids(20, 1);
  tensor::Var w = encoder_->Encode(ids, &rng_, /*train=*/false);
  EXPECT_EQ(w.value().size(0), 8);
}

TEST_F(WordEncoderTest, ContextSensitivity) {
  // The same token in different contexts gets different representations.
  tensor::Var w1 = encoder_->Encode({5, 6, 7}, &rng_, false);
  tensor::Var w2 = encoder_->Encode({5, 9, 10}, &rng_, false);
  float diff = 0.0f;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::abs(w1.value().at(0, j) - w2.value().at(0, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST_F(WordEncoderTest, PositionSensitivity) {
  // The same token at different positions gets different representations.
  tensor::Var w = encoder_->Encode({5, 5}, &rng_, false);
  float diff = 0.0f;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::abs(w.value().at(0, j) - w.value().at(1, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST_F(WordEncoderTest, MentionEmbeddingIsFirstPlusLast) {
  tensor::Var w = encoder_->Encode({1, 2, 3, 4}, &rng_, false);
  tensor::Var m = WordEncoder::MentionEmbedding(w, 1, 3);
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(m.value().at(0, j), w.value().at(1, j) + w.value().at(3, j),
                1e-6f);
  }
}

TEST_F(WordEncoderTest, MentionEmbeddingClampsSpanEnd) {
  tensor::Var w = encoder_->Encode({1, 2}, &rng_, false);
  tensor::Var m = WordEncoder::MentionEmbedding(w, 1, 99);
  EXPECT_EQ(m.value().size(0), 1);
}

TEST_F(WordEncoderTest, GradientsReachTokenEmbedding) {
  tensor::Var w = encoder_->Encode({3, 4}, &rng_, /*train=*/false);
  tensor::Backward(tensor::Sum(w));
  EXPECT_FALSE(encoder_->token_embedding()->sparse_grads().empty());
}

}  // namespace
}  // namespace bootleg::text

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/example.h"
#include "data/generator.h"
#include "data/slices.h"
#include "data/weak_label.h"
#include "data/world.h"

namespace bootleg::data {
namespace {

SynthConfig TinyConfig() {
  SynthConfig c = SynthConfig::MicroScale();
  c.num_entities = 400;
  c.num_types = 20;
  c.num_relations = 10;
  c.num_pages = 150;
  return c;
}

class WorldTest : public ::testing::Test {
 protected:
  WorldTest() : world_(BuildWorld(TinyConfig())) {}
  SynthWorld world_;
};

TEST_F(WorldTest, SizesMatchConfig) {
  EXPECT_EQ(world_.kb.num_entities(), 400);
  EXPECT_EQ(world_.kb.num_types(), 20);
  EXPECT_EQ(world_.kb.num_relations(), 10);
  EXPECT_GT(world_.kb.num_triples(), 0);
}

TEST_F(WorldTest, Deterministic) {
  SynthWorld other = BuildWorld(TinyConfig());
  EXPECT_EQ(other.kb.num_triples(), world_.kb.num_triples());
  EXPECT_EQ(other.kb.entity(17).title, world_.kb.entity(17).title);
  EXPECT_EQ(other.kb.entity(17).aliases, world_.kb.entity(17).aliases);
}

TEST_F(WorldTest, PopularityIsMonotoneInId) {
  for (size_t i = 1; i < world_.popularity.size(); ++i) {
    EXPECT_GE(world_.popularity[i - 1], world_.popularity[i]);
  }
}

TEST_F(WorldTest, MostAliasesAreAmbiguous) {
  int64_t ambiguous = 0, total = 0;
  for (const auto& [alias, cands] : world_.candidates.map()) {
    ++total;
    if (cands.size() > 1) ++ambiguous;
  }
  EXPECT_GT(total, 0);
  // Shared "ak_*" aliases exist alongside unique titles.
  EXPECT_GT(ambiguous, total / 8);
}

TEST_F(WorldTest, CandidatePriorsSortedDescending) {
  for (const auto& [alias, cands] : world_.candidates.map()) {
    for (size_t i = 1; i < cands.size(); ++i) {
      EXPECT_GE(cands[i - 1].prior, cands[i].prior);
    }
  }
}

TEST_F(WorldTest, DistinctTails) {
  // The paper's D.1 statistic: most tail entities (by popularity) carry
  // non-tail types. Approximate popularity by entity id (id = rank).
  std::vector<int64_t> type_members(static_cast<size_t>(world_.kb.num_types()), 0);
  for (kb::EntityId e = 0; e < world_.kb.num_entities(); ++e) {
    for (kb::TypeId t : world_.kb.entity(e).types) {
      ++type_members[static_cast<size_t>(t)];
    }
  }
  int64_t tail_entities_with_common_type = 0, tail_entities_with_types = 0;
  for (kb::EntityId e = world_.kb.num_entities() / 2;
       e < world_.kb.num_entities(); ++e) {
    const auto& types = world_.kb.entity(e).types;
    if (types.empty()) continue;
    ++tail_entities_with_types;
    for (kb::TypeId t : types) {
      if (type_members[static_cast<size_t>(t)] > 10) {
        ++tail_entities_with_common_type;
        break;
      }
    }
  }
  EXPECT_GT(tail_entities_with_common_type,
            (8 * tail_entities_with_types) / 10);  // ≥ 80%, paper: 88%
}

TEST_F(WorldTest, SomeEntitiesHaveNoTypeSignals) {
  int64_t no_type = 0;
  for (kb::EntityId e = 0; e < world_.kb.num_entities(); ++e) {
    if (world_.kb.entity(e).types.empty()) ++no_type;
  }
  EXPECT_GT(no_type, 0);
  EXPECT_LT(no_type, world_.kb.num_entities() / 4);
}

TEST_F(WorldTest, PersonsHaveGenderAndNameAliases) {
  bool found_person = false;
  for (kb::EntityId e = 0; e < world_.kb.num_entities(); ++e) {
    const kb::Entity& ent = world_.kb.entity(e);
    if (!ent.IsPerson()) continue;
    found_person = true;
    EXPECT_TRUE(ent.gender == 'm' || ent.gender == 'f');
    bool has_name_alias = false;
    for (const std::string& a : ent.aliases) {
      if (a.rfind("fn_", 0) == 0 || a.rfind("ln_", 0) == 0) has_name_alias = true;
    }
    EXPECT_TRUE(has_name_alias);
  }
  EXPECT_TRUE(found_person);
}

TEST_F(WorldTest, SampleEntityRespectsHoldout) {
  util::Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const kb::EntityId e = world_.SampleEntity(&rng, /*allow_holdout=*/false);
    EXPECT_FALSE(world_.is_unseen_holdout[static_cast<size_t>(e)]);
  }
}

TEST_F(WorldTest, VocabularyCoversLexicons) {
  for (const auto& kws : world_.type_keywords) {
    for (const std::string& kw : kws) EXPECT_TRUE(world_.vocab.Contains(kw));
  }
  for (kb::EntityId e = 0; e < world_.kb.num_entities(); ++e) {
    for (const std::string& a : world_.kb.entity(e).aliases) {
      EXPECT_TRUE(world_.vocab.Contains(a));
    }
  }
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : world_(BuildWorld(TinyConfig())), generator_(&world_) {
    corpus_ = generator_.Generate();
  }
  SynthWorld world_;
  CorpusGenerator generator_;
  Corpus corpus_;
};

TEST_F(GeneratorTest, SplitsNonEmpty) {
  EXPECT_GT(corpus_.train.size(), corpus_.dev.size());
  EXPECT_FALSE(corpus_.dev.empty());
  EXPECT_FALSE(corpus_.test.empty());
}

TEST_F(GeneratorTest, PageIdsDisjointAcrossSplits) {
  std::set<int64_t> train_pages, dev_pages;
  for (const Sentence& s : corpus_.train) train_pages.insert(s.page_id);
  for (const Sentence& s : corpus_.dev) dev_pages.insert(s.page_id);
  for (int64_t p : dev_pages) EXPECT_EQ(train_pages.count(p), 0u);
}

TEST_F(GeneratorTest, MentionSpansPointAtAliasTokens) {
  for (const Sentence& s : corpus_.train) {
    for (const Mention& m : s.mentions) {
      ASSERT_GE(m.span_start, 0);
      ASSERT_LT(m.span_start, static_cast<int64_t>(s.tokens.size()));
      EXPECT_EQ(s.tokens[static_cast<size_t>(m.span_start)], m.alias);
      EXPECT_GE(m.gold, 0);
      EXPECT_LT(m.gold, world_.kb.num_entities());
    }
  }
}

TEST_F(GeneratorTest, HoldoutEntitiesNeverGoldInTrain) {
  for (const Sentence& s : corpus_.train) {
    for (const Mention& m : s.mentions) {
      EXPECT_FALSE(world_.is_unseen_holdout[static_cast<size_t>(m.gold)])
          << "holdout entity leaked into training";
    }
  }
}

TEST_F(GeneratorTest, SomeAnchorsAreUnlabeled) {
  int64_t labeled = 0, unlabeled = 0;
  for (const Sentence& s : corpus_.train) {
    for (const Mention& m : s.mentions) {
      if (m.kind != MentionKind::kAnchor) continue;
      (m.labeled ? labeled : unlabeled) += 1;
    }
  }
  EXPECT_GT(labeled, 0);
  EXPECT_GT(unlabeled, 0);  // Wikipedia's missing-anchor phenomenon
}

TEST_F(GeneratorTest, PageRefMentionsStartUnlabeled) {
  int64_t pagerefs = 0;
  for (const Sentence& s : corpus_.train) {
    for (const Mention& m : s.mentions) {
      if (m.kind == MentionKind::kPronoun || m.kind == MentionKind::kAltName) {
        ++pagerefs;
        EXPECT_FALSE(m.labeled);
        EXPECT_EQ(m.gold, s.page_entity);
      }
    }
  }
  EXPECT_GT(pagerefs, 0);
}

TEST_F(GeneratorTest, DeterministicAcrossRuns) {
  SynthWorld world2 = BuildWorld(TinyConfig());
  CorpusGenerator gen2(&world2);
  Corpus corpus2 = gen2.Generate();
  ASSERT_EQ(corpus2.train.size(), corpus_.train.size());
  for (size_t i = 0; i < 50 && i < corpus_.train.size(); ++i) {
    EXPECT_EQ(corpus2.train[i].tokens, corpus_.train[i].tokens);
  }
}

TEST_F(GeneratorTest, KoreSuiteGoldsAreLowPrior) {
  const auto suite = generator_.GenerateKoreLike(30);
  EXPECT_EQ(suite.size(), 30u);
  int64_t low_prior = 0;
  for (const Sentence& s : suite) {
    const Mention& m = s.mentions.front();
    const auto* cands = world_.candidates.Lookup(m.alias);
    if (cands != nullptr && !cands->empty() && cands->back().entity == m.gold) {
      ++low_prior;
    }
  }
  // Most suite golds are the lowest-prior candidate of their alias (the
  // mention's alias may occasionally differ from the probed one).
  EXPECT_GT(low_prior, 15);
}

TEST_F(GeneratorTest, AidaSuiteCarriesDocTitles) {
  const auto suite = generator_.GenerateAidaLike(5, 3);
  EXPECT_EQ(suite.size(), 15u);
  for (const Sentence& s : suite) {
    EXPECT_FALSE(s.doc_title.empty());
  }
  // Sentences of one document share the title.
  EXPECT_EQ(suite[0].doc_title, suite[1].doc_title);
}

TEST_F(GeneratorTest, CountLabeledMentions) {
  const int64_t with_weak = CountLabeledMentions(corpus_.train, true);
  const int64_t anchors = CountLabeledMentions(corpus_.train, false);
  EXPECT_EQ(with_weak, anchors);  // no weak labels before the pass
  EXPECT_GT(anchors, 0);
}

class WeakLabelTest : public ::testing::Test {
 protected:
  WeakLabelTest() : world_(BuildWorld(TinyConfig())) {
    CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    stats_ = ApplyWeakLabeling(world_.kb, &corpus_.train);
  }
  SynthWorld world_;
  Corpus corpus_;
  WeakLabelStats stats_;
};

TEST_F(WeakLabelTest, IncreasesLabeledMentions) {
  EXPECT_GT(stats_.Multiplier(), 1.2);
  EXPECT_GT(stats_.pronoun_labels + stats_.altname_labels, 0);
  EXPECT_EQ(stats_.total_labels_after,
            CountLabeledMentions(corpus_.train, true));
}

TEST_F(WeakLabelTest, PronounLabelsMatchGender) {
  for (const Sentence& s : corpus_.train) {
    for (const Mention& m : s.mentions) {
      if (m.kind != MentionKind::kPronoun || !m.labeled) continue;
      const kb::Entity& e = world_.kb.entity(m.gold);
      EXPECT_TRUE(e.IsPerson());
      EXPECT_EQ(m.alias == "she" ? 'f' : 'm', e.gender);
      EXPECT_FALSE(m.candidate_alias.empty());
    }
  }
}

TEST_F(WeakLabelTest, AltNameLabelsUseKnownAliases) {
  for (const Sentence& s : corpus_.train) {
    for (const Mention& m : s.mentions) {
      if (m.kind != MentionKind::kAltName || !m.labeled) continue;
      const kb::Entity& page = world_.kb.entity(s.page_entity);
      EXPECT_NE(std::find(page.aliases.begin(), page.aliases.end(), m.alias),
                page.aliases.end());
    }
  }
}

TEST_F(WeakLabelTest, IdempotentOnSecondPass) {
  const int64_t labels_after_first = stats_.total_labels_after;
  const WeakLabelStats second = ApplyWeakLabeling(world_.kb, &corpus_.train);
  EXPECT_EQ(second.anchor_labels, labels_after_first);
  EXPECT_EQ(second.pronoun_labels, 0);
}

class ExampleTest : public ::testing::Test {
 protected:
  ExampleTest()
      : world_(BuildWorld(TinyConfig())),
        builder_(&world_.candidates, &world_.vocab) {
    CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    ApplyWeakLabeling(world_.kb, &corpus_.train);
  }
  SynthWorld world_;
  Corpus corpus_;
  ExampleBuilder builder_;
};

TEST_F(ExampleTest, GoldIndexPointsAtGold) {
  ExampleOptions options;
  for (size_t i = 0; i < 100 && i < corpus_.train.size(); ++i) {
    const SentenceExample ex = builder_.Build(corpus_.train[i], options);
    for (const MentionExample& m : ex.mentions) {
      if (m.gold_index >= 0) {
        EXPECT_EQ(m.candidates[static_cast<size_t>(m.gold_index)], m.gold);
      }
      EXPECT_EQ(m.candidates.size(), m.priors.size());
    }
  }
}

TEST_F(ExampleTest, ExcludingWeakLabelsShrinksMentions) {
  ExampleOptions with, without;
  without.include_weak_labels = false;
  int64_t n_with = 0, n_without = 0;
  for (const Sentence& s : corpus_.train) {
    n_with += static_cast<int64_t>(builder_.Build(s, with).mentions.size());
    n_without += static_cast<int64_t>(builder_.Build(s, without).mentions.size());
  }
  EXPECT_GT(n_with, n_without);
}

TEST_F(ExampleTest, PrependTitleShiftsSpans) {
  ExampleOptions plain, titled;
  titled.prepend_title = true;
  const Sentence& s = corpus_.dev.front();
  const SentenceExample a = builder_.Build(s, plain);
  const SentenceExample b = builder_.Build(s, titled);
  ASSERT_EQ(a.mentions.size(), b.mentions.size());
  EXPECT_EQ(b.token_ids.size(), a.token_ids.size() + 2);
  EXPECT_EQ(b.token_ids[1], text::kSepId);
  for (size_t i = 0; i < a.mentions.size(); ++i) {
    EXPECT_EQ(b.mentions[i].span_start, a.mentions[i].span_start + 2);
  }
}

TEST_F(ExampleTest, EntityCountsAndBuckets) {
  const EntityCounts counts = EntityCounts::FromTraining(corpus_.train);
  // Entity 0 is the most popular; it must be seen plenty.
  EXPECT_GT(counts.Count(0), 10);
  EXPECT_EQ(counts.BucketOf(0),
            counts.Count(0) > 1000 ? PopularityBucket::kHead
                                   : PopularityBucket::kTorso);
  // An entity never seen in training is unseen.
  kb::EntityId unseen = kb::kInvalidId;
  for (kb::EntityId e = 0; e < world_.kb.num_entities(); ++e) {
    if (counts.Count(e) == 0) {
      unseen = e;
      break;
    }
  }
  ASSERT_NE(unseen, kb::kInvalidId);
  EXPECT_EQ(counts.BucketOf(unseen), PopularityBucket::kUnseen);
}

TEST_F(ExampleTest, AnchorOnlyCountsAreSmaller) {
  const EntityCounts with_weak = EntityCounts::FromTraining(corpus_.train, true);
  const EntityCounts anchors = EntityCounts::FromTraining(corpus_.train, false);
  int64_t total_with = 0, total_anchor = 0;
  for (const auto& [e, c] : with_weak.counts()) total_with += c;
  for (const auto& [e, c] : anchors.counts()) total_anchor += c;
  EXPECT_GT(total_with, total_anchor);
}

TEST(BucketTest, Thresholds) {
  EXPECT_STREQ(PopularityBucketName(PopularityBucket::kUnseen), "unseen");
  EXPECT_STREQ(PopularityBucketName(PopularityBucket::kTail), "tail");
  Corpus empty;
  const EntityCounts counts = EntityCounts::FromTraining(empty.train);
  EXPECT_EQ(counts.BucketOf(0), PopularityBucket::kUnseen);
}

class SliceTest : public ::testing::Test {
 protected:
  SliceTest() : world_(BuildWorld(TinyConfig())) {
    CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    affordance_ = std::make_unique<AffordanceKeywords>(
        AffordanceKeywords::MineTfIdf(world_.kb, corpus_.train));
  }
  SynthWorld world_;
  Corpus corpus_;
  std::unique_ptr<AffordanceKeywords> affordance_;
};

TEST_F(SliceTest, EntitySliceRequiresNoSignals) {
  for (const Sentence& s : corpus_.dev) {
    for (size_t mi = 0; mi < s.mentions.size(); ++mi) {
      if (InSlice(world_.kb, s, mi, PatternSlice::kEntity, nullptr)) {
        const kb::Entity& gold = world_.kb.entity(s.mentions[mi].gold);
        EXPECT_TRUE(gold.types.empty());
        EXPECT_TRUE(gold.relations.empty());
      }
    }
  }
}

TEST_F(SliceTest, ConsistencySliceNeedsThreeSharedTypeGolds) {
  int64_t members = 0;
  for (const Sentence& s : corpus_.dev) {
    for (size_t mi = 0; mi < s.mentions.size(); ++mi) {
      if (InSlice(world_.kb, s, mi, PatternSlice::kConsistency, nullptr)) {
        ++members;
        EXPECT_GE(s.mentions.size(), 3u);
      }
    }
  }
  EXPECT_GT(members, 0);  // the generator plants consistency sentences
}

TEST_F(SliceTest, KgSliceGoldsAreConnected) {
  int64_t members = 0;
  for (const Sentence& s : corpus_.dev) {
    for (size_t mi = 0; mi < s.mentions.size(); ++mi) {
      if (!InSlice(world_.kb, s, mi, PatternSlice::kKgRelation, nullptr)) continue;
      ++members;
      bool connected = false;
      for (size_t j = 0; j < s.mentions.size(); ++j) {
        if (j != mi && world_.kb.Connected(s.mentions[mi].gold, s.mentions[j].gold)) {
          connected = true;
        }
      }
      EXPECT_TRUE(connected);
    }
  }
  EXPECT_GT(members, 0);
}

TEST_F(SliceTest, AffordanceKeywordsRecoverPlantedLexicon) {
  // TF-IDF mining should surface the planted type keywords for common types.
  int recovered = 0;
  for (kb::TypeId t = 0; t < world_.kb.num_types(); ++t) {
    const auto& mined = affordance_->KeywordsFor(t);
    for (const std::string& planted :
         world_.type_keywords[static_cast<size_t>(t)]) {
      if (std::find(mined.begin(), mined.end(), planted) != mined.end()) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GT(recovered, world_.kb.num_types() / 2);
}

TEST_F(SliceTest, AffordanceCoverageIsHigh) {
  // Paper: affordance keywords cover 88% of examples whose gold has a type.
  EXPECT_GT(affordance_->Coverage(world_.kb, corpus_.dev), 0.6);
}

TEST_F(SliceTest, SliceNames) {
  EXPECT_STREQ(PatternSliceName(PatternSlice::kAffordance), "Type Affordance");
  EXPECT_STREQ(PatternSliceName(PatternSlice::kEntity), "Entity");
}

}  // namespace
}  // namespace bootleg::data

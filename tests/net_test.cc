// Epoll front end under hostile clients and overload: pipelined replies must
// stay in request order, overlong lines and slowloris dribbles must be cut
// off with a structured reply, clients that stop reading must be
// disconnected once the write-buffer cap is hit, mid-request disconnects
// must never crash or leak, the per-connection inflight cap and max_conns
// must reject with structured codes, and the deadline/admission machinery in
// the serving layer must shed exactly the requests that can no longer make
// their budget.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_loop.h"
#include "net/front_end.h"
#include "serve/batcher.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "util/logging.h"

namespace bootleg {
namespace {

using namespace std::chrono_literals;

// --- Socket helpers ----------------------------------------------------------

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BOOTLEG_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  BOOTLEG_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0);
  return fd;
}

void SetRecvTimeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// Reads one newline-terminated reply. Empty string = EOF or timeout.
std::string ReadReplyLine(int fd) {
  std::string reply;
  char c;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n != 1) return "";
    if (c == '\n') return reply;
    reply.push_back(c);
  }
}

/// Reads until EOF (recv returns 0) or timeout; true on clean EOF.
bool ReadUntilEof(int fd) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0) return false;
  }
}

// --- Transport-level handler -------------------------------------------------

/// Protocol stub for transport tests: echoes lines (optionally with a fixed
/// large payload), or holds completions so tests control reply timing and
/// ordering.
class EchoHandler : public net::LineHandler {
 public:
  void HandleLineAsync(std::string line, Done done) override {
    received.fetch_add(1, std::memory_order_relaxed);
    std::string reply;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (hold.load(std::memory_order_relaxed)) {
        held.emplace_back(std::move(line), std::move(done));
        held_cv.notify_all();
        return;
      }
      reply = payload.empty() ? "echo:" + line : payload;
    }
    done(std::move(reply));
  }

  /// `payload` is read by the I/O threads; tests must set it through here.
  void SetPayload(std::string p) {
    std::lock_guard<std::mutex> lock(mu);
    payload = std::move(p);
  }

  std::string TransportErrorReply(net::TransportError error) override {
    switch (error) {
      case net::TransportError::kLineTooLong:
        return R"({"ok":false,"code":"line_too_long"})";
      case net::TransportError::kTooManyInflight:
        return R"({"ok":false,"code":"too_many_inflight"})";
      case net::TransportError::kServerFull:
        return R"({"ok":false,"code":"server_full"})";
    }
    return R"({"ok":false,"code":"error"})";
  }

  void WaitForHeld(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    held_cv.wait_for(lock, 5s, [&] { return held.size() >= n; });
    ASSERT_GE(held.size(), n);
  }

  /// Completes every held request, optionally in reverse arrival order (the
  /// transport must still reply in request order).
  void ReleaseHeld(bool reverse) {
    std::vector<std::pair<std::string, Done>> batch;
    {
      std::lock_guard<std::mutex> lock(mu);
      batch.swap(held);
    }
    if (reverse) std::reverse(batch.begin(), batch.end());
    for (auto& [line, done] : batch) done("echo:" + line);
  }

  std::atomic<int> received{0};
  std::atomic<bool> hold{false};
  std::string payload;  // when set, every reply is this string

  std::mutex mu;
  std::condition_variable held_cv;
  std::vector<std::pair<std::string, Done>> held;
};

struct FrontEndFixture {
  explicit FrontEndFixture(net::FrontEndOptions options) {
    options.port = 0;
    fe = std::make_unique<net::FrontEnd>(options, &handler);
    BOOTLEG_CHECK(fe->Start().ok());
  }
  ~FrontEndFixture() { fe->Stop(); }

  EchoHandler handler;
  std::unique_ptr<net::FrontEnd> fe;
};

// --- Event loop --------------------------------------------------------------

TEST(EventLoopTest, PostRunsClosuresOnLoopThread) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::thread runner([&] { loop.Run(); });

  std::atomic<bool> on_loop{false};
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    loop.Post([&] {
      on_loop.store(loop.InLoopThread());
      ran.fetch_add(1);
    });
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (ran.load() < 10 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), 10);
  EXPECT_TRUE(on_loop.load());
  EXPECT_FALSE(loop.InLoopThread());

  loop.Stop();
  runner.join();
}

TEST(EventLoopTest, RunAfterFiresInDueOrder) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::thread runner([&] { loop.Run(); });

  std::mutex mu;
  std::vector<int> order;
  std::condition_variable cv;
  loop.Post([&] {
    // Armed out of order on purpose; firing order must follow due times,
    // with insertion order breaking ties.
    loop.RunAfter(60, [&] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(3);
      cv.notify_all();
    });
    loop.RunAfter(10, [&] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(1);
    });
    loop.RunAfter(30, [&] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(2);
    });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, 5s, [&] { return order.size() == 3; });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
  loop.Stop();
  runner.join();
}

// --- Pipelining and reply ordering -------------------------------------------

TEST(NetFrontEndTest, PipelinedRequestsGetInOrderReplies) {
  FrontEndFixture fx{net::FrontEndOptions{}};
  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);

  // All 50 requests in one write: the transport must frame and reply to
  // each, in order, on the same connection.
  std::string burst;
  for (int i = 0; i < 50; ++i) burst += "req" + std::to_string(i) + "\n";
  ASSERT_TRUE(SendAll(fd, burst));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ReadReplyLine(fd), "echo:req" + std::to_string(i));
  }
  ::close(fd);
}

TEST(NetFrontEndTest, OutOfOrderCompletionsStillReplyInRequestOrder) {
  net::FrontEndOptions options;
  FrontEndFixture fx{options};
  fx.handler.hold.store(true);

  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);
  ASSERT_TRUE(SendAll(fd, "a\nb\nc\nd\n"));
  fx.handler.WaitForHeld(4);
  fx.handler.ReleaseHeld(/*reverse=*/true);

  EXPECT_EQ(ReadReplyLine(fd), "echo:a");
  EXPECT_EQ(ReadReplyLine(fd), "echo:b");
  EXPECT_EQ(ReadReplyLine(fd), "echo:c");
  EXPECT_EQ(ReadReplyLine(fd), "echo:d");
  ::close(fd);
}

// --- Hostile clients ---------------------------------------------------------

TEST(NetFrontEndTest, GiantLineGetsStructuredErrorThenDisconnect) {
  net::FrontEndOptions options;
  options.max_line_bytes = 1024;
  FrontEndFixture fx{options};

  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);
  // 8 KiB with the newline at the end: the line itself exceeds the cap.
  std::string giant(8 * 1024, 'x');
  giant += '\n';
  ASSERT_TRUE(SendAll(fd, giant));

  const std::string reply = ReadReplyLine(fd);
  EXPECT_NE(reply.find("line_too_long"), std::string::npos) << reply;
  EXPECT_TRUE(ReadUntilEof(fd));
  ::close(fd);
  EXPECT_EQ(fx.fe->stats().overlong_line_disconnects, 1);
  EXPECT_EQ(fx.handler.received.load(), 0);  // never reached the protocol
}

TEST(NetFrontEndTest, SlowlorisDribbleIsCutOffAtCap) {
  net::FrontEndOptions options;
  options.max_line_bytes = 1024;
  FrontEndFixture fx{options};

  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);
  // Dribble newline-free chunks; the unterminated line must be cut off once
  // it outgrows the cap, no matter how slowly it arrives.
  const std::string chunk(128, 'y');
  for (int i = 0; i < 12 && SendAll(fd, chunk); ++i) {
    std::this_thread::sleep_for(5ms);
  }
  const std::string reply = ReadReplyLine(fd);
  EXPECT_NE(reply.find("line_too_long"), std::string::npos) << reply;
  EXPECT_TRUE(ReadUntilEof(fd));
  ::close(fd);

  // The front end survives: a well-behaved client is still served.
  const int fd2 = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd2, 5000);
  ASSERT_TRUE(SendAll(fd2, "hello\n"));
  EXPECT_EQ(ReadReplyLine(fd2), "echo:hello");
  ::close(fd2);
}

TEST(NetFrontEndTest, DeadReaderIsDisconnectedAtWriteBufferCap) {
  net::FrontEndOptions options;
  options.write_buf_bytes = 64 * 1024;
  options.max_inflight_per_conn = 4;  // keep the reply pipeline tight
  FrontEndFixture fx{options};
  fx.handler.SetPayload(std::string(32 * 1024, 'z'));  // every reply is 32 KiB

  const int fd = ConnectLoopback(fx.fe->port());
  // Request replies but never read them. Once more than write_buf_bytes of
  // replies are stuck, the server must cut this connection loose instead of
  // buffering without bound.
  bool cut_off = false;
  for (int i = 0; i < 5000; ++i) {
    if (!SendAll(fd, "gimme\n")) {
      cut_off = true;
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(cut_off);
  ::close(fd);
  EXPECT_GE(fx.fe->stats().slow_client_disconnects, 1);

  // Server is healthy afterwards.
  fx.handler.SetPayload("");
  const int fd2 = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd2, 5000);
  ASSERT_TRUE(SendAll(fd2, "ping\n"));
  EXPECT_EQ(ReadReplyLine(fd2), "echo:ping");
  ::close(fd2);
}

TEST(NetFrontEndTest, MidRequestDisconnectDropsLateReplySafely) {
  FrontEndFixture fx{net::FrontEndOptions{}};
  fx.handler.hold.store(true);

  const int fd = ConnectLoopback(fx.fe->port());
  ASSERT_TRUE(SendAll(fd, "orphan\n"));
  fx.handler.WaitForHeld(1);
  ::close(fd);  // client vanishes while its request is in flight

  // Give the loop a moment to observe the EOF/reset, then complete the
  // request — the reply must be dropped, not delivered to a freed
  // connection.
  std::this_thread::sleep_for(50ms);
  fx.handler.ReleaseHeld(/*reverse=*/false);
  std::this_thread::sleep_for(50ms);

  const int fd2 = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd2, 5000);
  fx.handler.hold.store(false);
  ASSERT_TRUE(SendAll(fd2, "still-up\n"));
  EXPECT_EQ(ReadReplyLine(fd2), "echo:still-up");
  ::close(fd2);
}

// --- Fairness and connection caps --------------------------------------------

TEST(NetFrontEndTest, InflightCapRejectsExcessPipelining) {
  net::FrontEndOptions options;
  options.max_inflight_per_conn = 4;
  FrontEndFixture fx{options};
  fx.handler.hold.store(true);

  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    burst += 'r';
    burst += std::to_string(i);
    burst += '\n';
  }
  ASSERT_TRUE(SendAll(fd, burst));
  fx.handler.WaitForHeld(4);  // only the cap's worth reach the protocol
  EXPECT_EQ(fx.handler.received.load(), 4);
  fx.handler.ReleaseHeld(/*reverse=*/false);

  // In-order replies: the 4 accepted requests, then 6 structured rejects.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadReplyLine(fd), "echo:r" + std::to_string(i));
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(ReadReplyLine(fd).find("too_many_inflight"), std::string::npos);
  }
  // The connection survives the rejects.
  fx.handler.hold.store(false);
  ASSERT_TRUE(SendAll(fd, "after\n"));
  EXPECT_EQ(ReadReplyLine(fd), "echo:after");
  ::close(fd);
}

TEST(NetFrontEndTest, MaxConnsRefusesWithServerFull) {
  net::FrontEndOptions options;
  options.max_conns = 2;
  FrontEndFixture fx{options};

  const int fd1 = ConnectLoopback(fx.fe->port());
  const int fd2 = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd1, 5000);
  SetRecvTimeout(fd2, 5000);
  ASSERT_TRUE(SendAll(fd1, "a\n"));
  ASSERT_TRUE(SendAll(fd2, "b\n"));
  EXPECT_EQ(ReadReplyLine(fd1), "echo:a");
  EXPECT_EQ(ReadReplyLine(fd2), "echo:b");

  const int fd3 = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd3, 5000);
  const std::string refusal = ReadReplyLine(fd3);
  EXPECT_NE(refusal.find("server_full"), std::string::npos) << refusal;
  EXPECT_TRUE(ReadUntilEof(fd3));
  ::close(fd3);
  EXPECT_EQ(fx.fe->stats().rejected_connections, 1);

  // Closing one admitted connection frees a slot.
  ::close(fd1);
  std::this_thread::sleep_for(50ms);
  const int fd4 = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd4, 5000);
  ASSERT_TRUE(SendAll(fd4, "c\n"));
  EXPECT_EQ(ReadReplyLine(fd4), "echo:c");
  ::close(fd4);
  ::close(fd2);
}

// --- Idle reaper and reply coalescing ----------------------------------------

TEST(NetFrontEndTest, IdleConnectionsAreReapedActiveOnesSurvive) {
  net::FrontEndOptions options;
  // Generous timeout relative to the 30ms heartbeat below: the busy
  // connection must never look idle even when a sanitized build on a loaded
  // host stalls the pinging thread for a few hundred milliseconds.
  options.idle_timeout_ms = 400;
  FrontEndFixture fx{options};

  const int idle_fd = ConnectLoopback(fx.fe->port());
  const int busy_fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(idle_fd, 5000);
  SetRecvTimeout(busy_fd, 5000);

  // The busy connection keeps talking well past the timeout; every request
  // refreshes its activity clock, so only the silent one gets reaped.
  const auto deadline = std::chrono::steady_clock::now() + 1200ms;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(SendAll(busy_fd, "ping\n"));
    ASSERT_EQ(ReadReplyLine(busy_fd), "echo:ping");
    std::this_thread::sleep_for(30ms);
  }
  EXPECT_TRUE(ReadUntilEof(idle_fd));  // reaper closed it
  EXPECT_EQ(fx.fe->stats().idle_disconnects, 1);

  // The survivor still works.
  ASSERT_TRUE(SendAll(busy_fd, "still\n"));
  EXPECT_EQ(ReadReplyLine(busy_fd), "echo:still");
  ::close(busy_fd);
  ::close(idle_fd);
}

TEST(NetFrontEndTest, RequestWithSlowHandlerIsNotReaped) {
  net::FrontEndOptions options;
  options.idle_timeout_ms = 100;
  FrontEndFixture fx{options};
  fx.handler.hold.store(true);

  // The connection goes quiet for several timeout periods, but its request
  // is still in flight — reaping it would drop a reply the client is owed.
  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);
  ASSERT_TRUE(SendAll(fd, "slow\n"));
  fx.handler.WaitForHeld(1);
  std::this_thread::sleep_for(400ms);
  EXPECT_EQ(fx.fe->stats().idle_disconnects, 0);
  fx.handler.ReleaseHeld(/*reverse=*/false);
  EXPECT_EQ(ReadReplyLine(fd), "echo:slow");
  ::close(fd);
}

TEST(NetFrontEndTest, CoalescedLargeRepliesSurvivePartialWrites) {
  // Replies far larger than a socket buffer force the coalesced writev to
  // stop mid-stream repeatedly; the unsent tail must land in the write
  // buffer byte-exactly, in request order.
  net::FrontEndOptions options;
  options.write_buf_bytes = 64 << 20;
  FrontEndFixture fx{options};
  fx.handler.hold.store(true);

  constexpr int kReplies = 6;
  constexpr size_t kPayload = 196 * 1024;
  const int fd = ConnectLoopback(fx.fe->port());
  SetRecvTimeout(fd, 5000);
  std::string burst;
  for (int i = 0; i < kReplies; ++i) burst += "q" + std::to_string(i) + "\n";
  ASSERT_TRUE(SendAll(fd, burst));
  fx.handler.WaitForHeld(kReplies);

  // Complete all held requests with distinct large payloads; they become
  // ready in the same event-loop pass and flush through one coalesced path.
  {
    std::vector<std::pair<std::string, net::LineHandler::Done>> batch;
    {
      std::lock_guard<std::mutex> lock(fx.handler.mu);
      batch.swap(fx.handler.held);
    }
    for (auto& [line, done] : batch) {
      done(line + ":" + std::string(kPayload, 'a' + (line.back() - '0')));
    }
  }
  for (int i = 0; i < kReplies; ++i) {
    const std::string reply = ReadReplyLine(fd);
    ASSERT_EQ(reply.size(), 3 + kPayload) << "reply " << i;
    EXPECT_EQ(reply.substr(0, 3), "q" + std::to_string(i) + ":");
    EXPECT_EQ(reply.back(), static_cast<char>('a' + i));
  }
  ::close(fd);
}

// --- Serving layer: deadlines and admission control --------------------------

/// A batch function whose first call blocks until released; everything the
/// worker cannot reach in the meantime piles up in the batcher queue.
struct GatedBatch {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  serve::MicroBatcher::BatchFn Fn() {
    return [this](const std::vector<serve::BatchItem>& items, int) {
      {
        std::unique_lock<std::mutex> lock(mu);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
      }
      return std::vector<serve::SentenceResult>(items.size());
    };
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, 5s, [this] { return entered; });
    ASSERT_TRUE(entered);
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

std::string CodeOf(const std::string& reply) {
  util::StatusOr<serve::Json> parsed = serve::Json::Parse(reply);
  if (!parsed.ok() || !parsed.value().is_object()) return "unparseable";
  const serve::Json* ok = parsed.value().Find("ok");
  if (ok != nullptr && ok->bool_value()) return "ok";
  return parsed.value().GetString("code", "missing");
}

TEST(ServerDeadlineTest, QueuedRequestsPastDeadlineAreShed) {
  serve::BatcherOptions options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.max_queue = 64;
  GatedBatch gate;
  serve::ServerCounters counters;
  serve::MicroBatcher batcher(options, gate.Fn(), nullptr, &counters);
  serve::Server server(nullptr, &batcher, &counters, nullptr);

  std::mutex mu;
  std::vector<std::string> replies;
  auto collect = [&](std::string reply) {
    std::lock_guard<std::mutex> lock(mu);
    replies.push_back(std::move(reply));
  };

  // Occupy the only worker, then queue requests with a 30ms budget.
  server.HandleLineAsync(R"({"op":"disambiguate","text":"warm"})", collect);
  gate.WaitEntered();
  for (int i = 0; i < 4; ++i) {
    server.HandleLineAsync(
        R"({"op":"disambiguate","text":"hurry","deadline_ms":30})", collect);
  }
  // Let every queued budget expire, then release the worker.
  std::this_thread::sleep_for(100ms);
  gate.Release();
  batcher.Shutdown();  // drains: every callback has fired after this

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(replies.size(), 5u);
  int ok = 0, shed = 0;
  for (const std::string& r : replies) {
    if (CodeOf(r) == "ok") ++ok;
    if (CodeOf(r) == "deadline_exceeded") ++shed;
  }
  EXPECT_EQ(ok, 1);    // the warm request had no deadline
  EXPECT_EQ(shed, 4);  // every budgeted request expired in the queue
  EXPECT_EQ(counters.shed.load(), 4);
}

TEST(ServerDeadlineTest, InvalidDeadlineIsBadRequest) {
  serve::BatcherOptions options;
  serve::ServerCounters counters;
  serve::MicroBatcher batcher(
      options,
      [](const std::vector<serve::BatchItem>& items, int) {
        return std::vector<serve::SentenceResult>(items.size());
      },
      nullptr, &counters);
  serve::Server server(nullptr, &batcher, &counters, nullptr);
  const std::string reply = server.HandleLine(
      R"({"op":"disambiguate","text":"x","deadline_ms":-5})");
  EXPECT_EQ(CodeOf(reply), "bad_request");
  batcher.Shutdown();
}

TEST(ServerAdmissionTest, WatermarkRejectsWithOverloaded) {
  serve::BatcherOptions options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.max_queue = 64;
  GatedBatch gate;
  serve::ServerCounters counters;
  serve::MicroBatcher batcher(options, gate.Fn(), nullptr, &counters);
  serve::ServerOptions sopts;
  sopts.admission_watermark = 2;
  serve::Server server(nullptr, &batcher, &counters, nullptr, sopts);

  std::mutex mu;
  std::vector<std::string> replies;
  auto collect = [&](std::string reply) {
    std::lock_guard<std::mutex> lock(mu);
    replies.push_back(std::move(reply));
  };

  server.HandleLineAsync(R"({"op":"disambiguate","text":"w"})", collect);
  gate.WaitEntered();  // worker busy; the queue is now under our control
  server.HandleLineAsync(R"({"op":"disambiguate","text":"q1"})", collect);
  server.HandleLineAsync(R"({"op":"disambiguate","text":"q2"})", collect);
  // Queue depth is at the watermark: admission control turns these away
  // synchronously with a structured reply.
  int overloaded_now = 0;
  for (int i = 0; i < 3; ++i) {
    std::string reply;
    server.HandleLineAsync(R"({"op":"disambiguate","text":"late"})",
                           [&](std::string r) { reply = std::move(r); });
    if (CodeOf(reply) == "overloaded") ++overloaded_now;
  }
  EXPECT_EQ(overloaded_now, 3);
  EXPECT_EQ(counters.overloaded.load(), 3);

  gate.Release();
  batcher.Shutdown();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(replies.size(), 3u);  // w, q1, q2 all served
  for (const std::string& r : replies) EXPECT_EQ(CodeOf(r), "ok");
}

TEST(ServerNetTest, TcpStatsExposeNetAndSheddingFields) {
  serve::BatcherOptions options;
  serve::ServerCounters counters;
  serve::MicroBatcher batcher(
      options,
      [](const std::vector<serve::BatchItem>& items, int) {
        return std::vector<serve::SentenceResult>(items.size());
      },
      nullptr, &counters);
  serve::ServerOptions sopts;
  sopts.io_threads = 2;
  serve::Server server(nullptr, &batcher, &counters, nullptr, sopts);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const int fd = ConnectLoopback(server.port());
  SetRecvTimeout(fd, 5000);
  ASSERT_TRUE(SendAll(fd, R"({"op":"disambiguate","text":"hi"})" "\n"));
  EXPECT_EQ(CodeOf(ReadReplyLine(fd)), "ok");

  ASSERT_TRUE(SendAll(fd, R"({"op":"stats"})" "\n"));
  util::StatusOr<serve::Json> stats = serve::Json::Parse(ReadReplyLine(fd));
  ASSERT_TRUE(stats.ok());
  const serve::Json& s = stats.value();
  EXPECT_EQ(s.GetNumber("requests"), 1.0);
  EXPECT_EQ(s.GetNumber("shed"), 0.0);
  EXPECT_EQ(s.GetNumber("overloaded"), 0.0);
  const serve::Json* jnet = s.Find("net");
  ASSERT_NE(jnet, nullptr);
  EXPECT_GE(jnet->GetNumber("connections"), 1.0);
  EXPECT_GE(jnet->GetNumber("accepted"), 1.0);
  EXPECT_EQ(jnet->GetNumber("accept_errors"), 0.0);
  EXPECT_EQ(jnet->GetNumber("slow_client_disconnects"), 0.0);
  EXPECT_EQ(jnet->GetNumber("idle_disconnects"), 0.0);
  ::close(fd);

  server.Stop();
  batcher.Shutdown();
}

TEST(ServerNetTest, ManyConnectionsAcrossLoopsAllServed) {
  serve::BatcherOptions options;
  options.max_batch = 16;
  options.max_queue = 512;
  serve::ServerCounters counters;
  serve::MicroBatcher batcher(
      options,
      [](const std::vector<serve::BatchItem>& items, int) {
        return std::vector<serve::SentenceResult>(items.size());
      },
      nullptr, &counters);
  serve::ServerOptions sopts;
  sopts.io_threads = 2;
  serve::Server server(nullptr, &batcher, &counters, nullptr, sopts);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kConns = 64;
  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    const int fd = ConnectLoopback(server.port());
    SetRecvTimeout(fd, 10000);
    fds.push_back(fd);
    ASSERT_TRUE(SendAll(fd, R"({"op":"disambiguate","text":"hi"})" "\n"));
  }
  for (const int fd : fds) {
    EXPECT_EQ(CodeOf(ReadReplyLine(fd)), "ok");
    ::close(fd);
  }
  server.Stop();
  batcher.Shutdown();
}

}  // namespace
}  // namespace bootleg

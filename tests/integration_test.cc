// End-to-end integration tests: environment construction, the harness cache,
// and a miniature run of the paper's central comparison (Bootleg vs the
// alias-prior floor on unseen entities).
#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "baseline/prior_model.h"
#include "harness/experiment.h"

namespace bootleg::harness {
namespace {

data::SynthConfig TinyConfig() {
  data::SynthConfig c = data::SynthConfig::MicroScale();
  c.num_entities = 400;
  c.num_pages = 200;
  return c;
}

TEST(EnvironmentTest, BuildPopulatesEverything) {
  Environment env = BuildEnvironment(TinyConfig());
  EXPECT_GT(env.corpus.train.size(), 0u);
  EXPECT_GT(env.train_examples.size(), 0u);
  EXPECT_EQ(env.train_examples.size(), env.corpus.train.size());
  EXPECT_GT(env.wl_stats.Multiplier(), 1.0);
  EXPECT_GT(env.cooc.num_pairs(), 0);
  EXPECT_EQ(env.TitleTokenIds().size(),
            static_cast<size_t>(env.world.kb.num_entities()));
}

TEST(EnvironmentTest, NoWeakLabelsVariant) {
  Environment env = BuildEnvironment(TinyConfig(), /*apply_weak_labels=*/false);
  EXPECT_EQ(env.wl_stats.total_labels_after, 0);
  for (const data::Sentence& s : env.corpus.train) {
    for (const data::Mention& m : s.mentions) {
      EXPECT_FALSE(m.weak_labeled);
    }
  }
}

TEST(EnvironmentTest, DeterministicAcrossBuilds) {
  Environment a = BuildEnvironment(TinyConfig());
  Environment b = BuildEnvironment(TinyConfig());
  EXPECT_EQ(a.corpus.train.size(), b.corpus.train.size());
  EXPECT_EQ(a.wl_stats.total_labels_after, b.wl_stats.total_labels_after);
  EXPECT_EQ(a.corpus.dev.front().tokens, b.corpus.dev.front().tokens);
}

TEST(CacheTest, SecondTrainLoadsFromCache) {
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "bootleg_cache_test").string();
  std::filesystem::remove_all(cache_dir);
  ASSERT_EQ(setenv("BOOTLEG_CACHE_DIR", cache_dir.c_str(), 1), 0);

  Environment env = BuildEnvironment(TinyConfig());
  BootlegSpec spec;
  spec.name = "cache_test_model";
  spec.config = DefaultBootlegConfig();
  spec.config.hidden = 32;
  spec.config.entity_dim = 32;
  spec.config.type_dim = 16;
  spec.config.coarse_dim = 8;
  spec.config.rel_dim = 16;
  spec.config.ff_inner = 64;
  spec.config.encoder.hidden = 32;
  spec.config.encoder.ff_inner = 64;
  spec.train.epochs = 1;

  auto first = TrainBootleg(&env, spec);
  auto second = TrainBootleg(&env, spec);  // must load, not retrain
  data::ExampleOptions options;
  const data::SentenceExample ex =
      env.builder->Build(env.corpus.dev.front(), options);
  EXPECT_EQ(first->Predict(ex), second->Predict(ex));

  unsetenv("BOOTLEG_CACHE_DIR");
  std::filesystem::remove_all(cache_dir);
}

TEST(CacheTest, DisabledViaEnv) {
  ASSERT_EQ(setenv("BOOTLEG_CACHE", "0", 1), 0);
  EXPECT_EQ(CacheDir(), "");
  unsetenv("BOOTLEG_CACHE");
  EXPECT_FALSE(CacheDir().empty());
}

TEST(IntegrationTest, BootlegBeatsPriorFloorOnUnseen) {
  ASSERT_EQ(setenv("BOOTLEG_CACHE", "0", 1), 0);
  // The full micro scale: tiny worlds are too degenerate for stable margins.
  Environment env = BuildEnvironment(data::SynthConfig::MicroScale());

  baseline::PriorModel prior;
  BucketResult prior_result = EvaluateBuckets(&prior, env, env.corpus.dev);

  BootlegSpec spec;
  spec.name = "integration_bootleg";
  spec.config = DefaultBootlegConfig();
  spec.train.epochs = 6;
  auto bootleg = TrainBootleg(&env, spec);
  BucketResult bootleg_result =
      EvaluateBuckets(bootleg.get(), env, env.corpus.dev);

  // The trained model beats the static alias-prior floor overall and
  // markedly on the tail (the paper's central claim in miniature).
  EXPECT_GT(bootleg_result.all.f1(), prior_result.all.f1() + 3.0);
  EXPECT_GT(bootleg_result.tail.f1(), prior_result.tail.f1() + 5.0);

  // On the KORE-like hard suite the primary gold is a *non-top-prior*
  // candidate by construction, so trained reasoning must out-score the
  // prior.
  data::CorpusGenerator generator(&env.world);
  const std::vector<data::Sentence> hard = generator.GenerateKoreLike(80);
  BucketResult prior_hard = EvaluateBuckets(&prior, env, hard);
  BucketResult bootleg_hard = EvaluateBuckets(bootleg.get(), env, hard);
  EXPECT_GT(bootleg_hard.all.f1(), prior_hard.all.f1());
  unsetenv("BOOTLEG_CACHE");
}

TEST(EvaluateBucketsTest, TotalsArePartition) {
  Environment env = BuildEnvironment(TinyConfig());
  baseline::PriorModel prior;
  BucketResult r = EvaluateBuckets(&prior, env, env.corpus.dev);
  const eval::Prf head = r.results.ByBucket(data::PopularityBucket::kHead);
  EXPECT_EQ(r.all.total,
            head.total + r.torso.total + r.tail.total + r.unseen.total);
}

}  // namespace
}  // namespace bootleg::harness

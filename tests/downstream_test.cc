#include "downstream/relation_extraction.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "downstream/overton.h"
#include "harness/experiment.h"

namespace bootleg::downstream {
namespace {

data::SynthConfig TinyConfig() {
  data::SynthConfig c = data::SynthConfig::MicroScale();
  c.num_entities = 300;
  c.num_pages = 80;
  return c;
}

class ReDatasetTest : public ::testing::Test {
 protected:
  ReDatasetTest() : world_(data::BuildWorld(TinyConfig())) {
    ds_ = GenerateReDataset(world_, 80, 40, /*seed=*/4);
  }
  data::SynthWorld world_;
  ReDataset ds_;
};

TEST_F(ReDatasetTest, SplitSizesAndLabels) {
  EXPECT_EQ(ds_.train.size(), 80u);
  EXPECT_EQ(ds_.test.size(), 40u);
  EXPECT_EQ(ds_.num_labels, world_.kb.num_relations() + 1);
  for (const ReExample& ex : ds_.train) {
    EXPECT_GE(ex.label, 0);
    EXPECT_LT(ex.label, ds_.num_labels);
  }
}

TEST_F(ReDatasetTest, PositivesHaveKgEdgeNegativesDont) {
  const int64_t no_rel = ds_.num_labels - 1;
  for (const ReExample& ex : ds_.train) {
    ASSERT_EQ(ex.ned.mentions.size(), 2u);
    const kb::EntityId s = ex.ned.mentions[0].gold;
    const kb::EntityId o = ex.ned.mentions[1].gold;
    if (ex.label == no_rel) {
      EXPECT_FALSE(world_.kb.Connected(s, o));
    } else {
      auto rel = world_.kb.RelationBetween(s, o);
      ASSERT_TRUE(rel.has_value());
      EXPECT_EQ(*rel, ex.label);
    }
  }
}

TEST_F(ReDatasetTest, SpansPointAtMentions) {
  for (const ReExample& ex : ds_.test) {
    EXPECT_EQ(ex.subj_start, ex.ned.mentions[0].span_start);
    EXPECT_EQ(ex.obj_start, ex.ned.mentions[1].span_start);
    EXPECT_LT(ex.obj_start, static_cast<int64_t>(ex.token_ids.size()));
  }
}

TEST_F(ReDatasetTest, BothClassesPresent) {
  const int64_t no_rel = ds_.num_labels - 1;
  int64_t pos = 0, neg = 0;
  for (const ReExample& ex : ds_.train) {
    (ex.label == no_rel ? neg : pos) += 1;
  }
  EXPECT_GT(pos, 10);
  EXPECT_GT(neg, 10);
}

TEST_F(ReDatasetTest, KeywordProbabilityZeroMeansNoKeywords) {
  ReDataset hard = GenerateReDataset(world_, 40, 10, 5, /*keyword_prob=*/0.0);
  for (const ReExample& ex : hard.train) {
    EXPECT_FALSE(ex.has_relation_keyword);
  }
}

TEST_F(ReDatasetTest, StaticFeaturesComeFromTopPriorCandidate) {
  util::Rng rng(7);
  tensor::Tensor table = tensor::Tensor::Randn(
      {world_.kb.num_entities(), 8}, &rng);
  PrepareStaticFeatures(table, &ds_.test);
  for (const ReExample& ex : ds_.test) {
    ASSERT_EQ(ex.subj_static.size(), 8u);
    const data::MentionExample& m = ex.ned.mentions[0];
    if (m.candidates.empty()) continue;
    size_t best = 0;
    for (size_t k = 1; k < m.priors.size(); ++k) {
      if (m.priors[k] > m.priors[best]) best = k;
    }
    EXPECT_EQ(ex.subj_static[0], table.at(m.candidates[best], 0));
  }
}

TEST(ReMetricsTest, TacredMicroF1ExcludesNoRelation) {
  ReMetrics m;
  m.correct_positive = 3;
  m.predicted_positive = 4;
  m.gold_positive = 6;
  EXPECT_NEAR(m.precision(), 75.0, 1e-9);
  EXPECT_NEAR(m.recall(), 50.0, 1e-9);
  EXPECT_NEAR(m.f1(), 60.0, 1e-9);
}

TEST_F(ReDatasetTest, TextModelLearnsKeywordedRelations) {
  // With relation keywords always present, the text-only model must beat a
  // majority-class guesser.
  ReDataset easy = GenerateReDataset(world_, 800, 150, 6, /*keyword_prob=*/1.0);
  ReModel model(world_.vocab.size(), easy.num_labels, ReMode::kText, 0, 9);
  ReTrainOptions options;
  options.epochs = 10;
  TrainRe(&model, easy.train, options);
  const ReMetrics metrics = EvaluateRe(&model, easy.test, easy.num_labels - 1);
  // Majority-class (all no_relation) scores 0 by the TACRED metric; any
  // keyword learning clears this bar decisively.
  EXPECT_GT(metrics.f1(), 20.0);
}

TEST_F(ReDatasetTest, ModeNames) {
  EXPECT_STREQ(ReModeName(ReMode::kText), "SpanBERT-sim (text only)");
  EXPECT_STREQ(ReModeName(ReMode::kBootleg), "Bootleg (contextual entity)");
}

class OvertonTest : public ::testing::Test {
 protected:
  OvertonTest() : env_(harness::BuildEnvironment(TinyConfig())) {}
  harness::Environment env_;
};

TEST_F(OvertonTest, BaselinePredictShapes) {
  OvertonModel model(env_.world.kb.num_entities(), env_.world.vocab.size(),
                     nullptr, 3);
  for (size_t i = 0; i < 10 && i < env_.train_examples.size(); ++i) {
    const auto preds = model.Predict(env_.train_examples[i]);
    EXPECT_EQ(preds.size(), env_.train_examples[i].mentions.size());
  }
}

TEST_F(OvertonTest, WithBootlegFeaturesRunsAndTrains) {
  core::BootlegConfig config;
  config.hidden = 32;
  config.entity_dim = 32;
  config.type_dim = 16;
  config.coarse_dim = 8;
  config.rel_dim = 16;
  config.ff_inner = 64;
  config.encoder.hidden = 32;
  config.encoder.ff_inner = 64;
  config.encoder.max_len = 24;
  core::BootlegModel bootleg(&env_.world.kb, env_.world.vocab.size(), config, 1);
  bootleg.SetEntityCounts(&env_.counts);

  OvertonModel model(env_.world.kb.num_entities(), env_.world.vocab.size(),
                     &bootleg, 3);
  std::vector<data::SentenceExample> subset(
      env_.train_examples.begin(),
      env_.train_examples.begin() +
          std::min<size_t>(30, env_.train_examples.size()));
  core::Trainable<OvertonModel> trainable(&model);
  core::TrainOptions options;
  options.epochs = 1;
  const core::TrainStats stats = core::Train(&trainable, subset, options);
  EXPECT_GT(stats.steps, 0);
  const auto preds = model.Predict(subset.front());
  EXPECT_EQ(preds.size(), subset.front().mentions.size());
}

}  // namespace
}  // namespace bootleg::downstream

// Serving subsystem: batched engine inference must match the serial
// evaluator path bit-for-bit at any batch size and thread count, the
// micro-batcher must coalesce / flush / backpressure / drain exactly as
// specified, the LRU candidate cache must evict and count correctly,
// malformed client bytes must never crash the server, and hot reload must
// pick the newest checkpoint while skipping corrupt ones.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/model.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/mention_extractor.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "kb/candidate_map.h"
#include "nn/optimizer.h"
#include "serve/batcher.h"
#include "serve/candidate_cache.h"
#include "serve/inference_engine.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "text/vocabulary.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bootleg_serve_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The config every serving deployment uses (bootleg_cli's training default).
core::BootlegConfig ServingConfig() {
  core::BootlegConfig config;
  config.encoder.max_len = 32;
  return config;
}

/// One tiny world + saved dataset + saved model snapshot, built once and
/// shared by every test (the expensive part is BuildWorld + corpus).
struct ServeWorld {
  std::string data_dir;
  std::string model_path;
  data::SynthWorld world;
  data::Corpus corpus;
};

const ServeWorld& GetServeWorld() {
  static const ServeWorld* shared = [] {
    auto* sw = new ServeWorld();
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_pages = 40;
    sw->world = data::BuildWorld(config);
    data::CorpusGenerator generator(&sw->world);
    sw->corpus = generator.Generate();
    sw->data_dir = TestDir("world");
    BOOTLEG_CHECK(sw->world.kb.Save(sw->data_dir + "/kb.bin").ok());
    BOOTLEG_CHECK(
        sw->world.candidates.Save(sw->data_dir + "/candidates.bin").ok());
    BOOTLEG_CHECK(sw->world.vocab.Save(sw->data_dir + "/vocab.bin").ok());
    core::BootlegModel model(&sw->world.kb, sw->world.vocab.size(),
                             ServingConfig(), /*seed=*/123);
    sw->model_path = sw->data_dir + "/model.bin";
    BOOTLEG_CHECK(model.store().Save(sw->model_path).ok());
    return sw;
  }();
  return *shared;
}

std::unique_ptr<serve::InferenceEngine> MakeSnapshotEngine() {
  const ServeWorld& sw = GetServeWorld();
  serve::EngineOptions options;
  options.data_dir = sw.data_dir;
  options.model_path = sw.model_path;
  auto engine = serve::InferenceEngine::Create(options);
  BOOTLEG_CHECK_MSG(engine.ok(), engine.status().ToString());
  return std::move(engine.value());
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

/// A dev-split sentence that actually carries mentions, as raw text.
std::string SampleServableText() {
  for (const data::Sentence& s : GetServeWorld().corpus.dev) {
    if (!s.mentions.empty()) return JoinTokens(s.tokens);
  }
  BOOTLEG_CHECK_MSG(false, "no dev sentence with mentions");
  return "";
}

// --- Batched inference vs the serial evaluator path --------------------------

TEST(ServeEquivalenceTest, PredictBatchMatchesSerialPredictAtAnyBatchSize) {
  const ServeWorld& sw = GetServeWorld();
  data::ExampleBuilder builder(&sw.world.candidates, &sw.world.vocab);
  data::ExampleOptions options;
  options.include_weak_labels = false;  // evaluation is over true anchors
  const std::vector<data::SentenceExample> examples =
      builder.BuildAll(sw.corpus.dev, options);
  ASSERT_GT(examples.size(), 8u);

  // Serial reference: the exact per-sentence path eval::Evaluator drives.
  core::BootlegModel ref(&sw.world.kb, sw.world.vocab.size(), ServingConfig(),
                         /*seed=*/123);
  ASSERT_TRUE(ref.store().Load(sw.model_path).ok());
  util::ThreadPool::ResetGlobal(1);
  std::vector<std::vector<int64_t>> serial;
  serial.reserve(examples.size());
  for (const data::SentenceExample& ex : examples) serial.push_back(ref.Predict(ex));

  auto engine = MakeSnapshotEngine();
  core::BootlegModel::InferenceScratch scratch;
  for (const int threads : {1, 4}) {
    util::ThreadPool::ResetGlobal(threads);
    for (const size_t batch_size :
         {size_t{1}, size_t{3}, size_t{8}, examples.size()}) {
      for (size_t begin = 0; begin < examples.size(); begin += batch_size) {
        const size_t end = std::min(examples.size(), begin + batch_size);
        std::vector<const data::SentenceExample*> batch;
        batch.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) batch.push_back(&examples[i]);
        const std::vector<std::vector<int64_t>> preds =
            engine->PredictExamples(batch, &scratch);
        ASSERT_EQ(preds.size(), batch.size());
        for (size_t i = begin; i < end; ++i) {
          EXPECT_EQ(preds[i - begin], serial[i])
              << "batch_size=" << batch_size << " threads=" << threads
              << " example=" << i;
        }
      }
    }
  }
  util::ThreadPool::ResetGlobal(1);
}

/// Adapter running the engine one sentence at a time under the evaluator
/// harness, so the two paths can be compared record by record.
class EngineScorer : public eval::NedScorer {
 public:
  explicit EngineScorer(serve::InferenceEngine* engine) : engine_(engine) {}
  std::vector<int64_t> Predict(const data::SentenceExample& example) override {
    thread_local core::BootlegModel::InferenceScratch scratch;
    return engine_->PredictExamples({&example}, &scratch)[0];
  }

 private:
  serve::InferenceEngine* engine_;
};

TEST(ServeEquivalenceTest, EvaluatorResultsIdenticalThroughEngine) {
  const ServeWorld& sw = GetServeWorld();
  core::BootlegModel ref(&sw.world.kb, sw.world.vocab.size(), ServingConfig(),
                         /*seed=*/123);
  ASSERT_TRUE(ref.store().Load(sw.model_path).ok());
  auto engine = MakeSnapshotEngine();
  EngineScorer scorer(engine.get());

  data::ExampleBuilder builder(&sw.world.candidates, &sw.world.vocab);
  data::ExampleOptions options;
  options.include_weak_labels = false;
  const data::EntityCounts counts =
      data::EntityCounts::FromTraining(sw.corpus.train);

  for (const int threads : {1, 4}) {
    util::ThreadPool::ResetGlobal(1);
    const eval::ResultSet want = eval::RunEvaluation(
        &ref, sw.corpus.dev, builder, options, counts, /*num_threads=*/1);
    util::ThreadPool::ResetGlobal(threads);
    const eval::ResultSet got = eval::RunEvaluation(
        &scorer, sw.corpus.dev, builder, options, counts, threads);
    ASSERT_EQ(got.records().size(), want.records().size());
    for (size_t i = 0; i < want.records().size(); ++i) {
      EXPECT_EQ(got.records()[i].predicted, want.records()[i].predicted)
          << "threads=" << threads << " record=" << i;
      EXPECT_EQ(got.records()[i].gold, want.records()[i].gold);
    }
  }
  util::ThreadPool::ResetGlobal(1);
}

TEST(ServeEquivalenceTest, DisambiguateMatchesMentionExtractorPath) {
  const ServeWorld& sw = GetServeWorld();
  auto engine = MakeSnapshotEngine();
  core::BootlegModel ref(&sw.world.kb, sw.world.vocab.size(), ServingConfig(),
                         /*seed=*/123);
  ASSERT_TRUE(ref.store().Load(sw.model_path).ok());
  data::MentionExtractor extractor(&sw.world.candidates);

  std::vector<std::string> texts;
  for (const data::Sentence& s : sw.corpus.dev) {
    texts.push_back(JoinTokens(s.tokens));
    if (texts.size() == 16) break;
  }
  core::BootlegModel::InferenceScratch scratch;
  const std::vector<serve::SentenceResult> results =
      engine->Disambiguate(texts, &scratch);
  ASSERT_EQ(results.size(), texts.size());

  for (size_t i = 0; i < texts.size(); ++i) {
    const data::SentenceExample ex =
        extractor.BuildExample(sw.world.vocab, texts[i]);
    const std::vector<int64_t> preds = ref.Predict(ex);
    ASSERT_EQ(results[i].mentions.size(), ex.mentions.size()) << "text=" << i;
    for (size_t m = 0; m < ex.mentions.size(); ++m) {
      const serve::ServedMention& served = results[i].mentions[m];
      EXPECT_EQ(served.span_start, ex.mentions[m].span_start);
      const int64_t k = preds[m];
      const kb::EntityId want =
          k < 0 ? kb::kInvalidId : ex.mentions[m].candidates[static_cast<size_t>(k)];
      EXPECT_EQ(served.entity, want) << "text=" << i << " mention=" << m;
    }
  }
}

// A raw-text item carrying a single sentence must be indistinguishable from
// the pre-segmented path: same mentions, same spans, same predictions. This is
// the serving contract that lets clients move to `disambiguate_text` without
// re-validating outputs.
TEST(ServeEquivalenceTest, RawTextSingleSentenceMatchesPreSegmented) {
  auto engine = MakeSnapshotEngine();
  core::BootlegModel::InferenceScratch scratch;
  std::vector<std::string> texts;
  for (const data::Sentence& s : GetServeWorld().corpus.dev) {
    if (!s.mentions.empty()) texts.push_back(JoinTokens(s.tokens));
    if (texts.size() == 8) break;
  }
  ASSERT_FALSE(texts.empty());

  std::vector<serve::BatchItem> pre(texts.size());
  std::vector<serve::BatchItem> raw(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    pre[i].text = texts[i];
    raw[i].text = texts[i];
    raw[i].raw_text = true;
  }
  const std::vector<serve::SentenceResult> want =
      engine->DisambiguateBatch(pre, &scratch);
  const std::vector<serve::SentenceResult> got =
      engine->DisambiguateBatch(raw, &scratch);
  ASSERT_EQ(got.size(), want.size());
  size_t total_mentions = 0;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].mentions.size(), want[i].mentions.size()) << "text=" << i;
    for (size_t m = 0; m < want[i].mentions.size(); ++m) {
      const serve::ServedMention& w = want[i].mentions[m];
      const serve::ServedMention& g = got[i].mentions[m];
      EXPECT_EQ(g.alias, w.alias);
      EXPECT_EQ(g.span_start, w.span_start);
      EXPECT_EQ(g.span_end, w.span_end);
      EXPECT_EQ(g.entity, w.entity);
      EXPECT_EQ(g.title, w.title);
      EXPECT_DOUBLE_EQ(g.prior, w.prior);
      EXPECT_EQ(g.num_candidates, w.num_candidates);
      EXPECT_EQ(g.sentence_index, 0);
      ++total_mentions;
    }
  }
  EXPECT_GT(total_mentions, 0u);
}

// A raw document splits after terminal punctuation; mentions in later
// sentences carry document-level spans (offset by the range start) and their
// sentence index. Predictions match the same sentences sent pre-segmented.
TEST(ServeEquivalenceTest, RawDocumentSplitsSentencesAndOffsetsSpans) {
  auto engine = MakeSnapshotEngine();
  core::BootlegModel::InferenceScratch scratch;
  std::vector<std::string> sents;
  for (const data::Sentence& s : GetServeWorld().corpus.dev) {
    if (!s.mentions.empty()) sents.push_back(JoinTokens(s.tokens));
    if (sents.size() == 2) break;
  }
  ASSERT_EQ(sents.size(), 2u);

  // Generated sentences carry their own terminal "." token, so joining with a
  // space forms a two-sentence document.
  serve::BatchItem doc;
  doc.text = sents[0] + " " + sents[1];
  doc.raw_text = true;
  const std::vector<serve::SentenceResult> got =
      engine->DisambiguateBatch({doc}, &scratch);
  ASSERT_EQ(got.size(), 1u);

  // Reference: the same split sent pre-segmented. The raw splitter keeps the
  // terminal "." inside each range, matching the sentences as generated.
  std::vector<serve::BatchItem> pre(2);
  pre[0].text = sents[0];
  pre[1].text = sents[1];
  const std::vector<serve::SentenceResult> want =
      engine->DisambiguateBatch(pre, &scratch);
  const int64_t offset =
      static_cast<int64_t>(text::Tokenize(pre[0].text).size());

  size_t cursor = 0;
  for (int64_t si = 0; si < 2; ++si) {
    for (const serve::ServedMention& w : want[static_cast<size_t>(si)].mentions) {
      ASSERT_LT(cursor, got[0].mentions.size());
      const serve::ServedMention& g = got[0].mentions[cursor++];
      EXPECT_EQ(g.alias, w.alias);
      EXPECT_EQ(g.entity, w.entity);
      EXPECT_EQ(g.sentence_index, si);
      EXPECT_EQ(g.span_start, w.span_start + (si == 1 ? offset : 0));
      EXPECT_EQ(g.span_end, w.span_end + (si == 1 ? offset : 0));
    }
  }
  EXPECT_EQ(cursor, got[0].mentions.size());
  EXPECT_GT(cursor, 0u);
}

// --- Micro-batcher -----------------------------------------------------------

// Built additively (not operator+) to sidestep a GCC 12 -Wrestrict false
// positive on temporary string concatenation.
std::string RequestName(int i) {
  std::string name = "r";
  name += std::to_string(i);
  return name;
}

serve::SentenceResult EchoResult(const std::string& text) {
  serve::SentenceResult r;
  serve::ServedMention m;
  m.alias = text;
  r.mentions.push_back(std::move(m));
  return r;
}

std::vector<serve::SentenceResult> EchoBatch(
    const std::vector<serve::BatchItem>& items) {
  std::vector<serve::SentenceResult> out;
  out.reserve(items.size());
  for (const serve::BatchItem& item : items) out.push_back(EchoResult(item.text));
  return out;
}

/// Batch backend whose first "plug" batch blocks until released, letting a
/// test deterministically pile requests into the queue behind it.
struct PluggableBackend {
  std::mutex mu;
  std::condition_variable cv;
  bool plug_seen = false;
  bool released = false;
  std::vector<size_t> batch_sizes;

  serve::MicroBatcher::BatchFn Fn() {
    return [this](const std::vector<serve::BatchItem>& items, int) {
      {
        std::unique_lock<std::mutex> lock(mu);
        batch_sizes.push_back(items.size());
        if (items.size() == 1 && items[0].text == "plug") {
          plug_seen = true;
          cv.notify_all();
          cv.wait(lock, [this] { return released; });
        }
      }
      return EchoBatch(items);
    };
  }
  void AwaitPlugTaken() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return plug_seen; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

TEST(MicroBatcherTest, CoalescesQueuedRequestsIntoOneBatch) {
  serve::ServerCounters counters;
  PluggableBackend backend;
  serve::BatcherOptions options;
  options.max_batch = 4;
  options.max_wait_us = 0;  // take whatever is queued, no straggler wait
  options.workers = 1;
  serve::MicroBatcher batcher(options, backend.Fn(), nullptr, &counters);

  auto plug = batcher.Submit("plug");
  backend.AwaitPlugTaken();
  std::vector<std::future<util::StatusOr<serve::SentenceResult>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.Submit(RequestName(i)));
  }
  backend.Release();

  ASSERT_TRUE(plug.get().ok());
  for (size_t i = 0; i < futures.size(); ++i) {
    util::StatusOr<serve::SentenceResult> result = futures[i].get();
    ASSERT_TRUE(result.ok());
    // Results map back to the submitting request, not just the batch.
    EXPECT_EQ(result.value().mentions[0].alias, RequestName(static_cast<int>(i)));
  }
  batcher.Shutdown();

  EXPECT_EQ(batcher.max_batch_observed(), 4);
  ASSERT_EQ(backend.batch_sizes.size(), 2u);  // the plug, then one batch of 4
  EXPECT_EQ(backend.batch_sizes[1], 4u);
  EXPECT_EQ(counters.requests.load(), 5);
  EXPECT_EQ(counters.batches.load(), 2);
  EXPECT_EQ(counters.batched_sentences.load(), 5);
  EXPECT_DOUBLE_EQ(counters.MeanBatchSize(), 2.5);
}

TEST(MicroBatcherTest, MaxWaitFlushesPartialBatch) {
  serve::ServerCounters counters;
  std::vector<size_t> batch_sizes;
  std::mutex mu;
  serve::BatcherOptions options;
  options.max_batch = 8;
  options.max_wait_us = 2000;  // well under the test timeout
  options.workers = 1;
  serve::MicroBatcher batcher(
      options,
      [&](const std::vector<serve::BatchItem>& items, int) {
        std::lock_guard<std::mutex> lock(mu);
        batch_sizes.push_back(items.size());
        return EchoBatch(items);
      },
      nullptr, &counters);

  // A lone request must not wait for 7 siblings that never come.
  auto future = batcher.Submit("solo");
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  ASSERT_TRUE(future.get().ok());
  batcher.Shutdown();
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 1u);
}

TEST(MicroBatcherTest, BackpressureRejectsWhenQueueFull) {
  serve::ServerCounters counters;
  PluggableBackend backend;
  serve::BatcherOptions options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.max_queue = 2;
  options.workers = 1;
  serve::MicroBatcher batcher(options, backend.Fn(), nullptr, &counters);

  auto plug = batcher.Submit("plug");
  backend.AwaitPlugTaken();  // worker busy; queue is now empty
  auto a = batcher.Submit("a");
  auto b = batcher.Submit("b");   // queue at capacity
  auto c = batcher.Submit("c");   // must be rejected, already resolved
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const util::StatusOr<serve::SentenceResult> rejected = c.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(counters.rejected.load(), 1);

  backend.Release();
  EXPECT_TRUE(plug.get().ok());
  EXPECT_TRUE(a.get().ok());  // accepted requests still complete
  EXPECT_TRUE(b.get().ok());
  batcher.Shutdown();
  // Every arrival counts, rejected or not, so requests covers rejected +
  // shed + served.
  EXPECT_EQ(counters.requests.load(), 4);
}

TEST(MicroBatcherTest, ShutdownDrainsAcceptedRequests) {
  serve::ServerCounters counters;
  std::atomic<int64_t> processed{0};
  serve::BatcherOptions options;
  options.max_batch = 2;
  options.max_wait_us = 0;
  options.workers = 1;
  serve::MicroBatcher batcher(
      options,
      [&](const std::vector<serve::BatchItem>& items, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        processed.fetch_add(static_cast<int64_t>(items.size()));
        return EchoBatch(items);
      },
      nullptr, &counters);

  std::vector<std::future<util::StatusOr<serve::SentenceResult>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(batcher.Submit(RequestName(i)));
  }
  batcher.Shutdown();  // must block until every accepted request finished
  EXPECT_EQ(processed.load(), 6);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }

  auto late = batcher.Submit("late");
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const util::StatusOr<serve::SentenceResult> result = late.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(MicroBatcherTest, ReloadRunsAtBatchBoundaryAndFailureIsNonFatal) {
  serve::ServerCounters counters;
  std::atomic<int> attempts{0};
  std::atomic<bool> fail_reload{true};
  serve::BatcherOptions options;
  options.workers = 1;
  serve::MicroBatcher batcher(
      options, [](const std::vector<serve::BatchItem>& items, int) {
        return EchoBatch(items);
      },
      [&] {
        attempts.fetch_add(1);
        return fail_reload.load() ? util::Status::IOError("injected")
                                  : util::Status::OK();
      },
      &counters);

  batcher.RequestReload();  // fails: logged, counted as attempt, not reload
  for (int i = 0; i < 200 && attempts.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(attempts.load(), 1);
  EXPECT_EQ(counters.reloads.load(), 0);
  EXPECT_TRUE(batcher.Submit("still serving").get().ok());

  fail_reload.store(false);
  batcher.RequestReload();
  for (int i = 0; i < 200 && counters.reloads.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(counters.reloads.load(), 1);
  EXPECT_EQ(attempts.load(), 2);
  batcher.Shutdown();
}

// Regression: the coalescing wait_until predicate used to ignore pending
// exclusive tasks, so a live-add submitted mid-window under trickle traffic
// stalled until max_wait_us elapsed. It must preempt the window instead.
TEST(MicroBatcherTest, ExclusiveSubmittedMidWindowPreemptsCoalescingWait) {
  serve::ServerCounters counters;
  serve::BatcherOptions options;
  options.max_batch = 8;
  options.max_wait_us = 2000000;  // 2s window; the test must not wait it out
  options.workers = 1;
  serve::MicroBatcher batcher(
      options,
      [](const std::vector<serve::BatchItem>& items, int) {
        return EchoBatch(items);
      },
      nullptr, &counters);

  // One request far below max_batch opens a coalescing window.
  auto trickle = batcher.Submit("trickle");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  std::promise<util::Status> done;
  batcher.SubmitExclusive([] { return util::Status::OK(); },
                          [&](util::Status st) { done.set_value(std::move(st)); });
  auto done_future = done.get_future();
  ASSERT_EQ(done_future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(done_future.get().ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(500))
      << "exclusive task waited out the coalescing window";
  batcher.Shutdown();  // flushes the open window and drains `trickle`
  EXPECT_TRUE(trickle.get().ok());
}

// Regression (same predicate bug, reload flavor): a SIGHUP reload requested
// while a coalescing window is open must apply at that boundary, not wait
// for the window to expire.
TEST(MicroBatcherTest, ReloadRequestedMidWindowPreemptsCoalescingWait) {
  serve::ServerCounters counters;
  serve::BatcherOptions options;
  options.max_batch = 8;
  options.max_wait_us = 2000000;
  options.workers = 1;
  serve::MicroBatcher batcher(
      options,
      [](const std::vector<serve::BatchItem>& items, int) {
        return EchoBatch(items);
      },
      [] { return util::Status::OK(); }, &counters);

  auto trickle = batcher.Submit("trickle");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  batcher.RequestReload();
  while (counters.reloads.load() < 1 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(counters.reloads.load(), 1);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(500))
      << "reload waited out the coalescing window";
  batcher.Shutdown();
  EXPECT_TRUE(trickle.get().ok());
}

// Regression: door-shed and queue-full arrivals used to be invisible in
// `requests`, breaking the stats accounting. Every arrival must count, so
// requests == rejected + shed + served holds across all outcomes.
TEST(MicroBatcherTest, ArrivalAccountingInvariantHoldsAcrossOutcomes) {
  serve::ServerCounters counters;
  PluggableBackend backend;
  serve::BatcherOptions options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.max_queue = 2;
  options.workers = 1;
  serve::MicroBatcher batcher(options, backend.Fn(), nullptr, &counters);

  auto plug = batcher.Submit("plug");
  backend.AwaitPlugTaken();  // worker busy; queue is empty

  // Door shed: arrives with its deadline already expired.
  util::Status door;
  batcher.SubmitAsync(
      "expired",
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
      [&](util::StatusOr<serve::SentenceResult> r) { door = r.status(); });
  EXPECT_EQ(door.code(), util::StatusCode::kDeadlineExceeded);

  // One request that will be served, one that will expire while queued.
  auto a = batcher.Submit("a");
  util::Status queued_shed;
  batcher.SubmitAsync(
      "soon-dead",
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50),
      [&](util::StatusOr<serve::SentenceResult> r) {
        queued_shed = r.status();
      });

  // Queue is now at capacity: the next arrival is rejected outright.
  auto c = batcher.Submit("c");
  const util::StatusOr<serve::SentenceResult> rejected = c.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // expire it
  backend.Release();
  EXPECT_TRUE(plug.get().ok());
  EXPECT_TRUE(a.get().ok());
  batcher.Shutdown();
  EXPECT_EQ(queued_shed.code(), util::StatusCode::kDeadlineExceeded);

  // plug + expired + a + soon-dead + c — every arrival, whatever its fate.
  EXPECT_EQ(counters.requests.load(), 5);
  EXPECT_EQ(counters.rejected.load(), 1);
  EXPECT_EQ(counters.shed.load(), 2);  // one at the door, one at dequeue
  const int64_t served = counters.batched_sentences.load();
  EXPECT_EQ(served, 2);  // plug + a
  EXPECT_EQ(counters.requests.load(),
            counters.rejected.load() + counters.shed.load() + served);
}

// An all-deadline batch whose members expire mid-compute comes back empty
// from the engine; the batcher fails each member with DeadlineExceeded and
// counts them as both shed and reclaimed. Without a deadline on every member
// the same empty return is a backend bug, reported as Internal.
TEST(MicroBatcherTest, MidComputeAbandonmentShedsAndCountsReclaims) {
  serve::ServerCounters counters;
  serve::BatcherOptions options;
  options.max_batch = 4;
  options.max_wait_us = 0;
  options.workers = 1;
  serve::MicroBatcher batcher(
      options,
      [](const std::vector<serve::BatchItem>&, int) {
        return std::vector<serve::SentenceResult>();  // abandoned mid-compute
      },
      nullptr, &counters);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<util::Status> statuses;
  for (int i = 0; i < 3; ++i) {
    batcher.SubmitAsync(RequestName(i), /*raw_text=*/false, deadline,
                        [&](util::StatusOr<serve::SentenceResult> r) {
                          std::lock_guard<std::mutex> lock(mu);
                          statuses.push_back(r.status());
                          cv.notify_all();
                        });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return statuses.size() == 3; });
  }
  for (const util::Status& s : statuses) {
    EXPECT_EQ(s.code(), util::StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(counters.shed.load(), 3);
  EXPECT_EQ(counters.reclaimed.load(), 3);

  // A member without a deadline makes the empty return a contract violation.
  auto no_deadline = batcher.Submit("plain");
  const util::StatusOr<serve::SentenceResult> r = no_deadline.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(counters.reclaimed.load(), 3);  // unchanged
  batcher.Shutdown();
}

// --- Candidate cache ---------------------------------------------------------

TEST(CandidateCacheTest, LruEvictionAndHitMissAccounting) {
  kb::CandidateMap map;
  map.AddAlias("apple", 1, 1.0f);
  map.AddAlias("apple", 2, 0.5f);
  map.AddAlias("banana", 3);
  map.AddAlias("cherry", 4);
  map.Finalize(/*max_candidates=*/5);

  serve::CandidateCache cache(/*capacity=*/2);
  serve::CachedCandidates out;

  EXPECT_TRUE(cache.Lookup(map, "apple", &out));  // miss, cached
  ASSERT_EQ(out.entities.size(), 2u);
  EXPECT_EQ(out.entities[0], 1);  // sorted by accumulated weight
  EXPECT_NEAR(out.priors[0] + out.priors[1], 1.0f, 1e-6f);

  EXPECT_TRUE(cache.Lookup(map, "banana", &out));  // miss, cached
  EXPECT_TRUE(cache.Lookup(map, "apple", &out));   // hit, refreshes recency
  EXPECT_TRUE(cache.Lookup(map, "cherry", &out));  // miss, evicts banana (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(map, "banana", &out));  // miss again: was evicted
  EXPECT_TRUE(cache.Lookup(map, "cherry", &out));  // hit: survived
  EXPECT_FALSE(cache.Lookup(map, "apple", &out) &&
               cache.misses() == 4);  // apple was evicted by banana's return
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 5);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CandidateCacheTest, UnknownAliasesAreNeitherCachedNorCounted) {
  kb::CandidateMap map;
  map.AddAlias("known", 1);
  map.Finalize(5);
  serve::CandidateCache cache(8);
  serve::CachedCandidates out;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.Lookup(map, "garbage" + std::to_string(i), &out));
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);  // garbage cannot deflate the hit rate
  EXPECT_TRUE(cache.Lookup(map, "known", &out));
  EXPECT_EQ(cache.misses(), 1);
}

// The single-copy Lookup restructure (insert first, then copy out of the
// canonical LRU entry) must not change what callers see: identical content
// on the miss and the following hit, identical hit/miss accounting, and
// eviction still drops the LRU tail, not the entry just inserted.
TEST(CandidateCacheTest, MissServesCanonicalEntryAndCountersUnchanged) {
  kb::CandidateMap map;
  map.AddAlias("apple", 1, 1.0f);
  map.AddAlias("apple", 2, 0.5f);
  map.AddAlias("banana", 3);
  map.Finalize(/*max_candidates=*/5);

  serve::CandidateCache cache(/*capacity=*/1);
  serve::CachedCandidates miss_out;
  EXPECT_TRUE(cache.Lookup(map, "apple", &miss_out));  // miss, inserted
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);

  serve::CachedCandidates hit_out;
  EXPECT_TRUE(cache.Lookup(map, "apple", &hit_out));  // hit
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  ASSERT_EQ(miss_out.entities.size(), hit_out.entities.size());
  EXPECT_EQ(miss_out.entities, hit_out.entities);
  EXPECT_EQ(miss_out.priors, hit_out.priors);

  // Capacity-1 eviction: the just-inserted entry survives, the old one goes.
  EXPECT_TRUE(cache.Lookup(map, "banana", &miss_out));  // miss, evicts apple
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(miss_out.entities.size(), 1u);
  EXPECT_EQ(miss_out.entities[0], 3);
  EXPECT_TRUE(cache.Lookup(map, "banana", &hit_out));  // still cached
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 2);
}

// --- Latency histogram -------------------------------------------------------

TEST(LatencyHistogramTest, PercentilesCountsAndBucketBounds) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.PercentileUs(0.5), 0);  // empty
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.sum_us(), 500500);
  EXPECT_NEAR(h.MeanUs(), 500.5, 1e-9);

  const int64_t p50 = h.PercentileUs(0.50);
  const int64_t p95 = h.PercentileUs(0.95);
  const int64_t p99 = h.PercentileUs(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 500);    // the 500th value is 500µs
  EXPECT_LE(p99, 2000);   // within one 1-2-5 bucket of 1000µs
  // Strictly increasing bounds, except the overflow bucket, which reports
  // its lower edge.
  for (int i = 1; i + 1 < serve::LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_GT(serve::LatencyHistogram::BucketBoundUs(i),
              serve::LatencyHistogram::BucketBoundUs(i - 1));
  }
}

// --- JSON wire format --------------------------------------------------------

TEST(JsonTest, RoundTripAndHostileInputs) {
  const std::string text =
      R"({"op":"disambiguate","text":"a \"quoted\" line","n":1.5,)"
      R"("flags":[true,false,null]})";
  util::StatusOr<serve::Json> parsed = serve::Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetString("op"), "disambiguate");
  EXPECT_EQ(parsed.value().GetString("text"), "a \"quoted\" line");
  EXPECT_DOUBLE_EQ(parsed.value().GetNumber("n"), 1.5);
  util::StatusOr<serve::Json> reparsed =
      serve::Json::Parse(parsed.value().Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().Dump(), parsed.value().Dump());

  for (const std::string& bad :
       {std::string("{"), std::string("[1,"), std::string("tru"),
        std::string("\"unterminated"), std::string("1 2"),
        std::string("{\"a\":}"), std::string("{} trailing"), std::string(""),
        std::string(10000, '[')}) {
    EXPECT_FALSE(serve::Json::Parse(bad).ok()) << bad.substr(0, 40);
  }
}

TEST(JsonTest, NestingBoundIsExactlyKMaxDepth) {
  // A document with exactly kMaxDepth nested containers must parse — the
  // documented bound is inclusive — and one more level must be rejected,
  // whether the innermost value is a scalar or another container.
  auto nested_arrays = [](int levels, const std::string& core) {
    return std::string(static_cast<size_t>(levels), '[') + core +
           std::string(static_cast<size_t>(levels), ']');
  };
  EXPECT_TRUE(serve::Json::Parse(nested_arrays(serve::Json::kMaxDepth, "1")).ok());
  EXPECT_TRUE(serve::Json::Parse(nested_arrays(serve::Json::kMaxDepth, "")).ok());
  EXPECT_FALSE(
      serve::Json::Parse(nested_arrays(serve::Json::kMaxDepth + 1, "1")).ok());
  EXPECT_FALSE(
      serve::Json::Parse(nested_arrays(serve::Json::kMaxDepth + 1, "")).ok());

  // Same bound through object nesting: {"k":{"k":...{}...}}.
  std::string obj = "{}";
  for (int i = 1; i < serve::Json::kMaxDepth; ++i) obj = "{\"k\":" + obj + "}";
  EXPECT_TRUE(serve::Json::Parse(obj).ok());
  EXPECT_FALSE(serve::Json::Parse("{\"k\":" + obj + "}").ok());

  // Mixed alternation lands on the same counter.
  std::string mixed = "1";
  for (int i = 0; i < serve::Json::kMaxDepth; ++i) {
    mixed = (i % 2 == 0) ? "[" + mixed + "]" : "{\"k\":" + mixed + "}";
  }
  EXPECT_TRUE(serve::Json::Parse(mixed).ok());
  EXPECT_FALSE(serve::Json::Parse("[" + mixed + "]").ok());
}

TEST(JsonTest, OversizedStringsAreRejectedNotAllocated) {
  // Strings up to kMaxStringBytes decode; one byte over fails cleanly. The
  // bound applies to decoded output, so escape-heavy input cannot dodge it.
  const std::string ok_body(serve::Json::kMaxStringBytes, 'a');
  EXPECT_TRUE(serve::Json::Parse("\"" + ok_body + "\"").ok());
  const std::string big_body(serve::Json::kMaxStringBytes + 1, 'a');
  EXPECT_FALSE(serve::Json::Parse("\"" + big_body + "\"").ok());

  // The same bound guards object keys and nested strings.
  EXPECT_FALSE(serve::Json::Parse("{\"" + big_body + "\":1}").ok());
  EXPECT_FALSE(serve::Json::Parse("[\"" + big_body + "\"]").ok());

  // Escaped expansion: A is six input bytes but one decoded byte, so a
  // decoded-size bound must still accept reasonable escape runs.
  std::string escapes;
  for (int i = 0; i < 1000; ++i) escapes += "\\u0041";
  util::StatusOr<serve::Json> parsed = serve::Json::Parse("\"" + escapes + "\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string_value(), std::string(1000, 'A'));
}

// --- Server front end --------------------------------------------------------

struct ServerUnderTest {
  std::unique_ptr<serve::InferenceEngine> engine;
  serve::ServerCounters counters;
  serve::LatencyHistogram latency;
  core::BootlegModel::InferenceScratch scratch;
  std::unique_ptr<serve::MicroBatcher> batcher;
  std::unique_ptr<serve::Server> server;

  explicit ServerUnderTest(serve::BatcherOptions options = {}) {
    engine = MakeSnapshotEngine();
    batcher = std::make_unique<serve::MicroBatcher>(
        options,
        [this](const std::vector<serve::BatchItem>& items, int) {
          return engine->DisambiguateBatch(items, &scratch);
        },
        [this] { return engine->Reload(); }, &counters);
    server = std::make_unique<serve::Server>(engine.get(), batcher.get(),
                                             &counters, &latency);
  }
  ~ServerUnderTest() {
    server->Stop();
    batcher->Shutdown();
  }
};

TEST(ServeServerTest, MalformedRequestsGetErrorRepliesNeverCrash) {
  ServerUnderTest sut;
  const std::vector<std::string> hostile = {
      "",
      "{",
      "]",
      "not json at all",
      "{\"op\":42}",
      "{\"op\":\"disambiguate\"}",
      "{\"op\":\"disambiguate\",\"text\":7}",
      "{\"op\":\"no_such_op\"}",
      "{\"op\":\"stats\"} trailing garbage",
      "[\"an\",\"array\",\"not\",\"an\",\"object\"]",
      std::string(5000, '['),
      std::string(1 << 16, 'x'),
  };
  for (const std::string& line : hostile) {
    const std::string reply = sut.server->HandleLine(line);
    util::StatusOr<serve::Json> parsed = serve::Json::Parse(reply);
    ASSERT_TRUE(parsed.ok()) << "reply not JSON for: " << line.substr(0, 40);
    const serve::Json* ok = parsed.value().Find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_FALSE(ok->bool_value()) << line.substr(0, 40);
    EXPECT_FALSE(parsed.value().GetString("error").empty());
  }
  EXPECT_EQ(sut.counters.errors.load(),
            static_cast<int64_t>(hostile.size()));

  // The server still serves real traffic afterwards.
  serve::Json request = serve::Json::Object();
  request.Set("op", serve::Json::Str("disambiguate"));
  request.Set("text", serve::Json::Str(SampleServableText()));
  const std::string reply = sut.server->HandleLine(request.Dump());
  util::StatusOr<serve::Json> parsed = serve::Json::Parse(reply);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().Find("ok")->bool_value());
  ASSERT_NE(parsed.value().Find("mentions"), nullptr);
  EXPECT_FALSE(parsed.value().Find("mentions")->array_items().empty());
}

TEST(ServeServerTest, StdioLoopServesHealthDisambiguateAndStats) {
  ServerUnderTest sut;
  const std::string text = SampleServableText();
  serve::Json disambiguate = serve::Json::Object();
  disambiguate.Set("op", serve::Json::Str("disambiguate"));
  disambiguate.Set("text", serve::Json::Str(text));

  std::ostringstream script;
  script << "{\"op\":\"health\"}\n";
  for (int i = 0; i < 5; ++i) script << disambiguate.Dump() << "\n";
  script << "{\"op\":\"stats\"}\n";
  std::istringstream in(script.str());
  std::ostringstream out;
  sut.server->RunStdio(in, out);

  std::vector<std::string> replies;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) replies.push_back(line);
  ASSERT_EQ(replies.size(), 7u);

  util::StatusOr<serve::Json> health = serve::Json::Parse(replies[0]);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().GetString("status"), "serving");

  for (int i = 1; i <= 5; ++i) {
    util::StatusOr<serve::Json> reply = serve::Json::Parse(replies[i]);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply.value().Find("ok")->bool_value());
  }

  util::StatusOr<serve::Json> stats = serve::Json::Parse(replies[6]);
  ASSERT_TRUE(stats.ok());
  const serve::Json& s = stats.value();
  EXPECT_EQ(s.GetNumber("requests"), 5.0);
  EXPECT_GE(s.GetNumber("batches"), 1.0);
  ASSERT_NE(s.Find("reclaimed"), nullptr);
  EXPECT_EQ(s.GetNumber("reclaimed"), 0.0);
  // The same sentence 5 times: every alias after the first pass is a hit.
  EXPECT_GT(s.GetNumber("cache_hit_rate"), 0.5);
  const serve::Json* latency = s.Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->GetNumber("count"), 5.0);
  EXPECT_GT(latency->GetNumber("p50_us"), 0.0);
  EXPECT_LE(latency->GetNumber("p50_us"), latency->GetNumber("p95_us"));
  EXPECT_LE(latency->GetNumber("p95_us"), latency->GetNumber("p99_us"));
}

// The acceptance contract for raw-text serving: a `disambiguate_text` request
// carrying a single sentence produces a byte-identical reply to the
// pre-segmented `disambiguate` op, and a multi-sentence document reports
// document-level spans plus each mention's sentence index in the JSON reply.
TEST(ServeServerTest, DisambiguateTextMatchesDisambiguateAndIndexesSentences) {
  ServerUnderTest sut;
  const std::string text = SampleServableText();

  serve::Json pre = serve::Json::Object();
  pre.Set("op", serve::Json::Str("disambiguate"));
  pre.Set("text", serve::Json::Str(text));
  serve::Json raw = serve::Json::Object();
  raw.Set("op", serve::Json::Str("disambiguate_text"));
  raw.Set("text", serve::Json::Str(text));

  const std::string want = sut.server->HandleLine(pre.Dump());
  const std::string got = sut.server->HandleLine(raw.Dump());
  EXPECT_EQ(got, want);
  util::StatusOr<serve::Json> parsed = serve::Json::Parse(got);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().Find("ok")->bool_value());
  const serve::Json* mentions = parsed.value().Find("mentions");
  ASSERT_NE(mentions, nullptr);
  ASSERT_FALSE(mentions->array_items().empty());
  for (const serve::Json& m : mentions->array_items()) {
    ASSERT_NE(m.Find("sentence"), nullptr);
    EXPECT_EQ(m.GetNumber("sentence"), 0.0);
  }

  // Two copies of the sentence joined into one raw document (the sentence
  // carries its own terminal "."): the second copy's mentions report
  // sentence index 1 and offset spans.
  const std::string doc = text + " " + text;
  serve::Json raw_doc = serve::Json::Object();
  raw_doc.Set("op", serve::Json::Str("disambiguate_text"));
  raw_doc.Set("text", serve::Json::Str(doc));
  util::StatusOr<serve::Json> doc_reply =
      serve::Json::Parse(sut.server->HandleLine(raw_doc.Dump()));
  ASSERT_TRUE(doc_reply.ok());
  ASSERT_TRUE(doc_reply.value().Find("ok")->bool_value());
  const serve::Json* doc_mentions = doc_reply.value().Find("mentions");
  ASSERT_NE(doc_mentions, nullptr);
  const auto& items = doc_mentions->array_items();
  ASSERT_EQ(items.size(), 2 * mentions->array_items().size());
  const int64_t offset = static_cast<int64_t>(text::Tokenize(text).size());
  const size_t half = items.size() / 2;
  for (size_t i = 0; i < items.size(); ++i) {
    const serve::Json& m = items[i];
    const serve::Json& base = mentions->array_items()[i % half];
    const bool second = i >= half;
    EXPECT_EQ(m.GetNumber("sentence"), second ? 1.0 : 0.0) << "mention " << i;
    const serve::Json* span = m.Find("span");
    const serve::Json* base_span = base.Find("span");
    ASSERT_NE(span, nullptr);
    ASSERT_NE(base_span, nullptr);
    EXPECT_EQ(span->array_items()[0].number_value(),
              base_span->array_items()[0].number_value() +
                  (second ? static_cast<double>(offset) : 0.0));
    EXPECT_EQ(m.GetNumber("entity"), base.GetNumber("entity"));
  }
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BOOTLEG_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  BOOTLEG_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0);
  return fd;
}

std::string RequestOverSocket(int fd, const std::string& line) {
  const std::string msg = line + "\n";
  size_t sent = 0;
  while (sent < msg.size()) {
    const ssize_t w = ::send(fd, msg.data() + sent, msg.size() - sent, 0);
    BOOTLEG_CHECK(w > 0);
    sent += static_cast<size_t>(w);
  }
  std::string reply;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') break;
    reply.push_back(c);
  }
  return reply;
}

TEST(ServeServerTest, TcpServesConcurrentClients) {
  serve::BatcherOptions options;
  options.max_batch = 8;
  options.max_wait_us = 200;
  options.max_queue = 256;
  ServerUnderTest sut(options);
  ASSERT_TRUE(sut.server->Start(0).ok());
  const int port = sut.server->port();
  ASSERT_GT(port, 0);

  const std::string text = SampleServableText();
  serve::Json request = serve::Json::Object();
  request.Set("op", serve::Json::Str("disambiguate"));
  request.Set("text", serve::Json::Str(text));
  const std::string request_line = request.Dump();

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::atomic<int> ok_replies{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ConnectLoopback(port);
      for (int i = 0; i < kPerClient; ++i) {
        // One malformed request per client, mid-stream.
        const std::string& line = (i == 3) ? "{broken" : request_line;
        const std::string reply = RequestOverSocket(fd, line);
        util::StatusOr<serve::Json> parsed = serve::Json::Parse(reply);
        if (parsed.ok() && parsed.value().Find("ok") != nullptr &&
            parsed.value().Find("ok")->bool_value()) {
          ok_replies.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_replies.load(), kClients * (kPerClient - 1));

  const int fd = ConnectLoopback(port);
  util::StatusOr<serve::Json> stats =
      serve::Json::Parse(RequestOverSocket(fd, "{\"op\":\"stats\"}"));
  ::close(fd);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().GetNumber("requests"),
            static_cast<double>(kClients * (kPerClient - 1)));
  EXPECT_EQ(stats.value().GetNumber("errors"), static_cast<double>(kClients));
  EXPECT_GT(stats.value().GetNumber("cache_hit_rate"), 0.5);
  sut.server->Stop();
}

// --- Hot reload --------------------------------------------------------------

/// A minimal trainer state that passes checkpoint validation (which requires
/// one worker RNG per thread); serving discards it all anyway.
core::TrainerState ServingTrainerState(int64_t step) {
  core::TrainerState state;
  state.steps = step;
  state.nthreads = 1;
  state.master_rng = util::Rng(1).SerializeState();
  state.worker_rngs = {util::Rng(2).SerializeState()};
  return state;
}

TEST(ServeHotReloadTest, PicksNewestCheckpointAndSkipsCorruptOne) {
  const ServeWorld& sw = GetServeWorld();
  const std::string dir = TestDir("hot_reload");

  const auto write_checkpoint = [&](uint64_t seed, int64_t step) {
    core::BootlegModel model(&sw.world.kb, sw.world.vocab.size(),
                             ServingConfig(), seed);
    nn::Adam optimizer(&model.store(), {});
    return core::WriteCheckpoint(dir, ServingTrainerState(step), model.store(),
                                 optimizer, /*retain=*/10);
  };
  ASSERT_TRUE(write_checkpoint(/*seed=*/123, /*step=*/2).ok());

  serve::EngineOptions options;
  options.data_dir = sw.data_dir;
  options.checkpoint_dir = dir;
  auto engine_or = serve::InferenceEngine::Create(options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();
  EXPECT_EQ(engine.loaded_path(), core::CheckpointPath(dir, 2));

  // A newer checkpoint with different weights appears: Reload must pick it
  // up and serve the new parameters (frozen feature table refreshed too).
  ASSERT_TRUE(write_checkpoint(/*seed=*/999, /*step=*/4).ok());
  ASSERT_TRUE(engine.Reload().ok());
  EXPECT_EQ(engine.loaded_path(), core::CheckpointPath(dir, 4));
  {
    core::BootlegModel want(&sw.world.kb, sw.world.vocab.size(),
                            ServingConfig(), /*seed=*/999);
    const std::string name = engine.model().store().param_names().front();
    EXPECT_EQ(engine.model().store().GetParam(name).value().vec(),
              want.store().GetParam(name).value().vec());
  }
  core::BootlegModel::InferenceScratch scratch;
  const std::vector<serve::SentenceResult> after_swap =
      engine.Disambiguate({SampleServableText()}, &scratch);
  ASSERT_EQ(after_swap.size(), 1u);

  // The next checkpoint is corrupted in flight (simulated media fault):
  // recovery must skip it and keep serving step 4.
  util::FaultInjector::Plan plan;
  plan.flip_byte_at = 512;
  plan.flip_mask = 0x40;
  util::FaultInjector::Arm(plan);
  ASSERT_TRUE(write_checkpoint(/*seed=*/555, /*step=*/6).ok());
  util::FaultInjector::Disarm();
  ASSERT_TRUE(fs::exists(core::CheckpointPath(dir, 6)));

  ASSERT_TRUE(engine.Reload().ok());
  EXPECT_EQ(engine.loaded_path(), core::CheckpointPath(dir, 4));

  // Reload with nothing newer is a no-op.
  ASSERT_TRUE(engine.Reload().ok());
  EXPECT_EQ(engine.loaded_path(), core::CheckpointPath(dir, 4));
}

// --- Concurrent load (the TSan target) ---------------------------------------

bool SameResult(const serve::SentenceResult& a, const serve::SentenceResult& b) {
  if (a.mentions.size() != b.mentions.size()) return false;
  for (size_t i = 0; i < a.mentions.size(); ++i) {
    if (a.mentions[i].alias != b.mentions[i].alias ||
        a.mentions[i].entity != b.mentions[i].entity ||
        a.mentions[i].span_start != b.mentions[i].span_start) {
      return false;
    }
  }
  return true;
}

TEST(ServeStressTest, ConcurrentClientsWithHotReloadStayConsistent) {
  const ServeWorld& sw = GetServeWorld();
  const std::string dir = TestDir("stress_ckpt");
  {
    core::BootlegModel model(&sw.world.kb, sw.world.vocab.size(),
                             ServingConfig(), /*seed=*/123);
    nn::Adam optimizer(&model.store(), {});
    ASSERT_TRUE(core::WriteCheckpoint(dir, ServingTrainerState(2),
                                      model.store(), optimizer, 10)
                    .ok());
  }
  serve::EngineOptions engine_options;
  engine_options.data_dir = sw.data_dir;
  engine_options.checkpoint_dir = dir;
  auto engine_or = serve::InferenceEngine::Create(engine_options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  std::vector<std::string> texts;
  for (const data::Sentence& s : sw.corpus.dev) {
    if (!s.mentions.empty()) texts.push_back(JoinTokens(s.tokens));
    if (texts.size() == 6) break;
  }
  ASSERT_GE(texts.size(), 2u);

  // Expected results, computed serially before any concurrency starts.
  std::vector<serve::SentenceResult> expected;
  {
    core::BootlegModel::InferenceScratch scratch;
    for (const std::string& t : texts) {
      expected.push_back(engine.Disambiguate({t}, &scratch)[0]);
    }
  }

  serve::ServerCounters counters;
  serve::BatcherOptions options;
  options.max_batch = 8;
  options.max_wait_us = 200;
  options.max_queue = 256;
  options.workers = 2;
  std::vector<core::BootlegModel::InferenceScratch> scratch(2);
  serve::MicroBatcher batcher(
      options,
      [&](const std::vector<serve::BatchItem>& batch, int worker) {
        return engine.DisambiguateBatch(batch,
                                        &scratch[static_cast<size_t>(worker)]);
      },
      [&] { return engine.Reload(); }, &counters);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 15;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % texts.size();
        auto future = batcher.Submit(texts[which]);
        if (t == 0 && i == kPerThread / 2) batcher.RequestReload();
        util::StatusOr<serve::SentenceResult> result = future.get();
        if (!result.ok() || !SameResult(result.value(), expected[which])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  batcher.Shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(counters.requests.load(), kThreads * kPerThread);
  EXPECT_EQ(counters.batched_sentences.load(), kThreads * kPerThread);
  EXPECT_GE(counters.batches.load(), 1);
  // The reload resolved to the checkpoint already loaded — still a success.
  EXPECT_EQ(counters.reloads.load(), 1);
}

}  // namespace
}  // namespace bootleg

#include "kb/kb.h"

#include <filesystem>
#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "kb/candidate_map.h"
#include "kb/cooccurrence.h"

namespace bootleg::kb {
namespace {

KnowledgeBase MakeSmallKb() {
  KnowledgeBase kb;
  const TypeId person = kb.AddType("person", CoarseType::kPerson);
  const TypeId city = kb.AddType("city", CoarseType::kLocation);
  const TypeId county = kb.AddType("county", CoarseType::kLocation);
  const RelationId capital_of = kb.AddRelation("capital of");
  kb.AddRelation("height");

  Entity lincoln_person;
  lincoln_person.title = "abraham_lincoln";
  lincoln_person.aliases = {"lincoln"};
  lincoln_person.types = {person};
  lincoln_person.coarse_type = CoarseType::kPerson;
  lincoln_person.gender = 'm';
  kb.AddEntity(lincoln_person);  // id 0

  Entity lincoln_il;
  lincoln_il.title = "lincoln_il";
  lincoln_il.aliases = {"lincoln"};
  lincoln_il.types = {city};
  lincoln_il.coarse_type = CoarseType::kLocation;
  kb.AddEntity(lincoln_il);  // id 1

  Entity logan_county;
  logan_county.title = "logan_county";
  logan_county.aliases = {"logan"};
  logan_county.types = {county};
  logan_county.coarse_type = CoarseType::kLocation;
  kb.AddEntity(logan_county);  // id 2

  kb.AddTriple(1, capital_of, 2);  // lincoln_il capital of logan_county
  return kb;
}

TEST(KbTest, BasicCounts) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_EQ(kb.num_entities(), 3);
  EXPECT_EQ(kb.num_types(), 3);
  EXPECT_EQ(kb.num_relations(), 2);
  EXPECT_EQ(kb.num_triples(), 1);
}

TEST(KbTest, TitleAlwaysAnAlias) {
  KnowledgeBase kb = MakeSmallKb();
  const Entity& e = kb.entity(0);
  EXPECT_NE(std::find(e.aliases.begin(), e.aliases.end(), "abraham_lincoln"),
            e.aliases.end());
}

TEST(KbTest, FindByTitle) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_EQ(kb.FindByTitle("lincoln_il"), 1);
  EXPECT_EQ(kb.FindByTitle("nope"), kInvalidId);
}

TEST(KbTest, ConnectivityIsSymmetric) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_TRUE(kb.Connected(1, 2));
  EXPECT_TRUE(kb.Connected(2, 1));
  EXPECT_FALSE(kb.Connected(0, 2));
}

TEST(KbTest, RelationBetween) {
  KnowledgeBase kb = MakeSmallKb();
  auto rel = kb.RelationBetween(1, 2);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(kb.relation(*rel).name, "capital of");
  EXPECT_FALSE(kb.RelationBetween(0, 1).has_value());
}

TEST(KbTest, TriplesPopulateEntityRelations) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_EQ(kb.entity(1).relations.size(), 1u);
  EXPECT_EQ(kb.entity(2).relations.size(), 1u);
  EXPECT_TRUE(kb.entity(0).relations.empty());
}

TEST(KbTest, NeighborsOfIsolatedEntityAreEmpty) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_TRUE(kb.Neighbors(0).empty());
  EXPECT_EQ(kb.Neighbors(1).size(), 1u);
}

TEST(KbTest, TwoHopConnected) {
  KnowledgeBase kb = MakeSmallKb();
  // Add 0 — r — 2: then 0 and 1 are 2-hop connected via 2.
  kb.AddTriple(0, 1, 2);
  EXPECT_TRUE(kb.TwoHopConnected(0, 1));
  // Directly connected pairs are excluded.
  EXPECT_FALSE(kb.TwoHopConnected(1, 2));
}

TEST(KbTest, SubclassRelated) {
  KnowledgeBase kb = MakeSmallKb();
  kb.AddSubclass(1, 2);
  EXPECT_TRUE(kb.SubclassRelated(1, 2));
  EXPECT_TRUE(kb.SubclassRelated(2, 1));
  EXPECT_FALSE(kb.SubclassRelated(0, 2));
  // Transitive within depth limit.
  kb.AddSubclass(0, 1);
  EXPECT_TRUE(kb.SubclassRelated(0, 2));
}

TEST(KbTest, SharesType) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_FALSE(kb.SharesType(0, 1));
  Entity another_city;
  another_city.title = "springfield";
  another_city.types = {1};  // city
  const EntityId id = kb.AddEntity(another_city);
  EXPECT_TRUE(kb.SharesType(1, id));
}

TEST(KbTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kb_test.bin").string();
  KnowledgeBase kb = MakeSmallKb();
  kb.AddSubclass(1, 2);
  ASSERT_TRUE(kb.Save(path).ok());
  KnowledgeBase loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.num_entities(), kb.num_entities());
  EXPECT_EQ(loaded.num_triples(), kb.num_triples());
  EXPECT_EQ(loaded.entity(0).title, "abraham_lincoln");
  EXPECT_EQ(loaded.entity(0).gender, 'm');
  EXPECT_TRUE(loaded.Connected(1, 2));
  EXPECT_TRUE(loaded.SubclassRelated(1, 2));
  EXPECT_EQ(loaded.type(1).name, "city");
  std::filesystem::remove(path);
}

TEST(KbTest, LoadRejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kb_bad.bin").string();
  {
    std::ofstream out(path);
    out << "not a kb";
  }
  KnowledgeBase kb;
  EXPECT_FALSE(kb.Load(path).ok());
  std::filesystem::remove(path);
}

TEST(CandidateMapTest, AccumulatesWeights) {
  CandidateMap map;
  map.AddAlias("lincoln", 0, 1.0f);
  map.AddAlias("lincoln", 0, 2.0f);
  map.AddAlias("lincoln", 1, 6.0f);
  map.Finalize(5);
  const auto* cands = map.Lookup("lincoln");
  ASSERT_NE(cands, nullptr);
  ASSERT_EQ(cands->size(), 2u);
  // Sorted by accumulated weight, normalized.
  EXPECT_EQ((*cands)[0].entity, 1);
  EXPECT_NEAR((*cands)[0].prior, 6.0f / 9.0f, 1e-6f);
  EXPECT_NEAR((*cands)[1].prior, 3.0f / 9.0f, 1e-6f);
}

TEST(CandidateMapTest, TruncatesToMaxCandidates) {
  CandidateMap map;
  for (int i = 0; i < 10; ++i) {
    map.AddAlias("x", i, static_cast<float>(10 - i));
  }
  map.Finalize(3);
  const auto* cands = map.Lookup("x");
  ASSERT_EQ(cands->size(), 3u);
  EXPECT_EQ((*cands)[0].entity, 0);
  float total = 0.0f;
  for (const Candidate& c : *cands) total += c.prior;
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(CandidateMapTest, UnknownAliasReturnsNull) {
  CandidateMap map;
  map.AddAlias("a", 0);
  map.Finalize(2);
  EXPECT_EQ(map.Lookup("zzz"), nullptr);
}

TEST(CandidateMapTest, DeterministicTieBreakByEntityId) {
  CandidateMap map;
  map.AddAlias("a", 7, 1.0f);
  map.AddAlias("a", 3, 1.0f);
  map.Finalize(2);
  EXPECT_EQ((*map.Lookup("a"))[0].entity, 3);
}

TEST(CandidateMapTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cands.bin").string();
  CandidateMap map;
  map.AddAlias("a", 1, 2.0f);
  map.AddAlias("a", 2, 1.0f);
  map.AddAlias("b", 3, 1.0f);
  map.Finalize(4);
  ASSERT_TRUE(map.Save(path).ok());
  CandidateMap loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.num_aliases(), 2);
  EXPECT_EQ((*loaded.Lookup("a"))[0].entity, 1);
  EXPECT_EQ(loaded.max_candidates(), 4);
  std::filesystem::remove(path);
}

TEST(CooccurrenceTest, CountsAndWeights) {
  CooccurrenceStats stats(/*min_count=*/3);
  EXPECT_EQ(stats.Count(1, 2), 0);
  for (int i = 0; i < 4; ++i) stats.AddPair(1, 2);
  EXPECT_EQ(stats.Count(1, 2), 4);
  EXPECT_EQ(stats.Count(2, 1), 4);  // symmetric
  EXPECT_NEAR(stats.Weight(1, 2), std::log(4.0f), 1e-6f);
  stats.AddPair(3, 4);
  EXPECT_EQ(stats.Weight(3, 4), 0.0f);  // below min_count
  stats.AddPair(5, 5);                  // self-pairs ignored
  EXPECT_EQ(stats.Count(5, 5), 0);
}

}  // namespace
}  // namespace bootleg::kb

// Serial-vs-parallel equivalence for the execution layer: thread-pool
// primitives, blocked kernels against their reference implementations and
// across thread counts, gradient-scope reduction, data-parallel training, and
// parallel evaluation.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "nn/embedding.h"
#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bootleg {
namespace {

using tensor::Tensor;
using tensor::Var;
using util::ThreadPool;

// --- ThreadPool primitives ---------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, 1000, /*grain=*/8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForWorksWithSingleThreadPool) {
  ThreadPool pool(1);
  int64_t sum = 0;
  pool.ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(ThreadPool::InWorker());
      // Nested dispatch must run inline on this thread, never re-enqueue.
      pool.ParallelFor(0, 10, 1,
                       [&](int64_t l, int64_t h) {
                         inner_total += static_cast<int>(h - l);
                       });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST(ThreadPoolTest, RunWorkersRunsEveryWorkerIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> ran(8);
  for (auto& r : ran) r.store(0);
  // More workers than pool threads: the caller help-drains the queue.
  pool.RunWorkers(8, [&](int w) { ran[static_cast<size_t>(w)]++; });
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPoolTest, EnvThreadsParsesEnvironment) {
  ::setenv("BOOTLEG_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 3);
  ::setenv("BOOTLEG_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
  ::unsetenv("BOOTLEG_THREADS");
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
}

// --- Kernel equivalence ------------------------------------------------------

struct MatMulShape {
  int64_t m, k, n;
};

const MatMulShape kShapes[] = {
    {1, 1, 1}, {3, 5, 7}, {17, 64, 33}, {64, 128, 64}, {130, 70, 90}};

TEST(KernelEquivalenceTest, MatMulMatchesReferenceExactly) {
  util::Rng rng(7);
  for (const MatMulShape& s : kShapes) {
    const Tensor a = Tensor::Randn({s.m, s.k}, &rng);
    const Tensor b = Tensor::Randn({s.k, s.n}, &rng);
    const Tensor got = tensor::MatMul(a, b);
    const Tensor ref = tensor::MatMulReference(a, b);
    ASSERT_TRUE(got.SameShape(ref));
    // Same per-element accumulation order (ascending k) in both kernels →
    // bitwise equality, not just closeness.
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got.at(i), ref.at(i)) << "shape " << s.m << "x" << s.k << "x"
                                      << s.n << " elem " << i;
    }
  }
}

TEST(KernelEquivalenceTest, MatMulTransposedAMatchesReferenceExactly) {
  util::Rng rng(8);
  for (const MatMulShape& s : kShapes) {
    const Tensor a = Tensor::Randn({s.k, s.m}, &rng);  // Aᵀ·B: A is [k,m]
    const Tensor b = Tensor::Randn({s.k, s.n}, &rng);
    const Tensor got = tensor::MatMulTransposedA(a, b);
    const Tensor ref = tensor::MatMulTransposedAReference(a, b);
    ASSERT_TRUE(got.SameShape(ref));
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got.at(i), ref.at(i)) << "elem " << i;
    }
  }
}

TEST(KernelEquivalenceTest, MatMulTransposedBMatchesReferenceClosely) {
  util::Rng rng(9);
  for (const MatMulShape& s : kShapes) {
    const Tensor a = Tensor::Randn({s.m, s.k}, &rng);
    const Tensor b = Tensor::Randn({s.n, s.k}, &rng);  // A·Bᵀ: B is [n,k]
    const Tensor got = tensor::MatMulTransposedB(a, b);
    const Tensor ref = tensor::MatMulTransposedBReference(a, b);
    ASSERT_TRUE(got.SameShape(ref));
    // The production kernel uses multiple dot-product accumulators, so sums
    // are reassociated relative to the reference: compare with tolerance.
    for (int64_t i = 0; i < got.numel(); ++i) {
      const float tol = 1e-4f * std::max(1.0f, std::abs(ref.at(i)));
      ASSERT_NEAR(got.at(i), ref.at(i), tol) << "elem " << i;
    }
  }
}

// Bit-identical results at every thread count: the contract that lets tests
// and checkpoints ignore BOOTLEG_THREADS entirely.
TEST(KernelEquivalenceTest, KernelsBitIdenticalAcrossThreadCounts) {
  util::Rng rng(10);
  const Tensor a = Tensor::Randn({130, 96}, &rng);
  const Tensor b = Tensor::Randn({96, 140}, &rng);
  const Tensor big = Tensor::Randn({220, 200}, &rng);  // > parallel threshold
  const Tensor big2 = Tensor::Randn({220, 200}, &rng);

  ThreadPool::ResetGlobal(1);
  const Tensor mm1 = tensor::MatMul(a, b);
  const Tensor sm1 = tensor::SoftmaxRows(big);
  const Tensor add1 = tensor::Add(big, big2);
  const Tensor gelu1 = tensor::Gelu(big);

  for (int threads : {2, 3, 7}) {
    ThreadPool::ResetGlobal(threads);
    const Tensor mm = tensor::MatMul(a, b);
    const Tensor sm = tensor::SoftmaxRows(big);
    const Tensor add = tensor::Add(big, big2);
    const Tensor gelu = tensor::Gelu(big);
    EXPECT_EQ(std::memcmp(mm.data(), mm1.data(),
                          sizeof(float) * static_cast<size_t>(mm.numel())),
              0)
        << "MatMul differs at " << threads << " threads";
    EXPECT_EQ(std::memcmp(sm.data(), sm1.data(),
                          sizeof(float) * static_cast<size_t>(sm.numel())),
              0)
        << "SoftmaxRows differs at " << threads << " threads";
    EXPECT_EQ(std::memcmp(add.data(), add1.data(),
                          sizeof(float) * static_cast<size_t>(add.numel())),
              0)
        << "Add differs at " << threads << " threads";
    EXPECT_EQ(std::memcmp(gelu.data(), gelu1.data(),
                          sizeof(float) * static_cast<size_t>(gelu.numel())),
              0)
        << "Gelu differs at " << threads << " threads";
  }
  ThreadPool::ResetGlobal(1);
}

// --- GradScope reduction -----------------------------------------------------

TEST(GradScopeTest, DenseReductionMatchesDirectBackward) {
  util::Rng rng(11);
  const Tensor init = Tensor::Randn({6, 6}, &rng);
  const Tensor x = Tensor::Randn({4, 6}, &rng);

  // Direct: Backward accumulates straight into the leaf's grad.
  Var w_direct = Var::Leaf(init, /*requires_grad=*/true);
  tensor::Backward(tensor::Sum(tensor::MatMul(Var::Constant(x), w_direct)));
  ASSERT_FALSE(w_direct.grad().empty());

  // Scoped: the leaf's grad stays untouched until ReduceInto.
  Var w_scoped = Var::Leaf(init, /*requires_grad=*/true);
  tensor::GradScope scope;
  {
    tensor::GradScope::Activation act(&scope);
    tensor::Backward(tensor::Sum(tensor::MatMul(Var::Constant(x), w_scoped)));
  }
  EXPECT_TRUE(w_scoped.grad().empty());
  EXPECT_FALSE(scope.empty());
  scope.ReduceInto();
  ASSERT_FALSE(w_scoped.grad().empty());
  for (int64_t i = 0; i < w_direct.grad().numel(); ++i) {
    EXPECT_EQ(w_scoped.grad().at(i), w_direct.grad().at(i));
  }
  // Buffers are retained but zeroed: a second reduction must be a no-op.
  scope.ReduceInto();
  for (int64_t i = 0; i < w_direct.grad().numel(); ++i) {
    EXPECT_EQ(w_scoped.grad().at(i), w_direct.grad().at(i));
  }
}

TEST(GradScopeTest, SparseEmbeddingReductionMatchesDirect) {
  util::Rng rng(12);
  nn::Embedding direct("direct", 10, 4, &rng);
  nn::Embedding scoped("scoped", 10, 4, &rng);
  const std::vector<int64_t> ids = {1, 3, 1, 7};

  tensor::Backward(tensor::Sum(direct.Lookup(ids)));
  ASSERT_FALSE(direct.sparse_grads().empty());

  tensor::GradScope scope;
  {
    tensor::GradScope::Activation act(&scope);
    tensor::Backward(tensor::Sum(scoped.Lookup(ids)));
  }
  EXPECT_TRUE(scoped.sparse_grads().empty());
  scope.ReduceInto();
  ASSERT_EQ(scoped.sparse_grads().size(), direct.sparse_grads().size());
  for (const auto& [row, grad] : direct.sparse_grads()) {
    auto it = scoped.sparse_grads().find(row);
    ASSERT_NE(it, scoped.sparse_grads().end());
    EXPECT_EQ(it->second, grad);
  }
}

TEST(GradScopeTest, WorkerOrderReductionIsDeterministic) {
  util::Rng rng(13);
  const Tensor init = Tensor::Randn({4, 4}, &rng);
  Var w = Var::Leaf(init, /*requires_grad=*/true);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(Tensor::Randn({2, 4}, &rng));

  auto run = [&]() {
    w.ZeroGrad();
    std::vector<tensor::GradScope> scopes(3);
    for (int worker = 0; worker < 3; ++worker) {
      tensor::GradScope::Activation act(&scopes[static_cast<size_t>(worker)]);
      tensor::Backward(tensor::Sum(tensor::MatMul(
          Var::Constant(inputs[static_cast<size_t>(worker)]), w)));
    }
    nn::ParameterStore::ReduceGradScopes(&scopes);
    return w.grad();
  };
  const Tensor first = run();
  const Tensor second = run();
  for (int64_t i = 0; i < first.numel(); ++i) {
    EXPECT_EQ(first.at(i), second.at(i));
  }
}

// --- Data-parallel training and evaluation ----------------------------------

class ParallelTrainTest : public ::testing::Test {
 protected:
  ParallelTrainTest() {
    ::unsetenv("BOOTLEG_THREADS");  // defaults under test must mean serial
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_entities = 200;
    config.num_pages = 50;
    world_ = data::BuildWorld(config);
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    data::ApplyWeakLabeling(world_.kb, &corpus_.train);
    counts_ = data::EntityCounts::FromTraining(corpus_.train);
    builder_ = std::make_unique<data::ExampleBuilder>(&world_.candidates,
                                                      &world_.vocab);
    examples_ = builder_->BuildAll(corpus_.train, data::ExampleOptions());
    examples_.resize(std::min<size_t>(examples_.size(), 40));
    model_config_.hidden = 24;
    model_config_.entity_dim = 24;
    model_config_.type_dim = 12;
    model_config_.coarse_dim = 8;
    model_config_.rel_dim = 12;
    model_config_.ff_inner = 48;
    model_config_.encoder.hidden = 24;
    model_config_.encoder.ff_inner = 48;
    model_config_.encoder.max_len = 24;
  }

  ~ParallelTrainTest() override { ThreadPool::ResetGlobal(1); }

  std::unique_ptr<core::BootlegModel> MakeModel() {
    auto model = std::make_unique<core::BootlegModel>(
        &world_.kb, world_.vocab.size(), model_config_, 5);
    model->SetEntityCounts(&counts_);
    return model;
  }

  // Every dense parameter and embedding table, flattened: equal digests mean
  // the models ended in bit-identical states.
  static std::vector<float> StoreDigest(nn::ParameterStore& store) {
    std::vector<float> out;
    for (const std::string& name : store.param_names()) {
      const auto& v = store.GetParam(name).value().vec();
      out.insert(out.end(), v.begin(), v.end());
    }
    for (const std::string& name : store.embedding_names()) {
      const auto& v = store.GetEmbedding(name)->table().vec();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  double EvalLoss(core::BootlegModel* model) {
    double total = 0.0;
    int64_t n = 0;
    for (const auto& ex : examples_) {
      Var l = model->Loss(ex, /*train=*/false);
      if (l.defined()) {
        total += l.value().at(0);
        ++n;
      }
    }
    return n > 0 ? total / n : 0.0;
  }

  data::SynthWorld world_;
  data::Corpus corpus_;
  data::EntityCounts counts_;
  std::unique_ptr<data::ExampleBuilder> builder_;
  std::vector<data::SentenceExample> examples_;
  core::BootlegConfig model_config_;
};

TEST_F(ParallelTrainTest, SingleThreadMatchesDefaultSerialBitExactly) {
  core::TrainOptions options;
  options.epochs = 1;

  auto serial = MakeModel();
  core::Trainable<core::BootlegModel> serial_t(serial.get());
  const core::TrainStats serial_stats = core::Train(&serial_t, examples_, options);
  EXPECT_EQ(serial_stats.threads, 1);

  options.num_threads = 1;  // explicit 1 must take the identical serial path
  auto one = MakeModel();
  core::Trainable<core::BootlegModel> one_t(one.get());
  const core::TrainStats one_stats = core::Train(&one_t, examples_, options);
  EXPECT_EQ(one_stats.threads, 1);
  EXPECT_EQ(one_stats.steps, serial_stats.steps);
  EXPECT_EQ(StoreDigest(one->store()), StoreDigest(serial->store()));
}

TEST_F(ParallelTrainTest, ParallelTrainingIsDeterministicForFixedThreadCount) {
  ThreadPool::ResetGlobal(3);
  core::TrainOptions options;
  options.epochs = 1;
  options.num_threads = 3;

  auto first = MakeModel();
  core::Trainable<core::BootlegModel> first_t(first.get());
  const core::TrainStats stats = core::Train(&first_t, examples_, options);
  EXPECT_EQ(stats.threads, 3);
  EXPECT_GT(stats.steps, 0);

  auto second = MakeModel();
  core::Trainable<core::BootlegModel> second_t(second.get());
  core::Train(&second_t, examples_, options);
  EXPECT_EQ(StoreDigest(first->store()), StoreDigest(second->store()));
}

TEST_F(ParallelTrainTest, ParallelTrainingReducesLoss) {
  ThreadPool::ResetGlobal(4);
  auto model = MakeModel();
  const double before = EvalLoss(model.get());

  core::TrainOptions options;
  options.epochs = 2;
  options.num_threads = 4;
  core::Trainable<core::BootlegModel> trainable(model.get());
  const core::TrainStats stats = core::Train(&trainable, examples_, options);
  EXPECT_EQ(stats.threads, 4);

  const double after = EvalLoss(model.get());
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_LT(after, before);
}

TEST_F(ParallelTrainTest, ParallelEvaluationMatchesSerial) {
  ThreadPool::ResetGlobal(4);
  auto model = MakeModel();
  const data::ExampleOptions ex_options;

  const eval::ResultSet serial = eval::RunEvaluation(
      model.get(), corpus_.test, *builder_, ex_options, counts_,
      /*num_threads=*/1);
  const eval::ResultSet parallel = eval::RunEvaluation(
      model.get(), corpus_.test, *builder_, ex_options, counts_,
      /*num_threads=*/4);

  ASSERT_EQ(parallel.records().size(), serial.records().size());
  for (size_t i = 0; i < serial.records().size(); ++i) {
    const eval::PredictionRecord& s = serial.records()[i];
    const eval::PredictionRecord& p = parallel.records()[i];
    EXPECT_EQ(p.sentence, s.sentence);
    EXPECT_EQ(p.mention_idx, s.mention_idx);
    EXPECT_EQ(p.gold, s.gold);
    EXPECT_EQ(p.predicted, s.predicted);
    EXPECT_EQ(p.bucket, s.bucket);
  }
  EXPECT_EQ(parallel.Overall().correct, serial.Overall().correct);
}

}  // namespace
}  // namespace bootleg

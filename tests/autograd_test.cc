#include "tensor/autograd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"

namespace bootleg::tensor {
namespace {

Var Leaf(std::vector<int64_t> shape, uint64_t seed, float stddev = 1.0f) {
  util::Rng rng(seed);
  return Var::Leaf(Tensor::Randn(std::move(shape), &rng, stddev), true);
}

TEST(AutogradTest, LeafProperties) {
  Var v = Var::Leaf(Tensor::FromVector({1, 2}), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_TRUE(v.defined());
  Var c = Var::Constant(Tensor::FromVector({1}));
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, BackwardThroughSum) {
  Var x = Var::Leaf(Tensor::FromVector({1, 2, 3}), true);
  Var loss = Sum(x);
  Backward(loss);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(x.grad().at(i), 1.0f);
}

TEST(AutogradTest, BackwardThroughMean) {
  Var x = Var::Leaf(Tensor::FromVector({1, 2, 3, 4}), true);
  Backward(Mean(x));
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(x.grad().at(i), 0.25f, 1e-6f);
}

TEST(AutogradTest, GradientAccumulatesWhenVarReused) {
  // Diamond graph: loss = sum(x + x) → dx = 2.
  Var x = Var::Leaf(Tensor::FromVector({1, 2}), true);
  Backward(Sum(Add(x, x)));
  EXPECT_EQ(x.grad().at(0), 2.0f);
  EXPECT_EQ(x.grad().at(1), 2.0f);
}

TEST(AutogradTest, NoGradIntoConstants) {
  Var x = Var::Leaf(Tensor::FromVector({1, 2}), true);
  Var c = Var::Constant(Tensor::FromVector({3, 4}));
  Backward(Sum(Mul(x, c)));
  EXPECT_EQ(x.grad().at(0), 3.0f);
  EXPECT_TRUE(c.grad().empty());
}

TEST(AutogradTest, ZeroGradClears) {
  Var x = Var::Leaf(Tensor::FromVector({1}), true);
  Backward(Sum(x));
  EXPECT_EQ(x.grad().at(0), 1.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad().at(0), 0.0f);
}

TEST(AutogradTest, MatMulGradientKnownValue) {
  // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
  Var a = Var::Leaf(Tensor({1, 2}, {1, 2}), true);
  Var b = Var::Leaf(Tensor({2, 1}, {3, 4}), true);
  Backward(Sum(MatMul(a, b)));
  EXPECT_EQ(a.grad().at(0), 3.0f);
  EXPECT_EQ(a.grad().at(1), 4.0f);
  EXPECT_EQ(b.grad().at(0), 1.0f);
  EXPECT_EQ(b.grad().at(1), 2.0f);
}

TEST(AutogradTest, CrossEntropyForwardValue) {
  // Uniform logits → loss = log(C).
  Var logits = Var::Leaf(Tensor({2, 4}), true);
  Var loss = CrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.value().at(0), std::log(4.0f), 1e-5f);
}

TEST(AutogradTest, CrossEntropyGradientDirection) {
  Var logits = Var::Leaf(Tensor({1, 3}), true);
  Backward(CrossEntropy(logits, {1}));
  // Target logit grad negative, others positive.
  EXPECT_LT(logits.grad().at(0, 1), 0.0f);
  EXPECT_GT(logits.grad().at(0, 0), 0.0f);
  EXPECT_GT(logits.grad().at(0, 2), 0.0f);
}

TEST(AutogradTest, MaxRoutesGradientToWinner) {
  Var a = Var::Leaf(Tensor::FromVector({5, 1}), true);
  Var b = Var::Leaf(Tensor::FromVector({2, 3}), true);
  Backward(Sum(Max(a, b)));
  EXPECT_EQ(a.grad().at(0), 1.0f);
  EXPECT_EQ(a.grad().at(1), 0.0f);
  EXPECT_EQ(b.grad().at(0), 0.0f);
  EXPECT_EQ(b.grad().at(1), 1.0f);
}

TEST(AutogradTest, GatherRowsScattersGradient) {
  Var table = Var::Leaf(Tensor({3, 2}), true);
  Backward(Sum(GatherRows(table, {1, 1, 2})));
  EXPECT_EQ(table.grad().at(0, 0), 0.0f);
  EXPECT_EQ(table.grad().at(1, 0), 2.0f);  // gathered twice
  EXPECT_EQ(table.grad().at(2, 0), 1.0f);
}

TEST(AutogradTest, AddScaledIdentityForwardAndGrad) {
  Tensor k({2, 2}, {0, 1, 1, 0});
  Var w = Var::Leaf(Tensor::FromVector({0.5f}), true);
  Var out = AddScaledIdentity(k, w);
  EXPECT_EQ(out.value().at(0, 0), 0.5f);
  EXPECT_EQ(out.value().at(0, 1), 1.0f);
  Backward(Sum(out));
  EXPECT_EQ(w.grad().at(0), 2.0f);  // trace of the all-ones gradient
}

TEST(AutogradTest, InferenceGraphRecordsNoBackward) {
  Var c1 = Var::Constant(Tensor::FromVector({1, 2}));
  Var c2 = Var::Constant(Tensor::FromVector({3, 4}));
  Var out = Add(c1, c2);
  EXPECT_FALSE(out.requires_grad());
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checks for every differentiable op. These are
// the property tests certifying the autograd engine.
// ---------------------------------------------------------------------------

using LossFn = std::function<Var(const std::vector<Var>&)>;

struct GradCase {
  const char* name;
  std::vector<std::vector<int64_t>> shapes;
  LossFn loss;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  std::vector<Var> leaves;
  for (size_t i = 0; i < c.shapes.size(); ++i) {
    leaves.push_back(Leaf(c.shapes[i], 100 + i, 0.5f));
  }
  const GradCheckResult result = CheckGradients(c.loss, &leaves);
  EXPECT_TRUE(result.ok) << c.name << " max rel err " << result.max_rel_error;
}

const GradCase kCases[] = {
    {"matmul", {{3, 4}, {4, 2}},
     [](const std::vector<Var>& v) { return Sum(MatMul(v[0], v[1])); }},
    {"add", {{2, 3}, {2, 3}},
     [](const std::vector<Var>& v) { return Sum(Mul(Add(v[0], v[1]), v[0])); }},
    {"sub", {{2, 3}, {2, 3}},
     [](const std::vector<Var>& v) { return Sum(Mul(Sub(v[0], v[1]), v[1])); }},
    {"mul", {{4}, {4}},
     [](const std::vector<Var>& v) { return Sum(Mul(v[0], v[1])); }},
    {"scale", {{5}},
     [](const std::vector<Var>& v) { return Sum(Scale(v[0], -2.5f)); }},
    {"add_row_broadcast", {{3, 4}, {4}},
     [](const std::vector<Var>& v) {
       return Sum(Mul(AddRowBroadcast(v[0], v[1]), v[0]));
     }},
    {"relu", {{8}},
     [](const std::vector<Var>& v) { return Sum(Mul(Relu(v[0]), v[0])); }},
    {"tanh", {{6}},
     [](const std::vector<Var>& v) { return Sum(TanhV(v[0])); }},
    {"gelu", {{6}},
     [](const std::vector<Var>& v) { return Sum(Gelu(v[0])); }},
    {"softmax", {{3, 5}},
     [](const std::vector<Var>& v) {
       // Weighted sum breaks the softmax's sum-to-one degeneracy.
       util::Rng rng(9);
       static const Tensor kW = Tensor::Randn({3, 5}, &rng);
       return Sum(MulConst(SoftmaxRows(v[0]), kW));
     }},
    {"log_softmax", {{2, 4}},
     [](const std::vector<Var>& v) {
       util::Rng rng(10);
       static const Tensor kW = Tensor::Randn({2, 4}, &rng);
       return Sum(MulConst(LogSoftmaxRows(v[0]), kW));
     }},
    {"transpose", {{3, 2}},
     [](const std::vector<Var>& v) {
       return Sum(MatMul(Transpose(v[0]), v[0]));
     }},
    {"concat_cols", {{2, 2}, {2, 3}},
     [](const std::vector<Var>& v) {
       Var c = ConcatCols({v[0], v[1]});
       return Sum(Mul(c, c));
     }},
    {"concat_rows", {{2, 3}, {1, 3}},
     [](const std::vector<Var>& v) {
       Var c = ConcatRows({v[0], v[1]});
       return Sum(Mul(c, c));
     }},
    {"slice_cols", {{3, 5}},
     [](const std::vector<Var>& v) {
       Var s = SliceCols(v[0], 1, 3);
       return Sum(Mul(s, s));
     }},
    {"slice_rows", {{5, 2}},
     [](const std::vector<Var>& v) {
       Var s = SliceRows(v[0], 2, 2);
       return Sum(Mul(s, s));
     }},
    {"gather_rows", {{4, 3}},
     [](const std::vector<Var>& v) {
       Var g = GatherRows(v[0], {0, 2, 2});
       return Sum(Mul(g, g));
     }},
    {"max", {{6}, {6}},
     [](const std::vector<Var>& v) { return Sum(Mul(Max(v[0], v[1]), v[0])); }},
    {"layer_norm", {{3, 6}, {6}, {6}},
     [](const std::vector<Var>& v) {
       util::Rng rng(11);
       static const Tensor kW = Tensor::Randn({3, 6}, &rng);
       return Sum(MulConst(LayerNorm(v[0], v[1], v[2]), kW));
     }},
    {"cross_entropy", {{3, 4}},
     [](const std::vector<Var>& v) { return CrossEntropy(v[0], {1, 0, 3}); }},
    {"add_scaled_identity", {{1}},
     [](const std::vector<Var>& v) {
       Tensor k({3, 3}, {0, 1, 0, 1, 0, 1, 0, 1, 0});
       Var attn = SoftmaxRows(AddScaledIdentity(k, v[0]));
       util::Rng rng(12);
       static const Tensor kW = Tensor::Randn({3, 3}, &rng);
       return Sum(MulConst(attn, kW));
     }},
    {"mean_rows", {{4, 3}},
     [](const std::vector<Var>& v) {
       Var m = MeanRows(v[0]);
       return Sum(Mul(m, m));
     }},
    {"composite_mlp", {{2, 4}, {4, 3}, {3}},
     [](const std::vector<Var>& v) {
       Var h = Relu(AddRowBroadcast(MatMul(v[0], v[1]), v[2]));
       return Mean(Mul(h, h));
     }},
    {"composite_attention", {{2, 4}, {3, 4}},
     [](const std::vector<Var>& v) {
       Var scores = Scale(MatMul(v[0], Transpose(v[1])), 0.5f);
       Var attn = SoftmaxRows(scores);
       return Sum(MatMul(attn, v[1]));
     }},
};

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace bootleg::tensor

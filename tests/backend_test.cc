// Inference-backend seam: the factory must resolve every documented spec and
// reject unknown ones, the SIMD backend must be bitwise identical to the
// reference backend on every kernel shape class at every thread count (the
// probe guarantees this by construction — these tests pin the guarantee),
// the q8 primitives must round-trip within the per-block half-step bound,
// and an engine serving with --backend=simd must produce byte-identical
// predictions to --backend=ref while --backend=simd_q8 keeps every argmax.

#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.h"
#include "backend/simd_primitives.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/world.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;

// --- Factory -----------------------------------------------------------------

TEST(BackendFactoryTest, ResolvesEveryDocumentedSpec) {
  for (const auto& [spec, name] :
       std::vector<std::pair<std::string, std::string>>{
           {"", "ref"},
           {"ref", "ref"},
           {"simd", "simd"},
           {"simd_q8", "simd_q8"}}) {
    auto be = backend::Backend::Create(spec);
    ASSERT_TRUE(be.ok()) << spec;
    EXPECT_EQ(be.value()->name(), name) << spec;
  }
}

TEST(BackendFactoryTest, RejectsUnknownSpec) {
  auto be = backend::Backend::Create("avx512");
  ASSERT_FALSE(be.ok());
  EXPECT_NE(be.status().message().find("unknown backend"), std::string::npos);
}

TEST(BackendFactoryTest, ReferenceInstanceIsSharedAndNamedRef) {
  const backend::Backend* ref = backend::Backend::ReferenceInstance();
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref, backend::Backend::ReferenceInstance());
  EXPECT_STREQ(ref->name(), "ref");
  EXPECT_FALSE(ref->stats().simd_active);
}

// --- Kernel-level equivalence ------------------------------------------------

bool BitEqual(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// Shape triples covering every internal branch of the SIMD kernels: wide and
// narrow column counts (16/8-wide blocks and scalar tails), row-block tails,
// k tails, the k < 16 transposed-B delegation branch, and the n = 1 matvec
// the scorer uses.
const int64_t kShapes[][3] = {
    {1, 16, 40}, {2, 5, 3},   {3, 33, 7},  {4, 64, 16},
    {5, 67, 35}, {6, 130, 24}, {9, 64, 1},  {13, 128, 128},
};

TEST(SimdBackendTest, KernelsBitIdenticalToReferenceAcrossThreadCounts) {
  auto simd = backend::Backend::Create("simd").value();
  const backend::Backend* ref = backend::Backend::ReferenceInstance();
  util::Rng rng(321);
  for (const int threads : {1, 4}) {
    util::ThreadPool::ResetGlobal(threads);
    for (const auto& shape : kShapes) {
      const int64_t m = shape[0], k = shape[1], n = shape[2];
      const tensor::Tensor a = tensor::Tensor::Randn({m, k}, &rng, 1.0f);
      const tensor::Tensor b = tensor::Tensor::Randn({k, n}, &rng, 1.0f);
      const tensor::Tensor bias = tensor::Tensor::Randn({n}, &rng, 1.0f);
      EXPECT_TRUE(BitEqual(simd->MatMul(a, b), ref->MatMul(a, b)))
          << "MatMul " << m << "x" << k << "x" << n << " threads=" << threads;
      EXPECT_TRUE(BitEqual(simd->LinearForward(a, b, bias),
                           ref->LinearForward(a, b, bias)))
          << "Linear " << m << "x" << k << "x" << n << " threads=" << threads;
      const tensor::Tensor at = tensor::Tensor::Randn({k, m}, &rng, 1.0f);
      EXPECT_TRUE(BitEqual(simd->MatMulTransposedA(at, b),
                           ref->MatMulTransposedA(at, b)))
          << "MatMulTA " << m << "x" << k << "x" << n
          << " threads=" << threads;
      const tensor::Tensor bt = tensor::Tensor::Randn({n, k}, &rng, 1.0f);
      for (const float alpha : {1.0f, 0.25f}) {
        EXPECT_TRUE(BitEqual(simd->ScaledMatMulTransposedB(a, bt, alpha),
                             ref->ScaledMatMulTransposedB(a, bt, alpha)))
            << "MatMulTB " << m << "x" << k << "x" << n << " alpha=" << alpha
            << " threads=" << threads;
      }
      EXPECT_TRUE(BitEqual(simd->SoftmaxRows(a), ref->SoftmaxRows(a)))
          << "Softmax " << m << "x" << k << " threads=" << threads;
    }
  }
  util::ThreadPool::ResetGlobal(1);
}

TEST(SimdBackendTest, StatsReportProbeOutcome) {
  auto simd = backend::Backend::Create("simd").value();
  const backend::BackendStats st = simd->stats();
  EXPECT_EQ(st.name, "simd");
  EXPECT_EQ(st.quant_block, 0);
  // simd_active must agree with the public availability probe — and when the
  // SIMD kernels are active the ISA string must say which ones.
  EXPECT_EQ(st.simd_active, backend::Backend::SimdAvailable());
  if (st.simd_active) {
    EXPECT_NE(st.isa.find("avx2+fma"), std::string::npos) << st.isa;
  }
}

// --- q8 primitives -----------------------------------------------------------

TEST(Q8PrimitivesTest, QuantizeRoundTripsWithinHalfStepPerBlock) {
  util::Rng rng(17);
  for (const int64_t n : {1, 31, 32, 33, 96, 250}) {
    const int64_t blocks = backend::NumQ8Blocks(n);
    std::vector<float> src(static_cast<size_t>(n));
    for (float& v : src) v = static_cast<float>(rng.Normal(0.0, 2.0));
    std::vector<int8_t> q(static_cast<size_t>(blocks * backend::kQ8Block));
    std::vector<float> scales(static_cast<size_t>(blocks));
    backend::QuantizeBlocksQ8(src.data(), n, q.data(), scales.data());
    std::vector<float> back(static_cast<size_t>(blocks * backend::kQ8Block));
    for (int64_t b = 0; b < blocks; ++b) {
      backend::DequantRow(q.data() + b * backend::kQ8Block, backend::kQ8Block,
                          scales[static_cast<size_t>(b)],
                          back.data() + b * backend::kQ8Block);
    }
    for (int64_t j = 0; j < n; ++j) {
      const float step = scales[static_cast<size_t>(j / backend::kQ8Block)];
      EXPECT_LE(std::fabs(back[static_cast<size_t>(j)] -
                          src[static_cast<size_t>(j)]),
                0.5f * step * (1.0f + 1e-5f))
          << "n=" << n << " j=" << j;
    }
    // Padded tail bytes must be zero so they contribute nothing to dots.
    for (int64_t j = n; j < blocks * backend::kQ8Block; ++j) {
      EXPECT_EQ(q[static_cast<size_t>(j)], 0) << "n=" << n << " j=" << j;
    }
  }
}

TEST(Q8PrimitivesTest, DotMatchesFloatDotWithinQuantizationError) {
  util::Rng rng(18);
  const int64_t n = 200;
  const int64_t blocks = backend::NumQ8Blocks(n);
  std::vector<float> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (float& v : x) v = static_cast<float>(rng.Normal(0.0, 1.0));
  for (float& v : y) v = static_cast<float>(rng.Normal(0.0, 1.0));
  std::vector<int8_t> qx(static_cast<size_t>(blocks * backend::kQ8Block));
  std::vector<int8_t> qy(static_cast<size_t>(blocks * backend::kQ8Block));
  std::vector<float> sx(static_cast<size_t>(blocks)),
      sy(static_cast<size_t>(blocks));
  backend::QuantizeBlocksQ8(x.data(), n, qx.data(), sx.data());
  backend::QuantizeBlocksQ8(y.data(), n, qy.data(), sy.data());
  const float got = backend::DotQ8(qx.data(), sx.data(), qy.data(), sy.data(),
                                   blocks);
  double want = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    want += static_cast<double>(x[static_cast<size_t>(j)]) *
            static_cast<double>(y[static_cast<size_t>(j)]);
  }
  // Each factor is within scale/2 of its float value, so the dot error is
  // bounded by sum_j (|x_j| sy/2 + |y_j| sx/2 + sx sy/4); a loose 0.05 * n
  // envelope covers it for unit-normal data by a wide margin.
  EXPECT_NEAR(got, want, 0.05 * static_cast<double>(n));
}

TEST(Q8BackendTest, QuantizedLinearTracksFloatLinear) {
  auto q8 = backend::Backend::Create("simd_q8").value();
  util::Rng rng(19);
  const int64_t in = 96, out = 40, m = 7;
  const tensor::Tensor w = tensor::Tensor::Randn({in, out}, &rng, 0.2f);
  const tensor::Tensor bias = tensor::Tensor::Randn({out}, &rng, 0.2f);
  q8->LoadModel({{"probe_layer", &w, &bias}});

  const backend::BackendStats st = q8->stats();
  EXPECT_EQ(st.name, "simd_q8");
  EXPECT_EQ(st.quant_block, backend::kQ8Block);
  EXPECT_EQ(st.quantized_tensors, 1);
  EXPECT_GT(st.quantized_bytes, 0);
  EXPECT_GT(st.quant_max_abs_error, 0.0);
  // Per-block symmetric int8: error is at most half a step, and for 0.2-σ
  // normals a step is ~4σ/127 — pin an order-of-magnitude envelope.
  EXPECT_LT(st.quant_max_abs_error, 0.01);
  EXPECT_LE(st.quant_mean_abs_error, st.quant_max_abs_error);

  const tensor::Tensor x = tensor::Tensor::Randn({m, in}, &rng, 1.0f);
  const tensor::Tensor got = q8->LinearForward(x, w, bias);
  const tensor::Tensor want =
      backend::Backend::ReferenceInstance()->LinearForward(x, w, bias);
  ASSERT_TRUE(got.shape() == want.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got.at(i), want.at(i), 0.5f) << "i=" << i;
  }

  // A weight that was never registered must fall back to the float path and
  // match the reference bitwise.
  const tensor::Tensor w2 = tensor::Tensor::Randn({in, out}, &rng, 0.2f);
  EXPECT_TRUE(BitEqual(
      q8->LinearForward(x, w2, bias),
      backend::Backend::ReferenceInstance()->LinearForward(x, w2, bias)));
}

// --- Engine-level equivalence ------------------------------------------------

std::string TestDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bootleg_backend_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct BackendWorld {
  std::string data_dir;
  std::string model_path;
  data::SynthWorld world;
  data::Corpus corpus;
};

const BackendWorld& GetBackendWorld() {
  static const BackendWorld* shared = [] {
    auto* bw = new BackendWorld();
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_pages = 40;
    bw->world = data::BuildWorld(config);
    data::CorpusGenerator generator(&bw->world);
    bw->corpus = generator.Generate();
    bw->data_dir = TestDir("engine_world");
    BOOTLEG_CHECK(bw->world.kb.Save(bw->data_dir + "/kb.bin").ok());
    BOOTLEG_CHECK(
        bw->world.candidates.Save(bw->data_dir + "/candidates.bin").ok());
    BOOTLEG_CHECK(bw->world.vocab.Save(bw->data_dir + "/vocab.bin").ok());
    core::BootlegConfig model_config;
    model_config.encoder.max_len = 32;
    core::BootlegModel model(&bw->world.kb, bw->world.vocab.size(),
                             model_config, /*seed=*/123);
    // Briefly train before saving: the q8 argmax-stability test needs real
    // score margins, and an untrained model scores candidates as near-ties.
    data::ExampleBuilder builder(&bw->world.candidates, &bw->world.vocab);
    const std::vector<data::SentenceExample> train_examples =
        builder.BuildAll(bw->corpus.train, data::ExampleOptions());
    core::Trainable<core::BootlegModel> trainable(&model);
    core::TrainOptions train_options;
    train_options.epochs = 8;
    train_options.num_threads = 1;
    core::Train(&trainable, train_examples, train_options);
    bw->model_path = bw->data_dir + "/model.bin";
    BOOTLEG_CHECK(model.store().Save(bw->model_path).ok());
    return bw;
  }();
  return *shared;
}

std::unique_ptr<serve::InferenceEngine> MakeEngine(
    const std::string& backend_spec) {
  const BackendWorld& bw = GetBackendWorld();
  serve::EngineOptions options;
  options.data_dir = bw.data_dir;
  options.model_path = bw.model_path;
  options.backend = backend_spec;
  auto engine = serve::InferenceEngine::Create(options);
  BOOTLEG_CHECK_MSG(engine.ok(), engine.status().ToString());
  return std::move(engine.value());
}

std::vector<data::SentenceExample> DevExamples() {
  const BackendWorld& bw = GetBackendWorld();
  data::ExampleBuilder builder(&bw.world.candidates, &bw.world.vocab);
  data::ExampleOptions options;
  options.include_weak_labels = false;
  return builder.BuildAll(bw.corpus.dev, options);
}

TEST(BackendEngineTest, UnknownBackendFailsEngineCreation) {
  const BackendWorld& bw = GetBackendWorld();
  serve::EngineOptions options;
  options.data_dir = bw.data_dir;
  options.model_path = bw.model_path;
  options.backend = "gpu";
  auto engine = serve::InferenceEngine::Create(options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("unknown backend"),
            std::string::npos);
}

TEST(BackendEngineTest, SimdServingIsBitIdenticalToRef) {
  const std::vector<data::SentenceExample> examples = DevExamples();
  ASSERT_GT(examples.size(), 8u);

  auto ref_engine = MakeEngine("ref");
  auto simd_engine = MakeEngine("simd");
  EXPECT_EQ(ref_engine->model().inference_backend()->stats().name, "ref");
  EXPECT_EQ(simd_engine->model().inference_backend()->stats().name, "simd");

  core::BootlegModel::InferenceScratch ref_scratch, simd_scratch;
  for (const int threads : {1, 4}) {
    util::ThreadPool::ResetGlobal(threads);
    for (const size_t batch_size :
         {size_t{1}, size_t{3}, size_t{8}, examples.size()}) {
      for (size_t begin = 0; begin < examples.size(); begin += batch_size) {
        const size_t end = std::min(examples.size(), begin + batch_size);
        std::vector<const data::SentenceExample*> batch;
        for (size_t i = begin; i < end; ++i) batch.push_back(&examples[i]);
        const auto want = ref_engine->PredictExamples(batch, &ref_scratch);
        const auto got = simd_engine->PredictExamples(batch, &simd_scratch);
        ASSERT_EQ(got, want) << "batch_size=" << batch_size
                             << " threads=" << threads << " begin=" << begin;
      }
    }
  }
  util::ThreadPool::ResetGlobal(1);
}

TEST(BackendEngineTest, Q8ServingKeepsEveryArgmaxAndPublishesGauges) {
  const std::vector<data::SentenceExample> examples = DevExamples();
  auto ref_engine = MakeEngine("ref");
  auto q8_engine = MakeEngine("simd_q8");

  const backend::BackendStats st =
      q8_engine->model().inference_backend()->stats();
  EXPECT_EQ(st.name, "simd_q8");
  EXPECT_EQ(st.quant_block, backend::kQ8Block);
  EXPECT_GT(st.quantized_tensors, 0);
  EXPECT_GT(st.quantized_bytes, 0);
  EXPECT_GT(st.quant_max_abs_error, 0.0);

  // Engine construction published the backend.* gauges (the q8 engine was
  // created last, so the registry holds its values).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetGauge("backend.quant_block")->value(),
            static_cast<double>(backend::kQ8Block));
  EXPECT_EQ(reg.GetGauge("backend.quantized_tensors")->value(),
            static_cast<double>(st.quantized_tensors));
  EXPECT_GT(reg.GetGauge("backend.quant_max_abs_error")->value(), 0.0);

  core::BootlegModel::InferenceScratch ref_scratch, q8_scratch;
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  const auto want = ref_engine->PredictExamples(batch, &ref_scratch);
  const auto got = q8_engine->PredictExamples(batch, &q8_scratch);
  // Per-block quantization error is far below the synthetic world's score
  // margins: the argmax must not move on any mention.
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace bootleg

// Robustness and contract tests: CHECK-violation death tests, deep autograd
// graphs (iterative topo-sort), oversize inputs, and data-quality invariants
// that the generator must maintain for training to be meaningful.
#include <gtest/gtest.h>

#include "data/example.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "kb/candidate_map.h"
#include "tensor/autograd.h"
#include "text/word_encoder.h"

namespace bootleg {
namespace {

using tensor::Tensor;
using tensor::Var;

TEST(DeathTest, MatMulShapeMismatchAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_DEATH((void)tensor::MatMul(a, b), "Check failed");
}

TEST(DeathTest, OutOfRangeAccessAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor t({2, 2});
  EXPECT_DEATH((void)t.at(5, 0), "Check failed");
}

TEST(DeathTest, BackwardRequiresScalarLoss) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Var v = Var::Leaf(Tensor({2, 2}), true);
  EXPECT_DEATH(tensor::Backward(v), "Check failed");
}

TEST(DeathTest, CandidateMapLookupBeforeFinalizeAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  kb::CandidateMap map;
  map.AddAlias("a", 0);
  EXPECT_DEATH((void)map.Lookup("a"), "not finalized");
}

TEST(DeathTest, ConcatColsRowMismatchAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor a({2, 2});
  Tensor b({3, 2});
  EXPECT_DEATH((void)tensor::ConcatCols({a, b}), "Check failed");
}

TEST(RobustnessTest, DeepGraphBackwardDoesNotOverflowStack) {
  // 4000 chained ops: a recursive topo-sort would blow the stack.
  Var x = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Var h = x;
  for (int i = 0; i < 4000; ++i) {
    h = tensor::Scale(h, 1.0001f);
  }
  tensor::Backward(tensor::Sum(h));
  EXPECT_GT(x.grad().at(0), 1.0f);
  EXPECT_LT(x.grad().at(0), 2.0f);
}

TEST(RobustnessTest, WideFanoutGradientAccumulation) {
  Var x = Var::Leaf(Tensor::FromVector({2.0f}), true);
  std::vector<Var> branches;
  for (int i = 0; i < 64; ++i) branches.push_back(tensor::Scale(x, 1.0f));
  Var total = branches[0];
  for (size_t i = 1; i < branches.size(); ++i) {
    total = tensor::Add(total, branches[i]);
  }
  tensor::Backward(tensor::Sum(total));
  EXPECT_EQ(x.grad().at(0), 64.0f);
}

TEST(RobustnessTest, EncoderHandlesSingleToken) {
  util::Rng rng(1);
  nn::ParameterStore store;
  text::WordEncoderConfig config;
  config.hidden = 16;
  config.ff_inner = 32;
  config.max_len = 8;
  text::WordEncoder encoder(&store, "e", 20, config, &rng);
  Var w = encoder.Encode({5}, &rng, false);
  EXPECT_EQ(w.value().size(0), 1);
  EXPECT_TRUE(tensor::AllFinite(w.value()));
}

TEST(RobustnessTest, ZipfExtremeSkewStaysBounded) {
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.Zipf(1000000, 2.5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000000);
  }
}

class DataQualityTest : public ::testing::Test {
 protected:
  DataQualityTest() : world_(data::BuildWorld(data::SynthConfig::MicroScale())) {
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    data::ApplyWeakLabeling(world_.kb, &corpus_.train);
  }
  data::SynthWorld world_;
  data::Corpus corpus_;
};

TEST_F(DataQualityTest, CandidateRecallIsHigh) {
  // Candidate generation must contain the gold for the vast majority of
  // labeled mentions (the paper drops only ~1% to this filter).
  int64_t total = 0, covered = 0;
  data::ExampleBuilder builder(&world_.candidates, &world_.vocab);
  for (const data::Sentence& s : corpus_.train) {
    const data::SentenceExample ex = builder.Build(s, data::ExampleOptions());
    for (const data::MentionExample& m : ex.mentions) {
      ++total;
      if (m.GoldInCandidates()) ++covered;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(covered) / total, 0.85);
}

TEST_F(DataQualityTest, MostEvalMentionsAreAmbiguous) {
  int64_t total = 0, ambiguous = 0;
  data::ExampleBuilder builder(&world_.candidates, &world_.vocab);
  for (const data::Sentence& s : corpus_.dev) {
    const data::SentenceExample ex = builder.Build(s, data::ExampleOptions());
    for (const data::MentionExample& m : ex.mentions) {
      ++total;
      if (m.HasMultipleCandidates()) ++ambiguous;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(ambiguous) / total, 0.5);
}

TEST_F(DataQualityTest, TailBucketsArePopulated) {
  const data::EntityCounts counts = data::EntityCounts::FromTraining(corpus_.train);
  int64_t tail = 0, torso = 0, unseen = 0;
  for (const data::Sentence& s : corpus_.dev) {
    for (const data::Mention& m : s.mentions) {
      switch (counts.BucketOf(m.gold)) {
        case data::PopularityBucket::kTail:
          ++tail;
          break;
        case data::PopularityBucket::kTorso:
          ++torso;
          break;
        case data::PopularityBucket::kUnseen:
          ++unseen;
          break;
        default:
          break;
      }
    }
  }
  // Every bucket the paper evaluates must be non-trivially populated.
  EXPECT_GT(tail, 30);
  EXPECT_GT(torso, 30);
  EXPECT_GT(unseen, 10);
}

TEST_F(DataQualityTest, PatternCoverageMatchesPaperOrdering) {
  // The paper: affordance covers most examples, KG relations a quarter,
  // consistency a tenth. The generator's template mix must respect the
  // ordering affordance > relation > consistency.
  int64_t total = 0, with_type_kw = 0, in_relation = 0, in_list = 0;
  for (const data::Sentence& s : corpus_.dev) {
    for (size_t mi = 0; mi < s.mentions.size(); ++mi) {
      ++total;
      const kb::EntityId gold = s.mentions[mi].gold;
      for (const std::string& tok : s.tokens) {
        bool is_type_kw = false;
        for (kb::TypeId t : world_.kb.entity(gold).types) {
          for (const std::string& kw :
               world_.type_keywords[static_cast<size_t>(t)]) {
            if (tok == kw) is_type_kw = true;
          }
        }
        if (is_type_kw) {
          ++with_type_kw;
          break;
        }
      }
      for (size_t j = 0; j < s.mentions.size(); ++j) {
        if (j != mi && world_.kb.Connected(gold, s.mentions[j].gold)) {
          ++in_relation;
          break;
        }
      }
      if (s.mentions.size() >= 3) ++in_list;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(with_type_kw, in_relation);
  EXPECT_GT(in_relation, in_list / 3);  // lists triple-count their mentions
}

TEST_F(DataQualityTest, WeakLabelNoiseIsBounded) {
  // The alt-name heuristic is deliberately noisy but must be right most of
  // the time (the generator's page references do refer to the page entity).
  int64_t weak = 0;
  for (const data::Sentence& s : corpus_.train) {
    for (const data::Mention& m : s.mentions) {
      if (m.weak_labeled) ++weak;
    }
  }
  EXPECT_GT(weak, 100);
}

}  // namespace
}  // namespace bootleg

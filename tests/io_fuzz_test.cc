// Corruption fuzzing for the v1 snapshot formats: every truncation point and
// a sweep of single-byte flips over saved ParameterStore and KnowledgeBase
// files must produce Status::Corruption — never a crash, CHECK-abort, or
// multi-GB allocation. Run under ASan via tools/check.sh to also rule out
// silent out-of-bounds reads.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kb/kb.h"
#include "nn/param_store.h"
#include "tensor/tensor.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;
using tensor::Tensor;

std::string FuzzDir() {
  const std::string dir =
      (fs::temp_directory_path() / "bootleg_io_fuzz_test").string();
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void BuildStore(nn::ParameterStore* store) {
  util::Rng rng(17);
  store->CreateParam("enc/w", Tensor::Randn({6, 5}, &rng));
  store->CreateParam("enc/b", Tensor::Randn({5}, &rng));
  store->CreateEmbedding("ent", 8, 4, &rng);
}

kb::KnowledgeBase BuildKb() {
  kb::KnowledgeBase kb;
  const kb::TypeId person = kb.AddType("person", kb::CoarseType::kPerson);
  const kb::TypeId city = kb.AddType("city", kb::CoarseType::kLocation);
  const kb::RelationId born_in = kb.AddRelation("born in");
  kb::Entity a;
  a.title = "ada_lovelace";
  a.aliases = {"ada", "lovelace"};
  a.types = {person};
  a.coarse_type = kb::CoarseType::kPerson;
  a.gender = 'f';
  kb.AddEntity(a);
  kb::Entity b;
  b.title = "london";
  b.aliases = {"london"};
  b.types = {city};
  b.coarse_type = kb::CoarseType::kLocation;
  kb.AddEntity(b);
  kb.AddTriple(0, born_in, 1);
  kb.AddSubclass(1, 0);
  return kb;
}

// Loading any corrupted variant must fail with kCorruption and leave the
// process alive; `reload` is a fresh load-into-target callback.
template <typename LoadFn>
void FuzzFile(const std::string& good_path, LoadFn reload) {
  const std::string bytes = ReadAll(good_path);
  ASSERT_FALSE(bytes.empty());
  const std::string path = good_path + ".fuzz";

  // The intact file must load cleanly.
  WriteAll(path, bytes);
  ASSERT_TRUE(reload(path).ok());

  // Every truncation offset, including the empty file.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteAll(path, bytes.substr(0, cut));
    const util::Status st = reload(path);
    ASSERT_FALSE(st.ok()) << "truncation at " << cut << " of " << bytes.size()
                          << " loaded successfully";
    ASSERT_EQ(st.code(), util::StatusCode::kCorruption)
        << "truncation at " << cut << ": " << st.ToString();
  }

  // Single-byte flips at every offset. CRC32 detects all single-byte errors
  // within sections; flips outside sections hit the magic, version, CRC
  // words, or footer, all of which are verified.
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    WriteAll(path, flipped);
    const util::Status st = reload(path);
    ASSERT_FALSE(st.ok()) << "byte flip at " << at << " loaded successfully";
    ASSERT_EQ(st.code(), util::StatusCode::kCorruption)
        << "byte flip at " << at << ": " << st.ToString();
  }

  // Trailing garbage after a byte-identical payload.
  WriteAll(path, bytes + std::string(16, '\x5a'));
  const util::Status st = reload(path);
  ASSERT_FALSE(st.ok());
  ASSERT_EQ(st.code(), util::StatusCode::kCorruption);
  fs::remove(path);
}

TEST(IoFuzzTest, ParameterStoreRejectsEveryTruncationAndByteFlip) {
  const std::string path = FuzzDir() + "/store.bin";
  nn::ParameterStore store;
  BuildStore(&store);
  ASSERT_TRUE(store.Save(path).ok());

  FuzzFile(path, [](const std::string& p) {
    nn::ParameterStore target;
    BuildStore(&target);
    return target.Load(p);
  });
}

TEST(IoFuzzTest, KnowledgeBaseRejectsEveryTruncationAndByteFlip) {
  const std::string path = FuzzDir() + "/kb.bin";
  ASSERT_TRUE(BuildKb().Save(path).ok());

  FuzzFile(path, [](const std::string& p) {
    kb::KnowledgeBase target;
    return target.Load(p);
  });
}

TEST(IoFuzzTest, HugeLengthPrefixIsBoundedByFileSize) {
  const std::string path = FuzzDir() + "/huge.bin";
  {
    util::BinaryWriter w(path);
    w.WriteU64(uint64_t{1} << 40);  // claims a terabyte of string bytes
    ASSERT_TRUE(w.Finish().ok());
  }
  util::BinaryReader r(path);
  const std::string s = r.ReadString();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption);

  util::BinaryReader rf(path);
  EXPECT_TRUE(rf.ReadFloatVector().empty());
  EXPECT_EQ(rf.status().code(), util::StatusCode::kCorruption);

  util::BinaryReader ri(path);
  EXPECT_TRUE(ri.ReadI64Vector().empty());
  EXPECT_EQ(ri.status().code(), util::StatusCode::kCorruption);
}

TEST(IoFuzzTest, LegacyV0FilesStillLoad) {
  // A v0-format ParameterStore file (old magic, no checksums or footer) must
  // keep loading through the compatibility path.
  const std::string path = FuzzDir() + "/legacy.bin";
  nn::ParameterStore store;
  util::Rng rng(5);
  store.CreateParam("w", Tensor::Randn({2, 3}, &rng));
  {
    util::BinaryWriter w(path);
    w.WriteU32(0xB0071E60);  // legacy magic
    w.WriteU64(1);           // one dense param
    w.WriteString("w");
    w.WriteI64Vector({2, 3});
    w.WriteFloatVector(std::vector<float>(6, 0.5f));
    w.WriteU64(0);  // no embeddings
    ASSERT_TRUE(w.Finish().ok());
  }
  ASSERT_TRUE(store.Load(path).ok());
  for (float v : store.GetParam("w").value().vec()) EXPECT_EQ(v, 0.5f);
}

}  // namespace
}  // namespace bootleg

#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bootleg::tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, ShapeAccessors) {
  Tensor t({4, 5});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 4);
  EXPECT_EQ(t.size(1), 5);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(Tensor().empty());
}

TEST(TensorTest, TwoDimensionalIndexingIsRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(5), 7.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t.at(2), 2.5f);
  EXPECT_EQ(Tensor::Ones({2}).Sum(), 2.0f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor eye = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.dim(), 1);
  EXPECT_EQ(t.at(1), 2.0f);
}

TEST(TensorTest, RandnIsDeterministicGivenSeed) {
  util::Rng a(5), b(5);
  Tensor ta = Tensor::Randn({8}, &a);
  Tensor tb = Tensor::Randn({8}, &b);
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(ta.at(i), tb.at(i));
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({2, 3});
  EXPECT_EQ(r.at(1, 0), 4.0f);
}

TEST(TensorTest, AddAxpyScale) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({3, 4});
  a.Add(b);
  EXPECT_EQ(a.at(0), 4.0f);
  a.Axpy(2.0f, b);
  EXPECT_EQ(a.at(1), 14.0f);
  a.Scale(0.5f);
  EXPECT_EQ(a.at(0), 5.0f);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorTest, MatMulRectangular) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.size(0), 1);
  EXPECT_EQ(c.size(1), 2);
  EXPECT_EQ(c.at(0, 0), 4.0f);
  EXPECT_EQ(c.at(0, 1), 5.0f);
}

TEST(TensorTest, FusedTransposedMatMulsAgreeWithExplicit) {
  util::Rng rng(3);
  Tensor a = Tensor::Randn({4, 6}, &rng);
  Tensor b = Tensor::Randn({5, 6}, &rng);
  Tensor via_fused = MatMulTransposedB(a, b);
  Tensor via_explicit = MatMul(a, Transpose(b));
  ASSERT_TRUE(via_fused.SameShape(via_explicit));
  for (int64_t i = 0; i < via_fused.numel(); ++i) {
    EXPECT_NEAR(via_fused.at(i), via_explicit.at(i), 1e-5f);
  }
  Tensor c = Tensor::Randn({6, 3}, &rng);
  Tensor ta_fused = MatMulTransposedA(a, MatMul(a, c));
  Tensor ta_explicit = MatMul(Transpose(a), MatMul(a, c));
  for (int64_t i = 0; i < ta_fused.numel(); ++i) {
    EXPECT_NEAR(ta_fused.at(i), ta_explicit.at(i), 1e-4f);
  }
}

TEST(TensorTest, TransposeRoundTrip) {
  util::Rng rng(4);
  Tensor a = Tensor::Randn({3, 5}, &rng);
  Tensor tt = Transpose(Transpose(a));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), tt.at(i));
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  util::Rng rng(5);
  Tensor a = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor s = SoftmaxRows(a);
  for (int64_t i = 0; i < 4; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxIsShiftInvariant) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {101, 102, 103});
  Tensor sa = SoftmaxRows(a), sb = SoftmaxRows(b);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(sa.at(0, j), sb.at(0, j), 1e-6f);
}

TEST(TensorTest, LogSoftmaxMatchesLogOfSoftmax) {
  util::Rng rng(6);
  Tensor a = Tensor::Randn({3, 5}, &rng, 2.0f);
  Tensor ls = LogSoftmaxRows(a);
  Tensor s = SoftmaxRows(a);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(ls.at(i), std::log(s.at(i)), 1e-5f);
  }
}

TEST(TensorTest, SoftmaxHandlesLargeValues) {
  Tensor a({1, 2}, {1000.0f, 1001.0f});
  Tensor s = SoftmaxRows(a);
  EXPECT_TRUE(AllFinite(s));
  EXPECT_GT(s.at(0, 1), s.at(0, 0));
}

TEST(TensorTest, ReluTanhGelu) {
  Tensor a = Tensor::FromVector({-1.0f, 0.0f, 2.0f});
  Tensor r = Relu(a);
  EXPECT_EQ(r.at(0), 0.0f);
  EXPECT_EQ(r.at(2), 2.0f);
  Tensor t = TanhT(a);
  EXPECT_NEAR(t.at(0), std::tanh(-1.0f), 1e-6f);
  Tensor g = Gelu(a);
  EXPECT_NEAR(g.at(1), 0.0f, 1e-6f);
  EXPECT_GT(g.at(2), 1.9f);  // GELU(2) ≈ 1.954
  EXPECT_LT(g.at(0), 0.0f);  // GELU(-1) ≈ -0.159
}

TEST(TensorTest, MaxElementwise) {
  Tensor a = Tensor::FromVector({1, 5, 3});
  Tensor b = Tensor::FromVector({2, 4, 3});
  Tensor m = Max(a, b);
  EXPECT_EQ(m.at(0), 2.0f);
  EXPECT_EQ(m.at(1), 5.0f);
  EXPECT_EQ(m.at(2), 3.0f);
}

TEST(TensorTest, ConcatAndSliceColsRoundTrip) {
  util::Rng rng(7);
  Tensor a = Tensor::Randn({3, 2}, &rng);
  Tensor b = Tensor::Randn({3, 4}, &rng);
  Tensor c = ConcatCols({a, b});
  EXPECT_EQ(c.size(1), 6);
  Tensor a2 = SliceCols(c, 0, 2);
  Tensor b2 = SliceCols(c, 2, 4);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), a2.at(i));
  for (int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(b.at(i), b2.at(i));
}

TEST(TensorTest, ConcatAndSliceRowsRoundTrip) {
  util::Rng rng(8);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({4, 3}, &rng);
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.size(0), 6);
  Tensor b2 = SliceRows(c, 2, 4);
  for (int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(b.at(i), b2.at(i));
}

TEST(TensorTest, SliceZeroLength) {
  Tensor a({3, 3});
  Tensor s = SliceRows(a, 1, 0);
  EXPECT_EQ(s.size(0), 0);
  EXPECT_EQ(s.numel(), 0);
}

TEST(TensorTest, GatherRows) {
  Tensor table({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(table, {2, 0, 2});
  EXPECT_EQ(g.size(0), 3);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
  EXPECT_EQ(g.at(2, 1), 6.0f);
}

TEST(TensorTest, AddRowBroadcast) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromVector({10, 20});
  Tensor c = AddRowBroadcast(a, bias);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 1), 24.0f);
}

TEST(TensorTest, ArgMaxAndNorm) {
  Tensor a = Tensor::FromVector({1, 9, 3});
  EXPECT_EQ(ArgMax(a), 1);
  Tensor b = Tensor::FromVector({3, 4});
  EXPECT_NEAR(Norm(b), 5.0f, 1e-6f);
}

TEST(TensorTest, AllFiniteDetectsNan) {
  Tensor a = Tensor::FromVector({1.0f, 2.0f});
  EXPECT_TRUE(AllFinite(a));
  a.at(0) = std::nanf("");
  EXPECT_FALSE(AllFinite(a));
}

/// Property sweep: matmul associativity-ish checks across shapes.
class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MatMulShapeTest, DistributesOverAddition) {
  auto [m, k, n] = GetParam();
  util::Rng rng(11);
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor b1 = Tensor::Randn({k, n}, &rng);
  Tensor b2 = Tensor::Randn({k, n}, &rng);
  Tensor lhs = MatMul(a, Add(b1, b2));
  Tensor rhs = Add(MatMul(a, b1), MatMul(a, b2));
  ASSERT_TRUE(lhs.SameShape(rhs));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-4f);
  }
}

TEST_P(MatMulShapeTest, IdentityIsNeutral) {
  auto [m, k, n] = GetParam();
  (void)n;
  util::Rng rng(12);
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor c = MatMul(a, Tensor::Eye(k));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a.at(i), c.at(i), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapeTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(1, 16, 2)));

}  // namespace
}  // namespace bootleg::tensor

// Live index mutation: the delta-generation subsystem must round-trip its
// on-disk delta records and reject every corrupted byte with kCorruption,
// validate entity specs against the serving KB, serve a never-trained entity
// within one AddEntityLive call while keeping every pre-existing prediction
// bit-identical across the generation swap, replay chains idempotently from
// disk, fall back to the newest fully-valid chain when a delta generation is
// corrupt, and compact a chain into a flat generation whose gathers are
// bit-identical to the chain tip.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/world.h"
#include "index/live_index.h"
#include "kb/candidate_map.h"
#include "kb/kb.h"
#include "serve/batcher.h"
#include "serve/inference_engine.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "store/embedding_store.h"
#include "util/status.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bootleg_index_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- Shared world -------------------------------------------------------------

/// One tiny world + saved dataset + saved model + exported float store
/// (mirrors store_test's fixture; rebuilt here so the binaries stay
/// independent). Mutating tests copy gen_000001 into a fresh root.
struct IndexWorld {
  std::string data_dir;
  std::string model_path;
  std::string store_root;  // holds gen_000001 (float, 3 shards)
  data::SynthWorld world;
  data::Corpus corpus;
};

core::BootlegConfig ServingConfig() {
  core::BootlegConfig config;
  config.encoder.max_len = 32;
  return config;
}

const IndexWorld& GetIndexWorld() {
  static const IndexWorld* shared = [] {
    auto* iw = new IndexWorld();
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_pages = 40;
    iw->world = data::BuildWorld(config);
    data::CorpusGenerator generator(&iw->world);
    iw->corpus = generator.Generate();
    iw->data_dir = TestDir("index_world");
    BOOTLEG_CHECK(iw->world.kb.Save(iw->data_dir + "/kb.bin").ok());
    BOOTLEG_CHECK(
        iw->world.candidates.Save(iw->data_dir + "/candidates.bin").ok());
    BOOTLEG_CHECK(iw->world.vocab.Save(iw->data_dir + "/vocab.bin").ok());
    core::BootlegModel model(&iw->world.kb, iw->world.vocab.size(),
                             ServingConfig(), /*seed=*/123);
    iw->model_path = iw->data_dir + "/model.bin";
    BOOTLEG_CHECK(model.store().Save(iw->model_path).ok());

    model.PrepareFrozenInference();
    const tensor::Tensor& frozen = model.frozen_static();
    iw->store_root = TestDir("index_store");
    store::WriteOptions wo;
    wo.shards = 3;
    wo.dtype = store::Dtype::kFloat32;
    BOOTLEG_CHECK(store::WriteStore(iw->store_root + "/gen_000001",
                                    {{"static", frozen.data(), frozen.size(0),
                                      frozen.size(1)}},
                                    wo)
                      .ok());
    return iw;
  }();
  return *shared;
}

/// Fresh store root holding a copy of the pristine gen_000001 — every
/// mutating test publishes into its own root.
std::string FreshRoot(const std::string& name) {
  const std::string root = TestDir(name);
  fs::copy(GetIndexWorld().store_root + "/gen_000001", root + "/gen_000001",
           fs::copy_options::recursive);
  return root;
}

std::unique_ptr<serve::InferenceEngine> MakeEngine(
    const std::string& store_dir) {
  const IndexWorld& iw = GetIndexWorld();
  serve::EngineOptions options;
  options.data_dir = iw.data_dir;
  options.model_path = iw.model_path;
  options.store_dir = store_dir;
  auto engine = serve::InferenceEngine::Create(options);
  BOOTLEG_CHECK_MSG(engine.ok(), engine.status().ToString());
  return std::move(engine.value());
}

std::vector<data::SentenceExample> DevExamples() {
  const IndexWorld& iw = GetIndexWorld();
  data::ExampleBuilder builder(&iw.world.candidates, &iw.world.vocab);
  data::ExampleOptions options;
  options.include_weak_labels = false;
  return builder.BuildAll(iw.corpus.dev, options);
}

/// A valid unseen-entity spec borrowing an existing entity's structural
/// signals (the paper's premise: new tail entities carry known types and
/// relations). The title doubles as the sole alias — Tokenize() lowercases,
/// so a lowercase title is its own surface form, and a brand-new alias makes
/// the new entity the only candidate (deterministic argmax).
index::DeltaEntity MakeSpec(const kb::KnowledgeBase& kb,
                            const std::string& title) {
  index::DeltaEntity spec;
  spec.title = title;
  const kb::Entity* sibling = &kb.entity(0);
  for (int64_t i = 0; i < kb.num_entities(); ++i) {
    if (!kb.entity(i).types.empty() && !kb.entity(i).relations.empty()) {
      sibling = &kb.entity(i);
      break;
    }
  }
  spec.coarse = sibling->coarse_type;
  spec.gender = sibling->gender;
  spec.types = sibling->types;
  for (const kb::RelationId r : sibling->relations) {
    spec.triples.push_back({r, sibling->id});
  }
  spec.aliases.push_back({title, 0.5f});
  return spec;
}

// --- Delta file round trip + corruption ---------------------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(IndexDeltaTest, DeltaFileRoundTripsAndRejectsEveryCorruptByte) {
  const std::string dir = TestDir("delta_roundtrip");
  const std::string path = dir + "/index_delta_000000.bin";

  index::IndexDelta delta;
  delta.base_entities = 7;
  index::DeltaEntity e;
  e.title = "zyqroundtrip";
  e.coarse = kb::CoarseType::kPerson;
  e.gender = 'f';
  e.types = {1, 3};
  e.triples = {{0, 2}, {1, 5}};
  e.aliases = {{"zyqroundtrip", 0.5f}, {"zyq", 0.25f}};
  e.title_token_id = 42;
  delta.entities.push_back(e);

  ASSERT_TRUE(index::WriteIndexDelta(path, delta).ok());
  auto back = index::ReadIndexDelta(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().base_entities, 7);
  ASSERT_EQ(back.value().entities.size(), 1u);
  const index::DeltaEntity& b = back.value().entities[0];
  EXPECT_EQ(b.title, e.title);
  EXPECT_EQ(b.coarse, e.coarse);
  EXPECT_EQ(b.gender, e.gender);
  EXPECT_EQ(b.types, e.types);
  ASSERT_EQ(b.triples.size(), 2u);
  EXPECT_EQ(b.triples[1].relation, 1);
  EXPECT_EQ(b.triples[1].object, 5);
  ASSERT_EQ(b.aliases.size(), 2u);
  EXPECT_EQ(b.aliases[1].alias, "zyq");
  EXPECT_FLOAT_EQ(b.aliases[1].prior, 0.25f);
  EXPECT_EQ(b.title_token_id, 42);

  // Every truncation and every single-byte flip must fail cleanly.
  const std::string good = ReadAll(path);
  ASSERT_FALSE(good.empty());
  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteAll(path, good.substr(0, cut));
    EXPECT_FALSE(index::ReadIndexDelta(path).ok())
        << "truncated at " << cut << " loaded";
  }
  for (size_t at = 0; at < good.size(); ++at) {
    std::string flipped = good;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    WriteAll(path, flipped);
    EXPECT_FALSE(index::ReadIndexDelta(path).ok())
        << "flip at " << at << " loaded";
  }
  WriteAll(path, good + std::string(8, '\x5a'));
  EXPECT_FALSE(index::ReadIndexDelta(path).ok());
  WriteAll(path, good);
  EXPECT_TRUE(index::ReadIndexDelta(path).ok());
}

TEST(IndexDeltaTest, ValidateRejectsBadSpecsAndAcceptsGoodOnes) {
  const IndexWorld& iw = GetIndexWorld();
  const kb::KnowledgeBase& kb = iw.world.kb;
  const kb::CandidateMap& cands = iw.world.candidates;
  const int64_t n = kb.num_entities();

  const index::DeltaEntity good = MakeSpec(kb, "zyqvalidate");
  EXPECT_TRUE(index::ValidateDeltaEntity(kb, cands, n, good).ok());

  const auto expect_invalid = [&](index::DeltaEntity spec) {
    const util::Status st = index::ValidateDeltaEntity(kb, cands, n, spec);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  };

  index::DeltaEntity empty_title = good;
  empty_title.title = "";
  expect_invalid(empty_title);

  index::DeltaEntity duplicate = good;
  duplicate.title = kb.entity(0).title;
  duplicate.aliases = {{kb.entity(0).title, 0.5f}};
  expect_invalid(duplicate);

  index::DeltaEntity bad_type = good;
  bad_type.types.push_back(kb.num_types());
  expect_invalid(bad_type);

  index::DeltaEntity bad_relation = good;
  bad_relation.triples.push_back({kb.num_relations(), 0});
  expect_invalid(bad_relation);

  index::DeltaEntity bad_object = good;
  bad_object.triples.push_back({0, n});  // beyond the chain tip
  expect_invalid(bad_object);

  index::DeltaEntity no_aliases = good;
  no_aliases.aliases.clear();
  expect_invalid(no_aliases);

  index::DeltaEntity no_title_alias = good;
  no_title_alias.aliases = {{"zyqother", 0.5f}};
  expect_invalid(no_title_alias);

  index::DeltaEntity bad_prior = good;
  bad_prior.aliases[0].prior = 1.5f;
  expect_invalid(bad_prior);

  index::DeltaEntity bad_gender = good;
  bad_gender.gender = 'x';
  expect_invalid(bad_gender);
}

TEST(IndexDeltaTest, AddCandidateLiveRescalesAndRejectsTruncationVictims) {
  kb::CandidateMap cands;
  cands.AddAlias("shared", 0, 3.0f);
  cands.AddAlias("shared", 1, 1.0f);
  cands.AddAlias("lonely", 2, 1.0f);
  cands.Finalize(/*max_candidates=*/2);

  // New alias: single candidate with prior 1 regardless of the argument.
  ASSERT_TRUE(cands.AddCandidateLive("fresh", 5, 0.3f).ok());
  const auto* fresh = cands.Lookup("fresh");
  ASSERT_NE(fresh, nullptr);
  ASSERT_EQ(fresh->size(), 1u);
  EXPECT_EQ((*fresh)[0].entity, 5);
  EXPECT_FLOAT_EQ((*fresh)[0].prior, 1.0f);

  // Existing alias: survivors rescale by (1 - prior), list stays normalized.
  ASSERT_TRUE(cands.AddCandidateLive("lonely", 5, 0.4f).ok());
  const auto* lonely = cands.Lookup("lonely");
  ASSERT_EQ(lonely->size(), 2u);
  float sum = 0.0f;
  for (const kb::Candidate& c : *lonely) sum += c.prior;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_EQ((*lonely)[0].entity, 2);  // 0.6 still outranks 0.4

  // A prior too small to survive truncation fails and leaves the list alone.
  const std::vector<kb::Candidate> before = *cands.Lookup("shared");
  const util::Status st = cands.AddCandidateLive("shared", 6, 0.01f);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  const std::vector<kb::Candidate>& after = *cands.Lookup("shared");
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].entity, before[i].entity);
    EXPECT_EQ(std::memcmp(&after[i].prior, &before[i].prior, sizeof(float)),
              0);  // untouched lists stay bit-identical
  }
}

// --- Live add through the engine ----------------------------------------------

TEST(LiveIndexTest, AddEntityLiveServesUnseenEntityKeepsOldRepliesBitIdentical) {
  const std::string root = FreshRoot("live_add");
  auto engine = MakeEngine(root);
  ASSERT_EQ(engine->store_generation(), 1);
  const int64_t base = engine->kb().num_entities();

  const std::vector<data::SentenceExample> examples = DevExamples();
  ASSERT_GT(examples.size(), 8u);
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  core::BootlegModel::InferenceScratch scratch;
  const auto before = engine->PredictExamples(batch, &scratch);

  // The entity was never trained: it exists in no corpus, no checkpoint, no
  // exported table. One call makes it servable.
  const util::Status st =
      engine->AddEntityLive(MakeSpec(engine->kb(), "zyqlive"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(engine->store_generation(), 2);
  EXPECT_EQ(engine->induced_entities(), 1);
  ASSERT_EQ(engine->kb().num_entities(), base + 1);
  const kb::EntityId id = engine->kb().FindByTitle("zyqlive");
  ASSERT_NE(id, kb::kInvalidId);

  // The new alias is a single-token mention with exactly one candidate, so
  // the served prediction must be the induced entity.
  std::vector<serve::SentenceResult> served =
      engine->Disambiguate({"they wrote about zyqlive yesterday"}, &scratch);
  ASSERT_EQ(served.size(), 1u);
  bool found = false;
  for (const serve::ServedMention& m : served[0].mentions) {
    if (m.alias != "zyqlive") continue;
    found = true;
    EXPECT_EQ(m.entity, id);
    EXPECT_EQ(m.title, "zyqlive");
    EXPECT_EQ(m.num_candidates, 1);
  }
  EXPECT_TRUE(found) << "new alias not extracted as a mention";

  // The store view grew by exactly one row and the KB agrees with it.
  auto store = engine->entity_store();
  ASSERT_NE(store, nullptr);
  auto view = store->View("static");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value()->rows(), base + 1);

  // Acceptance bar: pre-existing entities reply bit-identically across the
  // generation swap (the chained manifest references the parent's shards by
  // content, so their gathers are the same mapped bytes).
  const auto after = engine->PredictExamples(batch, &scratch);
  EXPECT_EQ(after, before);
}

TEST(LiveIndexTest, FreshEngineReplaysChainFromDiskAndReplayIsIdempotent) {
  const std::string root = FreshRoot("replay");
  const int64_t base = GetIndexWorld().world.kb.num_entities();
  {
    auto engine = MakeEngine(root);
    ASSERT_TRUE(
        engine->AddEntityLive(MakeSpec(engine->kb(), "zyqreplay")).ok());
  }  // engine gone; the chain on disk is the only record

  // A cold process adopting the chain serves the entity.
  auto engine = MakeEngine(root);
  EXPECT_EQ(engine->store_generation(), 2);
  EXPECT_EQ(engine->induced_entities(), 1);
  ASSERT_EQ(engine->kb().num_entities(), base + 1);
  core::BootlegModel::InferenceScratch scratch;
  std::vector<serve::SentenceResult> served =
      engine->Disambiguate({"zyqreplay returned"}, &scratch);
  ASSERT_EQ(served.size(), 1u);
  bool found = false;
  for (const serve::ServedMention& m : served[0].mentions) {
    if (m.alias == "zyqreplay") {
      found = true;
      EXPECT_EQ(m.title, "zyqreplay");
    }
  }
  EXPECT_TRUE(found);

  // Raw replay: applying the same chain twice applies nothing the second
  // time (base_entities bookkeeping), and reports the touched alias for
  // cache invalidation.
  int64_t generation = 0;
  auto opened = store::OpenNewestGeneration(root, &generation);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(generation, 2);
  kb::KnowledgeBase kb = GetIndexWorld().world.kb;
  kb::CandidateMap cands = GetIndexWorld().world.candidates;
  index::ApplyStats first, second;
  ASSERT_TRUE(
      index::ApplyDeltas(*opened.value(), &kb, &cands, nullptr, &first).ok());
  EXPECT_EQ(first.entities_applied, 1);
  EXPECT_EQ(first.deltas_seen, 1);
  ASSERT_EQ(first.touched_aliases.size(), 1u);
  EXPECT_EQ(first.touched_aliases[0], "zyqreplay");
  ASSERT_TRUE(
      index::ApplyDeltas(*opened.value(), &kb, &cands, nullptr, &second).ok());
  EXPECT_EQ(second.entities_applied, 0);
  EXPECT_EQ(second.deltas_seen, 1);
  EXPECT_EQ(kb.num_entities(), base + 1);
}

// --- Corruption: every delta artifact, every byte -----------------------------

util::Status OpenAndVerify(const std::string& dir) {
  auto opened = store::EmbeddingStore::Open(dir);
  if (!opened.ok()) return opened.status();
  return opened.value()->Verify();
}

/// Every truncation offset, every single-byte flip, and trailing garbage of
/// `target` must make the chained generation fail Open+Verify with
/// kCorruption — never a crash or a silent success.
void FuzzChainFile(const std::string& gen_dir, const std::string& target) {
  const std::string good = ReadAll(target);
  ASSERT_FALSE(good.empty()) << target;
  ASSERT_TRUE(OpenAndVerify(gen_dir).ok());

  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteAll(target, good.substr(0, cut));
    const util::Status st = OpenAndVerify(gen_dir);
    ASSERT_FALSE(st.ok()) << target << " truncated at " << cut << " loaded";
    ASSERT_EQ(st.code(), util::StatusCode::kCorruption)
        << target << " truncated at " << cut << ": " << st.ToString();
  }
  for (size_t at = 0; at < good.size(); ++at) {
    std::string flipped = good;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    WriteAll(target, flipped);
    const util::Status st = OpenAndVerify(gen_dir);
    ASSERT_FALSE(st.ok()) << target << " flip at " << at << " loaded";
    ASSERT_EQ(st.code(), util::StatusCode::kCorruption)
        << target << " flip at " << at << ": " << st.ToString();
  }
  WriteAll(target, good + std::string(16, '\x5a'));
  const util::Status st = OpenAndVerify(gen_dir);
  ASSERT_FALSE(st.ok());
  ASSERT_EQ(st.code(), util::StatusCode::kCorruption);

  WriteAll(target, good);  // restore for the next sweep
  ASSERT_TRUE(OpenAndVerify(gen_dir).ok());
}

TEST(LiveIndexFuzzTest, CorruptDeltaChainFailsAsCorruptionAndFallsBack) {
  const std::string root = FreshRoot("fuzz");
  {
    auto engine = MakeEngine(root);
    ASSERT_TRUE(engine->AddEntityLive(MakeSpec(engine->kb(), "zyqfuzz")).ok());
  }
  const std::string gen2 = root + "/gen_000002";

  // Sweep every file the delta generation owns: the chained manifest, the
  // delta shard, and the INDEX_DELTA aux file.
  std::vector<std::string> targets;
  for (const auto& entry : fs::directory_iterator(gen2)) {
    targets.push_back(entry.path().string());
  }
  ASSERT_GE(targets.size(), 3u);
  bool saw_manifest = false, saw_shard = false, saw_delta = false;
  for (const std::string& target : targets) {
    const std::string name = fs::path(target).filename().string();
    saw_manifest |= name == "MANIFEST";
    saw_shard |= name.rfind("static.delta_", 0) == 0;
    saw_delta |= name.rfind(index::kIndexDeltaFilePrefix, 0) == 0;
    FuzzChainFile(gen2, target);
  }
  EXPECT_TRUE(saw_manifest);
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_delta);

  // Fallback: with the delta manifest corrupt, the generation scan and a
  // cold engine both serve the parent — never a crash, never the torn chain.
  const std::string manifest = gen2 + "/MANIFEST";
  const std::string pristine = ReadAll(manifest);
  std::string flipped = pristine;
  flipped[pristine.size() / 2] ^= 0x40;
  WriteAll(manifest, flipped);
  int64_t generation = -7;
  auto fallback = store::OpenNewestGeneration(root, &generation);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(generation, 1);
  auto engine = MakeEngine(root);
  EXPECT_EQ(engine->store_generation(), 1);
  EXPECT_EQ(engine->induced_entities(), 0);
  EXPECT_EQ(engine->kb().num_entities(),
            GetIndexWorld().world.kb.num_entities());

  // Restoring the manifest restores the chain.
  WriteAll(manifest, pristine);
  ASSERT_TRUE(engine->Reload().ok());
  EXPECT_EQ(engine->store_generation(), 2);
  EXPECT_EQ(engine->induced_entities(), 1);
}

// --- Compaction ---------------------------------------------------------------

TEST(LiveIndexTest, CompactFoldsChainIntoFlatBitIdenticalGeneration) {
  const std::string root = FreshRoot("compact");
  auto engine = MakeEngine(root);
  ASSERT_TRUE(engine->AddEntityLive(MakeSpec(engine->kb(), "zyqone")).ok());
  ASSERT_TRUE(engine->AddEntityLive(MakeSpec(engine->kb(), "zyqtwo")).ok());
  ASSERT_EQ(engine->store_generation(), 3);

  const std::vector<data::SentenceExample> examples = DevExamples();
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  core::BootlegModel::InferenceScratch scratch;
  const auto before = engine->PredictExamples(batch, &scratch);

  index::CompactResult result;
  const util::Status st = index::Compact(root, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(result.already_flat);
  EXPECT_EQ(result.source_generation, 3);
  EXPECT_EQ(result.generation, 4);
  EXPECT_GT(result.files_copied, 0);

  // Byte-level equivalence: every row of the flat generation matches the
  // chain tip exactly (payload CRCs carry over on the copied shards).
  auto chain = store::EmbeddingStore::Open(root + "/gen_000003");
  auto flat = store::EmbeddingStore::Open(result.dir);
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(flat.value()->Verify().ok());
  auto chain_view = chain.value()->View("static");
  auto flat_view = flat.value()->View("static");
  ASSERT_TRUE(chain_view.ok());
  ASSERT_TRUE(flat_view.ok());
  ASSERT_EQ(flat_view.value()->rows(), chain_view.value()->rows());
  ASSERT_EQ(flat_view.value()->cols(), chain_view.value()->cols());
  const int64_t cols = chain_view.value()->cols();
  std::vector<float> want(static_cast<size_t>(cols));
  std::vector<float> got(static_cast<size_t>(cols));
  for (int64_t r = 0; r < chain_view.value()->rows(); ++r) {
    chain_view.value()->GatherRow(r, want.data());
    flat_view.value()->GatherRow(r, got.data());
    ASSERT_EQ(std::memcmp(want.data(), got.data(),
                          static_cast<size_t>(cols) * sizeof(float)),
              0)
        << "row " << r;
  }

  // The serving engine adopts the flat generation and nothing moves: same
  // predictions, both live-added entities still resolve.
  ASSERT_TRUE(engine->Reload().ok());
  EXPECT_EQ(engine->store_generation(), 4);
  EXPECT_EQ(engine->induced_entities(), 2);
  const auto after = engine->PredictExamples(batch, &scratch);
  EXPECT_EQ(after, before);
  std::vector<serve::SentenceResult> served =
      engine->Disambiguate({"zyqone met zyqtwo"}, &scratch);
  int resolved = 0;
  for (const serve::ServedMention& m : served[0].mentions) {
    if (m.alias == "zyqone" || m.alias == "zyqtwo") {
      EXPECT_EQ(m.title, m.alias);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, 2);

  // A cold engine on the compacted root replays the merged aux files to the
  // same KB state.
  auto cold = MakeEngine(root);
  EXPECT_EQ(cold->store_generation(), 4);
  EXPECT_EQ(cold->induced_entities(), 2);
  EXPECT_EQ(cold->kb().num_entities(), engine->kb().num_entities());

  // Compacting a flat tip is a no-op.
  index::CompactResult again;
  ASSERT_TRUE(index::Compact(root, &again).ok());
  EXPECT_TRUE(again.already_flat);
  EXPECT_EQ(again.generation, 4);
}

// The --compact_chain_depth watermark folds the delta chain flat in-process:
// once the adopted generation carries that many aux files, the engine runs
// index::Compact and adopts the flat result before returning from the
// mutation. Serving never pauses and predictions never move.
TEST(LiveIndexTest, AutoCompactionFiresAtWatermarkAndKeepsServing) {
  const std::string root = FreshRoot("autocompact");
  const IndexWorld& iw = GetIndexWorld();
  serve::EngineOptions options;
  options.data_dir = iw.data_dir;
  options.model_path = iw.model_path;
  options.store_dir = root;
  options.compact_chain_depth = 2;
  auto created = serve::InferenceEngine::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created.value());
  EXPECT_EQ(engine->auto_compactions(), 0);

  const std::vector<data::SentenceExample> examples = DevExamples();
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  core::BootlegModel::InferenceScratch scratch;
  const auto before = engine->PredictExamples(batch, &scratch);

  // Depth 1 stays below the watermark: plain chained generation.
  ASSERT_TRUE(engine->AddEntityLive(MakeSpec(engine->kb(), "zyqautoa")).ok());
  EXPECT_EQ(engine->auto_compactions(), 0);
  EXPECT_EQ(engine->store_generation(), 2);

  // Depth 2 hits the watermark: the mutation returns with the chain already
  // folded into a new flat generation (3 -> compacted 4).
  ASSERT_TRUE(engine->AddEntityLive(MakeSpec(engine->kb(), "zyqautob")).ok());
  EXPECT_EQ(engine->auto_compactions(), 1);
  EXPECT_EQ(engine->store_generation(), 4);

  // The adopted tip is flat: a manual compaction finds nothing to fold.
  index::CompactResult manual;
  ASSERT_TRUE(index::Compact(root, &manual).ok());
  EXPECT_TRUE(manual.already_flat);

  // Both induced entities serve and pre-existing replies are bit-identical.
  EXPECT_EQ(engine->induced_entities(), 2);
  std::vector<serve::SentenceResult> served =
      engine->Disambiguate({"zyqautoa met zyqautob"}, &scratch);
  int resolved = 0;
  for (const serve::ServedMention& m : served[0].mentions) {
    if (m.alias == "zyqautoa" || m.alias == "zyqautob") {
      EXPECT_EQ(m.title, m.alias);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, 2);
  EXPECT_EQ(engine->PredictExamples(batch, &scratch), before);

  // Past the watermark every further delta folds right after adoption (the
  // aux-file count survives compaction, so each new delta re-crosses it).
  ASSERT_TRUE(engine->AddEntityLive(MakeSpec(engine->kb(), "zyqautoc")).ok());
  EXPECT_EQ(engine->auto_compactions(), 2);
  EXPECT_EQ(engine->induced_entities(), 3);

  // A cold engine on the compacted root replays to the same state.
  auto cold = MakeEngine(root);
  EXPECT_EQ(cold->induced_entities(), 3);
  EXPECT_EQ(cold->kb().num_entities(), engine->kb().num_entities());
}

// --- The add_entity protocol op -----------------------------------------------

struct IndexServerUnderTest {
  std::unique_ptr<serve::InferenceEngine> engine;
  serve::ServerCounters counters;
  serve::LatencyHistogram latency;
  core::BootlegModel::InferenceScratch scratch;
  std::unique_ptr<serve::MicroBatcher> batcher;
  std::unique_ptr<serve::Server> server;

  explicit IndexServerUnderTest(const std::string& store_dir) {
    engine = MakeEngine(store_dir);
    batcher = std::make_unique<serve::MicroBatcher>(
        serve::BatcherOptions{},
        [this](const std::vector<serve::BatchItem>& items, int) {
          return engine->DisambiguateBatch(items, &scratch);
        },
        [this] { return engine->Reload(); }, &counters);
    server = std::make_unique<serve::Server>(engine.get(), batcher.get(),
                                             &counters, &latency);
  }
  ~IndexServerUnderTest() {
    server->Stop();
    batcher->Shutdown();
  }
};

serve::Json ParseReply(const std::string& reply) {
  util::StatusOr<serve::Json> parsed = serve::Json::Parse(reply);
  BOOTLEG_CHECK_MSG(parsed.ok(), "reply not JSON: " + reply);
  return std::move(parsed.value());
}

TEST(LiveIndexServerTest, AddEntityOpServesNewEntityEndToEnd) {
  IndexServerUnderTest sut(FreshRoot("server_add"));
  const kb::KnowledgeBase& kb = sut.engine->kb();
  const index::DeltaEntity spec = MakeSpec(kb, "zyqserver");

  serve::Json request = serve::Json::Object();
  request.Set("op", serve::Json::Str("add_entity"));
  request.Set("title", serve::Json::Str(spec.title));
  request.Set("coarse", serve::Json::Str(kb::CoarseTypeName(spec.coarse)));
  serve::Json types = serve::Json::Array();
  for (const kb::TypeId t : spec.types) {
    types.Append(serve::Json::Str(kb.type(t).name));
  }
  request.Set("types", std::move(types));
  serve::Json relations = serve::Json::Array();
  for (const index::DeltaTriple& t : spec.triples) {
    serve::Json edge = serve::Json::Object();
    edge.Set("relation", serve::Json::Str(kb.relation(t.relation).name));
    edge.Set("object", serve::Json::Str(kb.entity(t.object).title));
    relations.Append(std::move(edge));
  }
  request.Set("relations", std::move(relations));

  const serve::Json reply = ParseReply(sut.server->HandleLine(request.Dump()));
  ASSERT_NE(reply.Find("ok"), nullptr);
  ASSERT_TRUE(reply.Find("ok")->bool_value()) << reply.Dump();
  EXPECT_EQ(reply.GetNumber("generation"), 2.0);
  EXPECT_EQ(reply.GetNumber("induced_entities"), 1.0);

  // The entity is immediately servable through the normal protocol path.
  const serve::Json served = ParseReply(sut.server->HandleLine(
      R"({"op":"disambiguate","text":"we saw zyqserver again"})"));
  ASSERT_TRUE(served.Find("ok")->bool_value()) << served.Dump();
  bool found = false;
  for (const serve::Json& m : served.Find("mentions")->array_items()) {
    if (m.GetString("alias") == "zyqserver") {
      found = true;
      EXPECT_EQ(m.GetString("title"), "zyqserver");
    }
  }
  EXPECT_TRUE(found);

  // Stats surface the induction counters.
  const serve::Json stats =
      ParseReply(sut.server->HandleLine(R"({"op":"stats"})"));
  const serve::Json* store = stats.Find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->GetNumber("generation"), 2.0);
  EXPECT_EQ(store->GetNumber("induced_entities"), 1.0);

  // Re-adding the same title is a structured client error, not a crash.
  const serve::Json dup = ParseReply(sut.server->HandleLine(request.Dump()));
  EXPECT_FALSE(dup.Find("ok")->bool_value());
  EXPECT_EQ(dup.GetString("code"), "bad_request");
}

TEST(LiveIndexServerTest, AddEntityOpRejectsBadSpecsAndNonLoopbackPeers) {
  IndexServerUnderTest sut(FreshRoot("server_reject"));

  // Malformed specs: structured bad_request replies.
  for (const std::string line : {
           R"({"op":"add_entity"})",                          // no title
           R"({"op":"add_entity","title":7})",                // wrong type
           R"({"op":"add_entity","title":"x","coarse":"q"})", // unknown coarse
           R"({"op":"add_entity","title":"x","types":["zz_no_such_type"]})",
           R"({"op":"add_entity","title":"x","relations":[{"relation":"zz","object":"y"}]})",
           R"({"op":"add_entity","title":"x","gender":"banana"})",
       }) {
    const serve::Json reply = ParseReply(sut.server->HandleLine(line));
    ASSERT_NE(reply.Find("ok"), nullptr) << line;
    EXPECT_FALSE(reply.Find("ok")->bool_value()) << line;
    EXPECT_EQ(reply.GetString("code"), "bad_request") << line;
  }
  EXPECT_EQ(sut.engine->store_generation(), 1);  // nothing published

  // A non-loopback peer cannot mutate the index, however valid the spec.
  net::PeerInfo remote;
  remote.loopback = false;
  remote.address = "203.0.113.9";
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  sut.server->HandleLineFrom(
      R"({"op":"add_entity","title":"zyqremote"})", remote,
      [&promise](std::string reply) { promise.set_value(std::move(reply)); });
  const serve::Json denied = ParseReply(future.get());
  EXPECT_FALSE(denied.Find("ok")->bool_value());
  EXPECT_EQ(denied.GetString("code"), "forbidden");
  EXPECT_EQ(sut.engine->store_generation(), 1);

  // The same peer may still read.
  std::promise<std::string> read_promise;
  std::future<std::string> read_future = read_promise.get_future();
  sut.server->HandleLineFrom(
      R"({"op":"health"})", remote,
      [&read_promise](std::string reply) {
        read_promise.set_value(std::move(reply));
      });
  EXPECT_TRUE(ParseReply(read_future.get()).Find("ok")->bool_value());
}

}  // namespace
}  // namespace bootleg

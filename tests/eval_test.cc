#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/error_analysis.h"

namespace bootleg::eval {
namespace {

TEST(PrfTest, PerfectScore) {
  Prf prf{10, 10, 10};
  EXPECT_EQ(prf.precision(), 100.0);
  EXPECT_EQ(prf.recall(), 100.0);
  EXPECT_EQ(prf.f1(), 100.0);
}

TEST(PrfTest, PrecisionRecallDiverge) {
  // 8 correct out of 9 predictions over 12 gold mentions.
  Prf prf{8, 9, 12};
  EXPECT_NEAR(prf.precision(), 100.0 * 8 / 9, 1e-9);
  EXPECT_NEAR(prf.recall(), 100.0 * 8 / 12, 1e-9);
  EXPECT_GT(prf.precision(), prf.recall());
  EXPECT_GT(prf.f1(), prf.recall());
  EXPECT_LT(prf.f1(), prf.precision());
}

TEST(PrfTest, EmptyIsZero) {
  Prf prf;
  EXPECT_EQ(prf.precision(), 0.0);
  EXPECT_EQ(prf.recall(), 0.0);
  EXPECT_EQ(prf.f1(), 0.0);
}

TEST(PredictionRecordTest, EligibilityFilter) {
  PredictionRecord r;
  r.gold_in_candidates = true;
  r.num_candidates = 1;
  EXPECT_FALSE(r.Eligible());  // single candidate: trivially correct
  r.num_candidates = 2;
  EXPECT_TRUE(r.Eligible());
  r.gold_in_candidates = false;
  EXPECT_FALSE(r.Eligible());  // candidate generation missed
}

TEST(ResultSetTest, FilteredAndBuckets) {
  ResultSet rs;
  auto add = [&rs](data::PopularityBucket bucket, bool correct) {
    PredictionRecord r;
    r.gold = 1;
    r.predicted = correct ? 1 : 2;
    r.gold_in_candidates = true;
    r.num_candidates = 3;
    r.bucket = bucket;
    rs.Add(std::move(r));
  };
  add(data::PopularityBucket::kTorso, true);
  add(data::PopularityBucket::kTorso, false);
  add(data::PopularityBucket::kTail, true);
  EXPECT_EQ(rs.Overall().total, 3);
  EXPECT_NEAR(rs.Overall().f1(), 100.0 * 2 / 3, 1e-6);
  EXPECT_EQ(rs.ByBucket(data::PopularityBucket::kTail).correct, 1);
  EXPECT_EQ(rs.ByBucket(data::PopularityBucket::kUnseen).total, 0);
  EXPECT_EQ(rs.NumEligible(), 3);
}

TEST(ResultSetTest, BenchmarkCountsCandidateMisses) {
  ResultSet rs;
  PredictionRecord hit;
  hit.gold = 1;
  hit.predicted = 1;
  hit.gold_in_candidates = true;
  hit.num_candidates = 2;
  rs.Add(hit);
  PredictionRecord miss;  // no candidates at all → no prediction
  miss.gold = 5;
  miss.gold_in_candidates = false;
  miss.num_candidates = 0;
  rs.Add(miss);
  const Prf prf = rs.Benchmark();
  EXPECT_EQ(prf.total, 2);
  EXPECT_EQ(prf.predicted, 1);
  EXPECT_EQ(prf.correct, 1);
  EXPECT_GT(prf.precision(), prf.recall());
  // The filtered view drops the miss entirely.
  EXPECT_EQ(rs.Overall().total, 1);
}

/// Scorer that always predicts candidate 0 (the top prior after Finalize).
class FirstCandidateScorer : public NedScorer {
 public:
  std::vector<int64_t> Predict(const data::SentenceExample& ex) override {
    std::vector<int64_t> preds(ex.mentions.size(), -1);
    for (size_t i = 0; i < ex.mentions.size(); ++i) {
      if (!ex.mentions[i].candidates.empty()) preds[i] = 0;
    }
    return preds;
  }
};

class RunEvaluationTest : public ::testing::Test {
 protected:
  RunEvaluationTest() {
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_entities = 300;
    config.num_pages = 100;
    world_ = data::BuildWorld(config);
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    data::ApplyWeakLabeling(world_.kb, &corpus_.train);
    counts_ = data::EntityCounts::FromTraining(corpus_.train);
    builder_ = std::make_unique<data::ExampleBuilder>(&world_.candidates,
                                                      &world_.vocab);
  }
  data::SynthWorld world_;
  data::Corpus corpus_;
  data::EntityCounts counts_;
  std::unique_ptr<data::ExampleBuilder> builder_;
};

TEST_F(RunEvaluationTest, RecordsAlignWithSentences) {
  FirstCandidateScorer scorer;
  ResultSet rs = RunEvaluation(&scorer, corpus_.dev, *builder_,
                               data::ExampleOptions(), counts_);
  EXPECT_GT(rs.records().size(), 0u);
  for (const PredictionRecord& r : rs.records()) {
    ASSERT_NE(r.sentence, nullptr);
    ASSERT_LT(r.mention_idx, r.sentence->mentions.size());
    EXPECT_EQ(r.gold, r.sentence->mentions[r.mention_idx].gold);
  }
}

TEST_F(RunEvaluationTest, EvaluatesAnchorsOnly) {
  FirstCandidateScorer scorer;
  ResultSet rs = RunEvaluation(&scorer, corpus_.train, *builder_,
                               data::ExampleOptions(), counts_);
  for (const PredictionRecord& r : rs.records()) {
    EXPECT_FALSE(r.sentence->mentions[r.mention_idx].weak_labeled);
  }
}

TEST_F(RunEvaluationTest, PriorScorerBeatsChanceOverall) {
  FirstCandidateScorer scorer;
  ResultSet rs = RunEvaluation(&scorer, corpus_.dev, *builder_,
                               data::ExampleOptions(), counts_);
  // Priors favor popular entities, so overall F1 must beat uniform chance
  // (~1/K with K up to 5) but unseen entities, which are never the top
  // prior, must be near zero.
  EXPECT_GT(rs.Overall().f1(), 30.0);
  EXPECT_LT(rs.ByBucket(data::PopularityBucket::kUnseen).f1(), 20.0);
}

TEST_F(RunEvaluationTest, ErrorBucketsClassify) {
  FirstCandidateScorer scorer;
  ResultSet rs = RunEvaluation(&scorer, corpus_.dev, *builder_,
                               data::ExampleOptions(), counts_);
  const auto reports = AnalyzeErrors(world_.kb, rs, 1);
  ASSERT_EQ(reports.size(), 4u);
  for (const ErrorBucketReport& report : reports) {
    EXPECT_LE(report.overall_errors_in_bucket, report.overall_errors);
    EXPECT_LE(report.tail_errors_in_bucket, report.tail_errors);
    EXPECT_LE(report.tail_errors, report.overall_errors);
  }
}

TEST(ErrorBucketTest, ExactMatchDetection) {
  kb::KnowledgeBase kb;
  kb::Entity e;
  e.title = "nielsen_media";
  kb.AddEntity(e);
  PredictionRecord r;
  r.gold = 0;
  r.alias = "nielsen_media";
  EXPECT_TRUE(InErrorBucket(kb, r, ErrorBucket::kExactMatch));
  r.alias = "nielsen";
  EXPECT_FALSE(InErrorBucket(kb, r, ErrorBucket::kExactMatch));
}

TEST(ErrorBucketTest, NumericalDetectsYearInTitle) {
  kb::KnowledgeBase kb;
  kb::Entity with_year;
  with_year.title = "games_1976_e5";
  kb.AddEntity(with_year);
  kb::Entity without;
  without.title = "ttl_e7";
  kb.AddEntity(without);
  PredictionRecord r;
  r.gold = 0;
  EXPECT_TRUE(InErrorBucket(kb, r, ErrorBucket::kNumerical));
  r.gold = 1;
  EXPECT_FALSE(InErrorBucket(kb, r, ErrorBucket::kNumerical));
}

TEST(ErrorBucketTest, GranularityUsesSubclassHierarchy) {
  kb::KnowledgeBase kb;
  kb.AddEntity({});
  kb.AddEntity({});
  kb.AddSubclass(1, 0);
  PredictionRecord r;
  r.gold = 1;
  r.predicted = 0;
  EXPECT_TRUE(InErrorBucket(kb, r, ErrorBucket::kGranularity));
  r.predicted = kb::kInvalidId;
  EXPECT_FALSE(InErrorBucket(kb, r, ErrorBucket::kGranularity));
}

}  // namespace
}  // namespace bootleg::eval

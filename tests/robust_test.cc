// Robustness subsystem tests: deterministic noise injection, overshadowed-
// alias mining and tagging, the prior-vs-context diagnostic, typo-fallback
// encoding, and the mention extractor's untrusted-input edge cases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/example.h"
#include "data/generator.h"
#include "data/mention_extractor.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "kb/candidate_map.h"
#include "robust/noise.h"
#include "robust/overshadow.h"
#include "robust/robust_eval.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace bootleg {
namespace {

// --- Noise model -------------------------------------------------------------

data::Sentence MakeSentence(std::vector<std::string> tokens,
                            std::vector<data::Mention> mentions) {
  data::Sentence s;
  s.tokens = std::move(tokens);
  s.mentions = std::move(mentions);
  return s;
}

data::Mention MakeMention(int64_t start, int64_t end, const std::string& alias,
                          kb::EntityId gold) {
  data::Mention m;
  m.span_start = start;
  m.span_end = end;
  m.alias = alias;
  m.gold = gold;
  m.labeled = true;
  return m;
}

bool SameSentence(const data::Sentence& a, const data::Sentence& b) {
  if (a.tokens != b.tokens) return false;
  if (a.mentions.size() != b.mentions.size()) return false;
  for (size_t i = 0; i < a.mentions.size(); ++i) {
    const data::Mention& ma = a.mentions[i];
    const data::Mention& mb = b.mentions[i];
    if (ma.span_start != mb.span_start || ma.span_end != mb.span_end ||
        ma.alias != mb.alias || ma.candidate_alias != mb.candidate_alias ||
        ma.gold != mb.gold) {
      return false;
    }
  }
  return true;
}

TEST(NoiseModelTest, RateZeroIsIdentity) {
  const robust::NoiseModel noise(robust::NoiseOptions::FromRate(0.0));
  EXPECT_FALSE(noise.Active());
  const data::Sentence s = MakeSentence(
      {"the", "striker", "scored", "for", "united"},
      {MakeMention(4, 4, "united", 7)});
  EXPECT_TRUE(SameSentence(noise.PerturbSentence(s, 0), s));
  const std::vector<data::Sentence> all = noise.PerturbAll({s, s, s});
  ASSERT_EQ(all.size(), 3u);
  for (const data::Sentence& p : all) EXPECT_TRUE(SameSentence(p, s));
}

TEST(NoiseModelTest, SameSeedSameOutputDifferentSeedDiverges) {
  const data::Sentence s = MakeSentence(
      {"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf"},
      {MakeMention(2, 2, "charlie", 3)});
  const robust::NoiseModel a(robust::NoiseOptions::FromRate(0.5, 42));
  const robust::NoiseModel b(robust::NoiseOptions::FromRate(0.5, 42));
  const robust::NoiseModel c(robust::NoiseOptions::FromRate(0.5, 43));
  for (uint64_t idx = 0; idx < 8; ++idx) {
    EXPECT_TRUE(SameSentence(a.PerturbSentence(s, idx),
                             b.PerturbSentence(s, idx)))
        << "same (seed, index) must reproduce bit-identically, idx=" << idx;
  }
  // Across 8 sentence indices at rate 0.5, a different seed must diverge
  // somewhere (the transform would be useless otherwise).
  bool diverged = false;
  for (uint64_t idx = 0; idx < 8 && !diverged; ++idx) {
    diverged = !SameSentence(a.PerturbSentence(s, idx),
                             c.PerturbSentence(s, idx));
  }
  EXPECT_TRUE(diverged);
}

TEST(NoiseModelTest, PerturbationIndependentOfSentenceOrder) {
  const data::Sentence s1 =
      MakeSentence({"one", "two", "three"}, {MakeMention(0, 0, "one", 1)});
  const data::Sentence s2 =
      MakeSentence({"four", "five", "six"}, {MakeMention(2, 2, "six", 2)});
  const robust::NoiseModel noise(robust::NoiseOptions::FromRate(0.4, 7));
  // PerturbSentence keyed by index: the same (sentence, index) pair yields
  // the same output no matter what was perturbed before it.
  const data::Sentence first = noise.PerturbSentence(s2, 5);
  (void)noise.PerturbSentence(s1, 0);
  (void)noise.PerturbSentence(s1, 1);
  EXPECT_TRUE(SameSentence(noise.PerturbSentence(s2, 5), first));
}

TEST(NoiseModelTest, CorruptedMentionPinsCandidateAlias) {
  // char_edit_rate 1.0: every token gets an edit attempt; with case folding
  // off, a single-token mention of length >= 2 always changes (swap of 2
  // distinct chars, drop, or insert all alter the string).
  robust::NoiseOptions options;
  options.char_edit_rate = 1.0;
  options.seed = 11;
  const robust::NoiseModel noise(options);
  const data::Sentence s = MakeSentence(
      {"the", "striker", "scored", "for", "united"},
      {MakeMention(4, 4, "united", 7)});
  const data::Sentence noisy = noise.PerturbSentence(s, 0);
  ASSERT_EQ(noisy.mentions.size(), 1u);
  const data::Mention& m = noisy.mentions[0];
  // Candidate generation still resolves through the clean alias...
  EXPECT_EQ(m.candidate_alias, "united");
  // ...while the surface (what the encoder sees) is the corrupted token.
  EXPECT_EQ(m.alias, noisy.tokens[4]);
  EXPECT_NE(m.alias, "united");
  // Mention tokens are never dropped.
  ASSERT_EQ(noisy.tokens.size(), 5u);
}

TEST(NoiseModelTest, ContextDropoutRemapsSpansAndKeepsMentions) {
  robust::NoiseOptions options;
  options.context_dropout_rate = 1.0;  // drop every non-mention token
  options.seed = 3;
  const robust::NoiseModel noise(options);
  const data::Sentence s = MakeSentence(
      {"a", "b", "mention", "tok", "c", "d"},
      {MakeMention(2, 3, "mention tok", 5)});
  const data::Sentence noisy = noise.PerturbSentence(s, 0);
  ASSERT_EQ(noisy.tokens.size(), 2u);  // only the mention survives
  EXPECT_EQ(noisy.tokens[0], "mention");
  EXPECT_EQ(noisy.tokens[1], "tok");
  ASSERT_EQ(noisy.mentions.size(), 1u);
  EXPECT_EQ(noisy.mentions[0].span_start, 0);
  EXPECT_EQ(noisy.mentions[0].span_end, 1);
  // Surface untouched (no char edits), so candidate_alias stays empty.
  EXPECT_EQ(noisy.mentions[0].alias, "mention tok");
  EXPECT_TRUE(noisy.mentions[0].candidate_alias.empty());
}

TEST(NoiseModelTest, CharEditNeverEmptiesToken) {
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(robust::NoiseModel::ApplyCharEdit("ab", &rng).empty());
    EXPECT_FALSE(robust::NoiseModel::ApplyCharEdit("x", &rng).empty());
  }
}

// --- Overshadowed index ------------------------------------------------------

kb::CandidateMap SkewedMap() {
  kb::CandidateMap map;
  map.AddAlias("lincoln", 1, 0.9f);   // dominant: the president
  map.AddAlias("lincoln", 2, 0.08f);  // overshadowed: the city
  map.AddAlias("lincoln", 3, 0.02f);  // overshadowed: the car
  map.AddAlias("paris", 4, 0.55f);    // ambiguous but not skewed
  map.AddAlias("paris", 5, 0.45f);
  map.AddAlias("unique", 6, 1.0f);    // single candidate: skew meaningless
  map.Finalize(/*max_candidates=*/5);
  return map;
}

TEST(OvershadowedIndexTest, MinesSkewedAliasesOnly) {
  const kb::CandidateMap map = SkewedMap();
  const robust::OvershadowedIndex index =
      robust::OvershadowedIndex::Build(map);
  EXPECT_EQ(index.num_skewed_aliases(), 1);
  EXPECT_TRUE(index.Skewed("lincoln"));
  EXPECT_FALSE(index.Skewed("paris"));    // 0.55 < 0.8 dominance
  EXPECT_FALSE(index.Skewed("unique"));   // below min_candidates
  EXPECT_FALSE(index.Skewed("absent"));
  EXPECT_EQ(index.Dominant("lincoln"), 1);
  EXPECT_EQ(index.Dominant("paris"), kb::kInvalidId);
}

TEST(OvershadowedIndexTest, OvershadowedMeansGoldIsNotDominant) {
  const kb::CandidateMap map = SkewedMap();
  const robust::OvershadowedIndex index =
      robust::OvershadowedIndex::Build(map);
  EXPECT_FALSE(index.Overshadowed("lincoln", 1));  // gold IS the head
  EXPECT_TRUE(index.Overshadowed("lincoln", 2));
  EXPECT_TRUE(index.Overshadowed("lincoln", 3));
  EXPECT_FALSE(index.Overshadowed("paris", 5));    // alias not skewed
}

TEST(OvershadowedIndexTest, DominanceThresholdIsTunable) {
  const kb::CandidateMap map = SkewedMap();
  robust::OvershadowOptions options;
  options.dominance = 0.5f;
  const robust::OvershadowedIndex loose =
      robust::OvershadowedIndex::Build(map, options);
  EXPECT_TRUE(loose.Skewed("lincoln"));
  EXPECT_TRUE(loose.Skewed("paris"));  // 0.55 >= 0.5 now qualifies
  EXPECT_EQ(loose.num_skewed_aliases(), 2);
}

// --- Tagging and the prior-follow diagnostic ---------------------------------

TEST(RobustEvalTest, TagOvershadowedUsesCandidateAliasWhenPresent) {
  const kb::CandidateMap map = SkewedMap();
  const robust::OvershadowedIndex index =
      robust::OvershadowedIndex::Build(map);
  eval::ResultSet rs;
  eval::PredictionRecord noisy_surface;
  noisy_surface.alias = "lincpln";            // corrupted surface
  noisy_surface.candidate_alias = "lincoln";  // pinned clean alias
  noisy_surface.gold = 2;
  noisy_surface.gold_in_candidates = true;
  noisy_surface.num_candidates = 3;
  rs.Add(noisy_surface);
  eval::PredictionRecord head;
  head.alias = "lincoln";
  head.gold = 1;
  head.gold_in_candidates = true;
  head.num_candidates = 3;
  rs.Add(head);
  eval::PredictionRecord ungeneratable;  // Γ missed: can't be overshadowed
  ungeneratable.alias = "lincoln";
  ungeneratable.gold = 2;
  ungeneratable.gold_in_candidates = false;
  rs.Add(ungeneratable);

  robust::TagOvershadowed(index, &rs);
  EXPECT_TRUE(rs.records()[0].overshadowed);
  EXPECT_FALSE(rs.records()[1].overshadowed);
  EXPECT_FALSE(rs.records()[2].overshadowed);
}

TEST(RobustEvalTest, PriorFollowRateCountsEligiblePredictedOnly) {
  eval::ResultSet rs;
  auto add = [&rs](bool followed, bool eligible, bool predicted) {
    eval::PredictionRecord r;
    r.gold = 1;
    r.predicted = predicted ? 1 : kb::kInvalidId;
    r.gold_in_candidates = eligible;
    r.num_candidates = eligible ? 3 : 1;
    r.prior_argmax_predicted = followed;
    rs.Add(std::move(r));
  };
  add(true, true, true);    // counted, followed
  add(false, true, true);   // counted, not followed
  add(true, true, true);    // counted, followed
  add(true, false, true);   // ineligible: ignored
  add(true, true, false);   // no prediction: ignored
  EXPECT_DOUBLE_EQ(robust::PriorFollowRate(rs), 100.0 * 2 / 3);
  EXPECT_DOUBLE_EQ(
      robust::PriorFollowRate(
          rs, [](const eval::PredictionRecord&) { return false; }),
      0.0);
}

// --- End-to-end robust evaluation -------------------------------------------

/// Always predicts candidate 0 — the prior argmax after Finalize.
class FirstCandidateScorer : public eval::NedScorer {
 public:
  std::vector<int64_t> Predict(const data::SentenceExample& ex) override {
    std::vector<int64_t> preds(ex.mentions.size(), -1);
    for (size_t i = 0; i < ex.mentions.size(); ++i) {
      if (!ex.mentions[i].candidates.empty()) preds[i] = 0;
    }
    return preds;
  }
};

class RobustEvaluationTest : public ::testing::Test {
 protected:
  RobustEvaluationTest() {
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_entities = 300;
    config.num_pages = 100;
    world_ = data::BuildWorld(config);
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    data::ApplyWeakLabeling(world_.kb, &corpus_.train);
    counts_ = data::EntityCounts::FromTraining(corpus_.train);
    builder_ = std::make_unique<data::ExampleBuilder>(&world_.candidates,
                                                      &world_.vocab);
    index_ = robust::OvershadowedIndex::Build(world_.candidates);
  }
  data::SynthWorld world_;
  data::Corpus corpus_;
  data::EntityCounts counts_;
  std::unique_ptr<data::ExampleBuilder> builder_;
  robust::OvershadowedIndex index_;
};

TEST_F(RobustEvaluationTest, RateZeroSliceIsBitIdenticalToClean) {
  FirstCandidateScorer scorer;
  const robust::RobustReport report = robust::RunRobustEvaluation(
      &scorer, corpus_.dev, *builder_, {}, counts_, index_, {0.0});
  ASSERT_EQ(report.noisy.size(), 1u);
  const auto& clean = report.clean.records();
  const auto& zero = report.noisy[0].results.records();
  ASSERT_EQ(clean.size(), zero.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].predicted, zero[i].predicted);
    EXPECT_EQ(clean[i].gold, zero[i].gold);
    EXPECT_EQ(clean[i].alias, zero[i].alias);
    EXPECT_EQ(clean[i].overshadowed, zero[i].overshadowed);
    EXPECT_EQ(clean[i].prior_argmax_predicted, zero[i].prior_argmax_predicted);
  }
}

TEST_F(RobustEvaluationTest, TwoRunsAreDeterministic) {
  FirstCandidateScorer scorer;
  const std::vector<double> rates = {0.1, 0.3};
  const robust::RobustReport a = robust::RunRobustEvaluation(
      &scorer, corpus_.dev, *builder_, {}, counts_, index_, rates, 99);
  const robust::RobustReport b = robust::RunRobustEvaluation(
      &scorer, corpus_.dev, *builder_, {}, counts_, index_, rates, 99,
      /*num_threads=*/2);
  ASSERT_EQ(a.noisy.size(), b.noisy.size());
  for (size_t s = 0; s < a.noisy.size(); ++s) {
    const auto& ra = a.noisy[s].results.records();
    const auto& rb = b.noisy[s].results.records();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].predicted, rb[i].predicted);
      EXPECT_EQ(ra[i].alias, rb[i].alias);
    }
  }
}

TEST_F(RobustEvaluationTest, NoisePreservesEligibilityByPinnedAliases) {
  // The design invariant: candidate generation resolves through the pinned
  // clean alias, so the eligible mention set is the same clean and noisy —
  // noisy slices isolate encoder/context degradation from Γ artifacts.
  FirstCandidateScorer scorer;
  const robust::RobustReport report = robust::RunRobustEvaluation(
      &scorer, corpus_.dev, *builder_, {}, counts_, index_, {0.3});
  ASSERT_EQ(report.noisy.size(), 1u);
  EXPECT_EQ(report.clean.NumEligible(), report.noisy[0].results.NumEligible());
  EXPECT_EQ(report.clean.records().size(),
            report.noisy[0].results.records().size());
}

TEST_F(RobustEvaluationTest, PriorScorerAlwaysFollowsPrior) {
  FirstCandidateScorer scorer;
  const robust::RobustReport report = robust::RunRobustEvaluation(
      &scorer, corpus_.dev, *builder_, {}, counts_, index_, {});
  // Candidate 0 IS the prior argmax, so the diagnostic reads 100%.
  EXPECT_DOUBLE_EQ(robust::PriorFollowRate(report.clean), 100.0);
  // And a prior-following scorer scores exactly 0 on the overshadowed slice
  // whenever it is non-empty (gold is never the head there).
  const eval::Prf ov = robust::OvershadowedPrf(report.clean);
  if (ov.total > 0) EXPECT_EQ(ov.correct, 0);
}

// --- Typo-fallback encoding --------------------------------------------------

class TypoFallbackTest : public ::testing::Test {
 protected:
  TypoFallbackTest() {
    for (const char* t : {"united", "striker", "scored", "goal", "the"}) {
      vocab_.AddToken(t);
    }
    vocab_.BuildTypoIndex();
  }
  text::Vocabulary vocab_;
};

TEST_F(TypoFallbackTest, CleanTokensEncodeIdentically) {
  for (const char* t : {"united", "striker", "scored", "goal", "the"}) {
    EXPECT_EQ(vocab_.IdWithTypoFallback(t), vocab_.Id(t));
    EXPECT_NE(vocab_.Id(t), text::kUnkId);
  }
}

TEST_F(TypoFallbackTest, RecoversSingleEditTypos) {
  const int64_t united = vocab_.Id("united");
  EXPECT_EQ(vocab_.IdWithTypoFallback("uinted"), united);   // transposition
  EXPECT_EQ(vocab_.IdWithTypoFallback("unted"), united);    // deletion
  EXPECT_EQ(vocab_.IdWithTypoFallback("uniteed"), united);  // insertion
  EXPECT_EQ(vocab_.IdWithTypoFallback("unized"), united);   // substitution
  EXPECT_EQ(vocab_.IdWithTypoFallback("UNITED"), united);   // case folding
}

TEST_F(TypoFallbackTest, GarbageAndSpecialsStayUnknown) {
  EXPECT_EQ(vocab_.IdWithTypoFallback("zzzzzz"), text::kUnkId);
  EXPECT_EQ(vocab_.IdWithTypoFallback(""), text::kUnkId);
  // Single-char inputs must never resolve into the reserved specials.
  EXPECT_EQ(vocab_.IdWithTypoFallback("q"), text::kUnkId);
}

TEST_F(TypoFallbackTest, ExampleBuilderCharFallbackIsGatedAndCleanIdentical) {
  kb::CandidateMap map;
  map.AddAlias("united", 1, 1.0f);
  map.AddAlias("united", 2, 0.5f);
  map.Finalize(5);
  const data::ExampleBuilder builder(&map, &vocab_);
  const data::Sentence clean = MakeSentence(
      {"the", "striker", "scored", "for", "united"},
      {MakeMention(4, 4, "united", 1)});
  data::ExampleOptions off;
  data::ExampleOptions on;
  on.char_fallback = true;
  // Clean text: bit-identical token ids with the flag on or off.
  EXPECT_EQ(builder.Build(clean, off).token_ids,
            builder.Build(clean, on).token_ids);

  data::Sentence typod = clean;
  typod.tokens[1] = "strikre";  // transposition typo in context
  const data::SentenceExample ex_off = builder.Build(typod, off);
  const data::SentenceExample ex_on = builder.Build(typod, on);
  EXPECT_EQ(ex_off.token_ids[1], text::kUnkId);
  EXPECT_EQ(ex_on.token_ids[1], vocab_.Id("striker"));
}

// --- Mention extractor: untrusted-input edge cases (S3) ----------------------

class ExtractorEdgeCaseTest : public ::testing::Test {
 protected:
  ExtractorEdgeCaseTest() {
    map_.AddAlias("new york", 1, 0.9f);
    map_.AddAlias("new york", 2, 0.1f);
    map_.AddAlias("york", 3, 1.0f);
    map_.AddAlias("city", 4, 1.0f);
    map_.AddAlias("new", 5, 1.0f);
    map_.Finalize(5);
    for (const char* t : {"new", "york", "city", "visit"}) vocab_.AddToken(t);
    extractor_ = std::make_unique<data::MentionExtractor>(&map_);
  }
  kb::CandidateMap map_;
  text::Vocabulary vocab_;
  std::unique_ptr<data::MentionExtractor> extractor_;
};

TEST_F(ExtractorEdgeCaseTest, WindowBoundFromLongestAlias) {
  EXPECT_EQ(extractor_->max_alias_tokens(), 2);
}

TEST_F(ExtractorEdgeCaseTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(extractor_->Extract({}).empty());
  const data::SentenceExample ex = extractor_->BuildExample(vocab_, "");
  EXPECT_TRUE(ex.mentions.empty());
  EXPECT_TRUE(ex.token_ids.empty());
}

TEST_F(ExtractorEdgeCaseTest, OverlongTokensDoNotCrash) {
  const std::string huge(100000, 'x');
  const auto mentions = extractor_->Extract({huge, "york", huge});
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].alias, "york");
  EXPECT_EQ(mentions[0].span_start, 1);
  (void)extractor_->BuildExample(vocab_, huge + " york " + huge);
}

TEST_F(ExtractorEdgeCaseTest, PunctuationOnlyYieldsNothing) {
  EXPECT_TRUE(extractor_->Extract({".", ",", "!", "?", ";"}).empty());
  const data::SentenceExample ex =
      extractor_->BuildExample(vocab_, "... !!! ???");
  EXPECT_TRUE(ex.mentions.empty());
}

TEST_F(ExtractorEdgeCaseTest, BoundaryMentionsAtStartAndEnd) {
  const auto mentions = extractor_->Extract({"york", "visit", "city"});
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].alias, "york");
  EXPECT_EQ(mentions[0].span_start, 0);
  EXPECT_EQ(mentions[0].span_end, 0);
  EXPECT_EQ(mentions[1].alias, "city");
  EXPECT_EQ(mentions[1].span_start, 2);
  EXPECT_EQ(mentions[1].span_end, 2);
}

TEST_F(ExtractorEdgeCaseTest, OverlappingMatchesResolveLeftmostLongest) {
  // "new york" overlaps "york" and "new": the longest match at the leftmost
  // position wins, the scan resumes after it, and "city" still matches.
  const auto mentions = extractor_->Extract({"new", "york", "city"});
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].alias, "new york");
  EXPECT_EQ(mentions[0].span_start, 0);
  EXPECT_EQ(mentions[0].span_end, 1);
  EXPECT_EQ(mentions[1].alias, "city");
  EXPECT_EQ(mentions[1].span_start, 2);
}

TEST_F(ExtractorEdgeCaseTest, PredicateOverloadFiltersMatches) {
  // The serving engine supplies a cache-backed predicate; a predicate that
  // rejects multi-token aliases must fall back to the shorter matches.
  const auto mentions = extractor_->Extract(
      {"new", "york", "city"},
      [](const std::string& alias) { return alias.find(' ') == std::string::npos; });
  ASSERT_EQ(mentions.size(), 3u);
  EXPECT_EQ(mentions[0].alias, "new");
  EXPECT_EQ(mentions[1].alias, "york");
  EXPECT_EQ(mentions[2].alias, "city");
}

}  // namespace
}  // namespace bootleg

#include "baseline/ned_base.h"

#include <gtest/gtest.h>

#include "baseline/prior_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/world.h"

namespace bootleg::baseline {
namespace {

TEST(PriorModelTest, PicksHighestPrior) {
  data::SentenceExample ex;
  data::MentionExample m;
  m.candidates = {10, 20, 30};
  m.priors = {0.2f, 0.7f, 0.1f};
  ex.mentions.push_back(m);
  PriorModel model;
  const auto preds = model.Predict(ex);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], 1);
}

TEST(PriorModelTest, EmptyCandidatesYieldNoPrediction) {
  data::SentenceExample ex;
  ex.mentions.push_back(data::MentionExample{});
  PriorModel model;
  EXPECT_EQ(model.Predict(ex)[0], -1);
}

class NedBaseTest : public ::testing::Test {
 protected:
  NedBaseTest() {
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_entities = 250;
    config.num_pages = 60;
    world_ = data::BuildWorld(config);
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    builder_ = std::make_unique<data::ExampleBuilder>(&world_.candidates,
                                                      &world_.vocab);
    examples_ = builder_->BuildAll(corpus_.train, data::ExampleOptions());
    config_.encoder.hidden = 32;
    config_.encoder.ff_inner = 64;
    config_.encoder.max_len = 24;
    config_.entity_dim = 32;
  }
  data::SynthWorld world_;
  data::Corpus corpus_;
  std::unique_ptr<data::ExampleBuilder> builder_;
  std::vector<data::SentenceExample> examples_;
  NedBaseConfig config_;
};

TEST_F(NedBaseTest, PredictShapes) {
  NedBaseModel model(world_.kb.num_entities(), world_.vocab.size(), config_, 3);
  for (size_t i = 0; i < 15 && i < examples_.size(); ++i) {
    const auto preds = model.Predict(examples_[i]);
    ASSERT_EQ(preds.size(), examples_[i].mentions.size());
  }
}

TEST_F(NedBaseTest, LossFiniteAndTrainingReducesIt) {
  NedBaseModel model(world_.kb.num_entities(), world_.vocab.size(), config_, 3);
  std::vector<data::SentenceExample> subset(
      examples_.begin(),
      examples_.begin() + std::min<size_t>(50, examples_.size()));
  auto avg_loss = [&]() {
    double total = 0.0;
    int64_t n = 0;
    for (const auto& ex : subset) {
      tensor::Var l = model.Loss(ex, /*train=*/false);
      if (l.defined()) {
        total += l.value().at(0);
        ++n;
      }
    }
    return total / n;
  };
  const double before = avg_loss();
  EXPECT_TRUE(std::isfinite(before));
  core::Trainable<NedBaseModel> trainable(&model);
  core::TrainOptions options;
  options.epochs = 3;
  core::Train(&trainable, subset, options);
  EXPECT_LT(avg_loss(), before);
}

TEST_F(NedBaseTest, SizeAccounting) {
  NedBaseModel model(world_.kb.num_entities(), world_.vocab.size(), config_, 3);
  EXPECT_EQ(model.EmbeddingBytes(),
            world_.kb.num_entities() * config_.entity_dim *
                static_cast<int64_t>(sizeof(float)));
  EXPECT_GT(model.NetworkBytes(), 0);
  // The encoder is excluded, so network bytes stay small.
  EXPECT_LT(model.NetworkBytes(), model.EmbeddingBytes());
}

}  // namespace
}  // namespace bootleg::baseline

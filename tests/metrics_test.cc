// Observability layer: the latency histogram must use the complete 1-2-5
// bucket ladder and ceiling-rank percentiles (golden tables below), the
// registry must hand out stable lock-free instruments, trace spans must be
// free when disabled and aggregate correctly when enabled, and the candidate
// cache must count a racing same-alias fill as exactly one miss.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kb/candidate_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/candidate_cache.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;

using obs::Counter;
using obs::Gauge;
using obs::LatencyHistogram;
using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// Histogram bucket ladder
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketLadderIsCompleteOneTwoFive) {
  // Golden table: a full 1-2-5 ladder per decade from 1µs to 100s. The
  // 50,000,000µs rung was missing before the fix.
  const int64_t kExpected[LatencyHistogram::kNumBuckets - 1] = {
      1,        2,        5,        10,       20,
      50,       100,      200,      500,      1000,
      2000,     5000,     10000,    20000,    50000,
      100000,   200000,   500000,   1000000,  2000000,
      5000000,  10000000, 20000000, 50000000, 100000000};
  for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketBoundUs(i), kExpected[i]) << "bucket " << i;
  }
  // The overflow bucket is unbounded and reports its lower edge.
  EXPECT_EQ(LatencyHistogram::BucketBoundUs(LatencyHistogram::kNumBuckets - 1),
            100000000);
  for (int i = 1; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    EXPECT_LT(LatencyHistogram::BucketBoundUs(i - 1),
              LatencyHistogram::BucketBoundUs(i));
  }
}

// Records one value and reads back the bound of the bucket it landed in.
int64_t BucketOf(int64_t micros) {
  LatencyHistogram h;
  h.Record(micros);
  return h.PercentileUs(1.0);
}

TEST(LatencyHistogramTest, BucketAssignment) {
  EXPECT_EQ(BucketOf(0), 1);
  EXPECT_EQ(BucketOf(1), 1);
  EXPECT_EQ(BucketOf(2), 2);
  EXPECT_EQ(BucketOf(3), 5);
  EXPECT_EQ(BucketOf(999), 1000);
  EXPECT_EQ(BucketOf(1000), 1000);
  EXPECT_EQ(BucketOf(1001), 2000);
  // Observations between 20s and 50s belong in the restored 50,000,000 rung,
  // not in the 100s bucket.
  EXPECT_EQ(BucketOf(20000001), 50000000);
  EXPECT_EQ(BucketOf(50000000), 50000000);
  EXPECT_EQ(BucketOf(50000001), 100000000);
  EXPECT_EQ(BucketOf(100000000), 100000000);
  // Past the ladder: the overflow bucket reports its lower edge.
  EXPECT_EQ(BucketOf(100000001), 100000000);
  EXPECT_EQ(BucketOf(-5), 1);  // negatives clamp into bucket 0
}

// ---------------------------------------------------------------------------
// Percentiles: ceiling 1-based rank, exact small-sample golden tables
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, PercentileEmptyReturnsZero) {
  LatencyHistogram h;
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) EXPECT_EQ(h.PercentileUs(q), 0);
}

TEST(LatencyHistogramTest, PercentileSingleObservation) {
  LatencyHistogram h;
  h.Record(7);  // bucket bound 10
  // With n=1 every quantile is the sole observation (rank clamps to 1).
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.PercentileUs(q), 10) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, PercentileTwoObservations) {
  LatencyHistogram h;
  h.Record(1);        // bucket bound 1
  h.Record(1000000);  // bucket bound 1000000
  EXPECT_EQ(h.PercentileUs(0.0), 1);        // rank clamps up to 1
  EXPECT_EQ(h.PercentileUs(0.5), 1);        // ceil(0.5·2) = 1
  EXPECT_EQ(h.PercentileUs(0.95), 1000000);  // ceil(1.9) = 2
  EXPECT_EQ(h.PercentileUs(0.99), 1000000);  // ceil(1.98) = 2
  EXPECT_EQ(h.PercentileUs(1.0), 1000000);   // rank 2
}

TEST(LatencyHistogramTest, PercentileThreeObservationsUsesCeilingRank) {
  LatencyHistogram h;
  h.Record(1);        // bucket bound 1
  h.Record(2);        // bucket bound 2
  h.Record(1000000);  // bucket bound 1000000
  EXPECT_EQ(h.PercentileUs(0.0), 1);
  // p50 of 3 observations is the 2nd (ceil(1.5) = 2). The old floor-rank
  // implementation returned the 1st here.
  EXPECT_EQ(h.PercentileUs(0.5), 2);
  EXPECT_EQ(h.PercentileUs(0.95), 1000000);  // ceil(2.85) = 3
  EXPECT_EQ(h.PercentileUs(0.99), 1000000);  // ceil(2.97) = 3
  EXPECT_EQ(h.PercentileUs(1.0), 1000000);
}

TEST(LatencyHistogramTest, CountSumMeanReset) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(30);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.sum_us(), 40);
  EXPECT_DOUBLE_EQ(h.MeanUs(), 20.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum_us(), 0);
  EXPECT_EQ(h.PercentileUs(0.5), 0);
}

TEST(LatencyHistogramTest, SnapshotSummarizes) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(i < 99 ? 10 : 5000);
  const obs::HistogramSnapshot snap = obs::Snapshot(h);
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.p50_us, 10);
  EXPECT_EQ(snap.p95_us, 10);
  EXPECT_EQ(snap.p99_us, 10);  // rank 99 is still the 10µs bucket
  EXPECT_EQ(h.PercentileUs(1.0), 5000);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.requests");
  EXPECT_EQ(reg.GetCounter("test.requests"), c);  // same slot on re-lookup
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->value(), 4);

  Gauge* g = reg.GetGauge("test.depth");
  EXPECT_EQ(reg.GetGauge("test.depth"), g);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);

  LatencyHistogram* h = reg.GetHistogram("test.wait_us");
  EXPECT_EQ(reg.GetHistogram("test.wait_us"), h);
  h->Record(42);

  const auto counters = reg.CounterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "test.requests");
  EXPECT_EQ(counters[0].second, 4);
  const auto hists = reg.HistogramValues();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].second.count, 1);
}

TEST(MetricsRegistryTest, ValuesAreSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("b.two")->Add(2);
  reg.GetCounter("a.one")->Add(1);
  reg.GetCounter("c.three")->Add(3);
  const auto values = reg.CounterValues();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "a.one");
  EXPECT_EQ(values[1].first, "b.two");
  EXPECT_EQ(values[2].first, "c.three");
}

TEST(MetricsRegistryTest, DumpJsonAndReset) {
  MetricsRegistry reg;
  reg.GetCounter("x.count")->Add(7);
  reg.GetGauge("x.depth")->Set(1.0);
  reg.GetHistogram("x.wait_us")->Record(10);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"x.wait_us\""), std::string::npos);

  Counter* c = reg.GetCounter("x.count");
  reg.Reset();
  EXPECT_EQ(c->value(), 0);  // zeroed in place, pointer still valid
  EXPECT_EQ(reg.GetCounter("x.count"), c);
  EXPECT_EQ(reg.GetHistogram("x.wait_us")->count(), 0);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, ConcurrentRecorders) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Every thread resolves the same names — exercises the map lock — and
      // then hammers the lock-free instruments.
      Counter* c = reg.GetCounter("mt.count");
      LatencyHistogram* h = reg.GetHistogram("mt.wait_us");
      Gauge* g = reg.GetGauge("mt.depth");
      for (int i = 0; i < kOps; ++i) {
        c->Add();
        h->Record(i % 1000);
        g->Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("mt.count")->value(), kThreads * kOps);
  EXPECT_EQ(reg.GetHistogram("mt.wait_us")->count(), kThreads * kOps);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

// Each test that toggles tracing restores the disabled default on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Trace::Reset(); }
  void TearDown() override {
    obs::Trace::Enable(false);
    obs::Trace::Reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  obs::Trace::Enable(false);
  {
    OBS_SPAN("test.disabled_stage");
  }
  EXPECT_EQ(obs::Trace::Stage("test.disabled_stage")->count(), 0);
  for (const obs::SpanSummary& s : obs::Trace::Summaries()) {
    EXPECT_NE(s.name, "test.disabled_stage");
  }
}

TEST_F(TraceTest, EnabledSpansAggregate) {
  obs::Trace::Enable(true);
  for (int i = 0; i < 5; ++i) {
    OBS_SPAN("test.enabled_stage");
  }
  obs::StageStats* stats = obs::Trace::Stage("test.enabled_stage");
  EXPECT_EQ(stats->count(), 5);
  EXPECT_GE(stats->max_us(), 0);

  bool found = false;
  for (const obs::SpanSummary& s : obs::Trace::Summaries()) {
    if (s.name != "test.enabled_stage") continue;
    found = true;
    EXPECT_EQ(s.count, 5);
    EXPECT_EQ(s.total_us, stats->total_us());
    EXPECT_GE(s.max_us, 0);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, StagePointersAreStableAcrossReset) {
  obs::StageStats* stats = obs::Trace::Stage("test.stable_stage");
  obs::Trace::Enable(true);
  {
    OBS_SPAN("test.stable_stage");
  }
  EXPECT_EQ(stats->count(), 1);
  obs::Trace::Reset();
  EXPECT_EQ(obs::Trace::Stage("test.stable_stage"), stats);
  EXPECT_EQ(stats->count(), 0);
}

TEST_F(TraceTest, SpanStraddlingDisableIsRecordedIffOpenWhileEnabled) {
  obs::Trace::Enable(true);
  {
    OBS_SPAN("test.straddle");
    obs::Trace::Enable(false);  // span opened enabled → still recorded
  }
  EXPECT_EQ(obs::Trace::Stage("test.straddle")->count(), 1);
  {
    OBS_SPAN("test.straddle");
    obs::Trace::Enable(true);  // span opened disabled → not recorded
  }
  EXPECT_EQ(obs::Trace::Stage("test.straddle")->count(), 1);
}

TEST_F(TraceTest, WriteJsonlEmitsOneLinePerStage) {
  obs::Trace::Enable(true);
  {
    OBS_SPAN("test.jsonl_a");
  }
  {
    OBS_SPAN("test.jsonl_b");
  }
  const std::string path =
      (fs::temp_directory_path() / "bootleg_metrics_test_trace.jsonl").string();
  ASSERT_TRUE(obs::Trace::WriteJsonl(path).ok());
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  fs::remove(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"span\": \"test.jsonl_a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"span\": \"test.jsonl_b\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"count\": 1"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentSpans) {
  obs::Trace::Enable(true);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kOps; ++i) {
        OBS_SPAN("test.concurrent_stage");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::Trace::Stage("test.concurrent_stage")->count(),
            kThreads * kOps);
}

// ---------------------------------------------------------------------------
// Candidate cache miss accounting under a same-alias race
// ---------------------------------------------------------------------------

TEST(CandidateCacheRaceTest, ConcurrentSameAliasFillCountsOneMiss) {
  kb::CandidateMap map;
  map.AddAlias("paris", 1, 1.0f);
  map.AddAlias("paris", 2, 0.5f);
  map.Finalize(/*max_candidates=*/4);

  constexpr int kThreads = 8;
  constexpr int kLookups = 500;
  // Run many rounds: the first-lookup race is narrow, so a single round
  // rarely exercises the both-threads-miss-then-one-inserts interleaving.
  for (int round = 0; round < 20; ++round) {
    serve::CandidateCache cache(/*capacity=*/16);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&map, &cache] {
        serve::CachedCandidates out;
        for (int i = 0; i < kLookups; ++i) {
          ASSERT_TRUE(cache.Lookup(map, "paris", &out));
          ASSERT_EQ(out.entities.size(), 2u);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    // Exactly one thread inserts; everyone else — including threads that
    // lost the fill race — is served from the cache and counts as a hit.
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kLookups);
    EXPECT_EQ(cache.size(), 1u);
  }
}

}  // namespace
}  // namespace bootleg

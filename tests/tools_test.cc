// Tests for the adoption-surface components: mention extraction from raw
// text, corpus serialization, and the file-driven dataset pipeline that the
// CLI uses.
#include <filesystem>

#include <gtest/gtest.h>

#include "data/corpus_io.h"

#include "util/io.h"
#include "data/generator.h"
#include "data/mention_extractor.h"
#include "data/weak_label.h"
#include "data/world.h"

namespace bootleg::data {
namespace {

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() {
    SynthConfig config = SynthConfig::MicroScale();
    config.num_entities = 300;
    config.num_pages = 60;
    world_ = BuildWorld(config);
    CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
  }
  SynthWorld world_;
  Corpus corpus_;
};

TEST_F(ToolsTest, ExtractorFindsAliasTokens) {
  MentionExtractor extractor(&world_.candidates);
  // Build a sentence from a known alias surrounded by filler.
  const std::string alias = world_.kb.entity(0).aliases.front();
  const auto mentions = extractor.Extract({"the", alias, "was", "f0"});
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].span_start, 1);
  EXPECT_EQ(mentions[0].alias, alias);
}

TEST_F(ToolsTest, ExtractorIgnoresUnknownTokens) {
  MentionExtractor extractor(&world_.candidates);
  EXPECT_TRUE(extractor.Extract({"nothing", "known", "here"}).empty());
}

TEST_F(ToolsTest, BuildExampleIsModelReady) {
  MentionExtractor extractor(&world_.candidates);
  const std::string alias = world_.kb.entity(3).aliases.front();
  const SentenceExample ex =
      extractor.BuildExample(world_.vocab, "the " + alias + " was f1 .");
  ASSERT_EQ(ex.mentions.size(), 1u);
  EXPECT_FALSE(ex.mentions[0].candidates.empty());
  EXPECT_EQ(ex.mentions[0].gold_index, -1);  // raw text has no gold
  EXPECT_EQ(ex.token_ids.size(), 5u);
}

TEST_F(ToolsTest, CorpusRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "corpus_test.bin").string();
  ApplyWeakLabeling(world_.kb, &corpus_.train);
  ASSERT_TRUE(SaveCorpus(corpus_, path).ok());
  Corpus loaded;
  ASSERT_TRUE(LoadCorpus(path, &loaded).ok());
  ASSERT_EQ(loaded.train.size(), corpus_.train.size());
  ASSERT_EQ(loaded.dev.size(), corpus_.dev.size());
  const Sentence& a = corpus_.train.front();
  const Sentence& b = loaded.train.front();
  EXPECT_EQ(a.tokens, b.tokens);
  ASSERT_EQ(a.mentions.size(), b.mentions.size());
  for (size_t i = 0; i < a.mentions.size(); ++i) {
    EXPECT_EQ(a.mentions[i].gold, b.mentions[i].gold);
    EXPECT_EQ(a.mentions[i].labeled, b.mentions[i].labeled);
    EXPECT_EQ(a.mentions[i].weak_labeled, b.mentions[i].weak_labeled);
    EXPECT_EQ(a.mentions[i].candidate_alias, b.mentions[i].candidate_alias);
    EXPECT_EQ(static_cast<int>(a.mentions[i].kind),
              static_cast<int>(b.mentions[i].kind));
  }
  EXPECT_EQ(a.page_id, b.page_id);
  EXPECT_EQ(a.doc_title, b.doc_title);
  std::filesystem::remove(path);
}

TEST_F(ToolsTest, LoadCorpusRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "corpus_bad.bin").string();
  ASSERT_TRUE(util::WriteTextFile(path, "not a corpus").ok());
  Corpus loaded;
  EXPECT_FALSE(LoadCorpus(path, &loaded).ok());
  std::filesystem::remove(path);
}

TEST_F(ToolsTest, RenderSentenceShowsAnnotations) {
  const Sentence& s = corpus_.train.front();
  const std::string rendered = RenderSentence(s, &world_.kb);
  EXPECT_FALSE(rendered.empty());
  if (!s.mentions.empty()) {
    EXPECT_NE(rendered.find('['), std::string::npos);
    EXPECT_NE(rendered.find(world_.kb.entity(s.mentions[0].gold).title),
              std::string::npos);
  }
}

TEST_F(ToolsTest, FileDrivenPipelineMatchesInMemory) {
  // Save KB + candidates + vocab + corpus; reload; the reloaded artifacts
  // must produce identical model-ready examples (the CLI's contract).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bootleg_ds_test").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(world_.kb.Save(dir + "/kb.bin").ok());
  ASSERT_TRUE(world_.candidates.Save(dir + "/candidates.bin").ok());
  ASSERT_TRUE(world_.vocab.Save(dir + "/vocab.bin").ok());
  ASSERT_TRUE(SaveCorpus(corpus_, dir + "/corpus.bin").ok());

  kb::KnowledgeBase kb2;
  kb::CandidateMap cands2;
  text::Vocabulary vocab2;
  Corpus corpus2;
  ASSERT_TRUE(kb2.Load(dir + "/kb.bin").ok());
  ASSERT_TRUE(cands2.Load(dir + "/candidates.bin").ok());
  ASSERT_TRUE(vocab2.Load(dir + "/vocab.bin").ok());
  ASSERT_TRUE(LoadCorpus(dir + "/corpus.bin", &corpus2).ok());

  ExampleBuilder b1(&world_.candidates, &world_.vocab);
  ExampleBuilder b2(&cands2, &vocab2);
  for (size_t i = 0; i < 20 && i < corpus_.dev.size(); ++i) {
    const SentenceExample e1 = b1.Build(corpus_.dev[i], {});
    const SentenceExample e2 = b2.Build(corpus2.dev[i], {});
    EXPECT_EQ(e1.token_ids, e2.token_ids);
    ASSERT_EQ(e1.mentions.size(), e2.mentions.size());
    for (size_t m = 0; m < e1.mentions.size(); ++m) {
      EXPECT_EQ(e1.mentions[m].candidates, e2.mentions[m].candidates);
      EXPECT_EQ(e1.mentions[m].gold_index, e2.mentions[m].gold_index);
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bootleg::data

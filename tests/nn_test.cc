#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/param_store.h"
#include "tensor/gradcheck.h"

namespace bootleg::nn {
namespace {

using tensor::Tensor;
using tensor::Var;

TEST(ParamStoreTest, CreateAndGet) {
  ParameterStore store;
  Var p = store.CreateParam("w", Tensor::FromVector({1, 2}));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_EQ(store.GetParam("w").value().at(1), 2.0f);
  EXPECT_TRUE(store.HasParam("w"));
  EXPECT_FALSE(store.HasParam("nope"));
}

TEST(ParamStoreTest, ParamCounts) {
  ParameterStore store;
  util::Rng rng(1);
  store.CreateParam("a", Tensor({2, 3}));
  store.CreateParam("b", Tensor({5}));
  store.CreateEmbedding("e", 10, 4, &rng);
  EXPECT_EQ(store.DenseParamCount(), 11);
  EXPECT_EQ(store.EmbeddingParamCount(), 40);
}

TEST(ParamStoreTest, FreezeByPrefix) {
  ParameterStore store;
  store.CreateParam("encoder.w", Tensor({2}));
  store.CreateParam("head.w", Tensor({2}));
  store.Freeze("encoder");
  EXPECT_TRUE(store.IsFrozen("encoder.w"));
  EXPECT_FALSE(store.IsFrozen("head.w"));
}

TEST(ParamStoreTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "store_test.ckpt").string();
  util::Rng rng(2);
  ParameterStore a;
  a.CreateParam("w", Tensor::Randn({3, 3}, &rng));
  Embedding* ea = a.CreateEmbedding("e", 5, 2, &rng);
  ASSERT_TRUE(a.Save(path).ok());

  util::Rng rng2(99);  // different init
  ParameterStore b;
  b.CreateParam("w", Tensor::Randn({3, 3}, &rng2));
  Embedding* eb = b.CreateEmbedding("e", 5, 2, &rng2);
  ASSERT_TRUE(b.Load(path).ok());
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(a.GetParam("w").value().at(i), b.GetParam("w").value().at(i));
  }
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ea->table().at(i), eb->table().at(i));
  }
  std::filesystem::remove(path);
}

TEST(ParamStoreTest, LoadRejectsShapeMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "store_mismatch.ckpt").string();
  ParameterStore a;
  a.CreateParam("w", Tensor({2, 2}));
  ASSERT_TRUE(a.Save(path).ok());
  ParameterStore b;
  b.CreateParam("w", Tensor({3, 3}));
  EXPECT_FALSE(b.Load(path).ok());
  std::filesystem::remove(path);
}

TEST(EmbeddingTest, LookupValues) {
  util::Rng rng(3);
  Embedding emb("e", 4, 3, &rng);
  Var out = emb.Lookup({2, 0});
  EXPECT_EQ(out.value().size(0), 2);
  EXPECT_EQ(out.value().at(0, 1), emb.table().at(2, 1));
}

TEST(EmbeddingTest, SparseGradAccumulation) {
  util::Rng rng(4);
  Embedding emb("e", 6, 2, &rng);
  Var out = emb.Lookup({3, 3, 5});
  tensor::Backward(tensor::Sum(out));
  ASSERT_EQ(emb.sparse_grads().size(), 2u);
  EXPECT_EQ(emb.sparse_grads().at(3)[0], 2.0f);  // row 3 gathered twice
  EXPECT_EQ(emb.sparse_grads().at(5)[0], 1.0f);
  emb.ZeroGrad();
  EXPECT_TRUE(emb.sparse_grads().empty());
}

TEST(EmbeddingTest, InitConstantRows) {
  util::Rng rng(5);
  Embedding emb("e", 4, 3, &rng);
  emb.InitConstantRows(Tensor::FromVector({1, 2, 3}));
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(emb.table().at(r, 0), 1.0f);
    EXPECT_EQ(emb.table().at(r, 2), 3.0f);
  }
}

TEST(LinearTest, OutputShapeAndBias) {
  ParameterStore store;
  util::Rng rng(6);
  Linear linear(&store, "l", 3, 2, &rng);
  Var x = Var::Constant(Tensor({4, 3}));
  Var y = linear.Forward(x);
  EXPECT_EQ(y.value().size(0), 4);
  EXPECT_EQ(y.value().size(1), 2);
  // With zero input, the output equals the (zero-initialized) bias.
  EXPECT_EQ(y.value().at(0, 0), 0.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  ParameterStore store;
  LayerNormLayer ln(&store, "ln", 4);
  util::Rng rng(7);
  Var x = Var::Constant(Tensor::Randn({3, 4}, &rng, 5.0f));
  Var y = ln.Forward(x);
  for (int64_t i = 0; i < 3; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 4; ++j) mean += y.value().at(i, j);
    mean /= 4;
    for (int64_t j = 0; j < 4; ++j) {
      var += std::pow(y.value().at(i, j) - mean, 2);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 4, 1.0, 1e-2);
  }
}

TEST(DropoutTest, IdentityAtEval) {
  Dropout dropout(0.5f);
  util::Rng rng(8);
  Var x = Var::Constant(Tensor::Randn({5, 5}, &rng));
  Var y = dropout.Apply(x, &rng, /*train=*/false);
  for (int64_t i = 0; i < x.value().numel(); ++i) {
    EXPECT_EQ(x.value().at(i), y.value().at(i));
  }
}

TEST(DropoutTest, MasksAndRescalesAtTrain) {
  Dropout dropout(0.5f);
  util::Rng rng(9);
  Var x = Var::Constant(Tensor::Ones({100, 10}));
  Var y = dropout.Apply(x, &rng, /*train=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value().at(i);
    EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-6f);
    if (v == 0.0f) ++zeros;
  }
  // Roughly half masked.
  EXPECT_GT(zeros, 300);
  EXPECT_LT(zeros, 700);
}

TEST(MlpTest, ShapesAcrossDepths) {
  ParameterStore store;
  util::Rng rng(10);
  Mlp mlp(&store, "mlp", {6, 8, 4, 2}, &rng);
  Var x = Var::Constant(Tensor::Randn({3, 6}, &rng));
  Var y = mlp.Forward(x, &rng, /*train=*/false);
  EXPECT_EQ(y.value().size(1), 2);
}

TEST(AttentionTest, MhaOutputShape) {
  ParameterStore store;
  util::Rng rng(11);
  MultiHeadAttention mha(&store, "mha", 8, 2, &rng);
  Var q = Var::Constant(Tensor::Randn({3, 8}, &rng));
  Var k = Var::Constant(Tensor::Randn({5, 8}, &rng));
  Var out = mha.Attend(q, k);
  EXPECT_EQ(out.value().size(0), 3);
  EXPECT_EQ(out.value().size(1), 8);
}

TEST(AttentionTest, BlockPreservesShape) {
  ParameterStore store;
  util::Rng rng(12);
  AttentionBlock block(&store, "b", 8, 2, 16, &rng);
  Var x = Var::Constant(Tensor::Randn({4, 8}, &rng));
  Var out = block.Forward(x, &rng, /*train=*/false);
  EXPECT_EQ(out.value().size(0), 4);
  EXPECT_EQ(out.value().size(1), 8);
  EXPECT_TRUE(tensor::AllFinite(out.value()));
}

TEST(AttentionTest, AdditiveAttentionPoolsToSingleRow) {
  ParameterStore store;
  util::Rng rng(13);
  AdditiveAttention pool(&store, "p", 4, 8, &rng);
  Var items = Var::Constant(Tensor::Randn({5, 4}, &rng));
  Var out = pool.Pool(items);
  EXPECT_EQ(out.value().size(0), 1);
  EXPECT_EQ(out.value().size(1), 4);
}

TEST(AttentionTest, AdditiveAttentionOfSingleItemIsIdentity) {
  ParameterStore store;
  util::Rng rng(14);
  AdditiveAttention pool(&store, "p", 4, 8, &rng);
  Tensor item = Tensor::Randn({1, 4}, &rng);
  Var out = pool.Pool(Var::Constant(item));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.value().at(0, j), item.at(0, j), 1e-5f);
  }
}

TEST(AttentionTest, GradientsFlowThroughBlock) {
  ParameterStore store;
  util::Rng rng(15);
  AttentionBlock block(&store, "b", 8, 2, 16, &rng);
  Var x = Var::Leaf(Tensor::Randn({3, 8}, &rng), true);
  tensor::Backward(tensor::Sum(block.Forward(x, &rng, /*train=*/false)));
  EXPECT_FALSE(x.grad().empty());
  EXPECT_GT(tensor::Norm(x.grad()), 0.0f);
}

TEST(PositionalTest, SinusoidalTableProperties) {
  Tensor table = SinusoidalPositionTable(16, 8);
  EXPECT_EQ(table.size(0), 16);
  // Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
  EXPECT_EQ(table.at(0, 0), 0.0f);
  EXPECT_EQ(table.at(0, 1), 1.0f);
  // Distinct positions differ.
  bool differs = false;
  for (int64_t j = 0; j < 8; ++j) {
    if (table.at(1, j) != table.at(2, j)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(OptimizerTest, SgdFitsLinearRegression) {
  ParameterStore store;
  util::Rng rng(16);
  Var w = store.CreateParam("w", Tensor::Randn({2, 1}, &rng, 0.1f));
  Tensor x({8, 2}, {1, 0, 0, 1, 1, 1, 2, 1, 1, 2, 3, 0, 0, 3, 2, 2});
  // Target: y = 2*x0 - x1.
  Tensor target({8, 1});
  for (int64_t i = 0; i < 8; ++i) {
    target.at(i, 0) = 2 * x.at(i, 0) - x.at(i, 1);
  }
  Sgd sgd(&store, 0.05f);
  for (int step = 0; step < 300; ++step) {
    Var pred = tensor::MatMul(Var::Constant(x), w);
    Var diff = tensor::Sub(pred, Var::Constant(target));
    tensor::Backward(tensor::Mean(tensor::Mul(diff, diff)));
    sgd.Step();
  }
  EXPECT_NEAR(w.value().at(0, 0), 2.0f, 0.05f);
  EXPECT_NEAR(w.value().at(1, 0), -1.0f, 0.05f);
}

TEST(OptimizerTest, AdamFitsLinearRegression) {
  ParameterStore store;
  util::Rng rng(17);
  Var w = store.CreateParam("w", Tensor::Randn({2, 1}, &rng, 0.1f));
  Tensor x({4, 2}, {1, 0, 0, 1, 1, 1, 2, 1});
  Tensor target({4, 1}, {3, -1, 2, 5});  // y = 3*x0 - x1
  Adam::Options options;
  options.lr = 0.05f;
  Adam adam(&store, options);
  for (int step = 0; step < 500; ++step) {
    Var pred = tensor::MatMul(Var::Constant(x), w);
    Var diff = tensor::Sub(pred, Var::Constant(target));
    tensor::Backward(tensor::Mean(tensor::Mul(diff, diff)));
    adam.Step();
  }
  EXPECT_NEAR(w.value().at(0, 0), 3.0f, 0.1f);
  EXPECT_NEAR(w.value().at(1, 0), -1.0f, 0.1f);
}

TEST(OptimizerTest, AdamUpdatesOnlyTouchedEmbeddingRows) {
  ParameterStore store;
  util::Rng rng(18);
  Embedding* emb = store.CreateEmbedding("e", 5, 2, &rng);
  const Tensor before = emb->table();
  Adam adam(&store, {});
  Var out = emb->Lookup({1});
  tensor::Backward(tensor::Sum(out));
  adam.Step();
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 2; ++c) {
      if (r == 1) {
        EXPECT_NE(emb->table().at(r, c), before.at(r, c));
      } else {
        EXPECT_EQ(emb->table().at(r, c), before.at(r, c));
      }
    }
  }
}

TEST(OptimizerTest, FrozenParamsAreNotUpdated) {
  ParameterStore store;
  util::Rng rng(19);
  Var frozen = store.CreateParam("encoder.w", Tensor::Randn({2}, &rng));
  Var live = store.CreateParam("head.w", Tensor::Randn({2}, &rng));
  store.Freeze("encoder");
  const float frozen_before = frozen.value().at(0);
  Adam adam(&store, {});
  tensor::Backward(tensor::Sum(tensor::Mul(tensor::Add(frozen, live), live)));
  adam.Step();
  EXPECT_EQ(frozen.value().at(0), frozen_before);
}

TEST(OptimizerTest, GradientClippingBoundsUpdateScale) {
  ParameterStore store;
  Var w = store.CreateParam("w", Tensor::FromVector({0.0f}));
  Adam::Options options;
  options.clip_norm = 1.0f;
  options.lr = 1.0f;
  Adam adam(&store, options);
  // Enormous gradient; after clipping the Adam update is still ≈ lr.
  w.mutable_grad().at(0) = 1e6f;
  adam.Step();
  EXPECT_LT(std::abs(w.value().at(0)), 1.5f);
}

/// Parameterized sweep: MHA shape invariance over head counts and sizes.
class MhaShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MhaShapeTest, OutputMatchesQueryShape) {
  auto [hidden, heads, rows] = GetParam();
  ParameterStore store;
  util::Rng rng(20);
  MultiHeadAttention mha(&store, "mha", hidden, heads, &rng);
  Var q = Var::Constant(Tensor::Randn({rows, hidden}, &rng));
  Var k = Var::Constant(Tensor::Randn({7, hidden}, &rng));
  Var out = mha.Attend(q, k);
  EXPECT_EQ(out.value().size(0), rows);
  EXPECT_EQ(out.value().size(1), hidden);
  EXPECT_TRUE(tensor::AllFinite(out.value()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MhaShapeTest,
                         ::testing::Values(std::make_tuple(8, 1, 1),
                                           std::make_tuple(8, 2, 3),
                                           std::make_tuple(16, 4, 5),
                                           std::make_tuple(32, 8, 2)));

}  // namespace
}  // namespace bootleg::nn

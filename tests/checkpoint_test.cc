// Crash-safe checkpointing: mid-run snapshot + resume must be bit-identical
// to the uninterrupted run at the same thread count, recovery must skip torn
// and corrupt checkpoint files, retain-K pruning must keep the newest
// snapshots, and the fault-injection layer must leave exactly the artifacts a
// real crash would.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "nn/optimizer.h"
#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bootleg {
namespace {

namespace fs = std::filesystem;
using tensor::Tensor;
using tensor::Var;
using util::ThreadPool;

std::string TestDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bootleg_ckpt_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- RNG state serialization -------------------------------------------------

TEST(RngStateTest, SerializeDeserializeReplaysExactStream) {
  util::Rng a(1234);
  // Advance past the seed so the state is mid-stream.
  for (int i = 0; i < 100; ++i) a.UniformInt(0, 1 << 20);
  const std::string state = a.SerializeState();

  util::Rng b(999);
  ASSERT_TRUE(b.DeserializeState(state));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  }
}

TEST(RngStateTest, DeserializeRejectsMalformedState) {
  util::Rng r(1);
  EXPECT_FALSE(r.DeserializeState("not a generator state"));
}

// --- Adam state roundtrip ----------------------------------------------------

// Two stores with identical layout+init; drives both with the same gradient,
// checkpoints one optimizer into the other, and verifies the next step lands
// both on bit-identical parameters.
TEST(AdamStateTest, SaveLoadRoundtripContinuesBitIdentically) {
  const std::string dir = TestDir("adam");
  auto make_store = [](nn::ParameterStore* store) {
    util::Rng rng(77);
    store->CreateParam("w", Tensor::Randn({4, 3}, &rng));
    store->CreateParam("b", Tensor::Randn({3}, &rng));
    store->CreateEmbedding("emb", 6, 3, &rng);
  };
  nn::ParameterStore s1, s2;
  make_store(&s1);
  make_store(&s2);
  nn::Adam a1(&s1, {});

  const auto drive = [](nn::ParameterStore* store, nn::Adam* adam, int seed) {
    util::Rng rng(static_cast<uint64_t>(seed));
    const Tensor x = Tensor::Randn({2, 4}, &rng);
    Var h = tensor::MatMul(Var::Constant(x), store->GetParam("w"));
    Var e = store->GetEmbedding("emb")->Lookup({1, 4});
    tensor::Backward(tensor::Add(tensor::Sum(h), tensor::Sum(e)));
    tensor::Backward(tensor::Sum(store->GetParam("b")));
    adam->Step();
  };
  drive(&s1, &a1, 5);
  drive(&s1, &a1, 6);

  const std::string path = dir + "/adam.bin";
  {
    util::AtomicFileWriter atomic(path);
    util::BinaryWriter w(atomic.temp_path());
    a1.SaveState(&w);
    ASSERT_TRUE(w.Finish().ok());
    ASSERT_TRUE(atomic.Commit().ok());
  }

  // Catch s2's parameters up to s1 (two identical driven steps), then load
  // the optimizer state and take one more identical step on each side.
  nn::Adam a2(&s2, {});
  drive(&s2, &a2, 5);
  drive(&s2, &a2, 6);
  nn::Adam a2_fresh(&s2, {});  // moments zeroed: must be fully restored
  {
    util::BinaryReader r(path);
    ASSERT_TRUE(a2_fresh.LoadState(&r).ok());
  }
  EXPECT_EQ(a2_fresh.step_count(), a1.step_count());
  drive(&s1, &a1, 7);
  drive(&s2, &a2_fresh, 7);
  for (const std::string& name : {"w", "b"}) {
    const auto& v1 = s1.GetParam(name).value().vec();
    const auto& v2 = s2.GetParam(name).value().vec();
    EXPECT_EQ(v1, v2) << name;
  }
  EXPECT_EQ(s1.GetEmbedding("emb")->table().vec(),
            s2.GetEmbedding("emb")->table().vec());
}

TEST(AdamStateTest, LoadRejectsMismatchedLayout) {
  util::Rng rng(3);
  nn::ParameterStore s1;
  s1.CreateParam("w", Tensor::Randn({2, 2}, &rng));
  nn::Adam a1(&s1, {});
  const std::string path = TestDir("adam_mismatch") + "/adam.bin";
  {
    util::AtomicFileWriter atomic(path);
    util::BinaryWriter w(atomic.temp_path());
    a1.SaveState(&w);
    ASSERT_TRUE(w.Finish().ok());
    ASSERT_TRUE(atomic.Commit().ok());
  }
  nn::ParameterStore s2;
  s2.CreateParam("other", Tensor::Randn({2, 2}, &rng));
  nn::Adam a2(&s2, {});
  util::BinaryReader r(path);
  const util::Status st = a2.LoadState(&r);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kCorruption);
}

// --- Checkpoint files --------------------------------------------------------

TEST(CheckpointFileTest, ListCheckpointsIgnoresTempAndForeignFiles) {
  const std::string dir = TestDir("list");
  for (const char* name :
       {"ckpt_5.bin", "ckpt_12.bin", "ckpt_7.bin.tmp", "ckpt_x.bin",
        "MANIFEST", "other.bin"}) {
    std::ofstream(dir + "/" + name) << "x";
  }
  const auto found = core::ListCheckpoints(dir);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].first, 12);  // newest first
  EXPECT_EQ(found[1].first, 5);
}

TEST(CheckpointFileTest, WriteReadRoundtripAndRetainPruning) {
  const std::string dir = TestDir("roundtrip");
  util::Rng rng(11);
  nn::ParameterStore store;
  store.CreateParam("w", Tensor::Randn({3, 3}, &rng));
  store.CreateEmbedding("emb", 4, 2, &rng);
  nn::Adam adam(&store, {});

  core::TrainerState state;
  state.epoch = 1;
  state.cursor = 16;
  state.steps = 0;
  state.sentences_seen = 48;
  state.window_loss = 2.5;
  state.window_count = 9;
  state.nthreads = 2;
  state.master_rng = util::Rng(1).SerializeState();
  state.worker_rngs = {util::Rng(2).SerializeState(),
                       util::Rng(3).SerializeState()};
  state.order = {3, 1, 0, 2};

  for (int64_t step : {4, 8, 12, 16}) {
    state.steps = step;
    ASSERT_TRUE(
        core::WriteCheckpoint(dir, state, store, adam, /*retain=*/2).ok());
  }
  const auto kept = core::ListCheckpoints(dir);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].first, 16);
  EXPECT_EQ(kept[1].first, 12);
  const auto manifest = util::ReadTextFile(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value(), "ckpt_16.bin\nckpt_12.bin\n");

  nn::ParameterStore loaded_store;
  loaded_store.CreateParam("w", Tensor::Zeros({3, 3}));
  util::Rng zrng(99);
  loaded_store.CreateEmbedding("emb", 4, 2, &zrng);
  nn::Adam loaded_adam(&loaded_store, {});
  core::TrainerState loaded;
  ASSERT_TRUE(core::ReadCheckpoint(core::CheckpointPath(dir, 16), &loaded,
                                   &loaded_store, &loaded_adam)
                  .ok());
  EXPECT_EQ(loaded.epoch, 1);
  EXPECT_EQ(loaded.cursor, 16);
  EXPECT_EQ(loaded.steps, 16);
  EXPECT_EQ(loaded.sentences_seen, 48);
  EXPECT_EQ(loaded.window_loss, 2.5);
  EXPECT_EQ(loaded.window_count, 9);
  EXPECT_EQ(loaded.nthreads, 2);
  EXPECT_EQ(loaded.master_rng, state.master_rng);
  EXPECT_EQ(loaded.worker_rngs, state.worker_rngs);
  EXPECT_EQ(loaded.order, state.order);
  EXPECT_EQ(loaded_store.GetParam("w").value().vec(),
            store.GetParam("w").value().vec());
}

TEST(CheckpointFileTest, RecoverySkipsCorruptNewestCheckpoint) {
  const std::string dir = TestDir("recover");
  util::Rng rng(21);
  nn::ParameterStore store;
  store.CreateParam("w", Tensor::Randn({2, 2}, &rng));
  nn::Adam adam(&store, {});
  core::TrainerState state;
  state.nthreads = 1;
  state.master_rng = util::Rng(1).SerializeState();
  state.worker_rngs = {util::Rng(2).SerializeState()};
  state.order = {0, 1};
  state.steps = 3;
  ASSERT_TRUE(core::WriteCheckpoint(dir, state, store, adam, 3).ok());

  // A newer checkpoint torn mid-write, plus a stray temp file.
  std::ofstream(core::CheckpointPath(dir, 9), std::ios::binary)
      << "\xcc\x1e\x07\xb0partial";
  std::ofstream(dir + "/ckpt_11.bin.tmp", std::ios::binary) << "torn";

  core::TrainerState recovered;
  const auto rec =
      core::RecoverLatestCheckpoint(dir, &recovered, &store, &adam, nullptr);
  EXPECT_TRUE(rec.resumed);
  EXPECT_EQ(rec.step, 3);
  EXPECT_EQ(recovered.order, state.order);
}

// --- Fault injection and atomic replace --------------------------------------

TEST(FaultInjectionTest, TruncatedWriteLeavesTornTempAndNoCanonicalFile) {
  const std::string dir = TestDir("fault_truncate");
  const std::string path = dir + "/store.bin";
  util::Rng rng(31);
  nn::ParameterStore store;
  store.CreateParam("w", Tensor::Randn({16, 16}, &rng));

  util::FaultInjector::Plan plan;
  plan.fail_after_bytes = 100;
  util::FaultInjector::Arm(plan);
  const util::Status st = store.Save(path);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(util::FaultInjector::crash_simulated());
  util::FaultInjector::Disarm();

  EXPECT_FALSE(fs::exists(path));             // never became canonical
  ASSERT_TRUE(fs::exists(path + ".tmp"));     // torn artifact, as a kill leaves
  EXPECT_EQ(fs::file_size(path + ".tmp"), 100u);

  nn::ParameterStore loaded;
  loaded.CreateParam("w", Tensor::Zeros({16, 16}));
  const util::Status load = loaded.Load(path + ".tmp");
  EXPECT_FALSE(load.ok());
  EXPECT_EQ(load.code(), util::StatusCode::kCorruption);
}

TEST(FaultInjectionTest, CommitFailureLeavesOldFileIntact) {
  const std::string dir = TestDir("fault_commit");
  const std::string path = dir + "/store.bin";
  util::Rng rng(41);
  nn::ParameterStore old_store;
  old_store.CreateParam("w", Tensor::Randn({4, 4}, &rng));
  ASSERT_TRUE(old_store.Save(path).ok());

  nn::ParameterStore new_store;
  new_store.CreateParam("w", Tensor::Randn({4, 4}, &rng));
  util::FaultInjector::Plan plan;
  plan.fail_commit = true;
  util::FaultInjector::Arm(plan);
  EXPECT_FALSE(new_store.Save(path).ok());
  util::FaultInjector::Disarm();

  // The canonical path still loads the old contents.
  nn::ParameterStore loaded;
  loaded.CreateParam("w", Tensor::Zeros({4, 4}));
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.GetParam("w").value().vec(),
            old_store.GetParam("w").value().vec());
}

TEST(FaultInjectionTest, ByteFlipIsCaughtBySectionChecksum) {
  const std::string dir = TestDir("fault_flip");
  const std::string path = dir + "/store.bin";
  util::Rng rng(51);
  nn::ParameterStore store;
  store.CreateParam("w", Tensor::Randn({8, 8}, &rng));

  util::FaultInjector::Plan plan;
  plan.flip_byte_at = 64;  // inside the first section's payload
  plan.flip_mask = 0x20;
  util::FaultInjector::Arm(plan);
  ASSERT_TRUE(store.Save(path).ok());  // flip is silent, like bad media
  util::FaultInjector::Disarm();

  nn::ParameterStore loaded;
  loaded.CreateParam("w", Tensor::Zeros({8, 8}));
  const util::Status st = loaded.Load(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kCorruption);
}

// --- Resume equivalence ------------------------------------------------------

class CheckpointTrainTest : public ::testing::Test {
 protected:
  CheckpointTrainTest() {
    ::unsetenv("BOOTLEG_THREADS");
    data::SynthConfig config = data::SynthConfig::MicroScale();
    config.num_entities = 200;
    config.num_pages = 50;
    world_ = data::BuildWorld(config);
    data::CorpusGenerator generator(&world_);
    corpus_ = generator.Generate();
    data::ApplyWeakLabeling(world_.kb, &corpus_.train);
    counts_ = data::EntityCounts::FromTraining(corpus_.train);
    data::ExampleBuilder builder(&world_.candidates, &world_.vocab);
    examples_ = builder.BuildAll(corpus_.train, data::ExampleOptions());
    examples_.resize(std::min<size_t>(examples_.size(), 40));
    model_config_.hidden = 24;
    model_config_.entity_dim = 24;
    model_config_.type_dim = 12;
    model_config_.coarse_dim = 8;
    model_config_.rel_dim = 12;
    model_config_.ff_inner = 48;
    model_config_.encoder.hidden = 24;
    model_config_.encoder.ff_inner = 48;
    model_config_.encoder.max_len = 24;
  }

  ~CheckpointTrainTest() override { ThreadPool::ResetGlobal(1); }

  std::unique_ptr<core::BootlegModel> MakeModel() {
    auto model = std::make_unique<core::BootlegModel>(
        &world_.kb, world_.vocab.size(), model_config_, 5);
    model->SetEntityCounts(&counts_);
    return model;
  }

  static std::vector<float> StoreDigest(nn::ParameterStore& store) {
    std::vector<float> out;
    for (const std::string& name : store.param_names()) {
      const auto& v = store.GetParam(name).value().vec();
      out.insert(out.end(), v.begin(), v.end());
    }
    for (const std::string& name : store.embedding_names()) {
      const auto& v = store.GetEmbedding(name)->table().vec();
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }

  core::TrainOptions CheckpointedOptions(const std::string& dir, int threads) {
    core::TrainOptions options;
    options.epochs = 2;
    options.num_threads = threads;
    options.checkpoint_dir = dir;
    options.checkpoint_every_steps = 2;
    return options;
  }

  // Kill-at-step-K → resume → compare against the uninterrupted run.
  void RunResumeEquivalence(int threads, int64_t kill_at_step,
                            bool corrupt_newest) {
    if (threads > 1) ThreadPool::ResetGlobal(threads);

    const std::string suffix =
        std::to_string(threads) + "_" + std::to_string(kill_at_step) +
        (corrupt_newest ? "_corrupt" : "");
    const std::string ref_dir = TestDir("ref_" + suffix);
    const std::string kill_dir = TestDir("kill_" + suffix);

    auto reference = MakeModel();
    core::Trainable<core::BootlegModel> ref_t(reference.get());
    const core::TrainStats ref_stats =
        core::Train(&ref_t, examples_, CheckpointedOptions(ref_dir, threads));
    ASSERT_GT(ref_stats.steps, kill_at_step);

    auto killed = MakeModel();
    core::Trainable<core::BootlegModel> killed_t(killed.get());
    core::TrainOptions kill_options = CheckpointedOptions(kill_dir, threads);
    kill_options.max_steps = kill_at_step;
    core::Train(&killed_t, examples_, kill_options);
    ASSERT_FALSE(core::ListCheckpoints(kill_dir).empty());

    if (corrupt_newest) {
      // Recovery must fall back to the previous snapshot and still converge
      // on the identical trajectory, just replaying more of it.
      const auto newest = core::ListCheckpoints(kill_dir).front();
      std::fstream f(newest.second,
                     std::ios::binary | std::ios::in | std::ios::out);
      f.seekp(40);
      f.put('\x7f');
    }
    // Torn temp file from a simulated crash mid-checkpoint-write: ignored.
    std::ofstream(kill_dir + "/ckpt_999.bin.tmp", std::ios::binary)
        << "partial checkpoint bytes";

    auto resumed = MakeModel();
    core::Trainable<core::BootlegModel> resumed_t(resumed.get());
    core::TrainOptions resume_options = CheckpointedOptions(kill_dir, threads);
    resume_options.resume = true;
    const core::TrainStats resumed_stats =
        core::Train(&resumed_t, examples_, resume_options);

    EXPECT_GE(resumed_stats.resumed_from_step, 0);
    EXPECT_LE(resumed_stats.resumed_from_step, kill_at_step);
    EXPECT_EQ(resumed_stats.steps, ref_stats.steps);
    EXPECT_EQ(resumed_stats.sentences_seen, ref_stats.sentences_seen);
    EXPECT_EQ(StoreDigest(resumed->store()), StoreDigest(reference->store()))
        << "resumed run diverged from uninterrupted run (threads=" << threads
        << ", killed at step " << kill_at_step << ")";
  }

  data::SynthWorld world_;
  data::Corpus corpus_;
  data::EntityCounts counts_;
  std::vector<data::SentenceExample> examples_;
  core::BootlegConfig model_config_;
};

TEST_F(CheckpointTrainTest, ResumeBitIdenticalSingleThread) {
  RunResumeEquivalence(/*threads=*/1, /*kill_at_step=*/3,
                       /*corrupt_newest=*/false);
}

TEST_F(CheckpointTrainTest, ResumeBitIdenticalFourThreads) {
  RunResumeEquivalence(/*threads=*/4, /*kill_at_step=*/3,
                       /*corrupt_newest=*/false);
}

TEST_F(CheckpointTrainTest, ResumeFallsBackPastCorruptNewestCheckpoint) {
  RunResumeEquivalence(/*threads=*/1, /*kill_at_step=*/4,
                       /*corrupt_newest=*/true);
}

TEST_F(CheckpointTrainTest, ResumeAcrossEpochBoundaryIsBitIdentical) {
  // Kill late enough that the newest checkpoint lands in the second epoch,
  // exercising the restored-epoch shuffle-skip path.
  core::TrainOptions probe = CheckpointedOptions(TestDir("probe"), 1);
  auto model = MakeModel();
  core::Trainable<core::BootlegModel> t(model.get());
  const core::TrainStats full = core::Train(&t, examples_, probe);
  ASSERT_GT(full.steps, 3);
  RunResumeEquivalence(/*threads=*/1, /*kill_at_step=*/full.steps - 1,
                       /*corrupt_newest=*/false);
}

TEST_F(CheckpointTrainTest, ResumeWithEmptyDirStartsFresh) {
  const std::string dir = TestDir("fresh");
  auto a = MakeModel();
  core::Trainable<core::BootlegModel> a_t(a.get());
  core::TrainOptions options = CheckpointedOptions(dir, 1);
  options.resume = true;  // nothing to resume from
  const core::TrainStats stats = core::Train(&a_t, examples_, options);
  EXPECT_EQ(stats.resumed_from_step, -1);
  EXPECT_GT(stats.steps, 0);
}

TEST_F(CheckpointTrainTest, MismatchedThreadCountCheckpointIsSkipped) {
  const std::string dir = TestDir("mismatch");
  auto a = MakeModel();
  core::Trainable<core::BootlegModel> a_t(a.get());
  core::TrainOptions options = CheckpointedOptions(dir, 1);
  options.max_steps = 2;
  core::Train(&a_t, examples_, options);
  ASSERT_FALSE(core::ListCheckpoints(dir).empty());

  ThreadPool::ResetGlobal(2);
  auto b = MakeModel();
  core::Trainable<core::BootlegModel> b_t(b.get());
  core::TrainOptions resume_options = CheckpointedOptions(dir, 2);
  resume_options.resume = true;
  resume_options.max_steps = 1;
  const core::TrainStats stats = core::Train(&b_t, examples_, resume_options);
  // The only checkpoint was written at 1 thread: incompatible, so fresh.
  EXPECT_EQ(stats.resumed_from_step, -1);
}

}  // namespace
}  // namespace bootleg

// Downstream transfer (paper Sec. 4.3): train a Bootleg model, extract its
// contextual entity embeddings, and feed them to a relation-extraction model
// — comparing text-only, static-entity, and contextual-Bootleg features on
// the TACRED-sim task.
#include <cstdio>

#include "downstream/relation_extraction.h"
#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  // A small world keeps this example under a minute.
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_pages = 500;
  harness::Environment env = harness::BuildEnvironment(config);

  // 1. Pretrain Bootleg (self-supervised NED on the synthetic Wikipedia).
  harness::BootlegSpec spec{"example_re_bootleg",
                            harness::DefaultBootlegConfig(),
                            harness::DefaultTrainOptions(), 7};
  spec.train.epochs = 4;
  auto bootleg = harness::TrainBootleg(&env, spec);

  // 2. Generate the relation-extraction task and attach knowledge features.
  downstream::ReDataset ds =
      downstream::GenerateReDataset(env.world, 600, 200, /*seed=*/12);
  downstream::PrepareBootlegFeatures(bootleg.get(), env.world, &ds.train);
  downstream::PrepareBootlegFeatures(bootleg.get(), env.world, &ds.test);
  const tensor::Tensor& table =
      bootleg->store().GetEmbedding("entity_emb")->table();
  downstream::PrepareStaticFeatures(table, &ds.train);
  downstream::PrepareStaticFeatures(table, &ds.test);

  // 3. Train the three downstream models and compare.
  std::printf("\n=== Relation extraction with Bootleg embeddings ===\n");
  std::printf("%-34s %8s\n", "model", "test F1");
  const struct {
    downstream::ReMode mode;
    int64_t dim;
  } arms[] = {
      {downstream::ReMode::kText, 0},
      {downstream::ReMode::kStatic, table.size(1)},
      {downstream::ReMode::kBootleg, table.size(1)},
  };
  for (const auto& arm : arms) {
    downstream::ReModel model(env.world.vocab.size(), ds.num_labels, arm.mode,
                              arm.dim, /*seed=*/21);
    downstream::ReTrainOptions options;
    options.epochs = 4;
    downstream::TrainRe(&model, ds.train, options);
    const downstream::ReMetrics metrics =
        downstream::EvaluateRe(&model, ds.test, ds.num_labels - 1);
    std::printf("%-34s %8.1f\n", downstream::ReModeName(arm.mode), metrics.f1());
  }
  std::printf("\nContextual Bootleg embeddings carry the disambiguated\n"
              "entity pair and its KG relation, which the text-only model\n"
              "has to infer from surface cues alone.\n");
  return 0;
}

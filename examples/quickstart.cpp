// Quickstart: build a synthetic Wikipedia-style world, weak-label it, train a
// small Bootleg model, and evaluate it across the head/torso/tail/unseen
// popularity buckets — the end-to-end flow of the paper in one file.
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "util/timer.h"

using namespace bootleg;  // NOLINT: example brevity

int main() {
  // 1. Build the world (KB + candidate map + lexicons) and the corpus.
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_pages = 400;
  data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  data::Corpus corpus = generator.Generate();

  // 2. Weak labeling (Sec. 3.3.2) recovers pronoun / alternative-name labels.
  const data::WeakLabelStats wl = data::ApplyWeakLabeling(world.kb, &corpus.train);
  std::printf("corpus: %lld train / %lld dev sentences\n",
              static_cast<long long>(corpus.train.size()),
              static_cast<long long>(corpus.dev.size()));
  std::printf("weak labeling: %lld anchors -> %lld labels (%.2fx)\n",
              static_cast<long long>(wl.anchor_labels),
              static_cast<long long>(wl.total_labels_after), wl.Multiplier());

  // 3. Model-ready examples and training popularity counts.
  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  data::ExampleOptions options;
  std::vector<data::SentenceExample> train_examples =
      builder.BuildAll(corpus.train, options);
  data::EntityCounts counts = data::EntityCounts::FromTraining(corpus.train);

  // 4. Train Bootleg with inverse-popularity 2-D regularization.
  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config,
                           /*seed=*/7);
  model.SetEntityCounts(&counts);

  core::TrainOptions train_options;
  train_options.epochs = 1;
  train_options.verbose = true;
  core::Trainable<core::BootlegModel> trainable(&model);
  util::Timer timer;
  const core::TrainStats stats =
      core::Train(&trainable, train_examples, train_options);
  std::printf("trained %lld sentences in %.1fs (%.1f sent/s)\n",
              static_cast<long long>(stats.sentences_seen), stats.seconds,
              stats.sentences_seen / stats.seconds);

  // 5. Evaluate over the paper's popularity buckets.
  eval::ResultSet results =
      eval::RunEvaluation(&model, corpus.dev, builder, options, counts);
  std::printf("\n%-10s %8s %8s\n", "bucket", "F1", "n");
  const eval::Prf overall = results.Overall();
  std::printf("%-10s %8.1f %8lld\n", "all", overall.f1(),
              static_cast<long long>(overall.total));
  for (data::PopularityBucket b :
       {data::PopularityBucket::kHead, data::PopularityBucket::kTorso,
        data::PopularityBucket::kTail, data::PopularityBucket::kUnseen}) {
    const eval::Prf prf = results.ByBucket(b);
    std::printf("%-10s %8.1f %8lld\n", data::PopularityBucketName(b), prf.f1(),
                static_cast<long long>(prf.total));
  }
  std::printf("\ntimer total %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

// The paper's motivating scenario, hand-built: three entities share the
// alias "lincoln" — Abraham Lincoln (person), Lincoln NE (popular city) and
// Lincoln IL (tail city, capital of Logan County). A Bootleg model trained
// on a small corpus resolves "where is lincoln in logan_county ?" to the
// tail city through the KG-relation pattern, and "how tall is lincoln ?" to
// the person through the type-affordance pattern, even though the prior
// favors Lincoln NE.
//
// This example exercises the public KB / candidate-map / model APIs directly
// rather than the synthetic-world generator.
#include <cstdio>

#include "core/model.h"
#include "core/trainer.h"
#include "data/example.h"
#include "kb/candidate_map.h"
#include "kb/kb.h"
#include "text/vocabulary.h"

using namespace bootleg;  // NOLINT

namespace {

struct World {
  kb::KnowledgeBase kb;
  kb::CandidateMap candidates;
  text::Vocabulary vocab;
  kb::EntityId abe, ne, il, logan;
};

World BuildWorld() {
  World w;
  const kb::TypeId person = w.kb.AddType("person", kb::CoarseType::kPerson);
  const kb::TypeId city = w.kb.AddType("city", kb::CoarseType::kLocation);
  const kb::TypeId county = w.kb.AddType("county", kb::CoarseType::kLocation);
  const kb::RelationId capital_of = w.kb.AddRelation("capital_of");

  kb::Entity abe;
  abe.title = "abraham_lincoln";
  abe.aliases = {"lincoln"};
  abe.types = {person};
  abe.coarse_type = kb::CoarseType::kPerson;
  abe.gender = 'm';
  w.abe = w.kb.AddEntity(abe);

  kb::Entity ne;
  ne.title = "lincoln_nebraska";
  ne.aliases = {"lincoln"};
  ne.types = {city};
  ne.coarse_type = kb::CoarseType::kLocation;
  w.ne = w.kb.AddEntity(ne);

  kb::Entity il;
  il.title = "lincoln_illinois";
  il.aliases = {"lincoln"};
  il.types = {city};
  il.coarse_type = kb::CoarseType::kLocation;
  w.il = w.kb.AddEntity(il);

  kb::Entity logan;
  logan.title = "logan_county";
  logan.aliases = {"logan_county"};
  logan.types = {county};
  logan.coarse_type = kb::CoarseType::kLocation;
  w.logan = w.kb.AddEntity(logan);

  w.kb.AddTriple(w.il, capital_of, w.logan);

  // Anchor-count priors: Lincoln NE is the popular reading, IL the tail.
  w.candidates.AddAlias("lincoln", w.abe, 30.0f);
  w.candidates.AddAlias("lincoln", w.ne, 60.0f);
  w.candidates.AddAlias("lincoln", w.il, 3.0f);
  w.candidates.AddAlias("logan_county", w.logan, 5.0f);
  w.candidates.Finalize(5);

  for (const char* tok :
       {"where", "is", "in", "how", "tall", "the", "he", "was", "born",
        "city", "visited", "president", "streets", "of", "?", "."}) {
    w.vocab.AddToken(tok);
  }
  w.vocab.AddToken("lincoln");
  w.vocab.AddToken("logan_county");
  return w;
}

/// Builds a SentenceExample from raw text, marking each alias occurrence.
data::SentenceExample MakeExample(const World& w, const std::string& text,
                                  const std::vector<kb::EntityId>& golds) {
  data::SentenceExample ex;
  const auto tokens = text::Tokenize(text);
  ex.token_ids = text::Encode(w.vocab, tokens);
  size_t gold_idx = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const auto* cands = w.candidates.Lookup(tokens[i]);
    if (cands == nullptr) continue;
    data::MentionExample m;
    m.span_start = m.span_end = static_cast<int64_t>(i);
    m.gold = gold_idx < golds.size() ? golds[gold_idx++] : kb::kInvalidId;
    for (size_t k = 0; k < cands->size(); ++k) {
      m.candidates.push_back((*cands)[k].entity);
      m.priors.push_back((*cands)[k].prior);
      if ((*cands)[k].entity == m.gold) m.gold_index = static_cast<int64_t>(k);
    }
    ex.mentions.push_back(std::move(m));
  }
  return ex;
}

}  // namespace

int main() {
  World w = BuildWorld();

  // A small training corpus exercising the reasoning patterns. Popularity is
  // skewed: Lincoln NE and Abe appear often, Lincoln IL only twice (tail).
  struct Item {
    const char* text;
    std::vector<kb::EntityId> golds;
  };
  std::vector<Item> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back({"how tall is lincoln ?", {w.abe}});       // affordance: person
    corpus.push_back({"he visited lincoln city .", {w.ne}});    // affordance: city
    corpus.push_back({"the president lincoln was born .", {w.abe}});
  }
  for (int i = 0; i < 2; ++i) {  // the tail pattern: KG relation
    corpus.push_back({"where is lincoln in logan_county ?", {w.il, w.logan}});
  }

  std::vector<data::SentenceExample> train;
  for (const Item& item : corpus) train.push_back(MakeExample(w, item.text, item.golds));

  data::EntityCounts counts;  // derive counts from the tiny corpus by hand
  core::BootlegConfig config;
  config.hidden = 32;
  config.entity_dim = 16;
  config.type_dim = 16;
  config.coarse_dim = 8;
  config.rel_dim = 16;
  config.ff_inner = 64;
  config.encoder.hidden = 32;
  config.encoder.ff_inner = 64;
  config.encoder.max_len = 16;
  core::BootlegModel model(&w.kb, w.vocab.size(), config, /*seed=*/3);
  model.SetEntityCounts(&counts);

  core::Trainable<core::BootlegModel> trainable(&model);
  core::TrainOptions options;
  options.epochs = 30;
  options.batch_size = 4;
  core::Train(&trainable, train, options);

  auto show = [&](const std::string& text, const std::vector<kb::EntityId>& golds) {
    const data::SentenceExample ex = MakeExample(w, text, golds);
    const auto preds = model.Predict(ex);
    std::printf("\n\"%s\"\n", text.c_str());
    for (size_t m = 0; m < ex.mentions.size(); ++m) {
      const auto& me = ex.mentions[m];
      const kb::EntityId top_prior = me.candidates.front();
      const kb::EntityId predicted =
          preds[m] >= 0 ? me.candidates[static_cast<size_t>(preds[m])]
                        : kb::kInvalidId;
      std::printf("  mention @%lld  prior says %-18s bootleg says %-18s (gold %s)\n",
                  static_cast<long long>(me.span_start),
                  w.kb.entity(top_prior).title.c_str(),
                  predicted == kb::kInvalidId ? "?" : w.kb.entity(predicted).title.c_str(),
                  me.gold == kb::kInvalidId ? "?" : w.kb.entity(me.gold).title.c_str());
    }
  };

  std::printf("=== Chasing the tail: the paper's Lincoln scenario ===\n");
  show("where is lincoln in logan_county ?", {w.il, w.logan});  // KG relation
  show("how tall is lincoln ?", {w.abe});                       // type affordance
  show("he visited lincoln city .", {w.ne});                    // entity/affordance
  return 0;
}

// Memory-efficiency study (paper Sec. 4.4 / Figure 3): train Bootleg, then
// keep only the top-k% entity embeddings by popularity, giving every other
// entity one shared "unseen" embedding — and watch how little quality it
// costs. Also prints the Table-10 style size accounting.
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_pages = 500;
  harness::Environment env = harness::BuildEnvironment(config);

  harness::BootlegSpec spec{"example_compress_bootleg",
                            harness::DefaultBootlegConfig(),
                            harness::DefaultTrainOptions(), 7};
  spec.train.epochs = 5;
  auto model = harness::TrainBootleg(&env, spec);

  const core::BootlegModel::SizeReport size = model->Size();
  std::printf("model size: embeddings %.1f KB, network %.1f KB\n",
              size.embedding_bytes / 1024.0, size.network_bytes / 1024.0);

  std::printf("\n%-8s %10s %10s %10s %12s\n", "keep %", "all F1", "tail F1",
              "unseen F1", "entity KB");
  const int64_t entity_bytes =
      model->store().GetEmbedding("entity_emb")->table().numel() *
      static_cast<int64_t>(sizeof(float));
  for (double keep : {100.0, 20.0, 5.0, 1.0}) {
    if (keep < 100.0) model->CompressEntityEmbeddings(keep / 100.0, env.counts);
    harness::BucketResult r =
        harness::EvaluateBuckets(model.get(), env, env.corpus.dev);
    std::printf("%-8.0f %10.1f %10.1f %10.1f %12.1f\n", keep, r.all.f1(),
                r.tail.f1(), r.unseen.f1(),
                keep / 100.0 * entity_bytes / 1024.0);
    if (keep < 100.0) model->RestoreEntityEmbeddings();
  }
  std::printf("\nAt keep=5%% the distinct-embedding store shrinks 20x while "
              "overall F1 barely moves\n(and the tail can even improve — "
              "fewer conflicting candidate embeddings).\n");
  return 0;
}

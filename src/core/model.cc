#include "core/model.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "nn/init.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace bootleg::core {

using tensor::Tensor;
using tensor::Var;

BootlegModel::BootlegModel(const kb::KnowledgeBase* kb, int64_t vocab_size,
                           BootlegConfig config, uint64_t seed)
    : kb_(kb), config_(config), rng_(seed) {
  BOOTLEG_CHECK_MSG(config_.use_entity || config_.use_type || config_.use_kg,
                    "at least one signal source must be enabled");
  encoder_ = std::make_unique<text::WordEncoder>(&store_, "encoder", vocab_size,
                                                 config_.encoder, &rng_);
  if (config_.freeze_encoder) store_.Freeze("encoder");

  input_dim_ = 0;
  if (config_.use_entity) {
    entity_emb_ = store_.CreateEmbedding("entity_emb", kb_->num_entities(),
                                         config_.entity_dim, &rng_);
    // All entity embeddings start identical so unseen entities do not differ
    // by initialization noise (Appendix B).
    entity_emb_->InitConstantRows(Tensor::Randn({config_.entity_dim}, &rng_, 0.02f));
    input_dim_ += config_.entity_dim;
  }
  if (config_.use_type) {
    type_emb_ = store_.CreateEmbedding("type_emb", kb_->num_types() + 1,
                                       config_.type_dim, &rng_);
    type_pool_ = std::make_unique<nn::AdditiveAttention>(
        &store_, "type_pool", config_.type_dim, config_.attn_pool_dim, &rng_);
    input_dim_ += config_.type_dim;
    if (config_.use_type_prediction) {
      coarse_table_ = store_.CreateParam(
          "coarse_table",
          nn::EmbeddingInit(kb::kNumCoarseTypes, config_.coarse_dim, &rng_));
      type_pred_head_ = std::make_unique<nn::Mlp>(
          &store_, "type_pred",
          std::vector<int64_t>{config_.hidden, config_.hidden,
                               kb::kNumCoarseTypes},
          &rng_);
      input_dim_ += config_.coarse_dim;
    }
  }
  if (config_.use_kg) {
    rel_emb_ = store_.CreateEmbedding("rel_emb", kb_->num_relations() + 1,
                                      config_.rel_dim, &rng_);
    rel_pool_ = std::make_unique<nn::AdditiveAttention>(
        &store_, "rel_pool", config_.rel_dim, config_.attn_pool_dim, &rng_);
    input_dim_ += config_.rel_dim;
  }
  if (config_.use_title_feature) {
    title_dim_ = 16;
    title_proj_ = std::make_unique<nn::Linear>(&store_, "title_proj",
                                               config_.encoder.hidden,
                                               title_dim_, &rng_);
    input_dim_ += title_dim_;
  }
  input_mlp_ = std::make_unique<nn::Mlp>(
      &store_, "input_mlp",
      std::vector<int64_t>{input_dim_, config_.hidden, config_.hidden}, &rng_);

  if (config_.use_position_encoding) {
    position_table_ =
        nn::SinusoidalPositionTable(config_.encoder.max_len, config_.hidden);
    position_proj_ = std::make_unique<nn::Linear>(
        &store_, "position_proj", 2 * config_.hidden, config_.hidden, &rng_);
  }

  const int64_t num_kg = (config_.use_kg ? 1 : 0) +
                         (config_.use_cooccurrence_kg ? 1 : 0) +
                         (config_.use_kg && config_.use_two_hop_kg ? 1 : 0);
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    Layer layer;
    const std::string p = "layer" + std::to_string(l);
    layer.phrase2ent = std::make_unique<nn::AttentionBlock>(
        &store_, p + ".phrase2ent", config_.hidden, config_.num_heads,
        config_.ff_inner, &rng_);
    layer.ent2ent = std::make_unique<nn::AttentionBlock>(
        &store_, p + ".ent2ent", config_.hidden, config_.num_heads,
        config_.ff_inner, &rng_);
    for (int64_t k = 0; k < num_kg; ++k) {
      layer.kg_weights.push_back(store_.CreateParam(
          p + ".kg_w" + std::to_string(k), Tensor::Ones({1})));
    }
    layers_.push_back(std::move(layer));
  }
  score_vec_ = store_.CreateParam("score_vec",
                                  nn::XavierUniform(config_.hidden, 1, &rng_));
}

Tensor BootlegModel::BuildAdjacency(const data::SentenceExample& example,
                                    const std::vector<int64_t>& row_entities,
                                    const std::vector<int64_t>& row_mention,
                                    AdjacencyKind kind) const {
  (void)example;
  const int64_t rows = static_cast<int64_t>(row_entities.size());
  Tensor k({rows, rows});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < rows; ++j) {
      if (i == j || row_mention[static_cast<size_t>(i)] ==
                        row_mention[static_cast<size_t>(j)]) {
        continue;  // candidates of one mention are never KG-linked to
                   // themselves or to each other
      }
      const kb::EntityId a = row_entities[static_cast<size_t>(i)];
      const kb::EntityId b = row_entities[static_cast<size_t>(j)];
      switch (kind) {
        case AdjacencyKind::kWikidata:
          if (kb_->Connected(a, b)) k.at(i, j) = 1.0f;
          break;
        case AdjacencyKind::kCooccurrence:
          BOOTLEG_CHECK_MSG(cooc_ != nullptr,
                            "cooccurrence KG requested but stats not set");
          k.at(i, j) = cooc_->Weight(a, b);
          break;
        case AdjacencyKind::kTwoHop:
          // Down-weighted relative to direct edges: a shared neighbor is
          // weaker evidence than a direct relation.
          if (kb_->TwoHopConnected(a, b)) k.at(i, j) = 0.5f;
          break;
      }
    }
  }
  return k;
}

BootlegModel::ForwardResult BootlegModel::RunForward(
    const data::SentenceExample& example, bool train, util::Rng* rng) {
  ForwardResult result;
  const int64_t n_tokens = std::min<int64_t>(
      static_cast<int64_t>(example.token_ids.size()), config_.encoder.max_len);
  if (n_tokens == 0 || example.mentions.empty()) return result;

  // Row layout: one row per (mention, candidate).
  std::vector<int64_t> row_entities;
  std::vector<int64_t> row_mention;
  result.row_offset.resize(example.mentions.size());
  result.row_count.resize(example.mentions.size());
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    const data::MentionExample& m = example.mentions[mi];
    result.row_offset[mi] = static_cast<int64_t>(row_entities.size());
    result.row_count[mi] = static_cast<int64_t>(m.candidates.size());
    for (kb::EntityId e : m.candidates) {
      row_entities.push_back(e);
      row_mention.push_back(static_cast<int64_t>(mi));
    }
  }
  const int64_t rows = static_cast<int64_t>(row_entities.size());
  if (rows == 0) return result;

  const bool encoder_train = train && !config_.freeze_encoder;
  Var w = encoder_->Encode(example.token_ids, rng, encoder_train);

  auto clamp_span = [n_tokens](int64_t s) {
    return std::max<int64_t>(0, std::min<int64_t>(s, n_tokens - 1));
  };

  // --- Mention-level coarse type prediction (Appendix A). --------------------
  Var tpred_rows;  // [rows, coarse_dim] (selection-expanded per candidate row)
  if (config_.use_type && config_.use_type_prediction) {
    std::vector<Var> mention_vecs;
    for (const data::MentionExample& m : example.mentions) {
      mention_vecs.push_back(text::WordEncoder::MentionEmbedding(
          w, clamp_span(m.span_start), clamp_span(m.span_end)));
    }
    Var m_mat = tensor::ConcatRows(mention_vecs);  // [M, hidden]
    Var logits = type_pred_head_->Forward(m_mat, rng, train);  // [M, C]
    Var t_hat = tensor::MatMul(tensor::SoftmaxRows(logits), coarse_table_);

    // Expand per-mention rows to per-candidate rows via a constant one-hot
    // selection matrix.
    Tensor sel({rows, static_cast<int64_t>(example.mentions.size())});
    for (int64_t r = 0; r < rows; ++r) {
      sel.at(r, row_mention[static_cast<size_t>(r)]) = 1.0f;
    }
    tpred_rows = tensor::MatMul(Var::Constant(std::move(sel)), t_hat);

    // Supervision: the true coarse type of the gold entity, for mentions
    // whose gold is in the candidate list.
    std::vector<Var> supervised;
    for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
      const data::MentionExample& m = example.mentions[mi];
      if (m.gold_index < 0) continue;
      supervised.push_back(
          tensor::SliceRows(logits, static_cast<int64_t>(mi), 1));
      result.type_targets.push_back(
          static_cast<int64_t>(kb_->entity(m.gold).coarse_type));
    }
    if (!supervised.empty()) {
      result.type_logits = tensor::ConcatRows(supervised);
    }
  }

  // --- Candidate feature assembly (Sec. 3.1). --------------------------------
  std::vector<Var> feature_parts;

  if (config_.use_entity) {
    Var u = entity_emb_->Lookup(row_entities);  // [rows, entity_dim]
    if (train && config_.regularization.scheme != RegScheme::kNone) {
      Tensor mask({rows, config_.entity_dim});
      mask.Fill(1.0f);
      for (int64_t r = 0; r < rows; ++r) {
        const int64_t count =
            counts_ == nullptr
                ? 1
                : counts_->Count(row_entities[static_cast<size_t>(r)]);
        const float p = config_.regularization.MaskProbability(count);
        if (config_.regularization.two_dimensional) {
          // 2-D regularization: mask the whole embedding row with prob p(e).
          if (rng->Bernoulli(p)) {
            for (int64_t j = 0; j < config_.entity_dim; ++j) {
              mask.at(r, j) = 0.0f;
            }
          }
        } else {
          // 1-D baseline: standard inverted dropout at rate p(e).
          const float keep_scale = p >= 1.0f ? 0.0f : 1.0f / (1.0f - p);
          for (int64_t j = 0; j < config_.entity_dim; ++j) {
            mask.at(r, j) = rng->Bernoulli(p) ? 0.0f : keep_scale;
          }
        }
      }
      u = tensor::MulConst(u, mask);
    }
    feature_parts.push_back(u);
  }

  if (config_.use_type) {
    std::vector<Var> pooled;
    pooled.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      const kb::Entity& e = kb_->entity(row_entities[static_cast<size_t>(r)]);
      std::vector<int64_t> type_ids;
      const int64_t max_t = config_.max_types_per_entity;
      for (kb::TypeId t : e.types) {
        if (static_cast<int64_t>(type_ids.size()) >= max_t) break;
        type_ids.push_back(t + 1);  // shift: row 0 = "no type"
      }
      if (type_ids.empty()) type_ids.push_back(0);
      pooled.push_back(type_pool_->Pool(type_emb_->Lookup(type_ids)));
    }
    feature_parts.push_back(tensor::ConcatRows(pooled));
    if (config_.use_type_prediction && tpred_rows.defined()) {
      feature_parts.push_back(tpred_rows);
    }
  }

  if (config_.use_kg) {
    std::vector<Var> pooled;
    pooled.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      const kb::Entity& e = kb_->entity(row_entities[static_cast<size_t>(r)]);
      std::vector<int64_t> rel_ids;
      const int64_t max_r = config_.max_relations_per_entity;
      for (kb::RelationId rel : e.relations) {
        if (static_cast<int64_t>(rel_ids.size()) >= max_r) break;
        rel_ids.push_back(rel + 1);  // shift: row 0 = "no relation"
      }
      if (rel_ids.empty()) rel_ids.push_back(0);
      pooled.push_back(rel_pool_->Pool(rel_emb_->Lookup(rel_ids)));
    }
    feature_parts.push_back(tensor::ConcatRows(pooled));
  }

  if (config_.use_title_feature) {
    BOOTLEG_CHECK_MSG(!title_token_ids_.empty(),
                      "use_title_feature requires SetTitleTokenIds");
    std::vector<int64_t> title_tokens;
    title_tokens.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      title_tokens.push_back(
          title_token_ids_[static_cast<size_t>(row_entities[static_cast<size_t>(r)])]);
    }
    // Title embeddings are read as constants (the analogue of averaging
    // frozen BERT WordPiece embeddings of the title).
    Tensor titles =
        encoder_->token_embedding()->LookupValue(title_tokens);
    feature_parts.push_back(
        title_proj_->Forward(Var::Constant(std::move(titles))));
  }

  Var e_mat = input_mlp_->Forward(tensor::ConcatCols(feature_parts), rng, train);

  if (config_.use_position_encoding) {
    Tensor pos({rows, 2 * config_.hidden});
    for (int64_t r = 0; r < rows; ++r) {
      const data::MentionExample& m =
          example.mentions[static_cast<size_t>(row_mention[static_cast<size_t>(r)])];
      const int64_t first = clamp_span(m.span_start);
      const int64_t last = clamp_span(m.span_end);
      for (int64_t j = 0; j < config_.hidden; ++j) {
        pos.at(r, j) = position_table_.at(first, j);
        pos.at(r, config_.hidden + j) = position_table_.at(last, j);
      }
    }
    e_mat = tensor::Add(e_mat,
                        position_proj_->Forward(Var::Constant(std::move(pos))));
  }

  // --- Stacked Phrase2Ent + Ent2Ent + KG2Ent layers (Sec. 3.2). --------------
  std::vector<Tensor> adjacencies;
  if (config_.use_kg) {
    adjacencies.push_back(BuildAdjacency(example, row_entities, row_mention,
                                         AdjacencyKind::kWikidata));
  }
  if (config_.use_cooccurrence_kg) {
    adjacencies.push_back(BuildAdjacency(example, row_entities, row_mention,
                                         AdjacencyKind::kCooccurrence));
  }
  if (config_.use_kg && config_.use_two_hop_kg) {
    adjacencies.push_back(BuildAdjacency(example, row_entities, row_mention,
                                         AdjacencyKind::kTwoHop));
  }

  Var e = e_mat;
  Var e_prime;
  std::vector<Var> ek_outputs;
  for (const Layer& layer : layers_) {
    Var p = layer.phrase2ent->Forward(e, w, rng, train);
    Var c = layer.ent2ent->Forward(e, rng, train);
    e_prime = tensor::Add(p, c);  // E' = MHA(E, W) + MHA(E)

    ek_outputs.clear();
    for (size_t k = 0; k < adjacencies.size(); ++k) {
      Var attn = tensor::SoftmaxRows(
          tensor::AddScaledIdentity(adjacencies[k], layer.kg_weights[k]));
      ek_outputs.push_back(
          tensor::Add(tensor::MatMul(attn, e_prime), e_prime));
    }
    if (ek_outputs.empty()) {
      e = e_prime;
    } else if (ek_outputs.size() == 1) {
      e = ek_outputs[0];
    } else {
      // Multiple KG2Ent modules: average of outputs feeds the next layer.
      Var sum = ek_outputs[0];
      for (size_t k = 1; k < ek_outputs.size(); ++k) {
        sum = tensor::Add(sum, ek_outputs[k]);
      }
      e = tensor::Scale(sum, 1.0f / static_cast<float>(ek_outputs.size()));
    }
  }
  result.ek = e;

  // --- Ensemble scoring S = max(E_k vᵀ, E' vᵀ) over all KG outputs. ----------
  Var scores;
  if (config_.ensemble_scoring) {
    scores = tensor::MatMul(e_prime, score_vec_);
    for (const Var& ek : ek_outputs) {
      scores = tensor::Max(scores, tensor::MatMul(ek, score_vec_));
    }
  } else {
    // Ablation arm: score only the final module output.
    scores = tensor::MatMul(e, score_vec_);
  }
  result.scores = scores;
  result.valid = true;
  return result;
}

Var BootlegModel::Loss(const data::SentenceExample& example, bool train,
                       util::Rng* rng) {
  ForwardResult fwd = RunForward(example, train, rng != nullptr ? rng : &rng_);
  if (!fwd.valid) return Var();

  std::vector<Var> mention_losses;
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    const data::MentionExample& m = example.mentions[mi];
    if (m.gold_index < 0 || fwd.row_count[mi] == 0) continue;
    Var logits = tensor::Transpose(
        tensor::SliceRows(fwd.scores, fwd.row_offset[mi], fwd.row_count[mi]));
    mention_losses.push_back(tensor::CrossEntropy(logits, {m.gold_index}));
  }
  if (mention_losses.empty()) return Var();

  Var loss = mention_losses[0];
  for (size_t i = 1; i < mention_losses.size(); ++i) {
    loss = tensor::Add(loss, mention_losses[i]);
  }
  loss = tensor::Scale(loss, 1.0f / static_cast<float>(mention_losses.size()));

  if (fwd.type_logits.defined() && !fwd.type_targets.empty()) {
    loss = tensor::Add(loss,
                       tensor::CrossEntropy(fwd.type_logits, fwd.type_targets));
  }
  return loss;
}

std::vector<int64_t> BootlegModel::Predict(const data::SentenceExample& example) {
  std::vector<int64_t> preds(example.mentions.size(), -1);
  ForwardResult fwd = RunForward(example, /*train=*/false, &rng_);
  if (!fwd.valid) return preds;
  const Tensor& s = fwd.scores.value();
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    if (fwd.row_count[mi] == 0) continue;
    int64_t best = 0;
    for (int64_t k = 1; k < fwd.row_count[mi]; ++k) {
      if (s.at(fwd.row_offset[mi] + k, 0) > s.at(fwd.row_offset[mi] + best, 0)) {
        best = k;
      }
    }
    preds[mi] = best;
  }
  return preds;
}

int64_t BootlegModel::FrozenStaticCols() const {
  int64_t cols = 0;
  if (config_.use_entity) cols += config_.entity_dim;
  if (config_.use_type) cols += config_.type_dim;
  if (config_.use_kg) cols += config_.rel_dim;
  if (config_.use_title_feature) cols += title_dim_;
  return cols;
}

util::Status BootlegModel::SynthesizeFrozenRow(const kb::Entity& entity,
                                               const float* entity_slot,
                                               int64_t title_token_id,
                                               float* dst) const {
  if (dst == nullptr) {
    return util::Status::InvalidArgument("SynthesizeFrozenRow: null dst");
  }
  if (config_.use_entity && entity_slot == nullptr) {
    return util::Status::InvalidArgument(
        "SynthesizeFrozenRow: use_entity requires an entity_slot");
  }
  std::vector<int64_t> ids;
  if (config_.use_entity) {
    for (int64_t j = 0; j < config_.entity_dim; ++j) dst[j] = entity_slot[j];
    dst += config_.entity_dim;
  }
  if (config_.use_type) {
    for (kb::TypeId t : entity.types) {
      if (t < 0 || t >= kb_->num_types()) {
        return util::Status::InvalidArgument(
            "SynthesizeFrozenRow: type id out of range");
      }
      if (static_cast<int64_t>(ids.size()) >= config_.max_types_per_entity) break;
      ids.push_back(t + 1);  // shift: row 0 = "no type"
    }
    if (ids.empty()) ids.push_back(0);
    Tensor pooled = type_pool_->PoolValue(type_emb_->LookupValue(ids));
    for (int64_t j = 0; j < config_.type_dim; ++j) dst[j] = pooled.at(0, j);
    dst += config_.type_dim;
  }
  if (config_.use_kg) {
    ids.clear();
    for (kb::RelationId rel : entity.relations) {
      if (rel < 0 || rel >= kb_->num_relations()) {
        return util::Status::InvalidArgument(
            "SynthesizeFrozenRow: relation id out of range");
      }
      if (static_cast<int64_t>(ids.size()) >= config_.max_relations_per_entity) break;
      ids.push_back(rel + 1);  // shift: row 0 = "no relation"
    }
    if (ids.empty()) ids.push_back(0);
    Tensor pooled = rel_pool_->PoolValue(rel_emb_->LookupValue(ids));
    for (int64_t j = 0; j < config_.rel_dim; ++j) dst[j] = pooled.at(0, j);
    dst += config_.rel_dim;
  }
  if (config_.use_title_feature) {
    if (title_token_id < 0 ||
        title_token_id >= encoder_->token_embedding()->rows()) {
      return util::Status::InvalidArgument(
          "SynthesizeFrozenRow: title token id out of range");
    }
    Tensor title = title_proj_->ForwardValue(
        encoder_->token_embedding()->LookupValue({title_token_id}));
    for (int64_t j = 0; j < title_dim_; ++j) dst[j] = title.at(0, j);
  }
  return util::Status::OK();
}

void BootlegModel::PrepareFrozenInference() {
  int64_t pre = 0;
  if (config_.use_entity) pre += config_.entity_dim;
  if (config_.use_type) pre += config_.type_dim;
  int64_t post = 0;
  if (config_.use_kg) post += config_.rel_dim;
  if (config_.use_title_feature) {
    BOOTLEG_CHECK_MSG(!title_token_ids_.empty(),
                      "use_title_feature requires SetTitleTokenIds");
    post += title_dim_;
  }
  frozen_pre_cols_ = pre;
  frozen_view_.reset();  // back to the heap path
  const int64_t n = kb_->num_entities();
  const int64_t cols = pre + post;
  frozen_static_ = Tensor({n, cols});

  std::vector<int64_t> ids;
  for (kb::EntityId e = 0; e < n; ++e) {
    float* dst = frozen_static_.data() + e * cols;
    const kb::Entity& ent = kb_->entity(e);
    if (config_.use_entity) {
      const float* src = entity_emb_->table().data() + e * config_.entity_dim;
      for (int64_t j = 0; j < config_.entity_dim; ++j) dst[j] = src[j];
      dst += config_.entity_dim;
    }
    if (config_.use_type) {
      ids.clear();
      for (kb::TypeId t : ent.types) {
        if (static_cast<int64_t>(ids.size()) >= config_.max_types_per_entity) break;
        ids.push_back(t + 1);  // shift: row 0 = "no type"
      }
      if (ids.empty()) ids.push_back(0);
      Tensor pooled = type_pool_->PoolValue(type_emb_->LookupValue(ids));
      for (int64_t j = 0; j < config_.type_dim; ++j) dst[j] = pooled.at(0, j);
      dst += config_.type_dim;
    }
    if (config_.use_kg) {
      ids.clear();
      for (kb::RelationId rel : ent.relations) {
        if (static_cast<int64_t>(ids.size()) >= config_.max_relations_per_entity) break;
        ids.push_back(rel + 1);  // shift: row 0 = "no relation"
      }
      if (ids.empty()) ids.push_back(0);
      Tensor pooled = rel_pool_->PoolValue(rel_emb_->LookupValue(ids));
      for (int64_t j = 0; j < config_.rel_dim; ++j) dst[j] = pooled.at(0, j);
      dst += config_.rel_dim;
    }
    if (config_.use_title_feature) {
      Tensor title = title_proj_->ForwardValue(
          encoder_->token_embedding()->LookupValue(
              {title_token_ids_[static_cast<size_t>(e)]}));
      for (int64_t j = 0; j < title_dim_; ++j) dst[j] = title.at(0, j);
    }
  }
  frozen_ready_ = true;
  // Weight tensors may have been swapped since the backend was installed
  // (checkpoint load, hot-reload): refresh any backend-prepared copies.
  RegisterBackendWeights();
}

void BootlegModel::SetInferenceBackend(std::shared_ptr<backend::Backend> be) {
  backend_ = std::move(be);
  RegisterBackendWeights();
}

void BootlegModel::RegisterBackendWeights() {
  if (backend_ == nullptr) return;
  std::vector<backend::FrozenWeight> weights;
  if (encoder_ != nullptr) encoder_->AppendFrozenWeights("encoder", &weights);
  if (type_pred_head_ != nullptr) {
    type_pred_head_->AppendFrozenWeights("type_pred_head", &weights);
  }
  if (input_mlp_ != nullptr) {
    input_mlp_->AppendFrozenWeights("input_mlp", &weights);
  }
  if (position_proj_ != nullptr) {
    position_proj_->AppendFrozenWeights("position_proj", &weights);
  }
  for (size_t li = 0; li < layers_.size(); ++li) {
    const std::string prefix = "layer" + std::to_string(li);
    layers_[li].phrase2ent->AppendFrozenWeights(prefix + ".phrase2ent",
                                                &weights);
    layers_[li].ent2ent->AppendFrozenWeights(prefix + ".ent2ent", &weights);
  }
  backend_->LoadModel(weights);
}

util::Status BootlegModel::UseFrozenStore(
    std::shared_ptr<const store::StoreView> view) {
  if (view == nullptr) {
    return util::Status::InvalidArgument("UseFrozenStore: null view");
  }
  if (view->rows() != kb_->num_entities()) {
    return util::Status::InvalidArgument(
        "store has " + std::to_string(view->rows()) + " rows but the KB has " +
        std::to_string(kb_->num_entities()) + " entities");
  }
  const int64_t want_cols = FrozenStaticCols();
  if (view->cols() != want_cols) {
    return util::Status::InvalidArgument(
        "store has " + std::to_string(view->cols()) +
        " columns but this config needs " + std::to_string(want_cols) +
        " (was it exported under a different ablation?)");
  }
  int64_t pre = 0;
  if (config_.use_entity) pre += config_.entity_dim;
  if (config_.use_type) pre += config_.type_dim;
  frozen_pre_cols_ = pre;
  frozen_static_ = Tensor();  // the view replaces the heap table
  frozen_view_ = std::move(view);
  frozen_ready_ = true;
  return util::Status::OK();
}

void BootlegModel::ReleaseEntityTableForServing() {
  BOOTLEG_CHECK_MSG(frozen_view_ != nullptr,
                    "ReleaseEntityTableForServing requires UseFrozenStore");
  if (entity_emb_ != nullptr) entity_emb_->ReleaseTable();
}

std::vector<std::vector<int64_t>> BootlegModel::PredictBatch(
    const std::vector<const data::SentenceExample*>& batch,
    InferenceScratch* scratch) const {
  BOOTLEG_CHECK_MSG(frozen_ready_,
                    "PrepareFrozenInference() must run before PredictBatch");
  const backend::Backend* be = inference_backend();
  std::vector<std::vector<int64_t>> preds(batch.size());
  InferenceScratch& s = *scratch;
  s.sentences.clear();
  s.sequences.clear();
  s.row_entities.clear();
  s.row_mention.clear();
  s.mention_row_offset.clear();
  s.mention_row_count.clear();
  s.p2e_segments.clear();
  s.self_segments.clear();

  // --- Row layout, exactly as RunForward builds it per sentence. -------------
  for (size_t b = 0; b < batch.size(); ++b) {
    const data::SentenceExample& ex = *batch[b];
    preds[b].assign(ex.mentions.size(), -1);
    const int64_t n_tokens = std::min<int64_t>(
        static_cast<int64_t>(ex.token_ids.size()), config_.encoder.max_len);
    if (n_tokens == 0 || ex.mentions.empty()) continue;

    InferenceScratch::SentenceInfo info;
    info.ex_index = static_cast<int64_t>(b);
    info.row_offset = static_cast<int64_t>(s.row_entities.size());
    info.mention_offset = static_cast<int64_t>(s.mention_row_offset.size());
    info.mentions = static_cast<int64_t>(ex.mentions.size());
    info.n_tokens = n_tokens;
    for (size_t mi = 0; mi < ex.mentions.size(); ++mi) {
      const data::MentionExample& m = ex.mentions[mi];
      s.mention_row_offset.push_back(static_cast<int64_t>(s.row_entities.size()));
      s.mention_row_count.push_back(static_cast<int64_t>(m.candidates.size()));
      for (kb::EntityId e : m.candidates) {
        s.row_entities.push_back(e);
        s.row_mention.push_back(static_cast<int64_t>(mi));
      }
    }
    info.rows = static_cast<int64_t>(s.row_entities.size()) - info.row_offset;
    if (info.rows == 0) {
      s.mention_row_offset.resize(static_cast<size_t>(info.mention_offset));
      s.mention_row_count.resize(static_cast<size_t>(info.mention_offset));
      continue;
    }
    s.sentences.push_back(info);
    s.sequences.push_back(&ex.token_ids);
  }
  if (s.sentences.empty()) return preds;
  const int64_t total_rows = static_cast<int64_t>(s.row_entities.size());
  const int64_t total_mentions = static_cast<int64_t>(s.mention_row_offset.size());
  const int64_t hidden = config_.hidden;

  // Cooperative cancellation between stages: an abandoned batch returns an
  // empty vector (never a partial result), which the serving layer turns
  // into per-request DeadlineExceeded.
  const auto cancelled = [&s] { return s.cancel_check && s.cancel_check(); };

  // --- Contextual word embeddings, batched with per-sentence attention. ------
  Tensor w_all;
  {
    OBS_SPAN("infer.encode");
    w_all = encoder_->EncodeBatchValue(s.sequences, &s.word_ranges, be);
  }
  if (cancelled()) return {};

  auto clamp_span = [](int64_t v, int64_t n_tokens) {
    return std::max<int64_t>(0, std::min<int64_t>(v, n_tokens - 1));
  };

  // --- Mention-level coarse type prediction (batched head). ------------------
  const bool use_tpred = config_.use_type && config_.use_type_prediction;
  Tensor tpred_all;
  if (use_tpred) {
    OBS_SPAN("infer.type_pred");
    Tensor m_all({total_mentions, hidden});
    for (size_t i = 0; i < s.sentences.size(); ++i) {
      const InferenceScratch::SentenceInfo& info = s.sentences[i];
      const data::SentenceExample& ex = *batch[static_cast<size_t>(info.ex_index)];
      const int64_t w_off = s.word_ranges[i].first;
      for (int64_t mi = 0; mi < info.mentions; ++mi) {
        const data::MentionExample& m = ex.mentions[static_cast<size_t>(mi)];
        const int64_t first = clamp_span(m.span_start, info.n_tokens);
        const int64_t last = clamp_span(m.span_end, info.n_tokens);
        const float* w_first = w_all.data() + (w_off + first) * hidden;
        const float* w_last = w_all.data() + (w_off + last) * hidden;
        float* dst = m_all.data() + (info.mention_offset + mi) * hidden;
        for (int64_t j = 0; j < hidden; ++j) dst[j] = w_first[j] + w_last[j];
      }
    }
    Tensor logits = type_pred_head_->ForwardValue(m_all, be);
    Tensor t_hat = be->MatMul(be->SoftmaxRows(logits), coarse_table_.value());

    // Selection-expand per-mention rows to candidate rows, per sentence — the
    // same one-hot matmul RunForward performs.
    tpred_all = Tensor({total_rows, config_.coarse_dim});
    for (const InferenceScratch::SentenceInfo& info : s.sentences) {
      Tensor t_hat_s = tensor::SliceRows(t_hat, info.mention_offset, info.mentions);
      Tensor sel({info.rows, info.mentions});
      for (int64_t r = 0; r < info.rows; ++r) {
        sel.at(r, s.row_mention[static_cast<size_t>(info.row_offset + r)]) = 1.0f;
      }
      Tensor tp = be->MatMul(sel, t_hat_s);
      float* dst = tpred_all.data() + info.row_offset * config_.coarse_dim;
      const float* src = tp.data();
      for (int64_t k = 0; k < info.rows * config_.coarse_dim; ++k) dst[k] = src[k];
    }
  }

  // --- Candidate feature assembly from the frozen per-entity table. ----------
  Tensor e_all;
  {
    OBS_SPAN("infer.features");
    Tensor x({total_rows, input_dim_});
    const int64_t static_cols = frozen_view_ != nullptr
                                    ? frozen_view_->cols()
                                    : frozen_static_.size(1);
    const int64_t post_cols = static_cols - frozen_pre_cols_;
    const int64_t coarse = use_tpred ? config_.coarse_dim : 0;
    if (frozen_view_ == nullptr) {
      for (int64_t r = 0; r < total_rows; ++r) {
        const float* src = frozen_static_.data() +
                           s.row_entities[static_cast<size_t>(r)] * static_cols;
        float* dst = x.data() + r * input_dim_;
        for (int64_t j = 0; j < frozen_pre_cols_; ++j) dst[j] = src[j];
        if (use_tpred) {
          const float* tp = tpred_all.data() + r * coarse;
          for (int64_t j = 0; j < coarse; ++j) dst[frozen_pre_cols_ + j] = tp[j];
        }
        for (int64_t j = 0; j < post_cols; ++j) {
          dst[frozen_pre_cols_ + coarse + j] = src[frozen_pre_cols_ + j];
        }
      }
    } else {
      // Same assembly gathered through the store view. Float stores serve
      // zero-copy row pointers (with a small prefetch lookahead so the copy
      // loop is not bound by per-row miss latency); non-float stores run one
      // batched fused gather+dequant over the whole id list, then the
      // assembly reads the dequantized rows from scratch.
      static obs::LatencyHistogram* gather_hist =
          obs::MetricsRegistry::Global().GetHistogram("store.gather_us");
      const auto gather_start = std::chrono::steady_clock::now();
      constexpr int64_t kGatherLookahead = 8;
      // Batch-ahead residency advisory: mapped views under a resident-set
      // budget see the whole id list up front, so evicted shards this batch
      // touches are WILLNEEDed before the row loop reaches them. (GatherRows
      // repeats the hint internally for direct callers; no-op elsewhere.)
      if (total_rows > 0) {
        frozen_view_->WillGather(s.row_entities.data(), total_rows);
      }
      const bool zero_copy =
          total_rows > 0 && frozen_view_->RowPtr(s.row_entities[0]) != nullptr;
      const float* gathered = nullptr;
      if (!zero_copy && total_rows > 0) {
        s.row_buf.resize(static_cast<size_t>(total_rows * static_cols));
        frozen_view_->GatherRows(s.row_entities.data(), total_rows,
                                 s.row_buf.data());
        gathered = s.row_buf.data();
      } else {
        for (int64_t r = 0; r < std::min(kGatherLookahead, total_rows); ++r) {
          frozen_view_->PrefetchRow(s.row_entities[static_cast<size_t>(r)]);
        }
      }
      for (int64_t r = 0; r < total_rows; ++r) {
        const float* src;
        if (zero_copy) {
          if (r + kGatherLookahead < total_rows) {
            frozen_view_->PrefetchRow(
                s.row_entities[static_cast<size_t>(r + kGatherLookahead)]);
          }
          src = frozen_view_->RowPtr(s.row_entities[static_cast<size_t>(r)]);
        } else {
          src = gathered + r * static_cols;
        }
        float* dst = x.data() + r * input_dim_;
        for (int64_t j = 0; j < frozen_pre_cols_; ++j) dst[j] = src[j];
        if (use_tpred) {
          const float* tp = tpred_all.data() + r * coarse;
          for (int64_t j = 0; j < coarse; ++j) dst[frozen_pre_cols_ + j] = tp[j];
        }
        for (int64_t j = 0; j < post_cols; ++j) {
          dst[frozen_pre_cols_ + coarse + j] = src[frozen_pre_cols_ + j];
        }
      }
      gather_hist->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - gather_start)
                              .count());
    }
    e_all = input_mlp_->ForwardValue(x, be);

    if (config_.use_position_encoding) {
      Tensor pos({total_rows, 2 * hidden});
      for (const InferenceScratch::SentenceInfo& info : s.sentences) {
        const data::SentenceExample& ex =
            *batch[static_cast<size_t>(info.ex_index)];
        for (int64_t r = 0; r < info.rows; ++r) {
          const data::MentionExample& m = ex.mentions[static_cast<size_t>(
              s.row_mention[static_cast<size_t>(info.row_offset + r)])];
          const int64_t first = clamp_span(m.span_start, info.n_tokens);
          const int64_t last = clamp_span(m.span_end, info.n_tokens);
          float* dst = pos.data() + (info.row_offset + r) * 2 * hidden;
          const float* pf = position_table_.data() + first * hidden;
          const float* pl = position_table_.data() + last * hidden;
          for (int64_t j = 0; j < hidden; ++j) {
            dst[j] = pf[j];
            dst[hidden + j] = pl[j];
          }
        }
      }
      e_all = tensor::Add(e_all, position_proj_->ForwardValue(pos, be));
    }
  }
  if (cancelled()) return {};

  // --- Per-sentence KG adjacencies (sentence-local, built once). -------------
  std::vector<std::vector<Tensor>> adjacencies(s.sentences.size());
  if (config_.use_kg || config_.use_cooccurrence_kg) {
    OBS_SPAN("infer.kg_adjacency");
    for (size_t i = 0; i < s.sentences.size(); ++i) {
      const InferenceScratch::SentenceInfo& info = s.sentences[i];
      const data::SentenceExample& ex = *batch[static_cast<size_t>(info.ex_index)];
      s.sent_entities.assign(
          s.row_entities.begin() + info.row_offset,
          s.row_entities.begin() + info.row_offset + info.rows);
      s.sent_mentions.assign(
          s.row_mention.begin() + info.row_offset,
          s.row_mention.begin() + info.row_offset + info.rows);
      if (config_.use_kg) {
        adjacencies[i].push_back(BuildAdjacency(ex, s.sent_entities,
                                                s.sent_mentions,
                                                AdjacencyKind::kWikidata));
      }
      if (config_.use_cooccurrence_kg) {
        adjacencies[i].push_back(BuildAdjacency(ex, s.sent_entities,
                                                s.sent_mentions,
                                                AdjacencyKind::kCooccurrence));
      }
      if (config_.use_kg && config_.use_two_hop_kg) {
        adjacencies[i].push_back(BuildAdjacency(ex, s.sent_entities,
                                                s.sent_mentions,
                                                AdjacencyKind::kTwoHop));
      }
    }
  }

  for (size_t i = 0; i < s.sentences.size(); ++i) {
    const InferenceScratch::SentenceInfo& info = s.sentences[i];
    s.self_segments.push_back(
        {info.row_offset, info.rows, info.row_offset, info.rows});
    s.p2e_segments.push_back({info.row_offset, info.rows, s.word_ranges[i].first,
                              s.word_ranges[i].second});
  }

  // --- Stacked Phrase2Ent + Ent2Ent + KG2Ent layers. -------------------------
  Tensor e_prime_all;
  std::vector<std::vector<Tensor>> ek_final(s.sentences.size());
  {
    OBS_SPAN("infer.attention");
    for (size_t li = 0; li < layers_.size(); ++li) {
      if (cancelled()) return {};
      const Layer& layer = layers_[li];
      const bool last_layer = li + 1 == layers_.size();
      Tensor p_all = layer.phrase2ent->ForwardSegmentsValue(
          e_all, w_all, s.p2e_segments, be);
      Tensor c_all = layer.ent2ent->ForwardSegmentsValue(e_all, e_all,
                                                         s.self_segments, be);
      e_prime_all = tensor::Add(p_all, c_all);

      Tensor e_next({total_rows, hidden});
      for (size_t i = 0; i < s.sentences.size(); ++i) {
        const InferenceScratch::SentenceInfo& info = s.sentences[i];
        Tensor e_prime_s =
            tensor::SliceRows(e_prime_all, info.row_offset, info.rows);
        std::vector<Tensor> eks;
        eks.reserve(adjacencies[i].size());
        for (size_t k = 0; k < adjacencies[i].size(); ++k) {
          Tensor attn = be->SoftmaxRows(tensor::AddScaledIdentity(
              adjacencies[i][k], layer.kg_weights[k].value().at(0)));
          eks.push_back(tensor::Add(be->MatMul(attn, e_prime_s), e_prime_s));
        }
        Tensor e_s;
        if (eks.empty()) {
          e_s = e_prime_s;
        } else if (eks.size() == 1) {
          e_s = eks[0];
        } else {
          Tensor sum = eks[0];
          for (size_t k = 1; k < eks.size(); ++k) sum = tensor::Add(sum, eks[k]);
          e_s = tensor::Scale(sum, 1.0f / static_cast<float>(eks.size()));
        }
        float* dst = e_next.data() + info.row_offset * hidden;
        const float* src = e_s.data();
        for (int64_t k = 0; k < info.rows * hidden; ++k) dst[k] = src[k];
        if (last_layer) ek_final[i] = std::move(eks);
      }
      e_all = std::move(e_next);
    }
  }
  if (cancelled()) return {};

  // --- Ensemble scoring S = max(E_k vᵀ, E' vᵀ). ------------------------------
  OBS_SPAN("infer.score");
  Tensor scores;
  if (config_.ensemble_scoring) {
    scores = be->MatMul(e_prime_all, score_vec_.value());
    for (size_t i = 0; i < s.sentences.size(); ++i) {
      const InferenceScratch::SentenceInfo& info = s.sentences[i];
      for (const Tensor& ek : ek_final[i]) {
        Tensor sek = be->MatMul(ek, score_vec_.value());
        for (int64_t r = 0; r < info.rows; ++r) {
          float& dst = scores.at(info.row_offset + r, 0);
          dst = std::max(dst, sek.at(r, 0));
        }
      }
    }
  } else {
    scores = be->MatMul(e_all, score_vec_.value());
  }

  // --- Per-mention argmax, matching Predict's strict-> tie handling. ---------
  for (const InferenceScratch::SentenceInfo& info : s.sentences) {
    std::vector<int64_t>& out = preds[static_cast<size_t>(info.ex_index)];
    for (int64_t mi = 0; mi < info.mentions; ++mi) {
      const size_t g = static_cast<size_t>(info.mention_offset + mi);
      const int64_t count = s.mention_row_count[g];
      if (count == 0) continue;
      const int64_t off = s.mention_row_offset[g];
      int64_t best = 0;
      for (int64_t k = 1; k < count; ++k) {
        if (scores.at(off + k, 0) > scores.at(off + best, 0)) best = k;
      }
      out[static_cast<size_t>(mi)] = best;
    }
  }
  return preds;
}

std::vector<BootlegModel::ContextualMention> BootlegModel::ContextualEmbeddings(
    const data::SentenceExample& example) {
  std::vector<ContextualMention> out;
  ForwardResult fwd = RunForward(example, /*train=*/false, &rng_);
  if (!fwd.valid) {
    for (const data::MentionExample& m : example.mentions) {
      ContextualMention cm;
      cm.span_start = m.span_start;
      cm.span_end = m.span_end;
      cm.embedding.assign(static_cast<size_t>(config_.hidden), 0.0f);
      out.push_back(std::move(cm));
    }
    return out;
  }
  const Tensor& s = fwd.scores.value();
  const Tensor& ek = fwd.ek.value();
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    if (fwd.row_count[mi] == 0) {
      // Keep alignment with example.mentions: emit a zero embedding.
      ContextualMention cm;
      cm.span_start = example.mentions[mi].span_start;
      cm.span_end = example.mentions[mi].span_end;
      cm.embedding.assign(static_cast<size_t>(config_.hidden), 0.0f);
      out.push_back(std::move(cm));
      continue;
    }
    int64_t best = 0;
    for (int64_t k = 1; k < fwd.row_count[mi]; ++k) {
      if (s.at(fwd.row_offset[mi] + k, 0) > s.at(fwd.row_offset[mi] + best, 0)) {
        best = k;
      }
    }
    ContextualMention cm;
    cm.entity = example.mentions[mi].candidates[static_cast<size_t>(best)];
    cm.span_start = example.mentions[mi].span_start;
    cm.span_end = example.mentions[mi].span_end;
    const int64_t row = fwd.row_offset[mi] + best;
    cm.embedding.assign(ek.data() + row * config_.hidden,
                        ek.data() + (row + 1) * config_.hidden);
    out.push_back(std::move(cm));
  }
  return out;
}

void BootlegModel::CompressEntityEmbeddings(double keep_fraction,
                                            const data::EntityCounts& counts) {
  BOOTLEG_CHECK_MSG(entity_emb_ != nullptr,
                    "compression requires the entity embedding table");
  BOOTLEG_CHECK(!compressed_);
  entity_emb_backup_ = entity_emb_->table();
  compressed_ = true;

  const int64_t n = kb_->num_entities();
  std::vector<kb::EntityId> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&counts](kb::EntityId a, kb::EntityId b) {
                     return counts.Count(a) > counts.Count(b);
                   });
  const auto keep = static_cast<int64_t>(
      std::round(keep_fraction * static_cast<double>(n)));

  // Replacement row: a fixed unseen entity's embedding (paper: "choose a
  // random entity embedding for an unseen entity").
  kb::EntityId unseen = order.back();
  for (kb::EntityId e : order) {
    if (counts.Count(e) == 0) {
      unseen = e;
      break;
    }
  }
  const int64_t cols = entity_emb_->cols();
  std::vector<float> replacement(
      entity_emb_backup_.data() + unseen * cols,
      entity_emb_backup_.data() + (unseen + 1) * cols);
  for (int64_t i = keep; i < n; ++i) {
    float* dst = entity_emb_->table().data() + order[static_cast<size_t>(i)] * cols;
    for (int64_t j = 0; j < cols; ++j) dst[j] = replacement[static_cast<size_t>(j)];
  }
}

void BootlegModel::RestoreEntityEmbeddings() {
  BOOTLEG_CHECK(compressed_);
  entity_emb_->table() = entity_emb_backup_;
  compressed_ = false;
}

BootlegModel::SizeReport BootlegModel::Size() const {
  SizeReport report;
  auto table_bytes = [](const nn::Embedding* e) {
    return e == nullptr ? 0 : e->table().numel() * static_cast<int64_t>(sizeof(float));
  };
  report.embedding_bytes =
      table_bytes(entity_emb_) + table_bytes(type_emb_) + table_bytes(rel_emb_);
  for (const std::string& name : store_.param_names()) {
    if (util::StartsWith(name, "encoder")) continue;  // BERT stand-in excluded
    report.network_bytes +=
        store_.GetParam(name).value().numel() * static_cast<int64_t>(sizeof(float));
  }
  return report;
}

}  // namespace bootleg::core

#ifndef BOOTLEG_CORE_CONFIG_H_
#define BOOTLEG_CORE_CONFIG_H_

#include <cstdint>

#include "core/regularization.h"
#include "text/word_encoder.h"

namespace bootleg::core {

/// Full configuration of a Bootleg model (Sec. 3 plus the benchmark-model
/// extras of Appendix B). The use_* switches implement the paper's ablation
/// models: Ent-only, Type-only, KG-only.
struct BootlegConfig {
  // Dimensions. The entity dim is deliberately *equal to* (not twice) the
  // type/relation dims at this data scale: a wider u_e lets the
  // discriminative entity channel swamp the general channels long before the
  // regularizer can rebalance them (the paper's 256-vs-128 ratio assumes
  // Wikipedia-scale data).
  int64_t hidden = 64;        // H
  int64_t entity_dim = 32;    // dim of u_e
  int64_t type_dim = 32;      // dim of assigned-type embedding
  int64_t coarse_dim = 16;    // dim of predicted coarse-type embedding
  int64_t rel_dim = 32;       // dim of relation embedding
  int64_t attn_pool_dim = 32; // additive-attention projection dim
  int64_t max_types_per_entity = 3;      // T (paper: 3)
  int64_t max_relations_per_entity = 8;  // R (paper: 50; scaled with the KB)
  int64_t num_heads = 4;
  int64_t ff_inner = 128;
  int64_t num_layers = 1;

  text::WordEncoderConfig encoder;

  // Signal switches (ablations).
  bool use_entity = true;           // entity embedding u_e
  bool use_type = true;             // assigned type embeddings + AddAttn
  bool use_kg = true;               // relation embeddings + KG2Ent modules
  bool use_type_prediction = true;  // coarse mention type prediction head
  bool use_position_encoding = true;

  // Benchmark-model extras (Appendix B).
  bool use_cooccurrence_kg = false;  // second KG2Ent: sentence co-occurrence
  bool use_title_feature = false;    // title-token embedding entity feature

  /// Ensemble scoring S = max(E_k vᵀ, E' vᵀ) (Sec. 3.2). When disabled the
  /// model scores from the last module output only — the ablation arm for
  /// this design choice.
  bool ensemble_scoring = true;

  /// Extension (the paper's multi-hop future work, Sec. 5): an additional
  /// KG2Ent adjacency connecting candidates that are 2-hop linked through a
  /// shared KG neighbor, addressing the multi-hop error bucket.
  bool use_two_hop_kg = false;

  /// Freeze the word-encoder stack (the paper freezes BERT for Bootleg).
  /// Defaults to false here because the stand-in encoder has no pretrained
  /// weights to preserve (DESIGN.md substitution note).
  bool freeze_encoder = false;

  RegConfig regularization;

  /// Makes the three ablation configs of Table 2 from a base config.
  static BootlegConfig EntOnly(BootlegConfig base) {
    base.use_type = false;
    base.use_kg = false;
    base.use_type_prediction = false;
    return base;
  }
  static BootlegConfig TypeOnly(BootlegConfig base) {
    base.use_entity = false;
    base.use_kg = false;
    return base;
  }
  static BootlegConfig KgOnly(BootlegConfig base) {
    base.use_entity = false;
    base.use_type = false;
    base.use_type_prediction = false;
    return base;
  }
};

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_CONFIG_H_

#ifndef BOOTLEG_CORE_TRAINER_H_
#define BOOTLEG_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "data/example.h"
#include "nn/optimizer.h"
#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "util/rng.h"

namespace bootleg::core {

/// Anything trainable with the shared sentence-level loop: Bootleg, its
/// ablations, and NED-Base all expose a per-sentence loss over a
/// ParameterStore.
class TrainableModel {
 public:
  virtual ~TrainableModel() = default;
  /// Scalar loss for one sentence, or an undefined Var if the sentence has
  /// no trainable mention.
  virtual tensor::Var Loss(const data::SentenceExample& example, bool train) = 0;
  virtual nn::ParameterStore& store() = 0;
};

/// Adapter wrapping any model with a Loss member function.
template <typename M>
class Trainable : public TrainableModel {
 public:
  explicit Trainable(M* model) : model_(model) {}
  tensor::Var Loss(const data::SentenceExample& example, bool train) override {
    return model_->Loss(example, train);
  }
  nn::ParameterStore& store() override { return model_->store(); }

 private:
  M* model_;
};

struct TrainOptions {
  int64_t epochs = 2;        // paper: 2 epochs over Wikipedia
  int64_t batch_size = 8;    // sentences per optimizer step
  float lr = 1e-3f;
  uint64_t seed = 99;
  bool verbose = false;
  int64_t log_every = 1000;  // sentences
};

struct TrainStats {
  double final_avg_loss = 0.0;
  int64_t sentences_seen = 0;
  int64_t steps = 0;
  double seconds = 0.0;
};

/// Runs the shared training loop: shuffle each epoch, accumulate gradients
/// over `batch_size` sentences, Adam step.
TrainStats Train(TrainableModel* model,
                 const std::vector<data::SentenceExample>& train_examples,
                 const TrainOptions& options);

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_TRAINER_H_

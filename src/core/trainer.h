#ifndef BOOTLEG_CORE_TRAINER_H_
#define BOOTLEG_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "data/example.h"
#include "nn/optimizer.h"
#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "util/rng.h"

namespace bootleg::core {

/// Anything trainable with the shared sentence-level loop: Bootleg, its
/// ablations, and NED-Base all expose a per-sentence loss over a
/// ParameterStore.
class TrainableModel {
 public:
  virtual ~TrainableModel() = default;
  /// Scalar loss for one sentence, or an undefined Var if the sentence has
  /// no trainable mention. `rng` supplies every stochastic draw (dropout,
  /// regularization masks); nullptr means "use the model's internal
  /// generator", which is only safe from one thread at a time.
  virtual tensor::Var Loss(const data::SentenceExample& example, bool train,
                           util::Rng* rng) = 0;
  tensor::Var Loss(const data::SentenceExample& example, bool train) {
    return Loss(example, train, nullptr);
  }
  /// True when Loss honors the rng argument, making concurrent Loss calls
  /// from the data-parallel trainer safe. Models that ignore it fall back to
  /// serial training.
  virtual bool SupportsParallelLoss() const { return false; }
  virtual nn::ParameterStore& store() = 0;
};

/// Adapter wrapping any model with a Loss member function. Models exposing
/// Loss(example, train, rng) get the per-worker RNG threaded through (and are
/// eligible for data-parallel training); models with Loss(example, train)
/// keep their internal generator and train serially.
template <typename M>
class Trainable : public TrainableModel {
 public:
  explicit Trainable(M* model) : model_(model) {}
  using TrainableModel::Loss;
  tensor::Var Loss(const data::SentenceExample& example, bool train,
                   util::Rng* rng) override {
    if constexpr (kHasRngLoss) {
      return model_->Loss(example, train, rng);
    } else {
      (void)rng;
      return model_->Loss(example, train);
    }
  }
  bool SupportsParallelLoss() const override { return kHasRngLoss; }
  nn::ParameterStore& store() override { return model_->store(); }

 private:
  static constexpr bool kHasRngLoss =
      requires(M* m, const data::SentenceExample& e, util::Rng* r) {
        m->Loss(e, true, r);
      };
  M* model_;
};

struct TrainOptions {
  int64_t epochs = 2;        // paper: 2 epochs over Wikipedia
  int64_t batch_size = 8;    // sentences per optimizer step
  float lr = 1e-3f;
  uint64_t seed = 99;
  bool verbose = false;
  int64_t log_every = 1000;  // sentences
  /// Data-parallel workers per optimizer step. 0 reads BOOTLEG_THREADS (and
  /// falls back to 1); 1 runs the exact serial loop, bit-identical to the
  /// pre-parallel trainer. Workers shard each minibatch, accumulate into
  /// per-worker gradient scopes, and the scopes are reduced in worker order
  /// before the Adam step, so a run is deterministic for a fixed thread
  /// count.
  int num_threads = 0;
  /// Stop after this many optimizer steps (0 = no limit). Used by tests and
  /// the CLI's fault-injection flow to simulate a mid-run kill.
  int64_t max_steps = 0;

  /// Durable checkpointing: with a non-empty `checkpoint_dir` and
  /// `checkpoint_every_steps` > 0, the trainer snapshots full training state
  /// — every parameter, Adam moments and step count, all RNG streams, the
  /// epoch/batch cursor, and the epoch's shuffle permutation — into
  /// `checkpoint_dir`/ckpt_<step>.bin every K optimizer steps, atomically
  /// (temp file + fsync + rename) and checksummed, retaining the newest
  /// `checkpoint_retain` files plus a MANIFEST. Checkpointing routes
  /// training through the stateful loop even at one thread; its trajectory
  /// differs from the plain serial loop only in dropout draws (per-worker
  /// forked RNGs instead of the model's internal generator) and is
  /// deterministic for a fixed thread count. Requires a model supporting
  /// per-worker RNGs; otherwise checkpointing is disabled with a warning.
  std::string checkpoint_dir;
  int64_t checkpoint_every_steps = 0;
  int64_t checkpoint_retain = 3;
  /// Scan `checkpoint_dir` before training and resume from the newest valid
  /// checkpoint, skipping corrupt or partial files. A resumed run finishes
  /// bit-identical to the uninterrupted run at the same thread count.
  bool resume = false;
};

struct TrainStats {
  double final_avg_loss = 0.0;
  int64_t sentences_seen = 0;
  int64_t steps = 0;
  double seconds = 0.0;
  int threads = 1;  // resolved worker count actually used
  int64_t resumed_from_step = -1;  // -1 when the run started fresh
};

/// Runs the shared training loop: shuffle each epoch, accumulate gradients
/// over `batch_size` sentences, Adam step. With num_threads > 1 (and a model
/// that supports it) each minibatch is sharded across pool workers; with
/// checkpointing enabled the loop additionally snapshots and can resume full
/// training state (see TrainOptions::checkpoint_dir).
TrainStats Train(TrainableModel* model,
                 const std::vector<data::SentenceExample>& train_examples,
                 const TrainOptions& options);

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_TRAINER_H_

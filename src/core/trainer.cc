#include "core/trainer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bootleg::core {

namespace {

// Serial loop, unchanged from before the parallel execution layer: this is
// the bit-exact reference trajectory that equivalence tests pin against.
TrainStats TrainSerial(TrainableModel* model,
                       const std::vector<data::SentenceExample>& train_examples,
                       const TrainOptions& options) {
  util::Rng rng(options.seed);
  nn::Adam::Options adam_options;
  adam_options.lr = options.lr;
  nn::Adam optimizer(&model->store(), adam_options);

  std::vector<size_t> order(train_examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  util::Timer timer;
  TrainStats stats;
  stats.threads = 1;
  double window_loss = 0.0;
  int64_t window_count = 0;

  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    int64_t in_batch = 0;
    for (size_t idx : order) {
      tensor::Var loss = model->Loss(train_examples[idx], /*train=*/true);
      ++stats.sentences_seen;
      if (loss.defined()) {
        tensor::Backward(loss);
        window_loss += loss.value().at(0);
        ++window_count;
        ++in_batch;
      }
      if (in_batch >= options.batch_size) {
        optimizer.Step();
        ++stats.steps;
        in_batch = 0;
      }
      if (options.verbose && stats.sentences_seen % options.log_every == 0 &&
          window_count > 0) {
        BOOTLEG_LOG(Info) << "epoch " << epoch << " sentences "
                          << stats.sentences_seen << " avg loss "
                          << window_loss / window_count;
        window_loss = 0.0;
        window_count = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      ++stats.steps;
    }
  }
  stats.final_avg_loss = window_count > 0 ? window_loss / window_count : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

// Data-parallel loop: each minibatch of `batch_size` sentences is sharded
// contiguously across `nthreads` workers. Workers run Loss+Backward with a
// private RNG (forked once, up front, from the master generator) and a
// private GradScope; scopes are reduced in worker order before the step, so
// the trajectory is deterministic for a fixed thread count. Epoch order and
// shard boundaries match the serial loop; only the RNG streams driving
// dropout differ, since workers draw independently.
TrainStats TrainParallel(TrainableModel* model,
                         const std::vector<data::SentenceExample>& train_examples,
                         const TrainOptions& options, int nthreads) {
  util::Rng rng(options.seed);
  nn::Adam::Options adam_options;
  adam_options.lr = options.lr;
  nn::Adam optimizer(&model->store(), adam_options);

  std::vector<util::Rng> worker_rngs;
  worker_rngs.reserve(static_cast<size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) worker_rngs.push_back(rng.Fork());
  std::vector<tensor::GradScope> scopes(static_cast<size_t>(nthreads));

  std::vector<size_t> order(train_examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  util::ThreadPool* pool = util::ThreadPool::Global();
  util::Timer timer;
  TrainStats stats;
  stats.threads = nthreads;
  double window_loss = 0.0;
  int64_t window_count = 0;

  std::vector<double> worker_loss(static_cast<size_t>(nthreads));
  std::vector<int64_t> worker_defined(static_cast<size_t>(nthreads));

  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    int64_t in_batch = 0;
    for (size_t group_start = 0; group_start < order.size();
         group_start += static_cast<size_t>(options.batch_size)) {
      const size_t group =
          std::min(static_cast<size_t>(options.batch_size),
                   order.size() - group_start);
      std::fill(worker_loss.begin(), worker_loss.end(), 0.0);
      std::fill(worker_defined.begin(), worker_defined.end(), int64_t{0});
      pool->RunWorkers(nthreads, [&](int w) {
        const size_t lo = group * static_cast<size_t>(w) /
                          static_cast<size_t>(nthreads);
        const size_t hi = group * (static_cast<size_t>(w) + 1) /
                          static_cast<size_t>(nthreads);
        if (lo == hi) return;
        tensor::GradScope::Activation act(&scopes[static_cast<size_t>(w)]);
        for (size_t i = lo; i < hi; ++i) {
          tensor::Var loss = model->Loss(train_examples[order[group_start + i]],
                                         /*train=*/true,
                                         &worker_rngs[static_cast<size_t>(w)]);
          if (loss.defined()) {
            tensor::Backward(loss);
            worker_loss[static_cast<size_t>(w)] += loss.value().at(0);
            ++worker_defined[static_cast<size_t>(w)];
          }
        }
      });
      nn::ParameterStore::ReduceGradScopes(&scopes);
      stats.sentences_seen += static_cast<int64_t>(group);
      for (int w = 0; w < nthreads; ++w) {
        window_loss += worker_loss[static_cast<size_t>(w)];
        window_count += worker_defined[static_cast<size_t>(w)];
        in_batch += worker_defined[static_cast<size_t>(w)];
      }
      // Same step rule as the serial loop — step once `batch_size` defined
      // losses have accumulated — evaluated at group granularity.
      if (in_batch >= options.batch_size) {
        optimizer.Step();
        ++stats.steps;
        in_batch = 0;
      }
      if (options.verbose && window_count > 0 &&
          stats.sentences_seen / options.log_every !=
              (stats.sentences_seen - static_cast<int64_t>(group)) /
                  options.log_every) {
        BOOTLEG_LOG(Info) << "epoch " << epoch << " sentences "
                          << stats.sentences_seen << " avg loss "
                          << window_loss / window_count << " (threads "
                          << nthreads << ")";
        window_loss = 0.0;
        window_count = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      ++stats.steps;
    }
  }
  stats.final_avg_loss = window_count > 0 ? window_loss / window_count : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace

TrainStats Train(TrainableModel* model,
                 const std::vector<data::SentenceExample>& train_examples,
                 const TrainOptions& options) {
  int nthreads = options.num_threads;
  if (nthreads <= 0) {
    const int env = util::ThreadPool::EnvThreads();
    nthreads = env > 0 ? env : 1;
  }
  if (nthreads > 1 && !model->SupportsParallelLoss()) {
    BOOTLEG_LOG(Warning)
        << "model does not support per-worker RNGs; training serially";
    nthreads = 1;
  }
  if (nthreads <= 1) return TrainSerial(model, train_examples, options);
  return TrainParallel(model, train_examples, options, nthreads);
}

}  // namespace bootleg::core

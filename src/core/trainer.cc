#include "core/trainer.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bootleg::core {

namespace {

// Serial loop, unchanged from before the parallel execution layer: this is
// the bit-exact reference trajectory that equivalence tests pin against.
TrainStats TrainSerial(TrainableModel* model,
                       const std::vector<data::SentenceExample>& train_examples,
                       const TrainOptions& options) {
  util::Rng rng(options.seed);
  nn::Adam::Options adam_options;
  adam_options.lr = options.lr;
  nn::Adam optimizer(&model->store(), adam_options);

  std::vector<size_t> order(train_examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  util::Timer timer;
  TrainStats stats;
  stats.threads = 1;
  double window_loss = 0.0;
  int64_t window_count = 0;

  bool done = false;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    OBS_SPAN("train.epoch");
    rng.Shuffle(&order);
    int64_t in_batch = 0;
    for (size_t idx : order) {
      tensor::Var loss;
      {
        OBS_SPAN("train.forward_backward");
        loss = model->Loss(train_examples[idx], /*train=*/true);
        if (loss.defined()) tensor::Backward(loss);
      }
      ++stats.sentences_seen;
      if (loss.defined()) {
        window_loss += loss.value().at(0);
        ++window_count;
        ++in_batch;
      }
      if (in_batch >= options.batch_size) {
        {
          OBS_SPAN("train.step");
          optimizer.Step();
        }
        ++stats.steps;
        in_batch = 0;
        if (options.max_steps > 0 && stats.steps >= options.max_steps) {
          done = true;
          break;
        }
      }
      if (options.verbose && stats.sentences_seen % options.log_every == 0 &&
          window_count > 0) {
        BOOTLEG_LOG(Info) << "epoch " << epoch << " sentences "
                          << stats.sentences_seen << " avg loss "
                          << window_loss / window_count;
        window_loss = 0.0;
        window_count = 0;
      }
    }
    if (done) break;
    if (in_batch > 0) {
      OBS_SPAN("train.step");
      optimizer.Step();
      ++stats.steps;
      if (options.max_steps > 0 && stats.steps >= options.max_steps) break;
    }
  }
  stats.final_avg_loss = window_count > 0 ? window_loss / window_count : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

// Validates a recovered TrainerState against this run's configuration before
// trusting it. Checkpoint checksums already guarantee the bytes are intact;
// this guards against resuming with a different corpus, thread count, or
// schedule, and against logically-impossible states.
util::Status ValidateRecoveredState(const TrainerState& s, size_t num_examples,
                                    int nthreads, const TrainOptions& options) {
  if (s.nthreads != nthreads) {
    return util::Status::FailedPrecondition(
        "checkpoint thread count mismatch (resume with the same thread "
        "count for a bit-identical trajectory)");
  }
  if (s.order.size() != num_examples) {
    return util::Status::FailedPrecondition(
        "checkpoint corpus size mismatch");
  }
  if (s.epoch >= options.epochs ||
      s.cursor > static_cast<int64_t>(num_examples) ||
      s.in_batch > options.batch_size) {
    return util::Status::FailedPrecondition(
        "checkpoint position beyond this run's schedule");
  }
  std::vector<bool> seen(num_examples, false);
  for (int64_t v : s.order) {
    if (v < 0 || v >= static_cast<int64_t>(num_examples) ||
        seen[static_cast<size_t>(v)]) {
      return util::Status::Corruption("checkpoint order is not a permutation");
    }
    seen[static_cast<size_t>(v)] = true;
  }
  util::Rng probe(0);
  if (!probe.DeserializeState(s.master_rng)) {
    return util::Status::Corruption("checkpoint master RNG state unreadable");
  }
  for (const std::string& state : s.worker_rngs) {
    if (!probe.DeserializeState(state)) {
      return util::Status::Corruption("checkpoint worker RNG state unreadable");
    }
  }
  return util::Status::OK();
}

// Stateful loop: each minibatch of `batch_size` sentences is sharded
// contiguously across `nthreads` workers. Workers run Loss+Backward with a
// private RNG (forked once, up front, from the master generator) and a
// private GradScope; scopes are reduced in worker order before the step, so
// the trajectory is deterministic for a fixed thread count. Epoch order and
// shard boundaries match the serial loop; only the RNG streams driving
// dropout differ, since workers draw independently.
//
// All loop state lives in explicitly serializable form (counters, the master
// and worker RNG streams, the epoch's shuffle permutation), which is what
// makes mid-run checkpointing possible: a snapshot taken right after an
// optimizer step captures everything, so a resumed run replays the exact
// remaining trajectory. The master RNG is saved post-shuffle/post-fork, so a
// resumed epoch must not re-shuffle and workers restore rather than re-fork.
TrainStats TrainStateful(TrainableModel* model,
                         const std::vector<data::SentenceExample>& train_examples,
                         const TrainOptions& options, int nthreads) {
  util::Rng rng(options.seed);
  nn::Adam::Options adam_options;
  adam_options.lr = options.lr;
  nn::Adam optimizer(&model->store(), adam_options);

  std::vector<util::Rng> worker_rngs;
  worker_rngs.reserve(static_cast<size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) worker_rngs.push_back(rng.Fork());
  std::vector<tensor::GradScope> scopes(static_cast<size_t>(nthreads));

  std::vector<size_t> order(train_examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  util::ThreadPool* pool = util::ThreadPool::Global();
  util::Timer timer;
  TrainStats stats;
  stats.threads = nthreads;
  double window_loss = 0.0;
  int64_t window_count = 0;
  int64_t in_batch = 0;

  const bool checkpointing =
      !options.checkpoint_dir.empty() && options.checkpoint_every_steps > 0;
  int64_t start_epoch = 0;
  int64_t start_cursor = 0;
  bool restored = false;

  if (checkpointing && options.resume) {
    TrainerState ts;
    RecoveryResult rec = RecoverLatestCheckpoint(
        options.checkpoint_dir, &ts, &model->store(), &optimizer,
        [&](const TrainerState& s) {
          return ValidateRecoveredState(s, train_examples.size(), nthreads,
                                        options);
        });
    if (rec.resumed) {
      rng.DeserializeState(ts.master_rng);
      for (int w = 0; w < nthreads; ++w) {
        worker_rngs[static_cast<size_t>(w)].DeserializeState(
            ts.worker_rngs[static_cast<size_t>(w)]);
      }
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<size_t>(ts.order[i]);
      }
      start_epoch = ts.epoch;
      start_cursor = ts.cursor;
      in_batch = ts.in_batch;
      stats.steps = ts.steps;
      stats.sentences_seen = ts.sentences_seen;
      window_loss = ts.window_loss;
      window_count = ts.window_count;
      stats.resumed_from_step = rec.step;
      restored = true;
      BOOTLEG_LOG(Info) << "resumed from " << rec.path << " (step " << rec.step
                        << ", epoch " << ts.epoch << ", cursor " << ts.cursor
                        << ")";
    } else {
      BOOTLEG_LOG(Info) << "no usable checkpoint in "
                        << options.checkpoint_dir << "; starting fresh";
    }
  }

  // Snapshots the complete loop state; `next_cursor` is where the inner loop
  // will pick up within the current epoch's order.
  const auto save_checkpoint = [&](int64_t epoch, int64_t next_cursor) {
    OBS_SPAN("train.checkpoint");
    TrainerState ts;
    ts.epoch = epoch;
    ts.cursor = next_cursor;
    ts.in_batch = in_batch;
    ts.steps = stats.steps;
    ts.sentences_seen = stats.sentences_seen;
    ts.window_loss = window_loss;
    ts.window_count = window_count;
    ts.nthreads = nthreads;
    ts.master_rng = rng.SerializeState();
    ts.worker_rngs.reserve(worker_rngs.size());
    for (const util::Rng& w : worker_rngs) {
      ts.worker_rngs.push_back(w.SerializeState());
    }
    ts.order.assign(order.begin(), order.end());
    util::Status st = WriteCheckpoint(options.checkpoint_dir, ts,
                                      model->store(), optimizer,
                                      options.checkpoint_retain);
    if (!st.ok()) {
      BOOTLEG_LOG(Warning) << "checkpoint write failed: " << st.ToString();
    }
  };

  std::vector<double> worker_loss(static_cast<size_t>(nthreads));
  std::vector<int64_t> worker_defined(static_cast<size_t>(nthreads));

  bool done = false;
  for (int64_t epoch = start_epoch; epoch < options.epochs; ++epoch) {
    OBS_SPAN("train.epoch");
    // A restored epoch was already shuffled before the snapshot (the saved
    // master RNG state is post-shuffle); re-shuffling would double-draw.
    const bool resumed_epoch = restored && epoch == start_epoch;
    if (!resumed_epoch) rng.Shuffle(&order);
    for (size_t group_start =
             resumed_epoch ? static_cast<size_t>(start_cursor) : 0;
         group_start < order.size();
         group_start += static_cast<size_t>(options.batch_size)) {
      const size_t group =
          std::min(static_cast<size_t>(options.batch_size),
                   order.size() - group_start);
      std::fill(worker_loss.begin(), worker_loss.end(), 0.0);
      std::fill(worker_defined.begin(), worker_defined.end(), int64_t{0});
      OBS_SPAN("train.group");
      {
        OBS_SPAN("train.forward_backward");
        pool->RunWorkers(nthreads, [&](int w) {
          const size_t lo = group * static_cast<size_t>(w) /
                            static_cast<size_t>(nthreads);
          const size_t hi = group * (static_cast<size_t>(w) + 1) /
                            static_cast<size_t>(nthreads);
          if (lo == hi) return;
          tensor::GradScope::Activation act(&scopes[static_cast<size_t>(w)]);
          for (size_t i = lo; i < hi; ++i) {
            tensor::Var loss = model->Loss(
                train_examples[order[group_start + i]], /*train=*/true,
                &worker_rngs[static_cast<size_t>(w)]);
            if (loss.defined()) {
              tensor::Backward(loss);
              worker_loss[static_cast<size_t>(w)] += loss.value().at(0);
              ++worker_defined[static_cast<size_t>(w)];
            }
          }
        });
      }
      {
        OBS_SPAN("train.reduce");
        nn::ParameterStore::ReduceGradScopes(&scopes);
      }
      stats.sentences_seen += static_cast<int64_t>(group);
      for (int w = 0; w < nthreads; ++w) {
        window_loss += worker_loss[static_cast<size_t>(w)];
        window_count += worker_defined[static_cast<size_t>(w)];
        in_batch += worker_defined[static_cast<size_t>(w)];
      }
      // Same step rule as the serial loop — step once `batch_size` defined
      // losses have accumulated — evaluated at group granularity.
      if (in_batch >= options.batch_size) {
        {
          OBS_SPAN("train.step");
          optimizer.Step();
        }
        ++stats.steps;
        in_batch = 0;
        // Snapshot right after the step: gradients are clear and the next
        // unit of work is the group starting at `group_start + group`.
        if (checkpointing &&
            stats.steps % options.checkpoint_every_steps == 0) {
          save_checkpoint(epoch,
                          static_cast<int64_t>(group_start + group));
        }
        if (options.max_steps > 0 && stats.steps >= options.max_steps) {
          done = true;
          break;
        }
      }
      if (options.verbose && window_count > 0 &&
          stats.sentences_seen / options.log_every !=
              (stats.sentences_seen - static_cast<int64_t>(group)) /
                  options.log_every) {
        BOOTLEG_LOG(Info) << "epoch " << epoch << " sentences "
                          << stats.sentences_seen << " avg loss "
                          << window_loss / window_count << " (threads "
                          << nthreads << ")";
        window_loss = 0.0;
        window_count = 0;
      }
    }
    if (done) break;
    if (in_batch > 0) {
      {
        OBS_SPAN("train.step");
        optimizer.Step();
      }
      ++stats.steps;
      in_batch = 0;
      if (checkpointing && stats.steps % options.checkpoint_every_steps == 0) {
        // Cursor at end-of-epoch: a resume lands on an empty remainder of
        // this epoch and proceeds to the next one with the restored RNG.
        save_checkpoint(epoch, static_cast<int64_t>(order.size()));
      }
      if (options.max_steps > 0 && stats.steps >= options.max_steps) break;
    }
  }
  stats.final_avg_loss = window_count > 0 ? window_loss / window_count : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace

TrainStats Train(TrainableModel* model,
                 const std::vector<data::SentenceExample>& train_examples,
                 const TrainOptions& options) {
  int nthreads = options.num_threads;
  if (nthreads <= 0) {
    const int env = util::ThreadPool::EnvThreads();
    nthreads = env > 0 ? env : 1;
  }
  bool checkpointing =
      !options.checkpoint_dir.empty() && options.checkpoint_every_steps > 0;
  if ((nthreads > 1 || checkpointing) && !model->SupportsParallelLoss()) {
    BOOTLEG_LOG(Warning)
        << "model does not support per-worker RNGs; training serially"
        << (checkpointing ? " without checkpointing" : "");
    nthreads = 1;
    checkpointing = false;
  }
  // Checkpointing requires the stateful loop even at one thread: only its
  // RNG streams are externally owned and thus serializable. The plain serial
  // loop stays the untouched bit-exact reference trajectory.
  if (nthreads <= 1 && !checkpointing) {
    return TrainSerial(model, train_examples, options);
  }
  return TrainStateful(model, train_examples, options, nthreads);
}

}  // namespace bootleg::core

#include "core/trainer.h"

#include "util/logging.h"
#include "util/timer.h"

namespace bootleg::core {

TrainStats Train(TrainableModel* model,
                 const std::vector<data::SentenceExample>& train_examples,
                 const TrainOptions& options) {
  util::Rng rng(options.seed);
  nn::Adam::Options adam_options;
  adam_options.lr = options.lr;
  nn::Adam optimizer(&model->store(), adam_options);

  std::vector<size_t> order(train_examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  util::Timer timer;
  TrainStats stats;
  double window_loss = 0.0;
  int64_t window_count = 0;

  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    int64_t in_batch = 0;
    for (size_t idx : order) {
      tensor::Var loss = model->Loss(train_examples[idx], /*train=*/true);
      ++stats.sentences_seen;
      if (loss.defined()) {
        tensor::Backward(loss);
        window_loss += loss.value().at(0);
        ++window_count;
        ++in_batch;
      }
      if (in_batch >= options.batch_size) {
        optimizer.Step();
        ++stats.steps;
        in_batch = 0;
      }
      if (options.verbose && stats.sentences_seen % options.log_every == 0 &&
          window_count > 0) {
        BOOTLEG_LOG(Info) << "epoch " << epoch << " sentences "
                          << stats.sentences_seen << " avg loss "
                          << window_loss / window_count;
        window_loss = 0.0;
        window_count = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      ++stats.steps;
    }
  }
  stats.final_avg_loss = window_count > 0 ? window_loss / window_count : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace bootleg::core

#ifndef BOOTLEG_CORE_CHECKPOINT_H_
#define BOOTLEG_CORE_CHECKPOINT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "nn/optimizer.h"
#include "nn/param_store.h"
#include "util/status.h"

namespace bootleg::core {

/// Everything beyond the parameters that the training loop needs to continue
/// a run bit-identically: the optimizer cursor is saved separately (Adam
/// moments + step count via nn::Adam::SaveState); this struct carries the
/// loop position, the RNG streams, and the epoch's shuffle permutation.
struct TrainerState {
  int64_t epoch = 0;
  int64_t cursor = 0;  // next sentence index within this epoch's order
  int64_t in_batch = 0;
  int64_t steps = 0;
  int64_t sentences_seen = 0;
  double window_loss = 0.0;
  int64_t window_count = 0;
  int nthreads = 1;
  std::string master_rng;                // util::Rng::SerializeState
  std::vector<std::string> worker_rngs;  // one per worker, worker order
  std::vector<int64_t> order;            // this epoch's shuffle permutation
};

/// `dir`/ckpt_<step>.bin — the canonical checkpoint file name.
std::string CheckpointPath(const std::string& dir, int64_t step);

/// Checkpoint files in `dir`, newest (highest step) first. Torn `.tmp`
/// files and anything else not matching ckpt_<step>.bin are ignored.
std::vector<std::pair<int64_t, std::string>> ListCheckpoints(
    const std::string& dir);

/// Atomically writes ckpt_<state.steps>.bin into `dir` (creating it if
/// needed), rewrites MANIFEST, and prunes all but the newest `retain`
/// checkpoints. The file carries the trainer state, every parameter, and the
/// optimizer state, each guarded by section checksums and a footer.
util::Status WriteCheckpoint(const std::string& dir, const TrainerState& state,
                             const nn::ParameterStore& store,
                             const nn::Adam& optimizer, int64_t retain);

/// Loads one checkpoint file, verifying checksums and the footer. On a
/// non-OK return, `store` and `optimizer` may hold a partial mix of old and
/// checkpoint values; they are fully overwritten by the next successful read.
util::Status ReadCheckpoint(const std::string& path, TrainerState* state,
                            nn::ParameterStore* store, nn::Adam* optimizer);

struct RecoveryResult {
  bool resumed = false;
  int64_t step = -1;
  std::string path;
};

/// Scans `dir` newest-first and loads the first checkpoint that both reads
/// cleanly and passes `validate` (the trainer's compatibility check: corpus
/// size, thread count, epoch bounds). Corrupt, partial, or incompatible
/// checkpoints are logged and skipped — a crash mid-write can never poison
/// recovery, it just falls back to the previous snapshot.
RecoveryResult RecoverLatestCheckpoint(
    const std::string& dir, TrainerState* state, nn::ParameterStore* store,
    nn::Adam* optimizer,
    const std::function<util::Status(const TrainerState&)>& validate);

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_CHECKPOINT_H_

#ifndef BOOTLEG_CORE_MODEL_LOADER_H_
#define BOOTLEG_CORE_MODEL_LOADER_H_

#include <string>

#include "nn/param_store.h"
#include "util/status.h"

namespace bootleg::core {

/// Loads a ParameterStore snapshot from `path`, deleting the file when the
/// read fails so the caller can fall back to retraining without tripping
/// over the same corrupt bytes again. This is the load-or-retrain pattern
/// shared by the harness trainers and the CLI.
util::Status LoadSnapshotOrInvalidate(const std::string& path,
                                      nn::ParameterStore* store);

/// Scans a checkpoint directory newest-first (the crash-recovery scan from
/// core/checkpoint.h) and loads the parameters of the first checkpoint that
/// reads cleanly into `store`, discarding trainer and optimizer state.
/// Returns the path of the checkpoint that was loaded, or NotFound when the
/// directory holds no readable checkpoint. This is the serving-side loader:
/// the inference engine and hot-reload both go through it.
util::StatusOr<std::string> LoadNewestCheckpointParams(
    const std::string& dir, nn::ParameterStore* store);

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_MODEL_LOADER_H_

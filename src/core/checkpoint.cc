#include "core/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "util/io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bootleg::core {

namespace {

constexpr uint32_t kCheckpointMagic = 0xB0071ECC;
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

/// Hard sanity bound on worker counts read from disk; anything larger is a
/// corrupt field, not a configuration.
constexpr int64_t kMaxThreads = 1 << 16;

void WriteTrainerState(util::BinaryWriter* w, const TrainerState& s) {
  w->BeginSection();
  w->WriteI64(s.epoch);
  w->WriteI64(s.cursor);
  w->WriteI64(s.in_batch);
  w->WriteI64(s.steps);
  w->WriteI64(s.sentences_seen);
  w->WriteF64(s.window_loss);
  w->WriteI64(s.window_count);
  w->WriteU32(static_cast<uint32_t>(s.nthreads));
  w->WriteString(s.master_rng);
  w->WriteU64(s.worker_rngs.size());
  for (const std::string& rng : s.worker_rngs) w->WriteString(rng);
  w->WriteI64Vector(s.order);
  w->EndSection();
}

util::Status ReadTrainerState(util::BinaryReader* r, TrainerState* s) {
  r->BeginSection();
  s->epoch = r->ReadI64();
  s->cursor = r->ReadI64();
  s->in_batch = r->ReadI64();
  s->steps = r->ReadI64();
  s->sentences_seen = r->ReadI64();
  s->window_loss = r->ReadF64();
  s->window_count = r->ReadI64();
  const int64_t nthreads = static_cast<int64_t>(r->ReadU32());
  s->master_rng = r->ReadString();
  const uint64_t nworkers = r->ReadU64();
  if (!r->status().ok()) return r->status();
  if (s->epoch < 0 || s->cursor < 0 || s->in_batch < 0 || s->steps < 0 ||
      s->sentences_seen < 0 || nthreads < 1 || nthreads > kMaxThreads ||
      nworkers != static_cast<uint64_t>(nthreads)) {
    return util::Status::Corruption("trainer state field out of range");
  }
  s->nthreads = static_cast<int>(nthreads);
  s->worker_rngs.clear();
  for (uint64_t i = 0; i < nworkers && r->status().ok(); ++i) {
    s->worker_rngs.push_back(r->ReadString());
  }
  s->order = r->ReadI64Vector();
  r->EndSection();
  return r->status();
}

}  // namespace

std::string CheckpointPath(const std::string& dir, int64_t step) {
  return util::StrFormat("%s/ckpt_%lld.bin", dir.c_str(),
                         static_cast<long long>(step));
}

std::vector<std::pair<int64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!util::StartsWith(name, "ckpt_") || !util::EndsWith(name, ".bin")) {
      continue;
    }
    const std::string digits = name.substr(5, name.size() - 5 - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::stoll(digits), entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

util::Status WriteCheckpoint(const std::string& dir, const TrainerState& state,
                             const nn::ParameterStore& store,
                             const nn::Adam& optimizer, int64_t retain) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return util::Status::IOError("cannot create checkpoint dir: " + dir);

  const std::string path = CheckpointPath(dir, state.steps);
  {
    util::AtomicFileWriter atomic(path);
    util::BinaryWriter w(atomic.temp_path());
    w.WriteU32(kCheckpointMagic);
    w.WriteU32(kCheckpointVersion);
    WriteTrainerState(&w, state);
    store.SaveTo(&w);
    optimizer.SaveState(&w);
    w.WriteFooter();
    BOOTLEG_RETURN_IF_ERROR(w.Finish());
    BOOTLEG_RETURN_IF_ERROR(atomic.Commit());
  }

  // Retain-K pruning, then a manifest naming the survivors newest-first.
  // Both are conveniences layered on the directory scan: recovery re-lists
  // the directory itself, so a stale or torn manifest can never mask a valid
  // checkpoint or resurrect a deleted one.
  auto checkpoints = ListCheckpoints(dir);
  while (static_cast<int64_t>(checkpoints.size()) > std::max<int64_t>(1, retain)) {
    std::filesystem::remove(checkpoints.back().second, ec);
    checkpoints.pop_back();
  }
  std::ostringstream manifest;
  for (const auto& [step, file] : checkpoints) {
    manifest << std::filesystem::path(file).filename().string() << "\n";
  }
  return util::WriteTextFile(dir + "/" + kManifestName, manifest.str());
}

util::Status ReadCheckpoint(const std::string& path, TrainerState* state,
                            nn::ParameterStore* store, nn::Adam* optimizer) {
  util::BinaryReader r(path);
  BOOTLEG_RETURN_IF_ERROR(r.status());
  if (r.ReadU32() != kCheckpointMagic) {
    if (!r.status().ok()) return r.status();
    return util::Status::Corruption("bad checkpoint magic: " + path);
  }
  const uint32_t version = r.ReadU32();
  if (r.status().ok() && version != kCheckpointVersion) {
    return util::Status::Corruption("unsupported checkpoint version: " + path);
  }
  BOOTLEG_RETURN_IF_ERROR(ReadTrainerState(&r, state));
  BOOTLEG_RETURN_IF_ERROR(store->LoadFrom(&r));
  BOOTLEG_RETURN_IF_ERROR(optimizer->LoadState(&r));
  r.VerifyFooter();
  if (!r.status().ok()) {
    return util::Status::Corruption(r.status().message() + ": " + path);
  }
  return util::Status::OK();
}

RecoveryResult RecoverLatestCheckpoint(
    const std::string& dir, TrainerState* state, nn::ParameterStore* store,
    nn::Adam* optimizer,
    const std::function<util::Status(const TrainerState&)>& validate) {
  RecoveryResult result;
  for (const auto& [step, path] : ListCheckpoints(dir)) {
    util::Status st = ReadCheckpoint(path, state, store, optimizer);
    if (st.ok() && validate) st = validate(*state);
    if (!st.ok()) {
      BOOTLEG_LOG(Warning) << "skipping checkpoint " << path << ": "
                           << st.ToString();
      continue;
    }
    result.resumed = true;
    result.step = step;
    result.path = path;
    return result;
  }
  return result;
}

}  // namespace bootleg::core

#ifndef BOOTLEG_CORE_REGULARIZATION_H_
#define BOOTLEG_CORE_REGULARIZATION_H_

#include <cstdint>

namespace bootleg::core {

/// Entity-embedding 2-D regularization schemes (paper Sec. 3.3.1 and
/// Appendix B). The scheme gives the probability p(e) of masking the whole
/// entity embedding u_e to zero during training, as a function of the
/// entity's training popularity (anchor + weak-label gold count).
enum class RegScheme {
  kNone = 0,      // p(e) = 0
  kFixed,         // p(e) = fixed_p
  kInvPopPow,     // 0.95 · x^-0.32           (paper's best)
  kInvPopLin,     // -0.00009x + 0.9501
  kInvPopLog,     // -0.097 ln(x) + 0.96
  kPopPow,        // mirror of InvPopPow: more popular → more masked
};

struct RegConfig {
  RegScheme scheme = RegScheme::kInvPopPow;
  float fixed_p = 0.8f;  // used by kFixed

  /// 2-D masking (the paper's contribution) zeroes the *whole* embedding
  /// with probability p(e); setting this false falls back to standard 1-D
  /// dropout at rate p(e) on the embedding's elements — the baseline the
  /// paper contrasts against in Sec. 3.3.1.
  bool two_dimensional = true;

  /// Masking probability for an entity seen `count` times in training.
  /// All schemes are clamped to [0.05, 0.95] as in the paper; kNone returns 0
  /// and kFixed returns fixed_p unclamped.
  float MaskProbability(int64_t count) const;
};

const char* RegSchemeName(RegScheme s);

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_REGULARIZATION_H_

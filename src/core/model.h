#ifndef BOOTLEG_CORE_MODEL_H_
#define BOOTLEG_CORE_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "core/config.h"
#include "data/example.h"
#include "eval/evaluator.h"
#include "kb/cooccurrence.h"
#include "kb/kb.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/param_store.h"
#include "store/embedding_store.h"
#include "text/word_encoder.h"
#include "util/rng.h"
#include "util/status.h"

namespace bootleg::core {

/// The Bootleg neural disambiguation model (Sec. 3):
///   - entity / type / relation embedding inputs with additive-attention
///     pooling and a coarse mention-type prediction head;
///   - Phrase2Ent (cross-attention to words), Ent2Ent (candidate
///     self-attention) and KG2Ent (softmax(K + wI)E + E) modules;
///   - ensemble scoring S = max(E_k vᵀ, E' vᵀ);
///   - 2-D inverse-popularity regularization of the entity embedding.
///
/// The use_* switches in BootlegConfig give the Ent-only / Type-only /
/// KG-only ablations of Table 2.
class BootlegModel : public eval::NedScorer {
 public:
  BootlegModel(const kb::KnowledgeBase* kb, int64_t vocab_size,
               BootlegConfig config, uint64_t seed);

  /// Training popularity counts driving the regularization scheme p(e).
  /// Must be set before training when the scheme is popularity-based.
  void SetEntityCounts(const data::EntityCounts* counts) { counts_ = counts; }

  /// Sentence co-occurrence stats for the optional second KG2Ent module.
  void SetCooccurrence(const kb::CooccurrenceStats* cooc) { cooc_ = cooc; }

  /// Vocabulary token id of each entity's title, required when
  /// config.use_title_feature is set (benchmark model, Appendix B).
  void SetTitleTokenIds(std::vector<int64_t> ids) {
    title_token_ids_ = std::move(ids);
  }

  /// Total loss L_dis + L_type over a sentence. Returns an undefined Var
  /// when the sentence has no trainable mention. `rng` drives every
  /// stochastic draw (dropout, regularization masks); nullptr uses the
  /// model's internal generator. Concurrent calls are safe as long as each
  /// passes a distinct rng.
  tensor::Var Loss(const data::SentenceExample& example, bool train,
                   util::Rng* rng = nullptr);

  /// Predicted candidate index per mention (-1 for empty candidate lists).
  std::vector<int64_t> Predict(const data::SentenceExample& example) override;

  /// Reusable buffers for PredictBatch, one per serving worker. Keeping them
  /// across batches avoids per-request metadata allocation on the hot path.
  struct InferenceScratch {
    struct SentenceInfo {
      int64_t ex_index = 0;        // index into the PredictBatch input
      int64_t row_offset = 0;      // first candidate row in the batch tensors
      int64_t rows = 0;
      int64_t mention_offset = 0;  // first row in the batched mention matrix
      int64_t mentions = 0;
      int64_t n_tokens = 0;        // truncated token count
    };
    std::vector<SentenceInfo> sentences;
    std::vector<const std::vector<int64_t>*> sequences;
    std::vector<std::pair<int64_t, int64_t>> word_ranges;
    std::vector<int64_t> row_entities;        // all sentences, batch order
    std::vector<int64_t> row_mention;         // local mention index per row
    std::vector<int64_t> mention_row_offset;  // per batched mention, global
    std::vector<int64_t> mention_row_count;
    std::vector<int64_t> sent_entities;       // per-sentence adjacency temps
    std::vector<int64_t> sent_mentions;
    std::vector<nn::AttentionSegment> p2e_segments;
    std::vector<nn::AttentionSegment> self_segments;
    std::vector<float> row_buf;  // batch-gather staging for non-float views
    /// Optional cooperative cancellation, polled between PredictBatch model
    /// stages. When it returns true the batch is abandoned and PredictBatch
    /// returns an empty vector (no per-example entries) — the serving layer
    /// uses this to reclaim compute from batches whose members' deadlines
    /// all expired mid-flight. Leave empty to run to completion; callers
    /// reusing a scratch across batches must reset it per batch.
    std::function<bool()> cancel_check;
  };

  /// Precomputes every sentence-independent per-entity input feature (entity
  /// embedding row, pooled type embedding, pooled relation embedding,
  /// projected title) into one frozen table read by PredictBatch. Call after
  /// the weights are in place; call again after any weight mutation (e.g. a
  /// serving hot-reload), since the table snapshots current values.
  void PrepareFrozenInference();
  bool frozen_ready() const { return frozen_ready_; }

  /// Serves the frozen per-entity features from an external StoreView (a
  /// memory-mapped embedding store) instead of the in-heap table built by
  /// PrepareFrozenInference(). The view must cover every KB entity with
  /// exactly FrozenStaticCols() columns — the layout PrepareFrozenInference
  /// writes and `bootleg_cli export-store` persists. Replaces any previous
  /// frozen state (heap table or earlier view); PredictBatch then gathers
  /// through the view. A later PrepareFrozenInference() call drops the view
  /// and returns to the heap path.
  util::Status UseFrozenStore(std::shared_ptr<const store::StoreView> view);
  bool frozen_from_store() const { return frozen_view_ != nullptr; }

  /// Frozen static-feature column count for the current config: the store
  /// schema PredictBatch expects ([entity | type_pool | rel_pool | title]).
  int64_t FrozenStaticCols() const;

  /// Online induction (the paper's inductive path, Sec. 3 / Sec. D.1):
  /// synthesizes the frozen static-feature row of an entity that was never
  /// trained, from its declared types and relations, using the frozen
  /// type/relation embedding tables and pooling weights — the exact math
  /// PrepareFrozenInference runs per trained entity. The entity-embedding
  /// slot cannot come from the (untrained) entity table, so the caller
  /// supplies it via `entity_slot` (entity_dim floats; pass a sibling
  /// centroid gathered from the live store). `title_token_id` is the
  /// vocabulary id of the entity's title token (ignored unless
  /// use_title_feature). `dst` receives FrozenStaticCols() floats.
  /// `entity.id` is not read — the entity need not be in the model's KB.
  util::Status SynthesizeFrozenRow(const kb::Entity& entity,
                                   const float* entity_slot,
                                   int64_t title_token_id, float* dst) const;

  /// The in-heap frozen table (empty when serving from a store view).
  const tensor::Tensor& frozen_static() const { return frozen_static_; }
  int64_t frozen_pre_cols() const { return frozen_pre_cols_; }

  /// Frees the entity embedding table after UseFrozenStore: its rows are
  /// baked into the store, so keeping them resident would double the memory
  /// the store exists to save. Serving-only — training and checkpointing
  /// must not run on a model with a released table.
  void ReleaseEntityTableForServing();

  /// Forward-only batched inference over several sentences at once (the
  /// serving path). Requires PrepareFrozenInference(). Returns Predict()'s
  /// output for each example and is bit-identical to per-sentence Predict at
  /// any batch composition: every cross-sentence stage is row-wise, while
  /// attention, KG mixing, and scoring run per sentence. Builds no autograd
  /// tape, never touches the model RNG, and is const — safe to call
  /// concurrently with a distinct scratch per thread.
  std::vector<std::vector<int64_t>> PredictBatch(
      const std::vector<const data::SentenceExample*>& batch,
      InferenceScratch* scratch) const;

  /// Installs the inference backend PredictBatch routes its frozen compute
  /// through, and registers the inference-path Linear weights with it
  /// (Backend::LoadModel — quantizing backends pack their copies here).
  /// nullptr restores the default reference path. PrepareFrozenInference()
  /// re-registers automatically, so a serving hot-reload refreshes any
  /// backend-prepared weight copies. Not thread-safe against concurrent
  /// PredictBatch calls.
  void SetInferenceBackend(std::shared_ptr<backend::Backend> be);

  /// The backend PredictBatch uses: the installed one, or the process-wide
  /// reference backend when none is installed. Never null.
  const backend::Backend* inference_backend() const {
    return backend_ != nullptr ? backend_.get()
                               : backend::Backend::ReferenceInstance();
  }

  /// Contextual entity embeddings (final-layer E_k rows of the predicted
  /// candidate per mention), the representation transferred to downstream
  /// tasks in Sec. 4.3. Returns exactly one entry per example mention; a
  /// mention with no candidates gets a zero embedding and an invalid entity.
  struct ContextualMention {
    kb::EntityId entity = kb::kInvalidId;
    int64_t span_start = 0;
    int64_t span_end = 0;
    std::vector<float> embedding;  // [hidden]
  };
  std::vector<ContextualMention> ContextualEmbeddings(
      const data::SentenceExample& example);

  /// Figure 3: keeps the learned embedding for the top `keep_fraction` of
  /// entities by training count and assigns every other entity the embedding
  /// of one fixed unseen entity. Restore with RestoreEntityEmbeddings().
  void CompressEntityEmbeddings(double keep_fraction,
                                const data::EntityCounts& counts);
  void RestoreEntityEmbeddings();

  /// Table 10 accounting. Embedding bytes cover the entity/type/relation
  /// tables; network bytes cover dense parameters outside the word encoder
  /// (the paper excludes BERT from its totals).
  struct SizeReport {
    int64_t embedding_bytes = 0;
    int64_t network_bytes = 0;
    int64_t total_bytes() const { return embedding_bytes + network_bytes; }
  };
  SizeReport Size() const;

  nn::ParameterStore& store() { return store_; }
  const BootlegConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }

  enum class AdjacencyKind {
    kWikidata,      // direct KG connectivity (the paper's base matrix)
    kCooccurrence,  // log sentence co-occurrence (benchmark model)
    kTwoHop,        // shared-neighbor 2-hop connectivity (extension)
  };

  /// Test hook exposing the per-sentence adjacency construction.
  tensor::Tensor BuildAdjacencyForTest(const data::SentenceExample& example,
                                       const std::vector<int64_t>& row_entities,
                                       const std::vector<int64_t>& row_mention,
                                       AdjacencyKind kind) const {
    return BuildAdjacency(example, row_entities, row_mention, kind);
  }

 private:
  struct ForwardResult {
    bool valid = false;
    tensor::Var scores;                 // [rows, 1] ensemble scores
    tensor::Var ek;                     // [rows, hidden] final KG output
    std::vector<int64_t> row_offset;    // per mention: first row index
    std::vector<int64_t> row_count;     // per mention: candidate count
    tensor::Var type_logits;            // [mentions_with_types, coarse] or undefined
    std::vector<int64_t> type_targets;  // gold coarse types for those rows
  };

  ForwardResult RunForward(const data::SentenceExample& example, bool train,
                           util::Rng* rng);

  /// Builds one per-sentence KG adjacency over candidate rows.
  tensor::Tensor BuildAdjacency(const data::SentenceExample& example,
                                const std::vector<int64_t>& row_entities,
                                const std::vector<int64_t>& row_mention,
                                AdjacencyKind kind) const;

  const kb::KnowledgeBase* kb_;
  BootlegConfig config_;
  util::Rng rng_;
  nn::ParameterStore store_;
  const data::EntityCounts* counts_ = nullptr;
  const kb::CooccurrenceStats* cooc_ = nullptr;

  // Input side.
  std::unique_ptr<text::WordEncoder> encoder_;
  nn::Embedding* entity_emb_ = nullptr;
  nn::Embedding* type_emb_ = nullptr;      // row 0 = "no type"
  nn::Embedding* rel_emb_ = nullptr;       // row 0 = "no relation"
  tensor::Var coarse_table_;               // [num_coarse, coarse_dim]
  std::unique_ptr<nn::AdditiveAttention> type_pool_;
  std::unique_ptr<nn::AdditiveAttention> rel_pool_;
  std::unique_ptr<nn::Mlp> type_pred_head_;
  std::unique_ptr<nn::Linear> title_proj_;
  std::unique_ptr<nn::Mlp> input_mlp_;
  std::unique_ptr<nn::Linear> position_proj_;
  tensor::Tensor position_table_;

  // Stacked modules.
  struct Layer {
    std::unique_ptr<nn::AttentionBlock> phrase2ent;
    std::unique_ptr<nn::AttentionBlock> ent2ent;
    std::vector<tensor::Var> kg_weights;  // learned scalar w per KG matrix
  };
  std::vector<Layer> layers_;
  tensor::Var score_vec_;  // [hidden, 1]

  int64_t input_dim_ = 0;
  int64_t title_dim_ = 0;
  std::vector<int64_t> title_token_ids_;
  tensor::Tensor entity_emb_backup_;  // for compression restore
  bool compressed_ = false;

  // Frozen per-entity features for the serving path (PrepareFrozenInference).
  // Column layout: [entity | type_pool] then [rel_pool | title] — the
  // sentence-dependent coarse-type prediction slots between the two halves.
  tensor::Tensor frozen_static_;
  int64_t frozen_pre_cols_ = 0;
  bool frozen_ready_ = false;
  // When set, PredictBatch gathers frozen rows through this view (mmap
  // store) instead of frozen_static_; see UseFrozenStore().
  std::shared_ptr<const store::StoreView> frozen_view_;

  /// Collects every inference-path Linear into LoadModel's inventory and
  /// hands it to backend_ (no-op without an installed backend).
  void RegisterBackendWeights();

  // Inference backend for PredictBatch; see SetInferenceBackend().
  std::shared_ptr<backend::Backend> backend_;
};

}  // namespace bootleg::core

#endif  // BOOTLEG_CORE_MODEL_H_

#include "core/model_loader.h"

#include <filesystem>
#include <system_error>

#include "core/checkpoint.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace bootleg::core {

util::Status LoadSnapshotOrInvalidate(const std::string& path,
                                      nn::ParameterStore* store) {
  const util::Status st = store->Load(path);
  if (st.ok()) return st;
  BOOTLEG_LOG(Warning) << "snapshot load failed (" << st.ToString()
                       << "); deleting corrupt snapshot " << path;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return st;
}

util::StatusOr<std::string> LoadNewestCheckpointParams(
    const std::string& dir, nn::ParameterStore* store) {
  // ReadCheckpoint wants a full (state, store, optimizer) triple; the state
  // and optimizer are throwaways here — serving only needs the parameters.
  TrainerState state;
  nn::Adam optimizer(store, nn::Adam::Options{});
  const RecoveryResult result = RecoverLatestCheckpoint(
      dir, &state, store, &optimizer,
      [](const TrainerState&) { return util::Status::OK(); });
  if (!result.resumed) {
    return util::Status::NotFound("no readable checkpoint in " + dir);
  }
  return result.path;
}

}  // namespace bootleg::core

#include "core/regularization.h"

#include <algorithm>
#include <cmath>

namespace bootleg::core {

namespace {
float Clamp(float p) { return std::min(0.95f, std::max(0.05f, p)); }
}  // namespace

float RegConfig::MaskProbability(int64_t count) const {
  const float x = static_cast<float>(std::max<int64_t>(count, 1));
  switch (scheme) {
    case RegScheme::kNone:
      return 0.0f;
    case RegScheme::kFixed:
      return fixed_p;
    case RegScheme::kInvPopPow:
      // f(1) = 0.95, f(10000) ≈ 0.05 (paper's power law).
      return Clamp(0.95f * std::pow(x, -0.32f));
    case RegScheme::kInvPopLin:
      return Clamp(-0.00009f * x + 0.9501f);
    case RegScheme::kInvPopLog:
      return Clamp(-0.097f * std::log(x) + 0.96f);
    case RegScheme::kPopPow:
      // Mirror image: f(1) = 0.05, f(10000) = 0.95.
      return Clamp(0.95f * std::pow(x / 10000.0f, 0.32f));
  }
  return 0.0f;
}

const char* RegSchemeName(RegScheme s) {
  switch (s) {
    case RegScheme::kNone:
      return "none";
    case RegScheme::kFixed:
      return "fixed";
    case RegScheme::kInvPopPow:
      return "InvPopPow";
    case RegScheme::kInvPopLin:
      return "InvPopLin";
    case RegScheme::kInvPopLog:
      return "InvPopLog";
    case RegScheme::kPopPow:
      return "PopPow";
  }
  return "?";
}

}  // namespace bootleg::core

// Header-only SIMD primitives shared by the inference backends and the
// embedding store. Deliberately dependency-free (no tensor/, no util/): the
// store library sits below tensor in the link order and must be able to use
// the fused dequant core without growing a link edge to the backend library.
//
// Two layers live here:
//   * runtime CPU detection (AVX2+FMA) — kernels are compiled whenever the
//     build targets AVX2/FMA (`-march=native` on such hosts) and selected at
//     runtime, so a portable build or an older CPU falls back to the scalar
//     bodies below, which compute the exact same values;
//   * block-int8 ("q8") primitives — QK-style blocks of kQ8Block values with
//     one f32 scale per block, matching the ggml q8_0 layout: quantization,
//     row dequantization, and the int8×int8→int32 dot core used by the
//     quantized Linear kernels.
//
// Every primitive is element-wise exact across the SIMD and scalar paths
// (integer arithmetic plus one correctly-rounded float multiply per element),
// so GatherRow through the fused dequant stays bit-identical to the scalar
// store path on every machine.
#ifndef BOOTLEG_BACKEND_SIMD_PRIMITIVES_H_
#define BOOTLEG_BACKEND_SIMD_PRIMITIVES_H_

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#define BOOTLEG_SIMD_AVX2 1
#include <immintrin.h>
#else
#define BOOTLEG_SIMD_AVX2 0
#endif

// Width upgrade for the float matmul tiles and the dequant row core:
// compiled whenever the target ISA has the foundation subset, picked at
// runtime. The q8 dots and transposed products stay 256-bit — those cores
// are load- or latency-bound, not FMA-width-bound.
#if BOOTLEG_SIMD_AVX2 && defined(__AVX512F__)
#define BOOTLEG_SIMD_AVX512 1
#else
#define BOOTLEG_SIMD_AVX512 0
#endif

namespace bootleg {
namespace backend {

/// Values per quantization block. 32 int8 payload bytes + one f32 scale =
/// 36 bytes per 32 floats (3.6× smaller than f32), and exactly one AVX2
/// register per block for the dot kernels.
inline constexpr int64_t kQ8Block = 32;

/// Number of kQ8Block-wide blocks covering n values (last block zero-padded).
inline constexpr int64_t NumQ8Blocks(int64_t n) {
  return (n + kQ8Block - 1) / kQ8Block;
}

/// True when the kernels in this header were compiled with AVX2+FMA enabled.
inline constexpr bool SimdCompiled() { return BOOTLEG_SIMD_AVX2 != 0; }

/// Runtime check: binary has AVX2 kernels AND the CPU can run them.
inline bool CpuHasAvx2Fma() {
#if BOOTLEG_SIMD_AVX2
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

/// Runtime check for the 512-bit matmul tiles.
inline bool CpuHasAvx512() {
#if BOOTLEG_SIMD_AVX512
  static const bool ok = CpuHasAvx2Fma() && __builtin_cpu_supports("avx512f");
  return ok;
#else
  return false;
#endif
}

/// dst[j] = float(q[j]) * scale. int8→f32 conversion is exact and the single
/// multiply is correctly rounded, so the vector and scalar paths agree
/// bitwise; MmapInt8View::GatherRow funnels through this.
inline void DequantRow(const int8_t* q, int64_t n, float scale, float* dst) {
#if BOOTLEG_SIMD_AVX512
  if (CpuHasAvx512()) {
    // 16 int8 -> 16 int32 -> 16 f32 per iteration; same exact int8→f32
    // widening and one rounded multiply per lane as the narrower paths.
    const __m512 vs512 = _mm512_set1_ps(scale);
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m128i q8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + j));
      const __m512i q32 = _mm512_cvtepi8_epi32(q8);
      _mm512_storeu_ps(dst + j,
                       _mm512_mul_ps(_mm512_cvtepi32_ps(q32), vs512));
    }
    for (; j < n; ++j) dst[j] = static_cast<float>(q[j]) * scale;
    return;
  }
#endif
#if BOOTLEG_SIMD_AVX2
  if (CpuHasAvx2Fma()) {
    const __m256 vs = _mm256_set1_ps(scale);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      // 8 int8 -> 8 int32 -> 8 f32, then one rounded multiply per lane.
      const __m128i q8 =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + j));
      const __m256i q32 = _mm256_cvtepi8_epi32(q8);
      _mm256_storeu_ps(dst + j,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(q32), vs));
    }
    for (; j < n; ++j) dst[j] = static_cast<float>(q[j]) * scale;
    return;
  }
#endif
  for (int64_t j = 0; j < n; ++j) dst[j] = static_cast<float>(q[j]) * scale;
}

/// Quantizes n floats into NumQ8Blocks(n) blocks: per block, scale =
/// max|x|/127 and values round-to-nearest-even (same formula as the store's
/// per-row int8 shards). The padded tail of the last block is written as
/// zero, which dequantizes exactly to 0 and contributes nothing to dots.
/// `q` must hold NumQ8Blocks(n)*kQ8Block bytes, `scales` NumQ8Blocks(n).
inline void QuantizeBlocksQ8(const float* src, int64_t n, int8_t* q,
                             float* scales) {
  const int64_t blocks = NumQ8Blocks(n);
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t begin = b * kQ8Block;
    const int64_t len = (begin + kQ8Block <= n) ? kQ8Block : (n - begin);
    float max_abs = 0.0f;
    for (int64_t j = 0; j < len; ++j) {
      const float a = std::fabs(src[begin + j]);
      if (a > max_abs) max_abs = a;
    }
    const float scale = max_abs / 127.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    scales[b] = scale;
    int8_t* qb = q + b * kQ8Block;
    for (int64_t j = 0; j < len; ++j) {
      float v = std::nearbyintf(src[begin + j] * inv);
      if (v > 127.0f) v = 127.0f;
      if (v < -127.0f) v = -127.0f;
      qb[j] = static_cast<int8_t>(v);
    }
    for (int64_t j = len; j < kQ8Block; ++j) qb[j] = 0;
  }
}

/// Dot product of two q8 rows with `blocks` blocks each:
///   sum_b (sa[b] * sb[b]) * <qa_b, qb_b>_int32
/// The per-block int32 dot is exact in both paths; float accumulation order
/// differs between the AVX2 and scalar bodies (8 lanes vs 1), which is fine —
/// the q8 backend only promises argmax-stability, not bit-identity, and each
/// binary picks one path deterministically.
inline float DotQ8(const int8_t* qa, const float* sa, const int8_t* qb,
                   const float* sb, int64_t blocks) {
#if BOOTLEG_SIMD_AVX2
  if (CpuHasAvx2Fma()) {
    __m256 acc = _mm256_setzero_ps();
    const __m256i ones16 = _mm256_set1_epi16(1);
    for (int64_t b = 0; b < blocks; ++b) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(qa + b * kQ8Block));
      const __m256i y = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(qb + b * kQ8Block));
      // maddubs needs one unsigned operand: fold sign(x) into y so the
      // products |x|*sign(x)*y == x*y. |x| <= 127 keeps the i16 pair sums
      // inside [-32258, 32258], no saturation.
      const __m256i ax = _mm256_sign_epi8(x, x);
      const __m256i sy = _mm256_sign_epi8(y, x);
      const __m256i p16 = _mm256_maddubs_epi16(ax, sy);
      const __m256i p32 = _mm256_madd_epi16(p16, ones16);
      acc = _mm256_fmadd_ps(_mm256_set1_ps(sa[b] * sb[b]),
                            _mm256_cvtepi32_ps(p32), acc);
    }
    // Horizontal sum of the 8 lanes.
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }
#endif
  float acc = 0.0f;
  for (int64_t b = 0; b < blocks; ++b) {
    int32_t idot = 0;
    const int8_t* xa = qa + b * kQ8Block;
    const int8_t* xb = qb + b * kQ8Block;
    for (int64_t j = 0; j < kQ8Block; ++j) {
      idot += static_cast<int32_t>(xa[j]) * static_cast<int32_t>(xb[j]);
    }
    acc += (sa[b] * sb[b]) * static_cast<float>(idot);
  }
  return acc;
}

}  // namespace backend
}  // namespace bootleg

#endif  // BOOTLEG_BACKEND_SIMD_PRIMITIVES_H_

// The inference-backend seam: a virtual interface owning the frozen-inference
// compute cores (the `forward` surface), the frozen-weight registration hook
// (`load_model`), and observability (`stats`).
//
// Three implementations ship:
//   * "ref"     — ReferenceBackend, a thin shim over the tensor:: kernels.
//                 Bit-identical to the pre-backend code paths by construction;
//                 the permanent oracle every other backend is tested against.
//   * "simd"    — SimdBackend, runtime-dispatched AVX2/FMA kernels. At
//                 construction it probes its kernels for bit-identity against
//                 the reference kernels and permanently delegates to them if
//                 the probe fails (portable builds, sanitizer builds, CPUs
//                 without AVX2) — so "simd" output always equals "ref" output
//                 bitwise, the only question is speed.
//   * "simd_q8" — SimdBackend plus block-int8 quantization of registered
//                 frozen Linear weights (kQ8Block values per f32 scale,
//                 int8×int8→int32 dot kernels). Float-accurate only to
//                 quantization error; validated argmax-identical on the
//                 synthetic eval.
//
// The seam sits at the nn value-path level: Linear/attention value forwards
// take an optional `const Backend*`, and BootlegModel::PredictBatch routes
// every frozen matmul/softmax through the active backend. Training and
// freeze-time code never see a backend and are byte-for-byte untouched.
#ifndef BOOTLEG_BACKEND_BACKEND_H_
#define BOOTLEG_BACKEND_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace bootleg::backend {

/// One frozen inference-path affine layer, registered with LoadModel so
/// quantizing backends can prepare packed copies ahead of traffic. The
/// tensors stay owned by the model; pointers must outlive the backend or be
/// re-registered (the model re-runs LoadModel after every weight reload).
struct FrozenWeight {
  std::string name;                        // diagnostic, e.g. "input_mlp.fc0"
  const tensor::Tensor* weight = nullptr;  // [in, out]
  const tensor::Tensor* bias = nullptr;    // [out]
};

/// Snapshot returned by Backend::stats(); feeds the backend.* gauges and the
/// serve stats op's "backend" block.
struct BackendStats {
  std::string name;            // "ref" | "simd" | "simd_q8"
  std::string isa;             // "scalar" | "avx2+fma" | "avx2+fma(fallback)"
  bool simd_active = false;    // AVX2 kernels actually selected
  int64_t quant_block = 0;     // values per q8 block (0: no quantization)
  int64_t quantized_tensors = 0;
  int64_t quantized_bytes = 0;     // packed int8 payload + scales
  double quant_max_abs_error = 0;  // max |w - dequant(quant(w))| over weights
  double quant_mean_abs_error = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Short stable identifier ("ref", "simd", "simd_q8").
  virtual const char* name() const = 0;

  /// load_model: snapshot/prepare the registered frozen weights. Reference
  /// and plain SIMD backends only record the inventory; the q8 backend packs
  /// per-block int8 copies here (quantize-at-freeze — this runs from
  /// PrepareFrozenInference / weight (re)load, never on the request path).
  /// Not thread-safe against concurrent forwards.
  virtual void LoadModel(const std::vector<FrozenWeight>& weights) = 0;

  // --- forward: the frozen-inference compute cores -------------------------
  // Contracts mirror the tensor:: kernels they replace; see tensor/tensor.h.

  /// x·W + bias with W [in,out], bias [out]. Backends holding a prepared
  /// (quantized) copy of `w` — matched by data pointer — may use it.
  virtual tensor::Tensor LinearForward(const tensor::Tensor& x,
                                       const tensor::Tensor& w,
                                       const tensor::Tensor& bias) const = 0;
  virtual tensor::Tensor MatMul(const tensor::Tensor& a,
                                const tensor::Tensor& b) const = 0;
  /// alpha * (a·bᵀ) — fuses the attention score scale into the epilogue.
  virtual tensor::Tensor ScaledMatMulTransposedB(const tensor::Tensor& a,
                                                 const tensor::Tensor& b,
                                                 float alpha) const = 0;
  virtual tensor::Tensor MatMulTransposedA(const tensor::Tensor& a,
                                           const tensor::Tensor& b) const = 0;
  /// Softmax is shared scalar code on every backend: its double-precision
  /// row sums and libm exp calls pin the rounding, so swapping it would break
  /// the bit-identity contract for no measurable win (it is a rounding-error
  /// sliver of inference time).
  virtual tensor::Tensor SoftmaxRows(const tensor::Tensor& a) const = 0;

  virtual BackendStats stats() const = 0;

  /// Factory for the --backend flag: "ref", "simd", "simd_q8".
  static util::StatusOr<std::shared_ptr<Backend>> Create(
      const std::string& spec);

  /// Process-wide ReferenceBackend used when a model has no explicit backend
  /// installed (training-adjacent PredictBatch callers). Stateless.
  static const Backend* ReferenceInstance();

  /// True when the AVX2/FMA kernels are compiled in, supported by this CPU,
  /// AND the bit-identity probe passes — i.e. "simd" will actually run SIMD.
  static bool SimdAvailable();
};

}  // namespace bootleg::backend

#endif  // BOOTLEG_BACKEND_BACKEND_H_

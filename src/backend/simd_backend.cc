#include "backend/simd_backend.h"

#include <cmath>
#include <cstring>

#include "backend/simd_kernels.h"
#include "backend/simd_primitives.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bootleg::backend {

namespace {

// Dispatch economics, mirrored from tensor/tensor.cc (see the comment there).
constexpr int64_t kParallelWork = 1 << 18;

int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1,
                           kParallelWork / std::max<int64_t>(1, work_per_row));
}

template <typename F>
void Dispatch(int64_t n, int64_t grain, F&& fn) {
  util::ThreadPool* pool = util::ThreadPool::Global();
  if (pool->WouldParallelize(n, grain)) {
    pool->ParallelFor(0, n, grain, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

bool BitEqual(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

}  // namespace

// --- SimdBackend -------------------------------------------------------------

bool SimdBackend::ProbeBitIdentity() {
  // The probe's verdict is a property of (binary, CPU): compute once.
  static const bool ok = [] {
    if (!simd::KernelsUsable()) return false;
    util::Rng rng(20260808);
    // MatMul / LinearForward shapes covering every internal branch: 16-wide
    // and 8-wide column blocks, scalar column tails, 4-row blocks plus row
    // tails, k % 4 tails inside the reference k-tiling, k crossing a kKTile
    // boundary, and the n < 8 matvec path the scorer uses.
    const int64_t mm_shapes[][3] = {
        {5, 67, 35}, {4, 64, 16}, {9, 64, 1}, {3, 33, 7}, {2, 5, 3},
        {6, 130, 24}, {1, 16, 40},
    };
    for (const auto& s : mm_shapes) {
      const tensor::Tensor a = tensor::Tensor::Randn({s[0], s[1]}, &rng, 1.0f);
      const tensor::Tensor b = tensor::Tensor::Randn({s[1], s[2]}, &rng, 1.0f);
      const tensor::Tensor bias = tensor::Tensor::Randn({s[2]}, &rng, 1.0f);
      if (!BitEqual(simd::MatMul(a, b), tensor::MatMul(a, b))) return false;
      if (!BitEqual(simd::LinearForward(a, b, bias),
                    tensor::AddRowBroadcast(tensor::MatMul(a, b), bias))) {
        return false;
      }
      const tensor::Tensor at = tensor::Tensor::Randn({s[1], s[0]}, &rng, 1.0f);
      if (!BitEqual(simd::MatMulTransposedA(at, b),
                    tensor::MatMulTransposedA(at, b))) {
        return false;
      }
    }
    // Transposed-B shapes: the 16-lane path with and without k-tails, the
    // short-k (< 16) branch, 4-column blocks plus column tails; each at
    // alpha = 1 (no epilogue) and attention-style alpha.
    const int64_t tb_shapes[][3] = {
        {5, 37, 9}, {3, 16, 5}, {4, 7, 3}, {2, 48, 2}, {7, 21, 13},
    };
    for (const auto& s : tb_shapes) {
      const tensor::Tensor a = tensor::Tensor::Randn({s[0], s[1]}, &rng, 1.0f);
      const tensor::Tensor b = tensor::Tensor::Randn({s[2], s[1]}, &rng, 1.0f);
      for (const float alpha : {1.0f, 0.25f, 0.57735f}) {
        tensor::Tensor ref = tensor::MatMulTransposedB(a, b);
        if (alpha != 1.0f) ref = tensor::Scale(ref, alpha);
        if (!BitEqual(simd::MatMulTransposedB(a, b, alpha), ref)) return false;
      }
    }
    return true;
  }();
  return ok;
}

SimdBackend::SimdBackend() : simd_active_(ProbeBitIdentity()) {}

void SimdBackend::LoadModel(const std::vector<FrozenWeight>& weights) {
  registered_weights_ = static_cast<int64_t>(weights.size());
}

tensor::Tensor SimdBackend::LinearForward(const tensor::Tensor& x,
                                          const tensor::Tensor& w,
                                          const tensor::Tensor& bias) const {
  if (simd_active_) return simd::LinearForward(x, w, bias);
  return tensor::AddRowBroadcast(tensor::MatMul(x, w), bias);
}

tensor::Tensor SimdBackend::MatMul(const tensor::Tensor& a,
                                   const tensor::Tensor& b) const {
  if (simd_active_) return simd::MatMul(a, b);
  return tensor::MatMul(a, b);
}

tensor::Tensor SimdBackend::ScaledMatMulTransposedB(const tensor::Tensor& a,
                                                    const tensor::Tensor& b,
                                                    float alpha) const {
  if (simd_active_) return simd::MatMulTransposedB(a, b, alpha);
  tensor::Tensor c = tensor::MatMulTransposedB(a, b);
  if (alpha != 1.0f) c = tensor::Scale(c, alpha);
  return c;
}

tensor::Tensor SimdBackend::MatMulTransposedA(const tensor::Tensor& a,
                                              const tensor::Tensor& b) const {
  if (simd_active_) return simd::MatMulTransposedA(a, b);
  return tensor::MatMulTransposedA(a, b);
}

tensor::Tensor SimdBackend::SoftmaxRows(const tensor::Tensor& a) const {
  return tensor::SoftmaxRows(a);
}

BackendStats SimdBackend::stats() const {
  BackendStats s;
  s.name = name();
  s.simd_active = simd_active_;
  s.isa = simd_active_
              ? (CpuHasAvx512() ? "avx2+fma+avx512f" : "avx2+fma")
              : (SimdCompiled() ? "avx2+fma(fallback)" : "scalar");
  return s;
}

// --- SimdQ8Backend -----------------------------------------------------------

void SimdQ8Backend::LoadModel(const std::vector<FrozenWeight>& weights) {
  SimdBackend::LoadModel(weights);
  prepared_.clear();
  quantized_bytes_ = 0;
  double err_sum = 0.0, err_max = 0.0;
  int64_t err_count = 0;
  std::vector<float> col;
  for (const FrozenWeight& fw : weights) {
    if (fw.weight == nullptr || fw.weight->dim() != 2) continue;
    const int64_t in = fw.weight->size(0), out = fw.weight->size(1);
    if (in <= 0 || out <= 0) continue;
    QuantLinear ql;
    ql.in = in;
    ql.out = out;
    ql.blocks = NumQ8Blocks(in);
    ql.name = fw.name;
    const int64_t padded = ql.blocks * kQ8Block;
    ql.q.assign(static_cast<size_t>(out * padded), 0);
    ql.scales.assign(static_cast<size_t>(out * ql.blocks), 0.0f);
    col.resize(static_cast<size_t>(in));
    const float* pw = fw.weight->data();
    // Pack W [in,out] as rows of W^T so each output's reduction is one
    // contiguous q8 row.
    for (int64_t o = 0; o < out; ++o) {
      for (int64_t r = 0; r < in; ++r) col[static_cast<size_t>(r)] = pw[r * out + o];
      int8_t* qrow = ql.q.data() + o * padded;
      float* srow = ql.scales.data() + o * ql.blocks;
      QuantizeBlocksQ8(col.data(), in, qrow, srow);
      for (int64_t r = 0; r < in; ++r) {
        const float dq =
            static_cast<float>(qrow[r]) * srow[r / kQ8Block];
        const double e = std::fabs(static_cast<double>(dq) -
                                   static_cast<double>(col[static_cast<size_t>(r)]));
        err_sum += e;
        if (e > err_max) err_max = e;
      }
      err_count += in;
    }
    quantized_bytes_ += static_cast<int64_t>(ql.q.size()) +
                        static_cast<int64_t>(ql.scales.size() * sizeof(float));
    prepared_.emplace(pw, std::move(ql));
  }
  quant_max_abs_error_ = err_max;
  quant_mean_abs_error_ = err_count > 0 ? err_sum / static_cast<double>(err_count) : 0.0;
}

tensor::Tensor SimdQ8Backend::LinearForward(const tensor::Tensor& x,
                                            const tensor::Tensor& w,
                                            const tensor::Tensor& bias) const {
  const auto it = prepared_.find(w.data());
  if (it == prepared_.end()) return SimdBackend::LinearForward(x, w, bias);
  const QuantLinear& ql = it->second;
  BOOTLEG_CHECK_EQ(x.dim(), 2);
  BOOTLEG_CHECK_EQ(x.size(1), ql.in);
  BOOTLEG_CHECK_EQ(bias.numel(), ql.out);
  const int64_t m = x.size(0), k = ql.in, n = ql.out;
  tensor::Tensor c({m, n});
  if (m == 0) return c;
  const int64_t bpr = ql.blocks;
  const int64_t padded = bpr * kQ8Block;
  const float* px = x.data();
  const float* pbias = bias.data();
  const int8_t* pq = ql.q.data();
  const float* ps = ql.scales.data();
  float* pc = c.data();
  Dispatch(m, RowGrain(k * n),
           [px, pbias, pq, ps, pc, k, n, bpr, padded](int64_t lo, int64_t hi) {
             // Per-chunk activation scratch: one quantized row at a time.
             std::vector<int8_t> qrow(static_cast<size_t>(padded));
             std::vector<float> srow(static_cast<size_t>(bpr));
             for (int64_t r = lo; r < hi; ++r) {
               QuantizeBlocksQ8(px + r * k, k, qrow.data(), srow.data());
               float* crow = pc + r * n;
               for (int64_t o = 0; o < n; ++o) {
                 crow[o] = DotQ8(qrow.data(), srow.data(), pq + o * padded,
                                 ps + o * bpr, bpr) +
                           pbias[o];
               }
             }
           });
  return c;
}

BackendStats SimdQ8Backend::stats() const {
  BackendStats s = SimdBackend::stats();
  s.name = name();
  s.quant_block = kQ8Block;
  s.quantized_tensors = static_cast<int64_t>(prepared_.size());
  s.quantized_bytes = quantized_bytes_;
  s.quant_max_abs_error = quant_max_abs_error_;
  s.quant_mean_abs_error = quant_mean_abs_error_;
  return s;
}

}  // namespace bootleg::backend

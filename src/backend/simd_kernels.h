// AVX2/FMA kernels for the frozen-inference compute cores. Each kernel
// reproduces the per-element accumulation order of its counterpart in
// tensor/tensor.cc (ascending-k fused multiply-add chains; the 16-lane
// tree-fold for transposed-B dots), so on a Release build — where the
// compiler contracts the reference kernels' mul+add into FMA — the results
// are bit-identical at every shape and thread count. SimdBackend verifies
// that property at construction with a runtime probe (see simd_backend.cc)
// and delegates to the reference kernels when it does not hold (portable
// builds, sanitizer builds compiled at -O1, CPUs without AVX2).
#ifndef BOOTLEG_BACKEND_SIMD_KERNELS_H_
#define BOOTLEG_BACKEND_SIMD_KERNELS_H_

#include "tensor/tensor.h"

namespace bootleg::backend::simd {

/// True when the binary carries the AVX2/FMA kernels and the CPU supports
/// them. Does NOT imply bit-identity with the reference kernels — that is
/// the probe's job.
bool KernelsUsable();

/// C = A·B. A [m,k], B [k,n].
tensor::Tensor MatMul(const tensor::Tensor& a, const tensor::Tensor& b);

/// C = alpha * (A·Bᵀ). A [m,k], B [n,k]. alpha == 1.0f skips the scaling
/// epilogue so the unscaled product matches tensor::MatMulTransposedB
/// bitwise; otherwise each element gets exactly one extra rounded multiply,
/// matching tensor::Scale applied afterwards.
tensor::Tensor MatMulTransposedB(const tensor::Tensor& a,
                                 const tensor::Tensor& b, float alpha);

/// C = Aᵀ·B. A [k,m], B [k,n].
tensor::Tensor MatMulTransposedA(const tensor::Tensor& a,
                                 const tensor::Tensor& b);

/// C = X·W + bias (row broadcast). X [m,k], W [k,n], bias [n]. The bias add
/// rides the matmul epilogue — same roundings as MatMul followed by
/// tensor::AddRowBroadcast, one fewer pass over C.
tensor::Tensor LinearForward(const tensor::Tensor& x, const tensor::Tensor& w,
                             const tensor::Tensor& bias);

}  // namespace bootleg::backend::simd

#endif  // BOOTLEG_BACKEND_SIMD_KERNELS_H_

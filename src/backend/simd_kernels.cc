#include "backend/simd_kernels.h"

#include <cmath>

#include "backend/simd_primitives.h"
#include "util/thread_pool.h"

namespace bootleg::backend::simd {

namespace {

// Same dispatch economics as tensor/tensor.cc: chunks below ~250k scalar ops
// lose more to the queue round-trip than they gain. The thresholds must match
// the reference kernels only in spirit — both partitions are row-wise and
// every kernel is partition-independent, so differing grains cannot change
// results, only scheduling.
constexpr int64_t kParallelWork = 1 << 18;

int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1,
                           kParallelWork / std::max<int64_t>(1, work_per_row));
}

template <typename F>
void Dispatch(int64_t n, int64_t grain, F&& fn) {
  util::ThreadPool* pool = util::ThreadPool::Global();
  if (pool->WouldParallelize(n, grain)) {
    pool->ParallelFor(0, n, grain, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

#if BOOTLEG_SIMD_AVX2

/// All n output columns for rows [i, i+RB) of C = A·B (+ optional bias).
/// Register tile: RB rows × 16 columns (2 ymm accumulators per row), one
/// ascending-k FMA chain per element — the same chain the contracted
/// reference kernel produces, without its per-k-tile memory round-trips.
/// Column tails drop to one ymm, then to std::fmaf scalar chains (fmaf is
/// correctly rounded, i.e. exactly vfmadd's scalar form). RB > 1 scalar
/// tails interleave independent row chains for ILP; per-element order is
/// untouched. Handles n < 8 entirely in the scalar tail (matvec scoring).
template <int RB>
void MatMulTile(const float* pa, const float* pb, const float* bias, float* pc,
                int64_t i, int64_t k, int64_t n) {
  const float* arow[RB];
  float* crow[RB];
  for (int r = 0; r < RB; ++r) {
    arow[r] = pa + (i + r) * k;
    crow[r] = pc + (i + r) * n;
  }
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc0[RB], acc1[RB];
    for (int r = 0; r < RB; ++r) {
      acc0[r] = _mm256_setzero_ps();
      acc1[r] = _mm256_setzero_ps();
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * n + j;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      for (int r = 0; r < RB; ++r) {
        const __m256 av = _mm256_set1_ps(arow[r][kk]);
        acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
        acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
      }
    }
    if (bias != nullptr) {
      const __m256 bv0 = _mm256_loadu_ps(bias + j);
      const __m256 bv1 = _mm256_loadu_ps(bias + j + 8);
      for (int r = 0; r < RB; ++r) {
        acc0[r] = _mm256_add_ps(acc0[r], bv0);
        acc1[r] = _mm256_add_ps(acc1[r], bv1);
      }
    }
    for (int r = 0; r < RB; ++r) {
      _mm256_storeu_ps(crow[r] + j, acc0[r]);
      _mm256_storeu_ps(crow[r] + j + 8, acc1[r]);
    }
  }
  if (j + 8 <= n) {
    __m256 acc[RB];
    for (int r = 0; r < RB; ++r) acc[r] = _mm256_setzero_ps();
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 b0 = _mm256_loadu_ps(pb + kk * n + j);
      for (int r = 0; r < RB; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(arow[r][kk]), b0, acc[r]);
      }
    }
    if (bias != nullptr) {
      const __m256 bv = _mm256_loadu_ps(bias + j);
      for (int r = 0; r < RB; ++r) acc[r] = _mm256_add_ps(acc[r], bv);
    }
    for (int r = 0; r < RB; ++r) _mm256_storeu_ps(crow[r] + j, acc[r]);
    j += 8;
  }
  for (; j < n; ++j) {
    float acc[RB] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
      const float bv = pb[kk * n + j];
      for (int r = 0; r < RB; ++r) acc[r] = std::fmaf(arow[r][kk], bv, acc[r]);
    }
    for (int r = 0; r < RB; ++r) {
      crow[r][j] = bias != nullptr ? acc[r] + bias[j] : acc[r];
    }
  }
}

/// 6 rows × 16 columns with individually named accumulators: the array form
/// above makes GCC spill the accumulator file to the stack inside the k loop;
/// 12 named __m256 + two B panels + one broadcast fit the 16 ymm registers
/// exactly and sustain ~2 FMA/cycle. Same ascending-k chains as the template.
void MatMulTile6x16(const float* pa, const float* pb, const float* bias,
                    float* pc, int64_t i, int64_t j, int64_t k, int64_t n) {
  const float* a0 = pa + i * k;
  const float* a1 = a0 + k;
  const float* a2 = a1 + k;
  const float* a3 = a2 + k;
  const float* a4 = a3 + k;
  const float* a5 = a4 + k;
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = pb + kk * n + j;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av;
    av = _mm256_set1_ps(a0[kk]);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_set1_ps(a1[kk]);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_set1_ps(a2[kk]);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_set1_ps(a3[kk]);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_set1_ps(a4[kk]);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_set1_ps(a5[kk]);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  if (bias != nullptr) {
    const __m256 bv0 = _mm256_loadu_ps(bias + j);
    const __m256 bv1 = _mm256_loadu_ps(bias + j + 8);
    c00 = _mm256_add_ps(c00, bv0);
    c01 = _mm256_add_ps(c01, bv1);
    c10 = _mm256_add_ps(c10, bv0);
    c11 = _mm256_add_ps(c11, bv1);
    c20 = _mm256_add_ps(c20, bv0);
    c21 = _mm256_add_ps(c21, bv1);
    c30 = _mm256_add_ps(c30, bv0);
    c31 = _mm256_add_ps(c31, bv1);
    c40 = _mm256_add_ps(c40, bv0);
    c41 = _mm256_add_ps(c41, bv1);
    c50 = _mm256_add_ps(c50, bv0);
    c51 = _mm256_add_ps(c51, bv1);
  }
  float* crow = pc + i * n + j;
  _mm256_storeu_ps(crow, c00);
  _mm256_storeu_ps(crow + 8, c01);
  crow += n;
  _mm256_storeu_ps(crow, c10);
  _mm256_storeu_ps(crow + 8, c11);
  crow += n;
  _mm256_storeu_ps(crow, c20);
  _mm256_storeu_ps(crow + 8, c21);
  crow += n;
  _mm256_storeu_ps(crow, c30);
  _mm256_storeu_ps(crow + 8, c31);
  crow += n;
  _mm256_storeu_ps(crow, c40);
  _mm256_storeu_ps(crow + 8, c41);
  crow += n;
  _mm256_storeu_ps(crow, c50);
  _mm256_storeu_ps(crow + 8, c51);
}

/// Columns [j0, n) of rows [i, i+6): the 8-wide and scalar column tails,
/// via the template tile's tail logic run on a 6-row block.
template <int RB>
void MatMulColsTail(const float* pa, const float* pb, const float* bias,
                    float* pc, int64_t i, int64_t j0, int64_t k, int64_t n) {
  const float* arow[RB];
  float* crow[RB];
  for (int r = 0; r < RB; ++r) {
    arow[r] = pa + (i + r) * k;
    crow[r] = pc + (i + r) * n;
  }
  int64_t j = j0;
  if (j + 8 <= n) {
    __m256 acc[RB];
    for (int r = 0; r < RB; ++r) acc[r] = _mm256_setzero_ps();
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 b0 = _mm256_loadu_ps(pb + kk * n + j);
      for (int r = 0; r < RB; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(arow[r][kk]), b0, acc[r]);
      }
    }
    if (bias != nullptr) {
      const __m256 bv = _mm256_loadu_ps(bias + j);
      for (int r = 0; r < RB; ++r) acc[r] = _mm256_add_ps(acc[r], bv);
    }
    for (int r = 0; r < RB; ++r) _mm256_storeu_ps(crow[r] + j, acc[r]);
    j += 8;
  }
  for (; j < n; ++j) {
    float acc[RB] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
      const float bv = pb[kk * n + j];
      for (int r = 0; r < RB; ++r) acc[r] = std::fmaf(arow[r][kk], bv, acc[r]);
    }
    for (int r = 0; r < RB; ++r) {
      crow[r][j] = bias != nullptr ? acc[r] + bias[j] : acc[r];
    }
  }
}

void MatMulRowsYmm(const float* pa, const float* pb, const float* bias,
                   float* pc, int64_t i0, int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + 6 <= i1; i += 6) {
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) MatMulTile6x16(pa, pb, bias, pc, i, j, k, n);
    if (j < n) MatMulColsTail<6>(pa, pb, bias, pc, i, j, k, n);
  }
  for (; i + 4 <= i1; i += 4) MatMulTile<4>(pa, pb, bias, pc, i, k, n);
  for (; i < i1; ++i) MatMulTile<1>(pa, pb, bias, pc, i, k, n);
}

#if BOOTLEG_SIMD_AVX512

/// 8 rows × 32 columns in zmm registers (16 named accumulators + 2 B panels
/// + 1 broadcast = 19 of 32 zmm). Vector width does not touch rounding:
/// each element is still one ascending-k FMA chain, so 512-bit results
/// equal the 256-bit and contracted-scalar ones bitwise. With two 512-bit
/// FMA pipes this roughly doubles flops/cycle over the ymm tile; 16 FMAs
/// per two B-panel loads keeps the loop FMA-bound even when the unaligned
/// 64-byte loads split cache lines, and 8-row blocks tile the common
/// power-of-two row counts exactly (no scalar row tail at m = 128).
void MatMulTile8x32(const float* pa, const float* pb, const float* bias,
                    float* pc, int64_t i, int64_t j, int64_t k, int64_t n) {
  const float* a0 = pa + i * k;
  const float* a1 = a0 + k;
  const float* a2 = a1 + k;
  const float* a3 = a2 + k;
  const float* a4 = a3 + k;
  const float* a5 = a4 + k;
  const float* a6 = a5 + k;
  const float* a7 = a6 + k;
  __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
  __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
  __m512 c20 = _mm512_setzero_ps(), c21 = _mm512_setzero_ps();
  __m512 c30 = _mm512_setzero_ps(), c31 = _mm512_setzero_ps();
  __m512 c40 = _mm512_setzero_ps(), c41 = _mm512_setzero_ps();
  __m512 c50 = _mm512_setzero_ps(), c51 = _mm512_setzero_ps();
  __m512 c60 = _mm512_setzero_ps(), c61 = _mm512_setzero_ps();
  __m512 c70 = _mm512_setzero_ps(), c71 = _mm512_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = pb + kk * n + j;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
    __m512 av;
    av = _mm512_set1_ps(a0[kk]);
    c00 = _mm512_fmadd_ps(av, b0, c00);
    c01 = _mm512_fmadd_ps(av, b1, c01);
    av = _mm512_set1_ps(a1[kk]);
    c10 = _mm512_fmadd_ps(av, b0, c10);
    c11 = _mm512_fmadd_ps(av, b1, c11);
    av = _mm512_set1_ps(a2[kk]);
    c20 = _mm512_fmadd_ps(av, b0, c20);
    c21 = _mm512_fmadd_ps(av, b1, c21);
    av = _mm512_set1_ps(a3[kk]);
    c30 = _mm512_fmadd_ps(av, b0, c30);
    c31 = _mm512_fmadd_ps(av, b1, c31);
    av = _mm512_set1_ps(a4[kk]);
    c40 = _mm512_fmadd_ps(av, b0, c40);
    c41 = _mm512_fmadd_ps(av, b1, c41);
    av = _mm512_set1_ps(a5[kk]);
    c50 = _mm512_fmadd_ps(av, b0, c50);
    c51 = _mm512_fmadd_ps(av, b1, c51);
    av = _mm512_set1_ps(a6[kk]);
    c60 = _mm512_fmadd_ps(av, b0, c60);
    c61 = _mm512_fmadd_ps(av, b1, c61);
    av = _mm512_set1_ps(a7[kk]);
    c70 = _mm512_fmadd_ps(av, b0, c70);
    c71 = _mm512_fmadd_ps(av, b1, c71);
  }
  if (bias != nullptr) {
    const __m512 bv0 = _mm512_loadu_ps(bias + j);
    const __m512 bv1 = _mm512_loadu_ps(bias + j + 16);
    c00 = _mm512_add_ps(c00, bv0);
    c01 = _mm512_add_ps(c01, bv1);
    c10 = _mm512_add_ps(c10, bv0);
    c11 = _mm512_add_ps(c11, bv1);
    c20 = _mm512_add_ps(c20, bv0);
    c21 = _mm512_add_ps(c21, bv1);
    c30 = _mm512_add_ps(c30, bv0);
    c31 = _mm512_add_ps(c31, bv1);
    c40 = _mm512_add_ps(c40, bv0);
    c41 = _mm512_add_ps(c41, bv1);
    c50 = _mm512_add_ps(c50, bv0);
    c51 = _mm512_add_ps(c51, bv1);
    c60 = _mm512_add_ps(c60, bv0);
    c61 = _mm512_add_ps(c61, bv1);
    c70 = _mm512_add_ps(c70, bv0);
    c71 = _mm512_add_ps(c71, bv1);
  }
  float* crow = pc + i * n + j;
  _mm512_storeu_ps(crow, c00);
  _mm512_storeu_ps(crow + 16, c01);
  crow += n;
  _mm512_storeu_ps(crow, c10);
  _mm512_storeu_ps(crow + 16, c11);
  crow += n;
  _mm512_storeu_ps(crow, c20);
  _mm512_storeu_ps(crow + 16, c21);
  crow += n;
  _mm512_storeu_ps(crow, c30);
  _mm512_storeu_ps(crow + 16, c31);
  crow += n;
  _mm512_storeu_ps(crow, c40);
  _mm512_storeu_ps(crow + 16, c41);
  crow += n;
  _mm512_storeu_ps(crow, c50);
  _mm512_storeu_ps(crow + 16, c51);
  crow += n;
  _mm512_storeu_ps(crow, c60);
  _mm512_storeu_ps(crow + 16, c61);
  crow += n;
  _mm512_storeu_ps(crow, c70);
  _mm512_storeu_ps(crow + 16, c71);
}

/// 8 rows × 16 columns, one zmm accumulator per row.
void MatMulTile8x16z(const float* pa, const float* pb, const float* bias,
                     float* pc, int64_t i, int64_t j, int64_t k, int64_t n) {
  const float* a0 = pa + i * k;
  const float* a1 = a0 + k;
  const float* a2 = a1 + k;
  const float* a3 = a2 + k;
  const float* a4 = a3 + k;
  const float* a5 = a4 + k;
  const float* a6 = a5 + k;
  const float* a7 = a6 + k;
  __m512 c0 = _mm512_setzero_ps();
  __m512 c1 = _mm512_setzero_ps();
  __m512 c2 = _mm512_setzero_ps();
  __m512 c3 = _mm512_setzero_ps();
  __m512 c4 = _mm512_setzero_ps();
  __m512 c5 = _mm512_setzero_ps();
  __m512 c6 = _mm512_setzero_ps();
  __m512 c7 = _mm512_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    const __m512 b0 = _mm512_loadu_ps(pb + kk * n + j);
    c0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[kk]), b0, c0);
    c1 = _mm512_fmadd_ps(_mm512_set1_ps(a1[kk]), b0, c1);
    c2 = _mm512_fmadd_ps(_mm512_set1_ps(a2[kk]), b0, c2);
    c3 = _mm512_fmadd_ps(_mm512_set1_ps(a3[kk]), b0, c3);
    c4 = _mm512_fmadd_ps(_mm512_set1_ps(a4[kk]), b0, c4);
    c5 = _mm512_fmadd_ps(_mm512_set1_ps(a5[kk]), b0, c5);
    c6 = _mm512_fmadd_ps(_mm512_set1_ps(a6[kk]), b0, c6);
    c7 = _mm512_fmadd_ps(_mm512_set1_ps(a7[kk]), b0, c7);
  }
  if (bias != nullptr) {
    const __m512 bv = _mm512_loadu_ps(bias + j);
    c0 = _mm512_add_ps(c0, bv);
    c1 = _mm512_add_ps(c1, bv);
    c2 = _mm512_add_ps(c2, bv);
    c3 = _mm512_add_ps(c3, bv);
    c4 = _mm512_add_ps(c4, bv);
    c5 = _mm512_add_ps(c5, bv);
    c6 = _mm512_add_ps(c6, bv);
    c7 = _mm512_add_ps(c7, bv);
  }
  _mm512_storeu_ps(pc + (i + 0) * n + j, c0);
  _mm512_storeu_ps(pc + (i + 1) * n + j, c1);
  _mm512_storeu_ps(pc + (i + 2) * n + j, c2);
  _mm512_storeu_ps(pc + (i + 3) * n + j, c3);
  _mm512_storeu_ps(pc + (i + 4) * n + j, c4);
  _mm512_storeu_ps(pc + (i + 5) * n + j, c5);
  _mm512_storeu_ps(pc + (i + 6) * n + j, c6);
  _mm512_storeu_ps(pc + (i + 7) * n + j, c7);
}

void MatMulRowsZmm(const float* pa, const float* pb, const float* bias,
                   float* pc, int64_t i0, int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    int64_t j = 0;
    for (; j + 32 <= n; j += 32) MatMulTile8x32(pa, pb, bias, pc, i, j, k, n);
    if (j + 16 <= n) {
      MatMulTile8x16z(pa, pb, bias, pc, i, j, k, n);
      j += 16;
    }
    if (j < n) MatMulColsTail<8>(pa, pb, bias, pc, i, j, k, n);
  }
  for (; i + 4 <= i1; i += 4) MatMulTile<4>(pa, pb, bias, pc, i, k, n);
  for (; i < i1; ++i) MatMulTile<1>(pa, pb, bias, pc, i, k, n);
}
#endif  // BOOTLEG_SIMD_AVX512

/// Row-range entry point: picks the widest tile the CPU supports. The choice
/// is cached process-wide and cannot affect results — only speed.
void MatMulRows(const float* pa, const float* pb, const float* bias, float* pc,
                int64_t i0, int64_t i1, int64_t k, int64_t n) {
#if BOOTLEG_SIMD_AVX512
  if (CpuHasAvx512() && n >= 16) {
    MatMulRowsZmm(pa, pb, bias, pc, i0, i1, k, n);
    return;
  }
#endif
  MatMulRowsYmm(pa, pb, bias, pc, i0, i1, k, n);
}

/// Rows [i, i+RB) of C = Aᵀ·B for A [k,m]: MatMulTile with the reduction
/// walking A down a column (stride m).
template <int RB>
void MatMulTATile(const float* pa, const float* pb, float* pc, int64_t i,
                  int64_t k, int64_t m, int64_t n) {
  float* crow[RB];
  for (int r = 0; r < RB; ++r) crow[r] = pc + (i + r) * n;
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[RB];
    for (int r = 0; r < RB; ++r) acc[r] = _mm256_setzero_ps();
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 b0 = _mm256_loadu_ps(pb + kk * n + j);
      const float* acol = pa + kk * m + i;
      for (int r = 0; r < RB; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(acol[r]), b0, acc[r]);
      }
    }
    for (int r = 0; r < RB; ++r) _mm256_storeu_ps(crow[r] + j, acc[r]);
  }
  for (; j < n; ++j) {
    float acc[RB] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
      const float bv = pb[kk * n + j];
      const float* acol = pa + kk * m + i;
      for (int r = 0; r < RB; ++r) acc[r] = std::fmaf(acol[r], bv, acc[r]);
    }
    for (int r = 0; r < RB; ++r) crow[r][j] = acc[r];
  }
}

void MatMulTARows(const float* pa, const float* pb, float* pc, int64_t i0,
                  int64_t i1, int64_t k, int64_t m, int64_t n) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) MatMulTATile<4>(pa, pb, pc, i, k, m, n);
  for (; i < i1; ++i) MatMulTATile<1>(pa, pb, pc, i, k, m, n);
}

/// One output row of C = A·Bᵀ, k >= 16, JB columns at a time. Mirrors the
/// reference 16-lane accumulator exactly: acc_lo lane p sums kk ≡ p (mod 16),
/// acc_hi lane p sums kk ≡ p+8, the fold below is the reference's fixed
/// 16→8→4→2→1 halving expressed as vector adds, and the k-tail is a scalar
/// FMA chain folded in last.
template <int JB>
void MatMulTBTile(const float* arow, const float* pb, float* crow, int64_t j,
                  int64_t k, float alpha) {
  const float* brow[JB];
  for (int c = 0; c < JB; ++c) brow[c] = pb + (j + c) * k;
  __m256 lo[JB], hi[JB];
  for (int c = 0; c < JB; ++c) {
    lo[c] = _mm256_setzero_ps();
    hi[c] = _mm256_setzero_ps();
  }
  int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    const __m256 a0 = _mm256_loadu_ps(arow + kk);
    const __m256 a1 = _mm256_loadu_ps(arow + kk + 8);
    for (int c = 0; c < JB; ++c) {
      lo[c] = _mm256_fmadd_ps(a0, _mm256_loadu_ps(brow[c] + kk), lo[c]);
      hi[c] = _mm256_fmadd_ps(a1, _mm256_loadu_ps(brow[c] + kk + 8), hi[c]);
    }
  }
  for (int c = 0; c < JB; ++c) {
    float tail = 0.0f;
    for (int64_t kt = kk; kt < k; ++kt) {
      tail = std::fmaf(arow[kt], brow[c][kt], tail);
    }
    const __m256 v = _mm256_add_ps(lo[c], hi[c]);  // lanes[l] += lanes[l+8]
    __m128 x = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));  // += lanes[l+4]
    x = _mm_add_ps(x, _mm_movehl_ps(x, x));              // += lanes[l+2]
    const float pair0 = _mm_cvtss_f32(x);
    const float pair1 = _mm_cvtss_f32(_mm_shuffle_ps(x, x, 0x1));
    float out = (pair0 + pair1) + tail;
    if (alpha != 1.0f) out *= alpha;
    crow[j + c] = out;
  }
}

void MatMulTBRows(const float* pa, const float* pb, float* pc, int64_t i0,
                  int64_t i1, int64_t k, int64_t n, float alpha) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) MatMulTBTile<4>(arow, pb, crow, j, k, alpha);
    for (; j < n; ++j) MatMulTBTile<1>(arow, pb, crow, j, k, alpha);
  }
}

#endif  // BOOTLEG_SIMD_AVX2

}  // namespace

bool KernelsUsable() { return SimdCompiled() && CpuHasAvx2Fma(); }

tensor::Tensor MatMul(const tensor::Tensor& a, const tensor::Tensor& b) {
#if BOOTLEG_SIMD_AVX2
  if (CpuHasAvx2Fma()) {
    BOOTLEG_CHECK_EQ(a.dim(), 2);
    BOOTLEG_CHECK_EQ(b.dim(), 2);
    const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
    BOOTLEG_CHECK_EQ(k, b.size(0));
    tensor::Tensor c({m, n});
    if (m == 0 || k == 0 || n == 0) return c;
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    Dispatch(m, RowGrain(k * n), [pa, pb, pc, k, n](int64_t i0, int64_t i1) {
      MatMulRows(pa, pb, nullptr, pc, i0, i1, k, n);
    });
    return c;
  }
#endif
  return tensor::MatMul(a, b);
}

tensor::Tensor MatMulTransposedB(const tensor::Tensor& a,
                                 const tensor::Tensor& b, float alpha) {
#if BOOTLEG_SIMD_AVX2
  // k < 16 takes the reference's short-reduction branch, whose exact rounding
  // sequence is a compiler artifact (SLP-vectorized without contraction) that
  // is not worth replicating: the inference path's only transposed-B shapes
  // are attention scores with k = head_dim >= 16.
  if (CpuHasAvx2Fma() && a.size(1) >= 16) {
    BOOTLEG_CHECK_EQ(a.dim(), 2);
    BOOTLEG_CHECK_EQ(b.dim(), 2);
    const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
    BOOTLEG_CHECK_EQ(k, b.size(1));
    tensor::Tensor c({m, n});
    if (m == 0 || k == 0 || n == 0) return c;
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    Dispatch(m, RowGrain(k * n),
             [pa, pb, pc, k, n, alpha](int64_t i0, int64_t i1) {
               MatMulTBRows(pa, pb, pc, i0, i1, k, n, alpha);
             });
    return c;
  }
#endif
  tensor::Tensor c = tensor::MatMulTransposedB(a, b);
  if (alpha != 1.0f) c = tensor::Scale(c, alpha);
  return c;
}

tensor::Tensor MatMulTransposedA(const tensor::Tensor& a,
                                 const tensor::Tensor& b) {
#if BOOTLEG_SIMD_AVX2
  if (CpuHasAvx2Fma()) {
    BOOTLEG_CHECK_EQ(a.dim(), 2);
    BOOTLEG_CHECK_EQ(b.dim(), 2);
    const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
    BOOTLEG_CHECK_EQ(k, b.size(0));
    tensor::Tensor c({m, n});
    if (m == 0 || k == 0 || n == 0) return c;
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    Dispatch(m, RowGrain(k * n),
             [pa, pb, pc, k, m, n](int64_t i0, int64_t i1) {
               MatMulTARows(pa, pb, pc, i0, i1, k, m, n);
             });
    return c;
  }
#endif
  return tensor::MatMulTransposedA(a, b);
}

tensor::Tensor LinearForward(const tensor::Tensor& x, const tensor::Tensor& w,
                             const tensor::Tensor& bias) {
#if BOOTLEG_SIMD_AVX2
  if (CpuHasAvx2Fma()) {
    BOOTLEG_CHECK_EQ(x.dim(), 2);
    BOOTLEG_CHECK_EQ(w.dim(), 2);
    const int64_t m = x.size(0), k = x.size(1), n = w.size(1);
    BOOTLEG_CHECK_EQ(k, w.size(0));
    BOOTLEG_CHECK_EQ(bias.numel(), n);
    tensor::Tensor c({m, n});
    if (m == 0 || n == 0) return c;
    const float* px = x.data();
    const float* pw = w.data();
    const float* pbv = bias.data();
    float* pc = c.data();
    if (k == 0) {
      // Degenerate reduction: C is the broadcast bias.
      for (int64_t i = 0; i < m; ++i) {
        std::memcpy(pc + i * n, pbv, sizeof(float) * static_cast<size_t>(n));
      }
      return c;
    }
    Dispatch(m, RowGrain(k * n),
             [px, pw, pbv, pc, k, n](int64_t i0, int64_t i1) {
               MatMulRows(px, pw, pbv, pc, i0, i1, k, n);
             });
    return c;
  }
#endif
  return tensor::AddRowBroadcast(tensor::MatMul(x, w), bias);
}

}  // namespace bootleg::backend::simd

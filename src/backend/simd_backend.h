// SimdBackend (float AVX2/FMA kernels behind a bit-identity probe) and
// SimdQ8Backend (block-int8 quantized Linear forwards on top of it).
#ifndef BOOTLEG_BACKEND_SIMD_BACKEND_H_
#define BOOTLEG_BACKEND_SIMD_BACKEND_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/backend.h"

namespace bootleg::backend {

/// Float inference backend. Construction runs a bit-identity probe: every
/// SIMD kernel is exercised against its tensor:: counterpart on shapes that
/// cover all internal branches (16/8-wide column blocks, scalar column tails,
/// k-tails, the short-k transposed-B branch, matvec n<8, fused bias and
/// scale epilogues). Any bitwise mismatch — e.g. a sanitizer build compiled
/// at -O1 where the reference kernels were not FMA-contracted — permanently
/// downgrades the instance to delegating at the tensor:: layer, so forwards
/// are bit-identical to ReferenceBackend under every build and on every CPU.
class SimdBackend : public Backend {
 public:
  SimdBackend();

  const char* name() const override { return "simd"; }
  void LoadModel(const std::vector<FrozenWeight>& weights) override;
  tensor::Tensor LinearForward(const tensor::Tensor& x, const tensor::Tensor& w,
                               const tensor::Tensor& bias) const override;
  tensor::Tensor MatMul(const tensor::Tensor& a,
                        const tensor::Tensor& b) const override;
  tensor::Tensor ScaledMatMulTransposedB(const tensor::Tensor& a,
                                         const tensor::Tensor& b,
                                         float alpha) const override;
  tensor::Tensor MatMulTransposedA(const tensor::Tensor& a,
                                   const tensor::Tensor& b) const override;
  tensor::Tensor SoftmaxRows(const tensor::Tensor& a) const override;
  BackendStats stats() const override;

  bool simd_active() const { return simd_active_; }

  /// The probe, exposed for tests: true iff the compiled SIMD kernels exist,
  /// run on this CPU, and reproduce the reference kernels bit-for-bit.
  static bool ProbeBitIdentity();

 protected:
  bool simd_active_ = false;  // fixed at construction
  int64_t registered_weights_ = 0;
};

/// SimdBackend plus q8 Linear forwards: LoadModel packs every registered
/// weight matrix into transposed block-int8 form (rows of W^T, kQ8Block
/// values per f32 scale, partial tail blocks zero-padded); LinearForward
/// quantizes activations per row on the fly and reduces through the
/// int8×int8→int32 dot core. Unregistered weights fall back to the float
/// path. Prepared tensors are keyed by weight data pointer and rebuilt on
/// every LoadModel, making hot reload safe; the map is read-only during
/// serving so concurrent forwards need no locking.
class SimdQ8Backend : public SimdBackend {
 public:
  const char* name() const override { return "simd_q8"; }
  void LoadModel(const std::vector<FrozenWeight>& weights) override;
  tensor::Tensor LinearForward(const tensor::Tensor& x, const tensor::Tensor& w,
                               const tensor::Tensor& bias) const override;
  BackendStats stats() const override;

 private:
  struct QuantLinear {
    int64_t in = 0;
    int64_t out = 0;
    int64_t blocks = 0;             // q8 blocks per W^T row
    std::vector<int8_t> q;          // [out, blocks*kQ8Block]
    std::vector<float> scales;      // [out, blocks]
    std::string name;
  };

  std::unordered_map<const float*, QuantLinear> prepared_;
  int64_t quantized_bytes_ = 0;
  double quant_max_abs_error_ = 0;
  double quant_mean_abs_error_ = 0;
};

}  // namespace bootleg::backend

#endif  // BOOTLEG_BACKEND_SIMD_BACKEND_H_

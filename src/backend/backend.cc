#include "backend/backend.h"

#include "backend/simd_backend.h"

namespace bootleg::backend {

namespace {

/// Shim over the tensor:: kernels — the permanent oracle. Composition order
/// matches the pre-backend call sites exactly (MatMul then AddRowBroadcast;
/// MatMulTransposedB then Scale), so installing "ref" changes nothing but
/// the virtual dispatch.
class ReferenceBackend : public Backend {
 public:
  const char* name() const override { return "ref"; }

  void LoadModel(const std::vector<FrozenWeight>& weights) override {
    registered_weights_ = static_cast<int64_t>(weights.size());
  }

  tensor::Tensor LinearForward(const tensor::Tensor& x, const tensor::Tensor& w,
                               const tensor::Tensor& bias) const override {
    return tensor::AddRowBroadcast(tensor::MatMul(x, w), bias);
  }
  tensor::Tensor MatMul(const tensor::Tensor& a,
                        const tensor::Tensor& b) const override {
    return tensor::MatMul(a, b);
  }
  tensor::Tensor ScaledMatMulTransposedB(const tensor::Tensor& a,
                                         const tensor::Tensor& b,
                                         float alpha) const override {
    tensor::Tensor c = tensor::MatMulTransposedB(a, b);
    if (alpha != 1.0f) c = tensor::Scale(c, alpha);
    return c;
  }
  tensor::Tensor MatMulTransposedA(const tensor::Tensor& a,
                                   const tensor::Tensor& b) const override {
    return tensor::MatMulTransposedA(a, b);
  }
  tensor::Tensor SoftmaxRows(const tensor::Tensor& a) const override {
    return tensor::SoftmaxRows(a);
  }

  BackendStats stats() const override {
    BackendStats s;
    s.name = name();
    s.isa = "scalar";
    s.simd_active = false;
    s.quantized_tensors = 0;
    (void)registered_weights_;
    return s;
  }

 private:
  int64_t registered_weights_ = 0;
};

}  // namespace

util::StatusOr<std::shared_ptr<Backend>> Backend::Create(
    const std::string& spec) {
  if (spec.empty() || spec == "ref") {
    return std::shared_ptr<Backend>(new ReferenceBackend());
  }
  if (spec == "simd") {
    return std::shared_ptr<Backend>(new SimdBackend());
  }
  if (spec == "simd_q8") {
    return std::shared_ptr<Backend>(new SimdQ8Backend());
  }
  return util::Status::InvalidArgument("unknown backend '" + spec +
                                       "' (expected ref | simd | simd_q8)");
}

const Backend* Backend::ReferenceInstance() {
  static const ReferenceBackend* kInstance = new ReferenceBackend();
  return kInstance;
}

bool Backend::SimdAvailable() { return SimdBackend::ProbeBitIdentity(); }

}  // namespace bootleg::backend

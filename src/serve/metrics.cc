#include "serve/metrics.h"

namespace bootleg::serve {

namespace {

// 1-2-5 ladder: 1, 2, 5, 10, 20, 50, ... 100'000'000 µs (24 finite bounds),
// plus one overflow bucket.
constexpr int64_t kBounds[LatencyHistogram::kNumBuckets - 1] = {
    1,       2,       5,        10,       20,       50,
    100,     200,     500,      1000,     2000,     5000,
    10000,   20000,   50000,    100000,   200000,   500000,
    1000000, 2000000, 5000000,  10000000, 20000000, 100000000};

int BucketFor(int64_t micros) {
  for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    if (micros <= kBounds[i]) return i;
  }
  return LatencyHistogram::kNumBuckets - 1;
}

}  // namespace

LatencyHistogram::LatencyHistogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[static_cast<size_t>(BucketFor(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
}

int64_t LatencyHistogram::PercentileUs(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t counts[kNumBuckets];
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Rank of the q-quantile observation (1-based, ceiling).
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketBoundUs(i);
  }
  return BucketBoundUs(kNumBuckets - 1);
}

double LatencyHistogram::MeanUs() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_us()) / static_cast<double>(n);
}

int64_t LatencyHistogram::BucketBoundUs(int i) {
  if (i < 0) i = 0;
  if (i >= kNumBuckets - 1) return kBounds[kNumBuckets - 2];
  return kBounds[i];
}

}  // namespace bootleg::serve

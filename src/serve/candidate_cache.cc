#include "serve/candidate_cache.h"

namespace bootleg::serve {

CandidateCache::CandidateCache(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

bool CandidateCache::Lookup(const kb::CandidateMap& map,
                            const std::string& alias, CachedCandidates* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(alias);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // move to front
      *out = it->second->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  const std::vector<kb::Candidate>* cands = map.Lookup(alias);
  // Tokens outside Γ are not candidate lookups at all — they are neither
  // cached nor counted, so garbage tokens can't distort the hit rate.
  if (cands == nullptr || cands->empty()) return false;
  CachedCandidates fresh;
  fresh.entities.reserve(cands->size());
  fresh.priors.reserve(cands->size());
  for (const kb::Candidate& c : *cands) {
    fresh.entities.push_back(c.entity);
    fresh.priors.push_back(c.prior);
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Another thread may have inserted the same alias while we were reading
  // the map; the entry is already in (and served from) the cache, so that
  // counts as a hit — a miss is recorded only on an actual insert below.
  // Either way the caller's copy is made exactly once, from the canonical
  // cached entry (`fresh` is moved in, never copied twice).
  auto it = index_.find(alias);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->second;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  lru_.emplace_front(alias, std::move(fresh));
  index_[alias] = lru_.begin();
  *out = lru_.front().second;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return true;
}

bool CandidateCache::Invalidate(const std::string& alias) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(alias);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void CandidateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t CandidateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace bootleg::serve

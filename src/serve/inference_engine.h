#ifndef BOOTLEG_SERVE_INFERENCE_ENGINE_H_
#define BOOTLEG_SERVE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/example.h"
#include "kb/candidate_map.h"
#include "kb/kb.h"
#include "serve/candidate_cache.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace bootleg::serve {

/// How the engine finds its weights. Exactly one of `model_path` (a
/// ParameterStore snapshot, as written by `bootleg_cli train`) or
/// `checkpoint_dir` (a training checkpoint directory; the newest readable
/// checkpoint wins, corrupt ones are skipped) must be set.
struct EngineOptions {
  std::string data_dir;        // kb.bin / candidates.bin / vocab.bin
  std::string model_path;      // snapshot file (frozen deployment)
  std::string checkpoint_dir;  // checkpoint directory (hot-reloadable)
  std::string ablation = "full";  // config preset: full|ent|type|kg
  size_t cache_capacity = 4096;   // candidate cache, in aliases
};

/// One disambiguated mention in a served sentence.
struct ServedMention {
  std::string alias;
  int64_t span_start = 0;
  int64_t span_end = 0;
  kb::EntityId entity = kb::kInvalidId;
  std::string title;        // KB title of the predicted entity
  float prior = 0.0f;       // Γ prior of the predicted candidate
  int64_t num_candidates = 0;
};

struct SentenceResult {
  std::vector<ServedMention> mentions;
};

/// Frozen-model inference engine: loads the KB, candidate map, vocabulary
/// and a weight snapshot once, precomputes the model's frozen per-entity
/// feature table, and serves batched forward-only predictions.
///
/// Thread-safety: Disambiguate/PredictExamples may run concurrently from any
/// number of threads, each with its own InferenceScratch — the model is
/// read-only between reloads and the candidate cache locks internally.
/// Reload() mutates the weights and must be externally serialized against
/// in-flight inference (the micro-batcher does this between batches).
class InferenceEngine {
 public:
  static util::StatusOr<std::unique_ptr<InferenceEngine>> Create(
      const EngineOptions& options);

  /// Re-resolves the newest readable checkpoint and swaps the weights in,
  /// then refreezes the per-entity feature table. No-op (OK) when the newest
  /// checkpoint is the one already loaded. FailedPrecondition when the
  /// engine was created from a fixed model_path instead of a checkpoint dir.
  util::Status Reload();

  /// Tokenizes each text, extracts alias mentions through the candidate
  /// cache, and disambiguates all texts in one batched forward pass.
  std::vector<SentenceResult> Disambiguate(
      const std::vector<std::string>& texts,
      core::BootlegModel::InferenceScratch* scratch);

  /// Raw batched prediction over prebuilt examples (the equivalence-test
  /// surface): returns exactly what model().Predict would per example.
  std::vector<std::vector<int64_t>> PredictExamples(
      const std::vector<const data::SentenceExample*>& batch,
      core::BootlegModel::InferenceScratch* scratch) const;

  core::BootlegModel& model() { return *model_; }
  CandidateCache& cache() { return cache_; }
  const kb::KnowledgeBase& kb() const { return kb_; }
  const kb::CandidateMap& candidates() const { return candidates_; }
  const text::Vocabulary& vocab() const { return vocab_; }

  /// Path of the weights currently serving (snapshot or checkpoint file).
  const std::string& loaded_path() const { return loaded_path_; }

 private:
  InferenceEngine(const EngineOptions& options, size_t cache_capacity);

  util::Status Initialize();

  EngineOptions options_;
  kb::KnowledgeBase kb_;
  kb::CandidateMap candidates_;
  text::Vocabulary vocab_;
  std::unique_ptr<core::BootlegModel> model_;
  CandidateCache cache_;
  std::string loaded_path_;
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_INFERENCE_ENGINE_H_

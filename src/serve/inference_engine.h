#ifndef BOOTLEG_SERVE_INFERENCE_ENGINE_H_
#define BOOTLEG_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/model.h"
#include "data/example.h"
#include "data/mention_extractor.h"
#include "index/live_index.h"
#include "kb/candidate_map.h"
#include "kb/kb.h"
#include "serve/candidate_cache.h"
#include "store/embedding_store.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace bootleg::serve {

/// How the engine finds its weights. Exactly one of `model_path` (a
/// ParameterStore snapshot, as written by `bootleg_cli train`) or
/// `checkpoint_dir` (a training checkpoint directory; the newest readable
/// checkpoint wins, corrupt ones are skipped) must be set.
struct EngineOptions {
  std::string data_dir;        // kb.bin / candidates.bin / vocab.bin
  std::string model_path;      // snapshot file (frozen deployment)
  std::string checkpoint_dir;  // checkpoint directory (hot-reloadable)
  std::string ablation = "full";  // config preset: full|ent|type|kg
  size_t cache_capacity = 4096;   // candidate cache, in aliases
  /// Optional embedding-store directory (written by `bootleg_cli
  /// export-store`). When set, the frozen per-entity features are served
  /// from the newest memory-mapped store generation under this directory
  /// instead of being recomputed into the heap, and the entity embedding
  /// table is released after load. Requires model_path (the store snapshots
  /// one fixed set of weights); incompatible with checkpoint_dir. Reload()
  /// then re-scans for a newer store generation instead of newer weights.
  std::string store_dir;
  /// Inference backend: "ref" (scalar reference kernels), "simd" (runtime-
  /// dispatched AVX2/FMA kernels, bit-identical to ref), or "simd_q8" (SIMD
  /// plus block-int8 quantized frozen weights — argmax-stable, not
  /// bit-identical). See backend/backend.h.
  std::string backend = "ref";
  /// Hot-set residency budget for the mapped store, in bytes. When > 0 (and
  /// store_dir is set), each adopted generation runs a popularity-clock
  /// residency manager: batch-ahead MADV_WILLNEED of the shards a gather
  /// touches, a background sweep that MADV_DONTNEEDs cold shards to keep the
  /// advised resident set within budget (the Zipf head stays pinned), and a
  /// post-swap warm-up of hot shards. 0 = unmanaged mmap (kernel decides).
  /// Purely advisory: replies are bit-identical to the unmanaged path.
  int64_t resident_budget_bytes = 0;
  /// Residency clock-sweep cadence in milliseconds.
  int64_t resident_sweep_ms = 1000;
  /// Automatic compaction watermark (store deployments): when adopting a
  /// generation whose delta chain is at least this many deltas deep, run
  /// index::Compact in-process and adopt the flat result. Runs on the reload
  /// path, which the batcher already serializes through its exclusive lane,
  /// so compaction never overlaps an in-flight batch. 0 disables (operator-
  /// triggered compaction only).
  int64_t compact_chain_depth = 0;
  /// Route unknown tokens through the vocabulary's single-edit typo fallback
  /// (Vocabulary::IdWithTypoFallback) when encoding served text, so a typo'd
  /// token recovers the clean word embedding instead of [UNK]. Clean text
  /// encodes bit-identically with the flag on or off.
  bool char_fallback = false;
};

/// One unit of batched serving work. A pre-segmented item (`raw_text`
/// false — the classic `disambiguate` op) is treated as a single sentence.
/// A raw item (`disambiguate_text`) is sentence-split and mention-extracted
/// inside the engine; its mentions carry document-level token spans and a
/// sentence index. `deadline` rides along so the engine can abandon a batch
/// whose members all expired mid-compute.
struct BatchItem {
  std::string text;
  bool raw_text = false;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// One disambiguated mention in a served sentence.
struct ServedMention {
  std::string alias;
  int64_t span_start = 0;  // document-level token span (inclusive)
  int64_t span_end = 0;
  kb::EntityId entity = kb::kInvalidId;
  std::string title;        // KB title of the predicted entity
  float prior = 0.0f;       // Γ prior of the predicted candidate
  int64_t num_candidates = 0;
  /// Which sentence of the request the mention fell in (always 0 for
  /// pre-segmented `disambiguate` requests).
  int64_t sentence_index = 0;
};

struct SentenceResult {
  std::vector<ServedMention> mentions;
};

/// Frozen-model inference engine: loads the KB, candidate map, vocabulary
/// and a weight snapshot once, precomputes the model's frozen per-entity
/// feature table, and serves batched forward-only predictions.
///
/// Thread-safety: Disambiguate/PredictExamples may run concurrently from any
/// number of threads, each with its own InferenceScratch — the model is
/// read-only between reloads and the candidate cache locks internally.
/// Reload() mutates the weights and must be externally serialized against
/// in-flight inference (the micro-batcher does this between batches).
class InferenceEngine {
 public:
  static util::StatusOr<std::unique_ptr<InferenceEngine>> Create(
      const EngineOptions& options);

  /// Checkpoint deployments: re-resolves the newest readable checkpoint and
  /// swaps the weights in, then refreezes the per-entity feature table.
  /// Store deployments: re-scans store_dir for a newer generation and swaps
  /// the mapped store in (the old generation unmaps once swapped). No-op
  /// (OK) when already serving the newest checkpoint/generation.
  /// FailedPrecondition for a fixed model_path deployment with no store.
  util::Status Reload();

  /// Live index mutation (store deployments only): induces an embedding for
  /// a never-trained entity from its types and relations, publishes it as an
  /// incremental store generation chained onto the current one, and adopts
  /// the new generation in-process — no SIGHUP, no retrain, no re-export.
  /// The entity's `title_token_id` is resolved here from the vocabulary.
  /// Must be externally serialized against in-flight inference and reloads
  /// (the server runs it through MicroBatcher::SubmitExclusive). On error
  /// nothing is adopted and the previous generation keeps serving.
  util::Status AddEntityLive(index::DeltaEntity entity);

  /// Tokenizes each text, extracts alias mentions through the candidate
  /// cache, and disambiguates all texts in one batched forward pass.
  /// Convenience wrapper over DisambiguateBatch with pre-segmented items.
  std::vector<SentenceResult> Disambiguate(
      const std::vector<std::string>& texts,
      core::BootlegModel::InferenceScratch* scratch);

  /// The full batched serving surface: pre-segmented sentences and raw
  /// documents mixed in one batch, one PredictBatch forward pass for every
  /// extracted mention of every item. Raw items are sentence-split on
  /// terminal punctuation tokens (`.` `?` `!`) and mention-extracted per
  /// sentence via the greedy leftmost-longest scan of data::MentionExtractor
  /// through the candidate cache; their mentions report document-level spans
  /// plus the sentence index. A single-sentence raw item yields results
  /// byte-identical to the same text submitted pre-segmented.
  ///
  /// Deadline reclaim: when every item carries a real deadline, the model
  /// polls the latest of them between forward stages; a batch whose members
  /// all expired mid-compute is abandoned and an EMPTY vector returned —
  /// the batcher completes each member with DeadlineExceeded and counts the
  /// reclaim. A non-empty return always has one result per item.
  std::vector<SentenceResult> DisambiguateBatch(
      const std::vector<BatchItem>& items,
      core::BootlegModel::InferenceScratch* scratch);

  /// Raw batched prediction over prebuilt examples (the equivalence-test
  /// surface): returns exactly what model().Predict would per example.
  std::vector<std::vector<int64_t>> PredictExamples(
      const std::vector<const data::SentenceExample*>& batch,
      core::BootlegModel::InferenceScratch* scratch) const;

  core::BootlegModel& model() { return *model_; }
  CandidateCache& cache() { return cache_; }
  const kb::KnowledgeBase& kb() const { return kb_; }
  const kb::CandidateMap& candidates() const { return candidates_; }
  const text::Vocabulary& vocab() const { return vocab_; }

  /// Path of the weights currently serving (snapshot or checkpoint file).
  const std::string& loaded_path() const { return loaded_path_; }

  /// Snapshot of the mapped embedding store serving frozen features, or
  /// nullptr when the engine computes them into the heap (no store_dir).
  /// Returns a shared_ptr so callers on connection threads keep the mapped
  /// generation alive even if Reload() swaps a newer one in concurrently —
  /// never hold a raw pointer across a reload boundary.
  std::shared_ptr<const store::EmbeddingStore> entity_store() const {
    std::lock_guard<std::mutex> lock(store_mu_);
    return entity_store_;
  }
  /// Store generation currently serving (-1 without a store).
  int64_t store_generation() const {
    std::lock_guard<std::mutex> lock(store_mu_);
    return store_generation_;
  }
  /// Store and its generation read atomically under one lock, so a stats
  /// reader racing a generation swap never pairs the old mapping with the
  /// new generation number (or vice versa).
  std::pair<std::shared_ptr<const store::EmbeddingStore>, int64_t>
  store_snapshot() const {
    std::lock_guard<std::mutex> lock(store_mu_);
    return {entity_store_, store_generation_};
  }

  /// Entities added to this process through the delta chain (live adds plus
  /// deltas replayed from disk at adoption time).
  int64_t induced_entities() const {
    std::lock_guard<std::mutex> lock(store_mu_);
    return induced_entities_;
  }

  /// Chain compactions fired by the --compact_chain_depth watermark.
  int64_t auto_compactions() const {
    std::lock_guard<std::mutex> lock(store_mu_);
    return auto_compactions_;
  }

 private:
  InferenceEngine(const EngineOptions& options, size_t cache_capacity);

  util::Status Initialize();
  /// Opens the newest generation under options_.store_dir and points the
  /// model's frozen gather path at it. Publishes store gauges on success.
  util::Status AdoptNewestStoreGeneration();
  /// Publishes the backend.* gauges from the active backend's stats().
  void PublishBackendGauges() const;

  EngineOptions options_;
  kb::KnowledgeBase kb_;
  kb::CandidateMap candidates_;
  text::Vocabulary vocab_;
  std::unique_ptr<core::BootlegModel> model_;
  CandidateCache cache_;
  /// Greedy leftmost-longest scanner over candidates_; rebuilt whenever a
  /// delta commit can grow the longest alias (its n-gram window bound).
  std::unique_ptr<data::MentionExtractor> extractor_;
  std::string loaded_path_;
  /// Title token id per KB entity (use_title_feature configs); grows as
  /// delta-chain entities are applied, mirrored into the model.
  std::vector<int64_t> title_token_ids_;
  /// Guards entity_store_/store_generation_/induced_entities_: written by
  /// the reload path (batcher worker / Initialize), read by stats on
  /// connection threads.
  mutable std::mutex store_mu_;
  std::shared_ptr<store::EmbeddingStore> entity_store_;
  int64_t store_generation_ = -1;
  int64_t induced_entities_ = 0;
  int64_t auto_compactions_ = 0;
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_INFERENCE_ENGINE_H_

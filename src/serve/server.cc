#include "serve/server.h"

#include <chrono>
#include <future>
#include <utility>

#include "backend/backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "util/logging.h"

namespace bootleg::serve {

namespace {

/// Every failure reply carries a machine-readable "code" so load-test
/// harnesses and clients can classify rejections without parsing prose.
std::string ErrorReply(const std::string& code, const std::string& what) {
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(false));
  reply.Set("code", Json::Str(code));
  reply.Set("error", Json::Str(what));
  return reply.Dump();
}

/// Maps a batcher status onto the wire code.
std::string StatusCodeString(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kUnavailable:
      return "overloaded";
    case util::StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    default:
      return "error";
  }
}

std::string MentionsReply(const SentenceResult& result) {
  Json mentions = Json::Array();
  for (const ServedMention& m : result.mentions) {
    Json jm = Json::Object();
    jm.Set("alias", Json::Str(m.alias));
    Json span = Json::Array();
    span.Append(Json::Number(static_cast<double>(m.span_start)));
    span.Append(Json::Number(static_cast<double>(m.span_end)));
    jm.Set("span", std::move(span));
    jm.Set("entity", Json::Number(static_cast<double>(m.entity)));
    jm.Set("title", Json::Str(m.title));
    jm.Set("prior", Json::Number(static_cast<double>(m.prior)));
    jm.Set("candidates", Json::Number(static_cast<double>(m.num_candidates)));
    jm.Set("sentence", Json::Number(static_cast<double>(m.sentence_index)));
    mentions.Append(std::move(jm));
  }
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(true));
  reply.Set("mentions", std::move(mentions));
  return reply.Dump();
}

}  // namespace

Server::Server(InferenceEngine* engine, MicroBatcher* batcher,
               ServerCounters* counters, LatencyHistogram* latency,
               ServerOptions options)
    : engine_(engine),
      batcher_(batcher),
      counters_(counters),
      latency_(latency),
      options_(options) {}

Server::~Server() { Stop(); }

std::string Server::HandleLine(const std::string& line) {
  // Blocking façade over the async path so stdio and tests share the exact
  // protocol (admission control and deadline shedding included).
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  HandleLineAsync(line,
                  [promise](std::string reply) { promise->set_value(std::move(reply)); });
  return future.get();
}

void Server::HandleLineAsync(std::string line, Done done) {
  // Peer-less transports (stdio, in-process tests) carry local privileges.
  net::PeerInfo loopback;
  loopback.loopback = true;
  loopback.address = "stdio";
  HandleLineFrom(std::move(line), loopback, std::move(done));
}

void Server::HandleLineFrom(std::string line, const net::PeerInfo& peer,
                            Done done) {
  OBS_SPAN("serve.request");
  util::StatusOr<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    done(ErrorReply("bad_request",
                    "bad request: " + parsed.status().ToString()));
    return;
  }
  const Json& request = parsed.value();
  if (!request.is_object()) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    done(ErrorReply("bad_request", "bad request: expected a JSON object"));
    return;
  }
  const std::string op = request.GetString("op");
  if (op == "disambiguate") {
    HandleDisambiguate(request, /*raw_text=*/false, std::move(done));
    return;
  }
  if (op == "disambiguate_text") {
    HandleDisambiguate(request, /*raw_text=*/true, std::move(done));
    return;
  }
  if (op == "add_entity") {
    HandleAddEntity(request, peer, std::move(done));
    return;
  }
  done(HandleControl(request, op));
}

void Server::HandleDisambiguate(const Json& request, bool raw_text,
                                Done done) {
  const Json* text = request.Find("text");
  if (text == nullptr || !text->is_string()) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    done(ErrorReply("bad_request",
                    "disambiguate requires a string \"text\" field"));
    return;
  }

  // Optional client latency budget, milliseconds from now. The budget rides
  // into the batcher queue; if it expires before dispatch the request is
  // shed instead of batched.
  auto deadline = MicroBatcher::kNoDeadline;
  if (const Json* dl = request.Find("deadline_ms"); dl != nullptr) {
    if (!dl->is_number() || dl->number_value() <= 0) {
      if (counters_ != nullptr) {
        counters_->errors.fetch_add(1, std::memory_order_relaxed);
      }
      done(ErrorReply("bad_request",
                      "\"deadline_ms\" must be a positive number"));
      return;
    }
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(
                   static_cast<int64_t>(dl->number_value() * 1000.0));
  }

  // Admission control: when the batcher queue is already at the watermark,
  // refuse up front with a structured reply instead of queueing work the
  // server cannot finish in time. Cheaper than a shed (no queue churn) and
  // an unambiguous back-off signal for clients.
  const size_t watermark = options_.admission_watermark != 0
                               ? options_.admission_watermark
                               : batcher_->max_queue();
  if (batcher_->queue_depth() >= watermark) {
    if (counters_ != nullptr) {
      counters_->overloaded.fetch_add(1, std::memory_order_relaxed);
    }
    done(ErrorReply("overloaded",
                    "admission control: queue depth at watermark (" +
                        std::to_string(watermark) + "); retry later"));
    return;
  }

  const auto start = std::chrono::steady_clock::now();
  LatencyHistogram* latency = latency_;
  batcher_->SubmitAsync(
      text->string_value(), raw_text, deadline,
      [latency, start, done = std::move(done)](
          util::StatusOr<SentenceResult> result) {
        if (latency != nullptr) {
          latency->Record(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
        if (!result.ok()) {
          done(ErrorReply(StatusCodeString(result.status()),
                          result.status().ToString()));
          return;
        }
        done(MentionsReply(result.value()));
      });
}

void Server::HandleAddEntity(const Json& request, const net::PeerInfo& peer,
                             Done done) {
  // Authorization is transport-level: only a peer the kernel says is
  // loopback (or an in-process/stdio caller) may mutate the index.
  if (!peer.loopback) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    done(ErrorReply("forbidden",
                    "add_entity is restricted to loopback peers (peer \"" +
                        peer.address + "\")"));
    return;
  }
  if (engine_ == nullptr) {
    done(ErrorReply("error", "add_entity requires a serving engine"));
    return;
  }

  // Parse the spec, resolving every name against the serving KB up front so
  // the client gets a field-specific bad_request instead of a failed
  // exclusive task.
  std::string bad;
  index::DeltaEntity spec;
  spec.title = request.GetString("title");
  if (spec.title.empty()) bad = "add_entity requires a string \"title\"";

  const std::string coarse_name = request.GetString("coarse", "miscellaneous");
  if (bad.empty()) {
    const auto coarse = kb::CoarseTypeFromName(coarse_name);
    if (!coarse.has_value()) {
      bad = "unknown coarse type \"" + coarse_name + "\"";
    } else {
      spec.coarse = *coarse;
    }
  }

  const std::string gender = request.GetString("gender", "n");
  if (bad.empty()) {
    if (gender != "m" && gender != "f" && gender != "n") {
      bad = "\"gender\" must be \"m\", \"f\" or \"n\"";
    } else {
      spec.gender = gender[0];
    }
  }

  const kb::KnowledgeBase& kb = engine_->kb();
  if (const Json* types = request.Find("types");
      bad.empty() && types != nullptr) {
    if (!types->is_array()) bad = "\"types\" must be an array of type names";
    for (const Json& t : types->array_items()) {
      if (!bad.empty()) break;
      if (!t.is_string()) {
        bad = "\"types\" must be an array of type names";
        break;
      }
      const kb::TypeId id = kb.FindTypeByName(t.string_value());
      if (id == kb::kInvalidId) {
        bad = "unknown type \"" + t.string_value() + "\"";
        break;
      }
      spec.types.push_back(id);
    }
  }

  if (const Json* rels = request.Find("relations");
      bad.empty() && rels != nullptr) {
    if (!rels->is_array()) {
      bad = "\"relations\" must be an array of {relation, object} objects";
    }
    for (const Json& r : rels->array_items()) {
      if (!bad.empty()) break;
      if (!r.is_object()) {
        bad = "\"relations\" entries must be {relation, object} objects";
        break;
      }
      const std::string rel_name = r.GetString("relation");
      const std::string obj_title = r.GetString("object");
      const kb::RelationId rel = kb.FindRelationByName(rel_name);
      if (rel == kb::kInvalidId) {
        bad = "unknown relation \"" + rel_name + "\"";
        break;
      }
      const kb::EntityId obj = kb.FindByTitle(obj_title);
      if (obj == kb::kInvalidId) {
        bad = "unknown object entity \"" + obj_title + "\"";
        break;
      }
      spec.triples.push_back({rel, obj});
    }
  }

  if (const Json* aliases = request.Find("aliases");
      bad.empty() && aliases != nullptr) {
    if (!aliases->is_array()) {
      bad = "\"aliases\" must be an array of {alias, prior} objects";
    }
    for (const Json& a : aliases->array_items()) {
      if (!bad.empty()) break;
      if (!a.is_object() || a.GetString("alias").empty()) {
        bad = "\"aliases\" entries must be {alias, prior} objects";
        break;
      }
      index::DeltaAlias da;
      da.alias = a.GetString("alias");
      da.prior = static_cast<float>(a.GetNumber("prior", 0.5));
      spec.aliases.push_back(std::move(da));
    }
  }
  if (bad.empty() && spec.aliases.empty()) {
    // Minimal usable spec: the title itself is the alias.
    spec.aliases.push_back({spec.title, 0.5f});
  }
  if (!bad.empty()) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    done(ErrorReply("bad_request", bad));
    return;
  }

  // The mutation itself runs in the batcher's exclusive lane: no batch is in
  // flight while the KB, candidate map and store view change, and concurrent
  // requests simply order around it.
  InferenceEngine* engine = engine_;
  ServerCounters* counters = counters_;
  batcher_->SubmitExclusive(
      [engine, spec]() mutable {
        return engine->AddEntityLive(std::move(spec));
      },
      [engine, counters, done = std::move(done)](util::Status st) {
        if (!st.ok()) {
          if (counters != nullptr) {
            counters->errors.fetch_add(1, std::memory_order_relaxed);
          }
          const util::StatusCode code = st.code();
          const bool client_fault =
              code == util::StatusCode::kInvalidArgument ||
              code == util::StatusCode::kNotFound ||
              code == util::StatusCode::kFailedPrecondition;
          done(ErrorReply(client_fault ? "bad_request" : "error",
                          st.ToString()));
          return;
        }
        Json reply = Json::Object();
        reply.Set("ok", Json::Bool(true));
        reply.Set("status", Json::Str("entity added"));
        reply.Set("generation",
                  Json::Number(static_cast<double>(engine->store_generation())));
        reply.Set("induced_entities",
                  Json::Number(static_cast<double>(engine->induced_entities())));
        done(reply.Dump());
      });
}

std::string Server::HandleControl(const Json& request, const std::string& op) {
  (void)request;
  if (op == "health") {
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("status", Json::Str("serving"));
    reply.Set("model",
              Json::Str(engine_ != nullptr ? engine_->loaded_path() : ""));
    return reply.Dump();
  }
  if (op == "stats") return StatsReply();
  if (op == "reload") {
    batcher_->RequestReload();
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("status", Json::Str("reload requested"));
    return reply.Dump();
  }
  if (counters_ != nullptr) {
    counters_->errors.fetch_add(1, std::memory_order_relaxed);
  }
  return ErrorReply("bad_request", "unknown op: \"" + op + "\"");
}

std::string Server::StatsReply() {
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(true));
  if (counters_ != nullptr) {
    reply.Set("requests", Json::Number(static_cast<double>(
                              counters_->requests.load(std::memory_order_relaxed))));
    reply.Set("rejected", Json::Number(static_cast<double>(
                              counters_->rejected.load(std::memory_order_relaxed))));
    reply.Set("overloaded",
              Json::Number(static_cast<double>(
                  counters_->overloaded.load(std::memory_order_relaxed))));
    reply.Set("shed", Json::Number(static_cast<double>(
                          counters_->shed.load(std::memory_order_relaxed))));
    reply.Set("reclaimed",
              Json::Number(static_cast<double>(
                  counters_->reclaimed.load(std::memory_order_relaxed))));
    reply.Set("errors", Json::Number(static_cast<double>(
                            counters_->errors.load(std::memory_order_relaxed))));
    reply.Set("batches", Json::Number(static_cast<double>(
                             counters_->batches.load(std::memory_order_relaxed))));
    reply.Set("mean_batch", Json::Number(counters_->MeanBatchSize()));
    reply.Set("reloads", Json::Number(static_cast<double>(
                             counters_->reloads.load(std::memory_order_relaxed))));
  }
  if (engine_ != nullptr) {
    const CandidateCache& cache = engine_->cache();
    reply.Set("cache_hits", Json::Number(static_cast<double>(cache.hits())));
    reply.Set("cache_misses", Json::Number(static_cast<double>(cache.misses())));
    const double lookups = static_cast<double>(cache.hits() + cache.misses());
    reply.Set("cache_hit_rate",
              Json::Number(lookups == 0.0 ? 0.0
                                          : static_cast<double>(cache.hits()) /
                                                lookups));
  }
  if (latency_ != nullptr) {
    Json lat = Json::Object();
    lat.Set("count", Json::Number(static_cast<double>(latency_->count())));
    lat.Set("mean_us", Json::Number(latency_->MeanUs()));
    lat.Set("p50_us", Json::Number(static_cast<double>(latency_->PercentileUs(0.50))));
    lat.Set("p95_us", Json::Number(static_cast<double>(latency_->PercentileUs(0.95))));
    lat.Set("p99_us", Json::Number(static_cast<double>(latency_->PercentileUs(0.99))));
    reply.Set("latency", std::move(lat));
  }

  // Transport health: the front end's own counters, plus connection gauges
  // mirrored into the global registry so `--trace_out` exports see them.
  if (front_end_ != nullptr) {
    const net::FrontEndStats fs = front_end_->stats();
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("serve.connections")
        ->Set(static_cast<double>(fs.active_connections));
    registry.GetGauge("serve.accepted_total")
        ->Set(static_cast<double>(fs.accepted));
    Json jnet = Json::Object();
    jnet.Set("connections",
             Json::Number(static_cast<double>(fs.active_connections)));
    jnet.Set("accepted", Json::Number(static_cast<double>(fs.accepted)));
    jnet.Set("rejected_connections",
             Json::Number(static_cast<double>(fs.rejected_connections)));
    jnet.Set("accept_errors",
             Json::Number(static_cast<double>(fs.accept_errors)));
    jnet.Set("overlong_line_disconnects",
             Json::Number(static_cast<double>(fs.overlong_line_disconnects)));
    jnet.Set("slow_client_disconnects",
             Json::Number(static_cast<double>(fs.slow_client_disconnects)));
    jnet.Set("idle_disconnects",
             Json::Number(static_cast<double>(fs.idle_disconnects)));
    registry.GetGauge("net.idle_disconnects")
        ->Set(static_cast<double>(fs.idle_disconnects));
    reply.Set("net", std::move(jnet));
  }

  // Process-wide observability: the metrics registry federated with this
  // server's own counters (which stay instance-local so multiple servers
  // in one process — as in tests and benches — never share request counts).
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  Json jregistry = Json::Object();
  Json jcounters = Json::Object();
  for (const auto& [name, value] : registry.CounterValues()) {
    jcounters.Set(name, Json::Number(static_cast<double>(value)));
  }
  jregistry.Set("counters", std::move(jcounters));
  Json jgauges = Json::Object();
  for (const auto& [name, value] : registry.GaugeValues()) {
    jgauges.Set(name, Json::Number(value));
  }
  jregistry.Set("gauges", std::move(jgauges));
  Json jhists = Json::Object();
  for (const auto& [name, snap] : registry.HistogramValues()) {
    Json jh = Json::Object();
    jh.Set("count", Json::Number(static_cast<double>(snap.count)));
    jh.Set("mean_us", Json::Number(snap.mean_us));
    jh.Set("p50_us", Json::Number(static_cast<double>(snap.p50_us)));
    jh.Set("p95_us", Json::Number(static_cast<double>(snap.p95_us)));
    jh.Set("p99_us", Json::Number(static_cast<double>(snap.p99_us)));
    jhists.Set(name, std::move(jh));
  }
  jregistry.Set("histograms", std::move(jhists));
  reply.Set("registry", std::move(jregistry));

  Json jspans = Json::Array();
  for (const obs::SpanSummary& s : obs::Trace::Summaries()) {
    Json js = Json::Object();
    js.Set("span", Json::Str(s.name));
    js.Set("count", Json::Number(static_cast<double>(s.count)));
    js.Set("total_us", Json::Number(static_cast<double>(s.total_us)));
    js.Set("mean_us", Json::Number(s.mean_us));
    js.Set("p50_us", Json::Number(static_cast<double>(s.p50_us)));
    js.Set("p95_us", Json::Number(static_cast<double>(s.p95_us)));
    js.Set("p99_us", Json::Number(static_cast<double>(s.p99_us)));
    js.Set("max_us", Json::Number(static_cast<double>(s.max_us)));
    jspans.Append(std::move(js));
  }
  reply.Set("spans", std::move(jspans));

  reply.Set("model",
            Json::Str(engine_ != nullptr ? engine_->loaded_path() : ""));

  if (engine_ != nullptr) {
    // Embedding-store deployments report the serving generation so reload
    // drills can confirm a SIGHUP swap landed without dropping requests.
    // The shared_ptr snapshot pins the mapped generation for the duration of
    // this reply even if the batcher swaps in a newer one mid-read.
    const auto [es, store_generation] = engine_->store_snapshot();
    if (es != nullptr) {
      Json jstore = Json::Object();
      jstore.Set("generation",
                 Json::Number(static_cast<double>(store_generation)));
      jstore.Set("resident_shards",
                 Json::Number(static_cast<double>(es->num_shards())));
      jstore.Set("mapped_bytes",
                 Json::Number(static_cast<double>(es->mapped_bytes())));
      jstore.Set("dir", Json::Str(es->dir()));
      if (const store::TableInfo* t = es->FindTable("static")) {
        jstore.Set("dtype", Json::Str(store::DtypeName(t->dtype)));
        jstore.Set("quant_max_abs_error", Json::Number(t->max_abs_error));
      }
      jstore.Set("induced_entities",
                 Json::Number(static_cast<double>(engine_->induced_entities())));
      jstore.Set("auto_compactions",
                 Json::Number(static_cast<double>(engine_->auto_compactions())));
      // Hot-set residency rows (present only under --resident_budget_mb):
      // the advised resident set next to the mapped ceiling above, plus the
      // advisory event counters.
      if (es->residency() != nullptr) {
        const store::ResidencyStats rs = es->residency_stats();
        jstore.Set("resident_budget_bytes",
                   Json::Number(static_cast<double>(rs.budget_bytes)));
        jstore.Set("resident_bytes",
                   Json::Number(static_cast<double>(rs.resident_bytes)));
        jstore.Set("resident_set_shards",
                   Json::Number(static_cast<double>(rs.resident_shards)));
        jstore.Set("prefetch_issued",
                   Json::Number(static_cast<double>(rs.prefetch_issued)));
        jstore.Set("evictions",
                   Json::Number(static_cast<double>(rs.evictions)));
        jstore.Set("cold_faults",
                   Json::Number(static_cast<double>(rs.cold_faults)));
        jstore.Set("sweeps", Json::Number(static_cast<double>(rs.sweeps)));
      }
      reply.Set("store", std::move(jstore));
    }

    // Active inference backend, next to the store block it complements:
    // which kernels serve the frozen compute, and how lossy the quantized
    // weight copies are (zeros for non-quantizing backends).
    const backend::BackendStats bs =
        engine_->model().inference_backend()->stats();
    Json jbackend = Json::Object();
    jbackend.Set("name", Json::Str(bs.name));
    jbackend.Set("isa", Json::Str(bs.isa));
    jbackend.Set("simd_active", Json::Bool(bs.simd_active));
    jbackend.Set("quant_block",
                 Json::Number(static_cast<double>(bs.quant_block)));
    jbackend.Set("quantized_tensors",
                 Json::Number(static_cast<double>(bs.quantized_tensors)));
    jbackend.Set("quantized_bytes",
                 Json::Number(static_cast<double>(bs.quantized_bytes)));
    jbackend.Set("quant_max_abs_error",
                 Json::Number(bs.quant_max_abs_error));
    jbackend.Set("quant_mean_abs_error",
                 Json::Number(bs.quant_mean_abs_error));
    reply.Set("backend", std::move(jbackend));
  }
  return reply.Dump();
}

std::string Server::TransportErrorReply(net::TransportError error) {
  switch (error) {
    case net::TransportError::kLineTooLong:
      if (counters_ != nullptr) {
        counters_->errors.fetch_add(1, std::memory_order_relaxed);
      }
      return ErrorReply("line_too_long",
                        "request line exceeds " +
                            std::to_string(options_.max_line_bytes) +
                            " bytes; closing connection");
    case net::TransportError::kTooManyInflight:
      if (counters_ != nullptr) {
        counters_->overloaded.fetch_add(1, std::memory_order_relaxed);
      }
      return ErrorReply("too_many_inflight",
                        "per-connection pipeline cap (" +
                            std::to_string(options_.max_inflight_per_conn) +
                            " in flight) exceeded; request dropped");
    case net::TransportError::kServerFull:
      return ErrorReply("server_full",
                        "connection limit (" +
                            std::to_string(options_.max_conns) +
                            ") reached; try again later");
  }
  return ErrorReply("error", "transport error");
}

util::Status Server::Start(int port) {
  net::FrontEndOptions fopts;
  fopts.port = port;
  fopts.io_threads = options_.io_threads;
  fopts.max_conns = options_.max_conns;
  fopts.max_line_bytes = options_.max_line_bytes;
  fopts.write_buf_bytes = options_.write_buf_bytes;
  fopts.max_inflight_per_conn = options_.max_inflight_per_conn;
  fopts.idle_timeout_ms = options_.idle_timeout_ms;
  front_end_ = std::make_unique<net::FrontEnd>(fopts, this);
  const util::Status st = front_end_->Start();
  if (!st.ok()) {
    front_end_.reset();
    return st;
  }
  port_ = front_end_->port();
  return util::Status::OK();
}

void Server::Stop() {
  if (front_end_ != nullptr) front_end_->Stop();
}

void Server::RunStdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (poll_hook_) poll_hook_();
    if (line.empty()) continue;
    out << HandleLine(line) << "\n";
    out.flush();
  }
}

}  // namespace bootleg::serve

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "backend/backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "util/logging.h"

namespace bootleg::serve {

namespace {

std::string ErrorReply(const std::string& what) {
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(false));
  reply.Set("error", Json::Str(what));
  return reply.Dump();
}

}  // namespace

Server::Server(InferenceEngine* engine, MicroBatcher* batcher,
               ServerCounters* counters, LatencyHistogram* latency)
    : engine_(engine),
      batcher_(batcher),
      counters_(counters),
      latency_(latency) {}

Server::~Server() { Stop(); }

std::string Server::HandleLine(const std::string& line) {
  OBS_SPAN("serve.request");
  util::StatusOr<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorReply("bad request: " + parsed.status().ToString());
  }
  const Json& request = parsed.value();
  if (!request.is_object()) {
    if (counters_ != nullptr) {
      counters_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorReply("bad request: expected a JSON object");
  }
  const std::string op = request.GetString("op");

  if (op == "disambiguate") {
    const Json* text = request.Find("text");
    if (text == nullptr || !text->is_string()) {
      if (counters_ != nullptr) {
        counters_->errors.fetch_add(1, std::memory_order_relaxed);
      }
      return ErrorReply("disambiguate requires a string \"text\" field");
    }
    const auto start = std::chrono::steady_clock::now();
    std::future<util::StatusOr<SentenceResult>> future =
        batcher_->Submit(text->string_value());
    util::StatusOr<SentenceResult> result = future.get();
    if (latency_ != nullptr) {
      latency_->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count());
    }
    if (!result.ok()) return ErrorReply(result.status().ToString());

    Json mentions = Json::Array();
    for (const ServedMention& m : result.value().mentions) {
      Json jm = Json::Object();
      jm.Set("alias", Json::Str(m.alias));
      Json span = Json::Array();
      span.Append(Json::Number(static_cast<double>(m.span_start)));
      span.Append(Json::Number(static_cast<double>(m.span_end)));
      jm.Set("span", std::move(span));
      jm.Set("entity", Json::Number(static_cast<double>(m.entity)));
      jm.Set("title", Json::Str(m.title));
      jm.Set("prior", Json::Number(static_cast<double>(m.prior)));
      jm.Set("candidates", Json::Number(static_cast<double>(m.num_candidates)));
      mentions.Append(std::move(jm));
    }
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("mentions", std::move(mentions));
    return reply.Dump();
  }

  if (op == "health") {
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("status", Json::Str("serving"));
    reply.Set("model", Json::Str(engine_->loaded_path()));
    return reply.Dump();
  }

  if (op == "stats") {
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    if (counters_ != nullptr) {
      reply.Set("requests", Json::Number(static_cast<double>(
                                counters_->requests.load(std::memory_order_relaxed))));
      reply.Set("rejected", Json::Number(static_cast<double>(
                                counters_->rejected.load(std::memory_order_relaxed))));
      reply.Set("errors", Json::Number(static_cast<double>(
                              counters_->errors.load(std::memory_order_relaxed))));
      reply.Set("batches", Json::Number(static_cast<double>(
                               counters_->batches.load(std::memory_order_relaxed))));
      reply.Set("mean_batch", Json::Number(counters_->MeanBatchSize()));
      reply.Set("reloads", Json::Number(static_cast<double>(
                               counters_->reloads.load(std::memory_order_relaxed))));
    }
    const CandidateCache& cache = engine_->cache();
    reply.Set("cache_hits", Json::Number(static_cast<double>(cache.hits())));
    reply.Set("cache_misses", Json::Number(static_cast<double>(cache.misses())));
    const double lookups = static_cast<double>(cache.hits() + cache.misses());
    reply.Set("cache_hit_rate",
              Json::Number(lookups == 0.0 ? 0.0
                                          : static_cast<double>(cache.hits()) /
                                                lookups));
    if (latency_ != nullptr) {
      Json lat = Json::Object();
      lat.Set("count", Json::Number(static_cast<double>(latency_->count())));
      lat.Set("mean_us", Json::Number(latency_->MeanUs()));
      lat.Set("p50_us", Json::Number(static_cast<double>(latency_->PercentileUs(0.50))));
      lat.Set("p95_us", Json::Number(static_cast<double>(latency_->PercentileUs(0.95))));
      lat.Set("p99_us", Json::Number(static_cast<double>(latency_->PercentileUs(0.99))));
      reply.Set("latency", std::move(lat));
    }

    // Process-wide observability: the metrics registry federated with this
    // server's own counters (which stay instance-local so multiple servers
    // in one process — as in tests and benches — never share request counts).
    const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    Json jregistry = Json::Object();
    Json jcounters = Json::Object();
    for (const auto& [name, value] : registry.CounterValues()) {
      jcounters.Set(name, Json::Number(static_cast<double>(value)));
    }
    jregistry.Set("counters", std::move(jcounters));
    Json jgauges = Json::Object();
    for (const auto& [name, value] : registry.GaugeValues()) {
      jgauges.Set(name, Json::Number(value));
    }
    jregistry.Set("gauges", std::move(jgauges));
    Json jhists = Json::Object();
    for (const auto& [name, snap] : registry.HistogramValues()) {
      Json jh = Json::Object();
      jh.Set("count", Json::Number(static_cast<double>(snap.count)));
      jh.Set("mean_us", Json::Number(snap.mean_us));
      jh.Set("p50_us", Json::Number(static_cast<double>(snap.p50_us)));
      jh.Set("p95_us", Json::Number(static_cast<double>(snap.p95_us)));
      jh.Set("p99_us", Json::Number(static_cast<double>(snap.p99_us)));
      jhists.Set(name, std::move(jh));
    }
    jregistry.Set("histograms", std::move(jhists));
    reply.Set("registry", std::move(jregistry));

    Json jspans = Json::Array();
    for (const obs::SpanSummary& s : obs::Trace::Summaries()) {
      Json js = Json::Object();
      js.Set("span", Json::Str(s.name));
      js.Set("count", Json::Number(static_cast<double>(s.count)));
      js.Set("total_us", Json::Number(static_cast<double>(s.total_us)));
      js.Set("mean_us", Json::Number(s.mean_us));
      js.Set("p50_us", Json::Number(static_cast<double>(s.p50_us)));
      js.Set("p95_us", Json::Number(static_cast<double>(s.p95_us)));
      js.Set("p99_us", Json::Number(static_cast<double>(s.p99_us)));
      js.Set("max_us", Json::Number(static_cast<double>(s.max_us)));
      jspans.Append(std::move(js));
    }
    reply.Set("spans", std::move(jspans));

    reply.Set("model", Json::Str(engine_->loaded_path()));

    // Embedding-store deployments report the serving generation so reload
    // drills can confirm a SIGHUP swap landed without dropping requests.
    // The shared_ptr snapshot pins the mapped generation for the duration of
    // this reply even if the batcher swaps in a newer one mid-read.
    const auto [es, store_generation] = engine_->store_snapshot();
    if (es != nullptr) {
      Json jstore = Json::Object();
      jstore.Set("generation",
                 Json::Number(static_cast<double>(store_generation)));
      jstore.Set("resident_shards",
                 Json::Number(static_cast<double>(es->num_shards())));
      jstore.Set("mapped_bytes",
                 Json::Number(static_cast<double>(es->mapped_bytes())));
      jstore.Set("dir", Json::Str(es->dir()));
      if (const store::TableInfo* t = es->FindTable("static")) {
        jstore.Set("dtype", Json::Str(store::DtypeName(t->dtype)));
        jstore.Set("quant_max_abs_error", Json::Number(t->max_abs_error));
      }
      reply.Set("store", std::move(jstore));
    }

    // Active inference backend, next to the store block it complements:
    // which kernels serve the frozen compute, and how lossy the quantized
    // weight copies are (zeros for non-quantizing backends).
    {
      const backend::BackendStats bs =
          engine_->model().inference_backend()->stats();
      Json jbackend = Json::Object();
      jbackend.Set("name", Json::Str(bs.name));
      jbackend.Set("isa", Json::Str(bs.isa));
      jbackend.Set("simd_active", Json::Bool(bs.simd_active));
      jbackend.Set("quant_block",
                   Json::Number(static_cast<double>(bs.quant_block)));
      jbackend.Set("quantized_tensors",
                   Json::Number(static_cast<double>(bs.quantized_tensors)));
      jbackend.Set("quantized_bytes",
                   Json::Number(static_cast<double>(bs.quantized_bytes)));
      jbackend.Set("quant_max_abs_error",
                   Json::Number(bs.quant_max_abs_error));
      jbackend.Set("quant_mean_abs_error",
                   Json::Number(bs.quant_mean_abs_error));
      reply.Set("backend", std::move(jbackend));
    }
    return reply.Dump();
  }

  if (op == "reload") {
    batcher_->RequestReload();
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("status", Json::Str("reload requested"));
    return reply.Dump();
  }

  if (counters_ != nullptr) {
    counters_->errors.fetch_add(1, std::memory_order_relaxed);
  }
  return ErrorReply("unknown op: \"" + op + "\"");
}

util::Status Server::Start(int port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return util::Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd);
    return util::Status::Internal("bind 127.0.0.1:" + std::to_string(port) +
                                  ": " + err);
  }
  if (::listen(listen_fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd);
    return util::Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  listen_fd_.store(listen_fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      // EINTR is the SIGHUP path: let the poll hook pick the flag up.
      if (poll_hook_) poll_hook_();
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed or unrecoverable
    }
    if (poll_hook_) poll_hook_();
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  std::string pending;
  char buf[4096];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF or error: client is gone
    pending.append(buf, static_cast<size_t>(n));
    size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string reply = HandleLine(line) + "\n";
      size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w =
            ::send(fd, reply.data() + sent, reply.size() - sent, MSG_NOSIGNAL);
        if (w <= 0) break;
        sent += static_cast<size_t>(w);
      }
      if (sent < reply.size()) break;
    }
  }
  // Deregister before closing so Stop() can never shut down a recycled fd.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

void Server::Stop() {
  if (listen_fd_.load(std::memory_order_acquire) < 0 &&
      !accept_thread_.joinable()) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_fds_.clear();
    to_join.swap(conn_threads_);
  }
  for (std::thread& t : to_join) t.join();
}

void Server::RunStdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (poll_hook_) poll_hook_();
    if (line.empty()) continue;
    out << HandleLine(line) << "\n";
    out.flush();
  }
}

}  // namespace bootleg::serve

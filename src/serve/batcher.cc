#include "serve/batcher.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bootleg::serve {

MicroBatcher::MicroBatcher(BatcherOptions options, BatchFn batch_fn,
                           ReloadFn reload_fn, ServerCounters* counters)
    : options_(options),
      batch_fn_(std::move(batch_fn)),
      reload_fn_(std::move(reload_fn)),
      counters_(counters),
      queue_wait_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.queue_wait_us")),
      queue_depth_gauge_(
          obs::MetricsRegistry::Global().GetGauge("serve.queue_depth")) {
  const int n = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<util::StatusOr<SentenceResult>> MicroBatcher::Submit(
    std::string text) {
  std::promise<util::StatusOr<SentenceResult>> promise;
  std::future<util::StatusOr<SentenceResult>> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      promise.set_value(
          util::Status::FailedPrecondition("server is shutting down"));
      return future;
    }
    if (queue_.size() >= options_.max_queue) {
      if (counters_ != nullptr) {
        counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      }
      promise.set_value(util::Status::Unavailable(
          "request queue full (" + std::to_string(options_.max_queue) +
          " waiting); retry later"));
      return future;
    }
    Request req;
    req.text = std::move(text);
    req.done = std::move(promise);
    req.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(req));
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    if (counters_ != nullptr) {
      counters_->requests.fetch_add(1, std::memory_order_relaxed);
    }
  }
  cv_.notify_one();
  return future;
}

void MicroBatcher::RequestReload() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    reload_requested_ = true;
  }
  cv_.notify_one();
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Swap under the lock so concurrent Shutdown callers join exactly once.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(workers_);
  }
  for (std::thread& t : to_join) t.join();
}

int64_t MicroBatcher::max_batch_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_batch_observed_;
}

void MicroBatcher::WorkerLoop(int worker) {
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stopping_ || reload_requested_ || !queue_.empty();
    });

    // Reloads apply at batch boundaries — including idle ones, so a SIGHUP
    // on a quiet server does not wait for the next request.
    if (reload_requested_) {
      reload_requested_ = false;
      lock.unlock();
      if (reload_fn_) {
        std::unique_lock<std::shared_mutex> exclusive(reload_mu_);
        const util::Status st = reload_fn_();
        if (st.ok()) {
          if (counters_ != nullptr) {
            counters_->reloads.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          BOOTLEG_LOG(Warning) << "hot reload failed: " << st.ToString()
                               << " (serving previous weights)";
        }
      }
      continue;
    }

    if (queue_.empty()) {
      if (stopping_) return;  // drained
      continue;               // spurious wake / another worker took the work
    }

    // Coalescing wait: give stragglers until max_wait_us after the oldest
    // request arrived, unless the batch is already full or we are draining.
    if (!stopping_ && options_.max_wait_us > 0) {
      const auto deadline =
          queue_.front().enqueued + std::chrono::microseconds(options_.max_wait_us);
      cv_.wait_until(lock, deadline, [this] {
        return stopping_ || queue_.empty() ||
               static_cast<int>(queue_.size()) >= options_.max_batch;
      });
      if (queue_.empty()) continue;  // another worker drained it while we slept
    }

    std::vector<Request> batch;
    const size_t take = std::min<size_t>(queue_.size(),
                                         static_cast<size_t>(options_.max_batch));
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (static_cast<int64_t>(batch.size()) > max_batch_observed_) {
      max_batch_observed_ = static_cast<int64_t>(batch.size());
    }
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    lock.unlock();

    {
      std::shared_lock<std::shared_mutex> shared(reload_mu_);
      RunBatch(std::move(batch), worker);
    }
  }
}

void MicroBatcher::RunBatch(std::vector<Request> batch, int worker) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> texts;
  texts.reserve(batch.size());
  for (const Request& r : batch) {
    queue_wait_hist_->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                              r.enqueued)
            .count());
    texts.push_back(r.text);
  }

  std::vector<SentenceResult> results;
  {
    OBS_SPAN("serve.batch");
    results = batch_fn_(texts, worker);
  }
  if (counters_ != nullptr) {
    counters_->batches.fetch_add(1, std::memory_order_relaxed);
    counters_->batched_sentences.fetch_add(
        static_cast<int64_t>(batch.size()), std::memory_order_relaxed);
  }
  if (results.size() != batch.size()) {
    for (Request& r : batch) {
      r.done.set_value(
          util::Status::Internal("batch handler returned wrong result count"));
    }
    return;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].done.set_value(std::move(results[i]));
  }
}

}  // namespace bootleg::serve

#include "serve/batcher.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bootleg::serve {

MicroBatcher::MicroBatcher(BatcherOptions options, BatchFn batch_fn,
                           ReloadFn reload_fn, ServerCounters* counters)
    : options_(options),
      batch_fn_(std::move(batch_fn)),
      reload_fn_(std::move(reload_fn)),
      counters_(counters),
      queue_wait_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.queue_wait_us")),
      deadline_slack_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.deadline_slack_us")),
      queue_depth_gauge_(
          obs::MetricsRegistry::Global().GetGauge("serve.queue_depth")),
      shed_counter_(obs::MetricsRegistry::Global().GetCounter("serve.shed")) {
  const int n = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<util::StatusOr<SentenceResult>> MicroBatcher::Submit(
    std::string text) {
  auto promise =
      std::make_shared<std::promise<util::StatusOr<SentenceResult>>>();
  std::future<util::StatusOr<SentenceResult>> future = promise->get_future();
  SubmitAsync(std::move(text), kNoDeadline,
              [promise](util::StatusOr<SentenceResult> result) {
                promise->set_value(std::move(result));
              });
  return future;
}

void MicroBatcher::SubmitAsync(std::string text,
                               std::chrono::steady_clock::time_point deadline,
                               Callback done) {
  SubmitAsync(std::move(text), /*raw_text=*/false, deadline, std::move(done));
}

void MicroBatcher::SubmitAsync(std::string text, bool raw_text,
                               std::chrono::steady_clock::time_point deadline,
                               Callback done) {
  const auto now = std::chrono::steady_clock::now();
  // Fast-path rejects are decided under the lock but completed outside it:
  // the callback may re-enter arbitrary code (event-loop posts).
  util::Status reject = util::Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject = util::Status::FailedPrecondition("server is shutting down");
    } else if (queue_.size() >= options_.max_queue) {
      // Every arrival counts in `requests`, whatever its fate, so the stats
      // accounting invariant requests ≥ rejected + shed + served holds.
      if (counters_ != nullptr) {
        counters_->requests.fetch_add(1, std::memory_order_relaxed);
        counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      }
      reject = util::Status::Unavailable(
          "request queue full (" + std::to_string(options_.max_queue) +
          " waiting); retry later");
    } else if (deadline <= now) {
      // Arrived already expired (client set an impossible budget): shed at
      // the door rather than at dequeue.
      if (counters_ != nullptr) {
        counters_->requests.fetch_add(1, std::memory_order_relaxed);
        counters_->shed.fetch_add(1, std::memory_order_relaxed);
      }
      shed_counter_->Add();
      reject = util::Status::DeadlineExceeded("deadline expired before enqueue");
    } else {
      Request req;
      req.text = std::move(text);
      req.raw_text = raw_text;
      req.done = std::move(done);
      req.enqueued = now;
      req.deadline = deadline;
      queue_.push_back(std::move(req));
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      if (counters_ != nullptr) {
        counters_->requests.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!reject.ok()) {
    done(std::move(reject));
    return;
  }
  cv_.notify_one();
}

size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void MicroBatcher::RequestReload() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    reload_requested_ = true;
  }
  cv_.notify_one();
}

void MicroBatcher::SubmitExclusive(ExclusiveFn fn, ExclusiveDone done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      exclusive_.emplace_back(std::move(fn), std::move(done));
      cv_.notify_one();
      return;
    }
  }
  done(util::Status::FailedPrecondition("server is shutting down"));
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Swap under the lock so concurrent Shutdown callers join exactly once.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(workers_);
  }
  for (std::thread& t : to_join) t.join();
}

int64_t MicroBatcher::max_batch_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_batch_observed_;
}

void MicroBatcher::WorkerLoop(int worker) {
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stopping_ || reload_requested_ || !exclusive_.empty() ||
             !queue_.empty();
    });

    // Reloads apply at batch boundaries — including idle ones, so a SIGHUP
    // on a quiet server does not wait for the next request.
    if (reload_requested_) {
      reload_requested_ = false;
      lock.unlock();
      if (reload_fn_) {
        std::unique_lock<std::shared_mutex> exclusive(reload_mu_);
        const util::Status st = reload_fn_();
        if (st.ok()) {
          if (counters_ != nullptr) {
            counters_->reloads.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          BOOTLEG_LOG(Warning) << "hot reload failed: " << st.ToString()
                               << " (serving previous weights)";
        }
      }
      continue;
    }

    // Exclusive mutations (live index updates) run like reloads: one at a
    // time, at a batch boundary, with every worker excluded. Tasks accepted
    // before Shutdown drain even while stopping.
    if (!exclusive_.empty()) {
      auto task = std::move(exclusive_.front());
      exclusive_.pop_front();
      lock.unlock();
      util::Status st;
      {
        std::unique_lock<std::shared_mutex> exclusive(reload_mu_);
        st = task.first ? task.first() : util::Status::OK();
      }
      task.second(std::move(st));
      continue;
    }

    if (queue_.empty()) {
      if (stopping_) return;  // drained
      continue;               // spurious wake / another worker took the work
    }

    // Coalescing wait: give stragglers until max_wait_us after the oldest
    // request arrived, unless the batch is already full, a reload or
    // exclusive task is pending (they apply at batch boundaries and must not
    // stall up to max_wait_us behind an open window under trickle traffic),
    // or we are draining.
    if (!stopping_ && options_.max_wait_us > 0) {
      const auto deadline =
          queue_.front().enqueued + std::chrono::microseconds(options_.max_wait_us);
      cv_.wait_until(lock, deadline, [this] {
        return stopping_ || reload_requested_ || !exclusive_.empty() ||
               queue_.empty() ||
               static_cast<int>(queue_.size()) >= options_.max_batch;
      });
      if (queue_.empty()) continue;  // another worker drained it while we slept
      if (reload_requested_ || !exclusive_.empty()) {
        // Cut the window short: loop back so the boundary work runs now; the
        // queued requests keep their arrival times and batch right after.
        continue;
      }
    }

    // Deadline-aware dequeue: expired requests are shed (completed with
    // DeadlineExceeded, no batch slot) so overload compute goes only to
    // replies a client is still waiting for.
    const auto now = std::chrono::steady_clock::now();
    std::vector<Request> batch;
    std::vector<Request> shed;
    while (!queue_.empty() &&
           static_cast<int>(batch.size()) < options_.max_batch) {
      Request req = std::move(queue_.front());
      queue_.pop_front();
      if (req.deadline <= now) {
        shed.push_back(std::move(req));
      } else {
        batch.push_back(std::move(req));
      }
    }
    if (static_cast<int64_t>(batch.size()) > max_batch_observed_) {
      max_batch_observed_ = static_cast<int64_t>(batch.size());
    }
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    lock.unlock();

    if (!shed.empty()) {
      if (counters_ != nullptr) {
        counters_->shed.fetch_add(static_cast<int64_t>(shed.size()),
                                  std::memory_order_relaxed);
      }
      shed_counter_->Add(static_cast<int64_t>(shed.size()));
      for (Request& r : shed) {
        r.done(util::Status::DeadlineExceeded(
            "deadline expired while queued; request shed"));
      }
    }
    if (batch.empty()) continue;

    {
      std::shared_lock<std::shared_mutex> shared(reload_mu_);
      RunBatch(std::move(batch), worker);
    }
  }
}

void MicroBatcher::RunBatch(std::vector<Request> batch, int worker) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<BatchItem> items;
  items.reserve(batch.size());
  bool all_deadlines = true;
  for (const Request& r : batch) {
    queue_wait_hist_->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                              r.enqueued)
            .count());
    if (r.deadline != kNoDeadline) {
      // Remaining budget at dispatch: how close shedding decisions are
      // cutting it. Shrinking slack is the leading indicator of overload.
      deadline_slack_hist_->Record(
          std::chrono::duration_cast<std::chrono::microseconds>(r.deadline -
                                                                start)
              .count());
    } else {
      all_deadlines = false;
    }
    BatchItem item;
    item.text = r.text;
    item.raw_text = r.raw_text;
    item.deadline = r.deadline;
    items.push_back(std::move(item));
  }

  std::vector<SentenceResult> results;
  {
    OBS_SPAN("serve.batch");
    results = batch_fn_(items, worker);
  }
  if (counters_ != nullptr) {
    counters_->batches.fetch_add(1, std::memory_order_relaxed);
    counters_->batched_sentences.fetch_add(
        static_cast<int64_t>(batch.size()), std::memory_order_relaxed);
  }
  if (results.empty() && all_deadlines) {
    // The engine abandoned the batch between model stages: every member's
    // deadline expired mid-compute. These are sheds like the dequeue-time
    // ones, counted separately as reclaims (compute was started and
    // reclaimed, not avoided).
    const int64_t n = static_cast<int64_t>(batch.size());
    if (counters_ != nullptr) {
      counters_->shed.fetch_add(n, std::memory_order_relaxed);
      counters_->reclaimed.fetch_add(n, std::memory_order_relaxed);
    }
    shed_counter_->Add(n);
    for (Request& r : batch) {
      r.done(util::Status::DeadlineExceeded(
          "deadline expired mid-batch; compute reclaimed"));
    }
    return;
  }
  if (results.size() != batch.size()) {
    for (Request& r : batch) {
      r.done(
          util::Status::Internal("batch handler returned wrong result count"));
    }
    return;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].done(std::move(results[i]));
  }
}

}  // namespace bootleg::serve

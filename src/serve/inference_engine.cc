#include "serve/inference_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "backend/backend.h"
#include "core/model_loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/vocabulary.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bootleg::serve {

namespace {

core::BootlegConfig ConfigForAblation(const std::string& ablation,
                                      util::Status* status) {
  core::BootlegConfig config;
  config.encoder.max_len = 32;  // the training default of bootleg_cli
  if (ablation == "ent") return core::BootlegConfig::EntOnly(config);
  if (ablation == "type") return core::BootlegConfig::TypeOnly(config);
  if (ablation == "kg") return core::BootlegConfig::KgOnly(config);
  if (ablation != "full") {
    *status = util::Status::InvalidArgument("unknown ablation: " + ablation);
  }
  return config;
}

}  // namespace

InferenceEngine::InferenceEngine(const EngineOptions& options,
                                 size_t cache_capacity)
    : options_(options), cache_(cache_capacity) {}

util::StatusOr<std::unique_ptr<InferenceEngine>> InferenceEngine::Create(
    const EngineOptions& options) {
  if (options.model_path.empty() == options.checkpoint_dir.empty()) {
    return util::Status::InvalidArgument(
        "exactly one of model_path and checkpoint_dir must be set");
  }
  if (!options.store_dir.empty() && options.model_path.empty()) {
    return util::Status::InvalidArgument(
        "store_dir requires model_path: an embedding store snapshots one "
        "fixed set of weights and cannot follow a checkpoint directory");
  }
  std::unique_ptr<InferenceEngine> engine(
      new InferenceEngine(options, options.cache_capacity));
  util::Status st = engine->Initialize();
  if (!st.ok()) return st;
  return engine;
}

util::Status InferenceEngine::Initialize() {
  BOOTLEG_RETURN_IF_ERROR(kb_.Load(options_.data_dir + "/kb.bin"));
  BOOTLEG_RETURN_IF_ERROR(
      candidates_.Load(options_.data_dir + "/candidates.bin"));
  BOOTLEG_RETURN_IF_ERROR(vocab_.Load(options_.data_dir + "/vocab.bin"));
  if (options_.char_fallback) vocab_.BuildTypoIndex();
  extractor_ = std::make_unique<data::MentionExtractor>(&candidates_);

  // Model-path deployments record their config preset in a .meta sidecar
  // (written by `bootleg_cli train`); it overrides the option when present.
  std::string ablation = options_.ablation;
  if (!options_.model_path.empty()) {
    auto meta = util::ReadTextFile(options_.model_path + ".meta");
    if (meta.ok()) {
      const auto parts = util::Split(meta.value());
      if (!parts.empty()) ablation = parts[0];
    }
  }
  util::Status config_status = util::Status::OK();
  core::BootlegConfig config = ConfigForAblation(ablation, &config_status);
  BOOTLEG_RETURN_IF_ERROR(config_status);
  if (config.use_cooccurrence_kg) {
    return util::Status::InvalidArgument(
        "co-occurrence KG models are not servable: sentence co-occurrence "
        "statistics are not part of the dataset snapshot");
  }

  // Construction seed is irrelevant — every weight is overwritten by the
  // snapshot before serving.
  model_ = std::make_unique<core::BootlegModel>(&kb_, vocab_.size(), config,
                                                /*seed=*/7);
  if (config.use_title_feature) {
    title_token_ids_.reserve(static_cast<size_t>(kb_.num_entities()));
    for (kb::EntityId e = 0; e < kb_.num_entities(); ++e) {
      title_token_ids_.push_back(vocab_.Id(kb_.entity(e).title));
    }
    model_->SetTitleTokenIds(title_token_ids_);
  }

  if (!options_.model_path.empty()) {
    BOOTLEG_RETURN_IF_ERROR(model_->store().Load(options_.model_path));
    loaded_path_ = options_.model_path;
  } else {
    auto loaded = core::LoadNewestCheckpointParams(options_.checkpoint_dir,
                                                   &model_->store());
    if (!loaded.ok()) return loaded.status();
    loaded_path_ = loaded.value();
  }
  if (options_.store_dir.empty()) {
    model_->PrepareFrozenInference();
  } else {
    BOOTLEG_RETURN_IF_ERROR(AdoptNewestStoreGeneration());
    // The store holds the frozen entity rows; drop the duplicate heap table.
    model_->ReleaseEntityTableForServing();
  }

  // Install the inference backend last: SetInferenceBackend registers the
  // (now final) frozen weights, which is where a quantizing backend packs
  // its int8 copies.
  auto be = backend::Backend::Create(options_.backend);
  if (!be.ok()) return be.status();
  model_->SetInferenceBackend(std::move(be).value());
  PublishBackendGauges();
  return util::Status::OK();
}

void InferenceEngine::PublishBackendGauges() const {
  const backend::BackendStats st = model_->inference_backend()->stats();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("backend.simd_active")->Set(st.simd_active ? 1.0 : 0.0);
  reg.GetGauge("backend.quant_block")
      ->Set(static_cast<double>(st.quant_block));
  reg.GetGauge("backend.quantized_tensors")
      ->Set(static_cast<double>(st.quantized_tensors));
  reg.GetGauge("backend.quantized_bytes")
      ->Set(static_cast<double>(st.quantized_bytes));
  reg.GetGauge("backend.quant_max_abs_error")->Set(st.quant_max_abs_error);
  reg.GetGauge("backend.quant_mean_abs_error")->Set(st.quant_mean_abs_error);
}

util::Status InferenceEngine::AdoptNewestStoreGeneration() {
  int64_t generation = -1;
  auto opened = store::OpenNewestGeneration(options_.store_dir, &generation);
  if (!opened.ok()) return opened.status();
  if (entity_store_ != nullptr && generation == store_generation_) {
    return util::Status::OK();  // already serving the newest generation
  }
  std::shared_ptr<store::EmbeddingStore> next(std::move(opened).value());
  if (options_.resident_budget_bytes > 0) {
    // Enable hot-set residency before any View() is taken so the views carry
    // the policy hooks. Seeding from the displaced generation's manager
    // carries shard popularity across the swap, so the background warm-up
    // prefetches the shards that were hot before it. The manager lives and
    // dies with `next`, so its advisories only ever touch this pinned
    // snapshot's mappings.
    std::shared_ptr<store::EmbeddingStore> prior;
    {
      std::lock_guard<std::mutex> lock(store_mu_);
      prior = entity_store_;
    }
    store::ResidencyOptions ro;
    ro.budget_bytes = options_.resident_budget_bytes;
    ro.sweep_interval_ms = options_.resident_sweep_ms;
    next->EnableResidency(ro, prior != nullptr ? prior->residency() : nullptr);
  }
  auto view = next->View("static");
  if (!view.ok()) return view.status();

  // Chained generations carry INDEX_DELTA aux files: KB/candidate mutations
  // that must land before the model adopts the wider view (UseFrozenStore
  // checks view rows == KB entities). They are replayed onto copies so a
  // rejected chain leaves the serving state untouched — the old generation
  // keeps serving and the KB/view row counts stay consistent.
  index::ApplyStats delta_stats;
  if (!next->aux_files().empty()) {
    kb::KnowledgeBase kb_next = kb_;
    kb::CandidateMap candidates_next = candidates_;
    std::vector<int64_t> title_ids_next = title_token_ids_;
    const bool use_title = model_->config().use_title_feature;
    BOOTLEG_RETURN_IF_ERROR(index::ApplyDeltas(
        *next, &kb_next, &candidates_next,
        use_title ? &title_ids_next : nullptr, &delta_stats));
    if (delta_stats.entities_applied > 0) {
      // Commit the replayed copies. The model reads the KB through a stable
      // pointer to kb_, so move-assignment swaps contents in place. Callers
      // serialize adoption against in-flight inference (batcher exclusive
      // lock), so no batch observes the intermediate state.
      kb_ = std::move(kb_next);
      candidates_ = std::move(candidates_next);
      title_token_ids_ = std::move(title_ids_next);
      if (use_title) model_->SetTitleTokenIds(title_token_ids_);
      for (const std::string& alias : delta_stats.touched_aliases) {
        cache_.Invalidate(alias);
      }
      // A delta can introduce an alias longer (in tokens) than any the
      // extractor's n-gram window was sized for — rebuild the scanner.
      extractor_ = std::make_unique<data::MentionExtractor>(&candidates_);
    }
  }

  // UseFrozenStore validates shape before anything is swapped; on failure
  // the old generation (or heap table) keeps serving untouched.
  BOOTLEG_RETURN_IF_ERROR(model_->UseFrozenStore(view.value()));
  {
    // Publish under store_mu_ so stats readers on connection threads get a
    // shared_ptr snapshot; the displaced generation stays mapped until the
    // last such snapshot drops it.
    std::lock_guard<std::mutex> lock(store_mu_);
    entity_store_ = next;
    store_generation_ = generation;
    induced_entities_ += delta_stats.entities_applied;
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("store.generation")->Set(static_cast<double>(generation));
  reg.GetGauge("store.induced_entities")
      ->Set(static_cast<double>(induced_entities()));
  reg.GetGauge("store.resident_shards")
      ->Set(static_cast<double>(next->num_shards()));
  reg.GetGauge("store.mapped_bytes")
      ->Set(static_cast<double>(next->mapped_bytes()));
  if (const store::TableInfo* t = next->FindTable("static")) {
    reg.GetGauge("store.quant_max_abs_error")->Set(t->max_abs_error);
    reg.GetGauge("store.quant_mean_abs_error")->Set(t->mean_abs_error);
  }
  reg.GetGauge("store.resident_budget_bytes")
      ->Set(static_cast<double>(options_.resident_budget_bytes));
  BOOTLEG_LOG(Info) << "serving embedding store generation " << generation
                    << " from " << next->dir() << " (" << next->num_shards()
                    << " shards, " << next->mapped_bytes()
                    << " mapped bytes)";

  // Automatic compaction: a delta chain carries one INDEX_DELTA aux file per
  // published delta, so aux_files().size() bounds the chain depth from
  // above (compaction renumbers the aux files into the flat directory, so
  // the count survives it — past the watermark, each further delta is
  // folded flat right after adoption). The already_flat result guards the
  // recursion: adopting the compacted generation re-checks the watermark,
  // finds the newest generation flat, and stops. Failures are non-fatal:
  // the chain keeps serving and the next adoption retries.
  if (options_.compact_chain_depth > 0 &&
      static_cast<int64_t>(next->aux_files().size()) >=
          options_.compact_chain_depth) {
    index::CompactResult cres;
    const util::Status cst = index::Compact(options_.store_dir, &cres);
    if (!cst.ok()) {
      BOOTLEG_LOG(Warning) << "automatic compaction failed: " << cst.ToString()
                           << " (delta chain keeps serving)";
    } else if (!cres.already_flat) {
      {
        std::lock_guard<std::mutex> lock(store_mu_);
        ++auto_compactions_;
      }
      reg.GetGauge("store.auto_compactions")
          ->Set(static_cast<double>(auto_compactions()));
      BOOTLEG_LOG(Info) << "auto-compacted delta chain at depth "
                        << next->aux_files().size() << " -> generation "
                        << cres.generation << " (" << cres.files_copied
                        << " files)";
      return AdoptNewestStoreGeneration();
    }
  }
  return util::Status::OK();
}

util::Status InferenceEngine::AddEntityLive(index::DeltaEntity entity) {
  if (options_.store_dir.empty()) {
    return util::Status::FailedPrecondition(
        "live entity add requires a store deployment (--store_dir)");
  }
  std::shared_ptr<const store::EmbeddingStore> current;
  int64_t generation = -1;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    current = entity_store_;
    generation = store_generation_;
  }
  if (current == nullptr) {
    return util::Status::FailedPrecondition("no store generation is serving");
  }

  // Unknown titles fall back to the UNK token: the title feature degrades
  // gracefully while types/relations — the signals the paper shows carry
  // tail entities — drive the induced embedding.
  entity.title_token_id = vocab_.Id(entity.title);
  BOOTLEG_RETURN_IF_ERROR(index::ValidateDeltaEntity(
      kb_, candidates_, kb_.num_entities(), entity));

  auto view = current->View("static");
  if (!view.ok()) return view.status();
  std::vector<float> row;
  BOOTLEG_RETURN_IF_ERROR(
      index::InduceRow(*model_, kb_, *view.value(), entity, &row));

  index::IndexDelta delta;
  delta.base_entities = kb_.num_entities();
  delta.entities.push_back(std::move(entity));
  index::PublishResult published;
  BOOTLEG_RETURN_IF_ERROR(index::PublishDelta(
      options_.store_dir, *current, generation, delta, row.data(),
      &published));
  BOOTLEG_LOG(Info) << "published delta generation " << published.generation
                    << " (" << delta.entities[0].title << ") at "
                    << published.dir;

  // Adopt the generation we just published: replays the delta onto the KB
  // and candidate map, invalidates the touched aliases, swaps the view.
  return AdoptNewestStoreGeneration();
}

util::Status InferenceEngine::Reload() {
  if (!options_.store_dir.empty()) {
    return AdoptNewestStoreGeneration();
  }
  if (options_.checkpoint_dir.empty()) {
    return util::Status::FailedPrecondition(
        "engine was created from a fixed model snapshot; nothing to reload");
  }
  auto loaded = core::LoadNewestCheckpointParams(options_.checkpoint_dir,
                                                 &model_->store());
  // A failed scan leaves the store partially overwritten only if a read got
  // midway — LoadNewestCheckpointParams skips unreadable files wholesale, so
  // on error the previous weights are still intact and serving continues.
  if (!loaded.ok()) return loaded.status();
  if (loaded.value() == loaded_path_) return util::Status::OK();
  loaded_path_ = loaded.value();
  // Re-freezing also re-registers the weights with the backend, refreshing
  // any quantized copies; republish the gauges they feed.
  model_->PrepareFrozenInference();
  PublishBackendGauges();
  BOOTLEG_LOG(Info) << "hot-reloaded weights from " << loaded_path_;
  return util::Status::OK();
}

std::vector<SentenceResult> InferenceEngine::Disambiguate(
    const std::vector<std::string>& texts,
    core::BootlegModel::InferenceScratch* scratch) {
  std::vector<BatchItem> items(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) items[i].text = texts[i];
  return DisambiguateBatch(items, scratch);
}

std::vector<SentenceResult> InferenceEngine::DisambiguateBatch(
    const std::vector<BatchItem>& items,
    core::BootlegModel::InferenceScratch* scratch) {
  // Scratches are reused across batches; the cancellation hook must never
  // leak from one batch into the next.
  scratch->cancel_check = nullptr;
  constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();
  bool all_deadlines = !items.empty();
  auto latest = std::chrono::steady_clock::time_point::min();
  for (const BatchItem& item : items) {
    if (item.deadline == kNoDeadline) {
      all_deadlines = false;
      break;
    }
    latest = std::max(latest, item.deadline);
  }
  if (all_deadlines) {
    // Past the latest member deadline no reply is wanted by anyone — let the
    // model abandon the batch between stages and reclaim the compute.
    scratch->cancel_check = [latest] {
      return std::chrono::steady_clock::now() > latest;
    };
  }

  // Assembly: one SentenceExample per sentence, flat across items. Raw
  // documents split after terminal punctuation tokens (Tokenize peels them
  // into their own tokens, so per-sentence tokenization concatenates to the
  // whole-document tokenization and spans translate by the range offset).
  // Candidates resolve through the LRU cache both during the extractor's
  // greedy scan and at example fill (the scan warms the entry).
  std::vector<data::SentenceExample> examples;
  struct ExampleOrigin {
    size_t item = 0;
    int64_t token_offset = 0;
  };
  std::vector<ExampleOrigin> origins;
  std::vector<SentenceResult> results(items.size());
  {
    OBS_SPAN("serve.assemble");
    CachedCandidates cached;
    const data::MentionExtractor::AliasFn known_alias =
        [this, &cached](const std::string& alias) {
          return cache_.Lookup(candidates_, alias, &cached);
        };
    for (size_t i = 0; i < items.size(); ++i) {
      const std::vector<std::string> tokens = text::Tokenize(items[i].text);
      std::vector<std::pair<size_t, size_t>> ranges;  // [begin, end)
      if (items[i].raw_text) {
        size_t begin = 0;
        for (size_t t = 0; t < tokens.size(); ++t) {
          const std::string& tok = tokens[t];
          if (tok == "." || tok == "?" || tok == "!") {
            ranges.emplace_back(begin, t + 1);
            begin = t + 1;
          }
        }
        if (begin < tokens.size()) ranges.emplace_back(begin, tokens.size());
      } else if (!tokens.empty()) {
        ranges.emplace_back(0, tokens.size());
      }
      for (size_t si = 0; si < ranges.size(); ++si) {
        const auto [lo, hi] = ranges[si];
        const std::vector<std::string> sent(tokens.begin() + lo,
                                            tokens.begin() + hi);
        data::SentenceExample ex;
        ex.token_ids.reserve(sent.size());
        for (const std::string& tok : sent) {
          ex.token_ids.push_back(options_.char_fallback
                                     ? vocab_.IdWithTypoFallback(tok)
                                     : vocab_.Id(tok));
        }
        for (const data::Mention& m : extractor_->Extract(sent, known_alias)) {
          if (!cache_.Lookup(candidates_, m.alias, &cached)) continue;
          data::MentionExample me;
          me.span_start = m.span_start;
          me.span_end = m.span_end;
          me.candidates = cached.entities;
          me.priors = cached.priors;
          ex.mentions.push_back(std::move(me));

          ServedMention served;
          served.alias = m.alias;
          served.span_start = m.span_start + static_cast<int64_t>(lo);
          served.span_end = m.span_end + static_cast<int64_t>(lo);
          served.num_candidates = static_cast<int64_t>(cached.entities.size());
          served.sentence_index = static_cast<int64_t>(si);
          results[i].mentions.push_back(std::move(served));
        }
        examples.push_back(std::move(ex));
        origins.push_back({i, static_cast<int64_t>(lo)});
      }
    }
  }

  OBS_SPAN("serve.predict");
  std::vector<const data::SentenceExample*> batch;
  batch.reserve(examples.size());
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  const std::vector<std::vector<int64_t>> preds =
      model_->PredictBatch(batch, scratch);
  scratch->cancel_check = nullptr;
  if (preds.empty() && !batch.empty()) {
    return {};  // abandoned mid-compute: every member deadline expired
  }

  // Fill predictions back: results[i].mentions were appended in the same
  // order the flat examples' mentions were, so a per-item cursor suffices.
  std::vector<size_t> cursor(items.size(), 0);
  for (size_t e = 0; e < examples.size(); ++e) {
    const size_t i = origins[e].item;
    for (size_t mi = 0; mi < examples[e].mentions.size(); ++mi) {
      ServedMention& served = results[i].mentions[cursor[i]++];
      const int64_t k = preds[e][mi];
      if (k < 0) continue;
      const data::MentionExample& m = examples[e].mentions[mi];
      served.entity = m.candidates[static_cast<size_t>(k)];
      served.prior = m.priors[static_cast<size_t>(k)];
      served.title = kb_.entity(served.entity).title;
    }
  }
  return results;
}

std::vector<std::vector<int64_t>> InferenceEngine::PredictExamples(
    const std::vector<const data::SentenceExample*>& batch,
    core::BootlegModel::InferenceScratch* scratch) const {
  return model_->PredictBatch(batch, scratch);
}

}  // namespace bootleg::serve

#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bootleg::serve {

namespace {

constexpr int kMaxDepth = Json::kMaxDepth;

/// Recursive-descent parser over a borrowed string. Every entry point checks
/// bounds before reading, so no input can index past the buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  util::StatusOr<Json> Run() {
    Json value;
    util::Status st = ParseValue(&value, 0);
    if (!st.ok()) return st;
    SkipSpace();
    if (pos_ != text_.size()) {
      return util::Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  util::Status Fail(const std::string& what) {
    return util::Status::InvalidArgument(what + " at offset " +
                                         std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  util::Status ParseValue(Json* out, int depth) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      // The depth gate sits on the containers themselves: a container at
      // depth d holds children at depth d+1, so containers parse at depths
      // [0, kMaxDepth) — exactly kMaxDepth nesting levels, scalars free.
      case '{':
        if (depth >= kMaxDepth) return Fail("nesting too deep");
        return ParseObject(out, depth);
      case '[':
        if (depth >= kMaxDepth) return Fail("nesting too deep");
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        BOOTLEG_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::Str(std::move(s));
        return util::Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = Json::Bool(true);
          return util::Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = Json::Bool(false);
          return util::Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = Json::Null();
          return util::Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  util::Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return util::Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      BOOTLEG_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      BOOTLEG_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return util::Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  util::Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return util::Status::OK();
    while (true) {
      Json value;
      BOOTLEG_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(']')) return util::Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  util::Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (true) {
      if (out->size() > Json::kMaxStringBytes) return Fail("string too long");
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return util::Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          BOOTLEG_RETURN_IF_ERROR(ParseHex4(&code));
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  util::Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    *out = v;
    return util::Status::OK();
  }

  // Basic-plane code point to UTF-8 (surrogate pairs are passed through as
  // two 3-byte sequences; the serving protocol is ASCII in practice).
  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  util::Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Fail("invalid number");
    }
    *out = Json::Number(v);
    return util::Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double v, std::string* out) {
  // Integers render without a fraction so ids stay ids on the wire.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    *out += std::to_string(static_cast<int64_t>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

util::StatusOr<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

void Json::Set(const std::string& key, Json value) {
  if (type_ != Type::kObject) {
    *this = Object();
  }
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

void Json::Append(Json value) {
  if (type_ != Type::kArray) {
    *this = Array();
  }
  array_.push_back(std::move(value));
}

std::string Json::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      DumpNumber(number_, &out);
      break;
    case Type::kString:
      EscapeInto(string_, &out);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        EscapeInto(object_[i].first, &out);
        out.push_back(':');
        out += object_[i].second.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

}  // namespace bootleg::serve

#ifndef BOOTLEG_SERVE_JSON_H_
#define BOOTLEG_SERVE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace bootleg::serve {

/// Minimal JSON document for the serving wire protocol (newline-delimited
/// objects). Deliberately tiny: objects, arrays, strings, doubles, bools and
/// null — enough for requests and replies, nothing more.
///
/// Robustness contract: Parse never crashes or aborts on hostile input. It
/// returns InvalidArgument for malformed text, bounds container nesting at
/// kMaxDepth levels (a value inside kMaxDepth containers parses; one more
/// container is rejected), caps any single string at kMaxStringBytes of
/// decoded output, and rejects trailing garbage — a malformed or hostile
/// client line can at worst produce an error reply.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Maximum container (object/array) nesting Parse accepts.
  static constexpr int kMaxDepth = 32;
  /// Maximum decoded bytes of a single string (keys included). Generous for
  /// the wire protocol (sentences), small enough that a hostile line cannot
  /// amplify into unbounded allocation.
  static constexpr size_t kMaxStringBytes = 1 << 20;

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  /// Parses exactly one JSON value spanning the whole input (surrounding
  /// whitespace allowed). InvalidArgument on any syntax error.
  static util::StatusOr<Json> Parse(const std::string& text);

  /// Compact single-line rendering (the wire format; no embedded newlines,
  /// so one reply is always one line).
  std::string Dump() const;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& array_items() const { return array_; }

  /// Object field lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  /// Convenience: string field, or `fallback` when absent / wrong type.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  /// Convenience: numeric field, or `fallback` when absent / wrong type.
  double GetNumber(const std::string& key, double fallback = 0.0) const;

  /// Object field assignment (value semantics; makes this an object).
  void Set(const std::string& key, Json value);
  /// Array append (makes this an array).
  void Append(Json value);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  // Field order is preserved for readable, deterministic replies.
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_JSON_H_

#ifndef BOOTLEG_SERVE_SERVER_H_
#define BOOTLEG_SERVE_SERVER_H_

#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "net/front_end.h"
#include "serve/batcher.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "util/status.h"

namespace bootleg::serve {

class Json;

/// Transport and admission knobs for the TCP front end (Start). HandleLine /
/// RunStdio ignore the transport fields but honor the admission watermark.
struct ServerOptions {
  int io_threads = 1;       // epoll event loops (loop 0 owns the listener)
  int max_conns = 4096;     // connections beyond this are refused
  size_t max_line_bytes = 1 << 20;   // request line cap; offenders disconnected
  size_t write_buf_bytes = 4 << 20;  // unread-reply cap; offenders disconnected
  int max_inflight_per_conn = 64;    // pipelined requests per connection
  /// Queue-depth admission watermark: disambiguate requests arriving while
  /// the batcher queue is at or beyond this depth get a structured
  /// {"code":"overloaded"} reply without enqueueing. 0 = the batcher's
  /// max_queue (admission collapses into queue-full backpressure).
  size_t admission_watermark = 0;
  /// Idle-connection reaper: connections with no activity and nothing in
  /// flight for this long are disconnected (counted in net.idle_disconnects).
  /// 0 disables the reaper.
  int idle_timeout_ms = 0;
};

/// Newline-delimited-JSON protocol layer over the micro-batcher. One request
/// object per line, one reply object per line:
///
///   {"op":"disambiguate","text":"...","deadline_ms":50}
///       → {"ok":true,"mentions":[...]}
///   {"op":"disambiguate_text","text":"...","deadline_ms":50}
///       → {"ok":true,"mentions":[...]} (raw text: sentence-split and
///         mention-extracted server-side; mentions carry document-level
///         token spans and a "sentence" index)
///   {"op":"health"}   → {"ok":true,"status":"serving",...}
///   {"op":"stats"}    → {"ok":true,"requests":...,...}
///   {"op":"reload"}   → {"ok":true} (same path as SIGHUP)
///   {"op":"add_entity","title":"...","coarse":"person","types":[...],
///    "relations":[{"relation":"...","object":"..."}],
///    "aliases":[{"alias":"...","prior":0.5}]}
///       → {"ok":true,"generation":N,...} (loopback peers only; induces an
///         embedding for the new entity and publishes a chained store
///         generation — see index/live_index.h)
///
/// Every failure is a structured reply carrying a machine-readable "code"
/// ("bad_request", "overloaded", "deadline_exceeded", "line_too_long",
/// "too_many_inflight", "server_full", "forbidden") next to the
/// human-readable "error" —
/// the connection survives and the process never crashes on client bytes.
///
/// Three transports share the protocol: the epoll net::FrontEnd (Start/Stop,
/// non-blocking, thousands of connections on --io_threads event loops), a
/// stdin/stdout loop (RunStdio), and direct HandleLine calls from tests.
///
/// `deadline_ms` is the client's latency budget, measured from request
/// parse. It propagates into the batcher, which sheds the request with
/// {"code":"deadline_exceeded"} if the budget expires while it is queued.
class Server : public net::LineHandler {
 public:
  Server(InferenceEngine* engine, MicroBatcher* batcher,
         ServerCounters* counters, LatencyHistogram* latency,
         ServerOptions options = {});
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes one request line into one reply line (no trailing newline),
  /// blocking until the reply is ready. Tests and RunStdio call it.
  std::string HandleLine(const std::string& line);

  /// net::LineHandler: non-blocking protocol entry for the epoll front end.
  /// Control ops complete synchronously; disambiguate completes from a
  /// batcher worker once its micro-batch (or shed decision) lands. The
  /// peer-less form treats the caller as loopback (stdio and in-process
  /// tests run with local privileges by construction).
  void HandleLineAsync(std::string line, Done done) override;
  /// Peer-aware entry the TCP transport uses; add_entity is authorized only
  /// for loopback peers.
  void HandleLineFrom(std::string line, const net::PeerInfo& peer,
                      Done done) override;
  std::string TransportErrorReply(net::TransportError error) override;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the epoll front end.
  util::Status Start(int port);
  /// Actual bound port (after Start with port 0).
  int port() const { return port_; }
  /// Stops accepting, closes every connection, joins the I/O threads.
  void Stop();

  /// Reads request lines from `in` until EOF, writing replies to `out`.
  void RunStdio(std::istream& in, std::ostream& out);

  /// Invoked between stdio requests; the serve tool uses it to translate
  /// the SIGHUP flag into a batcher reload request (signal handlers
  /// themselves must stay async-signal-safe). TCP-mode signals are handled
  /// on the tool's main thread — the I/O threads keep them blocked.
  void SetPollHook(std::function<void()> hook) { poll_hook_ = std::move(hook); }

 private:
  /// Admission + deadline parse + submit for one disambiguate request.
  /// `raw_text` marks the disambiguate_text op: the text is sentence-split
  /// and mention-extracted inside the engine instead of being treated as one
  /// pre-segmented sentence.
  void HandleDisambiguate(const Json& request, bool raw_text, Done done);
  /// Live index mutation: parses the entity spec (names resolved against the
  /// serving KB), then runs InferenceEngine::AddEntityLive through the
  /// batcher's exclusive lane. Loopback peers only.
  void HandleAddEntity(const Json& request, const net::PeerInfo& peer,
                       Done done);
  std::string HandleControl(const Json& request, const std::string& op);
  std::string StatsReply();

  InferenceEngine* const engine_;
  MicroBatcher* const batcher_;
  ServerCounters* const counters_;
  LatencyHistogram* const latency_;
  const ServerOptions options_;
  std::function<void()> poll_hook_;

  int port_ = 0;
  std::unique_ptr<net::FrontEnd> front_end_;
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_SERVER_H_

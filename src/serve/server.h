#ifndef BOOTLEG_SERVE_SERVER_H_
#define BOOTLEG_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "util/status.h"

namespace bootleg::serve {

/// Newline-delimited-JSON front end over the micro-batcher. One request
/// object per line, one reply object per line:
///
///   {"op":"disambiguate","text":"..."}  → {"ok":true,"mentions":[...]}
///   {"op":"health"}                     → {"ok":true,"status":"serving",...}
///   {"op":"stats"}                      → {"ok":true,"requests":...,...}
///   {"op":"reload"}                     → {"ok":true} (same path as SIGHUP)
///
/// Malformed input of any kind produces {"ok":false,"error":"..."} — the
/// connection survives and the process never crashes on client bytes.
///
/// Two transports share HandleLine: a localhost TCP listener with one thread
/// per connection (Start/Stop), and a stdin/stdout loop (RunStdio) used by
/// tests and the check.sh smoke drill.
class Server {
 public:
  Server(InferenceEngine* engine, MicroBatcher* batcher,
         ServerCounters* counters, LatencyHistogram* latency);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes one request line into one reply line (no trailing newline).
  /// This is the whole protocol; both transports and the tests call it.
  std::string HandleLine(const std::string& line);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  util::Status Start(int port);
  /// Actual bound port (after Start with port 0).
  int port() const { return port_; }
  /// Stops accepting, closes every connection, joins all threads.
  void Stop();

  /// Reads request lines from `in` until EOF, writing replies to `out`.
  void RunStdio(std::istream& in, std::ostream& out);

  /// Invoked between requests and on interrupted accepts; the serve tool
  /// uses it to translate the SIGHUP flag into a batcher reload request
  /// (signal handlers themselves must stay async-signal-safe).
  void SetPollHook(std::function<void()> hook) { poll_hook_ = std::move(hook); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  InferenceEngine* const engine_;
  MicroBatcher* const batcher_;
  ServerCounters* const counters_;
  LatencyHistogram* const latency_;
  std::function<void()> poll_hook_;

  std::atomic<bool> stopping_{false};
  // Atomic: Stop() invalidates the fd while AcceptLoop is blocked on it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_SERVER_H_

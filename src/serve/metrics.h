#ifndef BOOTLEG_SERVE_METRICS_H_
#define BOOTLEG_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace bootleg::serve {

/// Fixed-bucket latency histogram in microseconds. Record() is lock-free
/// (one relaxed atomic increment), so it sits on the per-request hot path of
/// every server thread without serializing them; percentile reads scan the
/// buckets and are approximate to one bucket width, which is all a serving
/// dashboard needs.
///
/// Buckets are exponential (1-2-5 per decade) from 1µs to 100s plus an
/// overflow bucket, so p50/p95/p99 stay meaningful from cache-hit
/// micro-latencies up to cold multi-second outliers.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 25;

  LatencyHistogram();

  /// Adds one observation. Thread-safe, wait-free.
  void Record(int64_t micros);

  /// Upper bound (µs) of the bucket containing the q-quantile, q in [0, 1].
  /// Returns 0 when empty. Concurrent Record() calls may be partially
  /// visible; the result is a consistent-enough snapshot for reporting.
  int64_t PercentileUs(double q) const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  double MeanUs() const;

  /// Inclusive upper bound of bucket i (the last bucket is unbounded and
  /// reports its lower edge).
  static int64_t BucketBoundUs(int i);

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
};

/// Counters every serving front end shares. Plain relaxed atomics: the
/// counters are monotonically increasing and read only for reporting.
struct ServerCounters {
  std::atomic<int64_t> requests{0};        // disambiguate requests accepted
  std::atomic<int64_t> rejected{0};        // backpressure rejections
  std::atomic<int64_t> errors{0};          // malformed / failed requests
  std::atomic<int64_t> batches{0};         // micro-batches dispatched
  std::atomic<int64_t> batched_sentences{0};  // sentences across all batches
  std::atomic<int64_t> reloads{0};         // successful hot reloads

  double MeanBatchSize() const {
    const int64_t b = batches.load(std::memory_order_relaxed);
    return b == 0 ? 0.0
                  : static_cast<double>(
                        batched_sentences.load(std::memory_order_relaxed)) /
                        static_cast<double>(b);
  }
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_METRICS_H_

#ifndef BOOTLEG_SERVE_METRICS_H_
#define BOOTLEG_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace bootleg::serve {

/// The serving latency histogram is the process-wide obs instrument; the
/// alias keeps the historical serve::LatencyHistogram spelling working for
/// callers and tests.
using LatencyHistogram = ::bootleg::obs::LatencyHistogram;

/// Counters every serving front end shares. Plain relaxed atomics: the
/// counters are monotonically increasing and read only for reporting.
/// Instance-local by design (benches and tests run several serving stacks in
/// one process and want independent zeros); the server's `stats` op
/// federates them with the global obs::MetricsRegistry + trace spans when it
/// builds the reply.
struct ServerCounters {
  std::atomic<int64_t> requests{0};        // disambiguate requests accepted
  std::atomic<int64_t> rejected{0};        // backpressure rejections
  std::atomic<int64_t> overloaded{0};      // admission-control rejections
  std::atomic<int64_t> shed{0};            // dequeued past their deadline
  std::atomic<int64_t> reclaimed{0};       // batches abandoned mid-compute
                                           // (subset of shed)
  std::atomic<int64_t> errors{0};          // malformed / failed requests
  std::atomic<int64_t> batches{0};         // micro-batches dispatched
  std::atomic<int64_t> batched_sentences{0};  // sentences across all batches
  std::atomic<int64_t> reloads{0};         // successful hot reloads

  double MeanBatchSize() const {
    const int64_t b = batches.load(std::memory_order_relaxed);
    return b == 0 ? 0.0
                  : static_cast<double>(
                        batched_sentences.load(std::memory_order_relaxed)) /
                        static_cast<double>(b);
  }
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_METRICS_H_

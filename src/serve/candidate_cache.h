#ifndef BOOTLEG_SERVE_CANDIDATE_CACHE_H_
#define BOOTLEG_SERVE_CANDIDATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/candidate_map.h"

namespace bootleg::serve {

/// The candidate set the serving path needs per mention alias: the Γ(alias)
/// entity list with priors, resolved once and reused. Together with the
/// model's frozen per-entity feature table (PrepareFrozenInference), a cache
/// hit skips both the candidate-map hash lookup and any per-candidate
/// feature assembly for repeated aliases — the common case, since alias
/// frequency in natural text is heavily skewed.
struct CachedCandidates {
  std::vector<kb::EntityId> entities;
  std::vector<float> priors;
};

/// Thread-safe LRU cache keyed by alias. One mutex guards the list+map; the
/// critical section is a few pointer swaps, so contention is negligible next
/// to model inference. Hit/miss counters are exposed for the /stats op.
class CandidateCache {
 public:
  /// Capacity in aliases; at least 1.
  explicit CandidateCache(size_t capacity);

  /// Cached lookup through `map`. Returns nullptr-equivalent (false) when
  /// the alias is unknown to Γ — unknown aliases are not cached, so a flood
  /// of garbage tokens cannot evict real entries.
  bool Lookup(const kb::CandidateMap& map, const std::string& alias,
              CachedCandidates* out);

  /// Removes every entry (hot reload of a new candidate map, tests).
  void Clear();

  /// Removes one alias's entry if cached (live candidate-map mutation:
  /// only the touched aliases are invalidated, the rest stay warm).
  /// Returns true if an entry was dropped.
  bool Invalidate(const std::string& alias);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<std::string, CachedCandidates>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_CANDIDATE_CACHE_H_

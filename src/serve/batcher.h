#ifndef BOOTLEG_SERVE_BATCHER_H_
#define BOOTLEG_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "util/status.h"

namespace bootleg::serve {

/// Policy knobs for dynamic micro-batching.
struct BatcherOptions {
  /// Largest batch one dispatch may coalesce.
  int max_batch = 8;
  /// How long the dispatcher waits for the batch to fill once the oldest
  /// queued request is in hand. 0 = dispatch immediately (no coalescing
  /// beyond what is already queued).
  int64_t max_wait_us = 500;
  /// Bounded queue depth; Submit rejects with Unavailable beyond this.
  size_t max_queue = 64;
  /// Consumer threads pulling batches. Each worker owns one preallocated
  /// InferenceScratch; the tensor kernels inside a batch additionally fan
  /// out onto the global util::ThreadPool.
  int workers = 1;
};

/// Dynamic micro-batcher: a bounded MPMC queue of single-sentence requests
/// that worker threads drain in coalesced batches.
///
///   - Coalescing: a worker takes up to max_batch requests; if fewer are
///     queued it waits at most max_wait_us (measured from the oldest queued
///     request's arrival) for stragglers, then dispatches what it has — the
///     batch-size/latency trade dial.
///   - Backpressure: Submit returns an Unavailable future immediately when
///     max_queue requests are already waiting; the connection thread turns
///     that into a reject-with-status reply instead of queueing unboundedly.
///   - Deadline shedding: a request carrying a deadline that expires while it
///     waits in the queue is completed with DeadlineExceeded at dequeue time
///     instead of burning a batch slot — under overload the server spends
///     compute only on replies a client still wants. Shed requests count in
///     ServerCounters::shed and the `serve.shed` registry counter; dispatched
///     deadline-bearing requests record their remaining slack in the
///     `serve.deadline_slack_us` histogram.
///   - Hot reload: RequestReload() marks a flag; the next worker to start a
///     batch performs the engine reload while holding the exclusive side of
///     a shared mutex, so weights never change under an in-flight batch.
///   - Graceful drain: Shutdown() stops intake, lets workers finish every
///     request already accepted, then joins them. Every accepted future is
///     fulfilled; nothing is dropped.
///
/// The batch function is injectable so tests can drive the queueing logic
/// with a synthetic (blockable) backend; production wires it to
/// InferenceEngine::Disambiguate.
class MicroBatcher {
 public:
  /// Processes a batch of items (pre-segmented sentences and raw documents
  /// mixed); must return one result per item — or an empty vector to signal
  /// the batch was abandoned because every member's deadline expired
  /// mid-compute (only meaningful when every item carries a deadline; the
  /// batcher completes such members with DeadlineExceeded and counts them as
  /// reclaimed sheds).
  using BatchFn = std::function<std::vector<SentenceResult>(
      const std::vector<BatchItem>& items, int worker)>;
  /// Performed under exclusive lock when a reload was requested.
  using ReloadFn = std::function<util::Status()>;
  /// Completion for one request: the result, or the shed/reject status.
  /// Invoked exactly once, from the submitting thread (fast-path rejects) or
  /// a worker thread; must not block.
  using Callback = std::function<void(util::StatusOr<SentenceResult>)>;

  /// Sentinel for requests without a deadline (never shed).
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  MicroBatcher(BatcherOptions options, BatchFn batch_fn, ReloadFn reload_fn,
               ServerCounters* counters);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one sentence. The future resolves when its batch completes.
  /// Fails fast with Unavailable (queue full) or FailedPrecondition (after
  /// Shutdown) — in both cases the future is already resolved on return.
  std::future<util::StatusOr<SentenceResult>> Submit(std::string text);

  /// Callback form used by the non-blocking front end. `done` may be invoked
  /// synchronously (queue full, shutting down, deadline already past) or
  /// later from a worker thread. A request whose `deadline` passes while it
  /// waits in the queue is shed with DeadlineExceeded instead of batched.
  /// `raw_text` marks a raw document (`disambiguate_text`): it is sentence-
  /// split and mention-extracted inside the engine rather than treated as
  /// one pre-segmented sentence.
  void SubmitAsync(std::string text,
                   std::chrono::steady_clock::time_point deadline,
                   Callback done);
  void SubmitAsync(std::string text, bool raw_text,
                   std::chrono::steady_clock::time_point deadline,
                   Callback done);

  /// Current queued (not yet dispatched) request count; the server's
  /// admission-control watermark reads this.
  size_t queue_depth() const;

  /// Configured queue bound (the default admission watermark).
  size_t max_queue() const { return options_.max_queue; }

  /// Asks the next batch boundary to run the reload hook.
  void RequestReload();

  /// A mutation run under the exclusive side of the reload mutex.
  using ExclusiveFn = std::function<util::Status()>;
  /// Completion for an exclusive task; invoked exactly once, from a worker
  /// thread (or the submitting thread when rejected); must not block.
  using ExclusiveDone = std::function<void(util::Status)>;

  /// Queues a mutation to run at the next batch boundary while every worker
  /// is excluded — the serialization point for live index mutations
  /// (add_entity): the engine's KB/candidate map/store view never change
  /// under an in-flight batch. Tasks run in submission order, interleaved
  /// with (and ordered against) reload requests. Rejected with
  /// FailedPrecondition after Shutdown; tasks accepted before Shutdown are
  /// drained, never dropped.
  void SubmitExclusive(ExclusiveFn fn, ExclusiveDone done);

  /// Stops intake, drains every accepted request, joins workers. Idempotent.
  void Shutdown();

  /// Observed maximum coalesced batch size (tests of the coalescing policy).
  int64_t max_batch_observed() const;

 private:
  struct Request {
    std::string text;
    bool raw_text = false;
    Callback done;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline = kNoDeadline;
  };

  void WorkerLoop(int worker);
  void RunBatch(std::vector<Request> batch, int worker);

  const BatcherOptions options_;
  const BatchFn batch_fn_;
  const ReloadFn reload_fn_;
  ServerCounters* const counters_;
  // Registry-owned (never deallocated), so the raw pointers are always valid.
  LatencyHistogram* const queue_wait_hist_;
  LatencyHistogram* const deadline_slack_hist_;
  obs::Gauge* const queue_depth_gauge_;
  obs::Counter* const shed_counter_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  std::deque<std::pair<ExclusiveFn, ExclusiveDone>> exclusive_;
  bool stopping_ = false;
  bool reload_requested_ = false;
  int64_t max_batch_observed_ = 0;

  // Workers hold the shared side while running a batch; a reload takes the
  // exclusive side, so it can never overlap inference.
  std::shared_mutex reload_mu_;

  std::vector<std::thread> workers_;
  bool shut_down_ = false;  // guards double Shutdown/join
};

}  // namespace bootleg::serve

#endif  // BOOTLEG_SERVE_BATCHER_H_

#include "robust/overshadow.h"

namespace bootleg::robust {

OvershadowedIndex OvershadowedIndex::Build(const kb::CandidateMap& candidates,
                                           const OvershadowOptions& options) {
  OvershadowedIndex index;
  index.options_ = options;
  for (const auto& [alias, cands] : candidates.map()) {
    if (static_cast<int64_t>(cands.size()) < options.min_candidates) continue;
    // Candidate lists are finalized sorted by prior, descending.
    if (cands.front().prior >= options.dominance) {
      index.dominant_.emplace(alias, cands.front().entity);
    }
  }
  return index;
}

kb::EntityId OvershadowedIndex::Dominant(const std::string& alias) const {
  auto it = dominant_.find(alias);
  return it == dominant_.end() ? kb::kInvalidId : it->second;
}

bool OvershadowedIndex::Overshadowed(const std::string& alias,
                                     kb::EntityId gold) const {
  auto it = dominant_.find(alias);
  return it != dominant_.end() && it->second != gold;
}

}  // namespace bootleg::robust

#ifndef BOOTLEG_ROBUST_ROBUST_EVAL_H_
#define BOOTLEG_ROBUST_ROBUST_EVAL_H_

#include <vector>

#include "eval/evaluator.h"
#include "robust/noise.h"
#include "robust/overshadow.h"

namespace bootleg::robust {

/// One noisy eval slice: the same sentences perturbed at `rate` via
/// NoiseOptions::FromRate, then evaluated with the same model and builder.
struct NoisySlice {
  double rate = 0.0;
  /// The perturbed sentences, owned here because every PredictionRecord in
  /// `results` points back into them.
  std::vector<data::Sentence> sentences;
  eval::ResultSet results;
};

/// The full robustness report: the clean run plus one slice per noise rate.
/// Every ResultSet (clean included) is already overshadow-tagged.
struct RobustReport {
  eval::ResultSet clean;
  std::vector<NoisySlice> noisy;
};

/// Tags every record's `overshadowed` bit using the alias candidate
/// generation actually resolved through (`candidate_alias` when the surface
/// was noised, `alias` otherwise). Only candidate-generatable mentions can
/// be overshadowed — the slice measures prior-vs-context, not Γ misses.
void TagOvershadowed(const OvershadowedIndex& index, eval::ResultSet* results);

/// F1 over eligible overshadowed mentions.
eval::Prf OvershadowedPrf(const eval::ResultSet& results);

/// Fraction (percent) of eligible mentions with a prediction where the model
/// chose the candidate-prior argmax. Restricted by `keep` (pass an
/// always-true predicate for the overall rate). Returns 0 over an empty set.
double PriorFollowRate(
    const eval::ResultSet& results,
    const std::function<bool(const eval::PredictionRecord&)>& keep);

/// Overall prior-follow rate over all eligible predicted mentions.
double PriorFollowRate(const eval::ResultSet& results);

/// Runs the clean evaluation plus one noisy evaluation per rate in `rates`
/// (each seeded from `seed` via NoiseOptions::FromRate), overshadow-tags
/// every result set, and returns the report. Deterministic for a fixed seed
/// at any `num_threads`; an empty `rates` list yields just the tagged clean
/// run. Rate 0.0 slices evaluate the identical sentence objects, so their
/// results are bit-identical to `clean`.
RobustReport RunRobustEvaluation(eval::NedScorer* model,
                                 const std::vector<data::Sentence>& sentences,
                                 const data::ExampleBuilder& builder,
                                 const data::ExampleOptions& options,
                                 const data::EntityCounts& counts,
                                 const OvershadowedIndex& index,
                                 const std::vector<double>& rates,
                                 uint64_t seed = 1234, int num_threads = 0);

}  // namespace bootleg::robust

#endif  // BOOTLEG_ROBUST_ROBUST_EVAL_H_

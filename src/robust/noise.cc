#include "robust/noise.h"

#include <cctype>

namespace bootleg::robust {

namespace {

/// splitmix64 — mixes (seed, index) into an uncorrelated per-sentence seed so
/// neighboring sentences never share a random stream.
uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string ToUpperAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

NoiseOptions NoiseOptions::FromRate(double rate, uint64_t seed) {
  NoiseOptions options;
  options.char_edit_rate = rate;
  options.case_fold_rate = rate / 2.0;
  options.context_dropout_rate = rate / 2.0;
  options.seed = seed;
  return options;
}

std::string NoiseModel::ApplyCharEdit(const std::string& token,
                                      util::Rng* rng) {
  std::string out = token;
  const int64_t n = static_cast<int64_t>(out.size());
  switch (rng->UniformInt(0, 2)) {
    case 0: {  // swap adjacent characters
      if (n < 2) break;
      const int64_t i = rng->UniformInt(0, n - 2);
      std::swap(out[static_cast<size_t>(i)], out[static_cast<size_t>(i + 1)]);
      break;
    }
    case 1: {  // drop one character (never down to the empty token)
      if (n < 2) break;
      const int64_t i = rng->UniformInt(0, n - 1);
      out.erase(static_cast<size_t>(i), 1);
      break;
    }
    default: {  // insert a random lower-case letter
      const int64_t i = rng->UniformInt(0, n);
      out.insert(static_cast<size_t>(i), 1,
                 static_cast<char>('a' + rng->UniformInt(0, 25)));
      break;
    }
  }
  return out;
}

data::Sentence NoiseModel::PerturbSentence(const data::Sentence& sentence,
                                           uint64_t sentence_index) const {
  if (!Active()) return sentence;  // rate 0.0 is the identity, bit for bit
  data::Sentence out = sentence;
  util::Rng rng(MixSeed(options_.seed, sentence_index));

  // Which tokens sit inside a mention span (spans are inclusive).
  std::vector<bool> in_mention(out.tokens.size(), false);
  for (const data::Mention& m : out.mentions) {
    for (int64_t t = m.span_start;
         t <= m.span_end && t < static_cast<int64_t>(out.tokens.size()); ++t) {
      if (t >= 0) in_mention[static_cast<size_t>(t)] = true;
    }
  }

  // Pass 1 — token corruption, in token order (one RNG stream, so the draw
  // sequence is a pure function of the token list).
  std::vector<bool> changed(out.tokens.size(), false);
  for (size_t t = 0; t < out.tokens.size(); ++t) {
    std::string& tok = out.tokens[t];
    const std::string before = tok;
    if (options_.char_edit_rate > 0.0 &&
        rng.Bernoulli(options_.char_edit_rate)) {
      tok = ApplyCharEdit(tok, &rng);
    }
    if (options_.case_fold_rate > 0.0 &&
        rng.Bernoulli(options_.case_fold_rate)) {
      tok = ToUpperAscii(tok);
    }
    changed[t] = tok != before;
  }

  // Rewire corrupted mentions: candidate generation keeps the clean alias,
  // the surface (and the encoder's view of it) becomes the corrupted one.
  for (data::Mention& m : out.mentions) {
    bool touched = false;
    for (int64_t t = m.span_start;
         t <= m.span_end && t < static_cast<int64_t>(out.tokens.size()); ++t) {
      if (t >= 0 && changed[static_cast<size_t>(t)]) touched = true;
    }
    if (!touched) continue;
    if (m.candidate_alias.empty()) m.candidate_alias = m.alias;
    std::string surface;
    for (int64_t t = m.span_start;
         t <= m.span_end && t < static_cast<int64_t>(out.tokens.size()); ++t) {
      if (t < 0) continue;
      if (!surface.empty()) surface += ' ';
      surface += out.tokens[static_cast<size_t>(t)];
    }
    m.alias = surface;
  }

  // Pass 2 — context dropout over non-mention tokens, then span remapping.
  if (options_.context_dropout_rate > 0.0) {
    std::vector<bool> keep(out.tokens.size(), true);
    for (size_t t = 0; t < out.tokens.size(); ++t) {
      if (!in_mention[t] && rng.Bernoulli(options_.context_dropout_rate)) {
        keep[t] = false;
      }
    }
    std::vector<int64_t> new_index(out.tokens.size(), -1);
    std::vector<std::string> kept;
    kept.reserve(out.tokens.size());
    for (size_t t = 0; t < out.tokens.size(); ++t) {
      if (!keep[t]) continue;
      new_index[t] = static_cast<int64_t>(kept.size());
      kept.push_back(std::move(out.tokens[t]));
    }
    for (data::Mention& m : out.mentions) {
      if (m.span_start >= 0 &&
          m.span_start < static_cast<int64_t>(new_index.size())) {
        m.span_start = new_index[static_cast<size_t>(m.span_start)];
      }
      if (m.span_end >= 0 &&
          m.span_end < static_cast<int64_t>(new_index.size())) {
        m.span_end = new_index[static_cast<size_t>(m.span_end)];
      }
    }
    out.tokens = std::move(kept);
  }
  return out;
}

std::vector<data::Sentence> NoiseModel::PerturbAll(
    const std::vector<data::Sentence>& sentences) const {
  if (!Active()) return sentences;
  std::vector<data::Sentence> out;
  out.reserve(sentences.size());
  for (size_t i = 0; i < sentences.size(); ++i) {
    out.push_back(PerturbSentence(sentences[i], static_cast<uint64_t>(i)));
  }
  return out;
}

}  // namespace bootleg::robust

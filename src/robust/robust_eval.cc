#include "robust/robust_eval.h"

#include "obs/trace.h"

namespace bootleg::robust {

void TagOvershadowed(const OvershadowedIndex& index,
                     eval::ResultSet* results) {
  for (eval::PredictionRecord& rec : *results->mutable_records()) {
    const std::string& lookup =
        rec.candidate_alias.empty() ? rec.alias : rec.candidate_alias;
    rec.overshadowed =
        rec.gold_in_candidates && index.Overshadowed(lookup, rec.gold);
  }
}

eval::Prf OvershadowedPrf(const eval::ResultSet& results) {
  return results.Filtered(
      [](const eval::PredictionRecord& r) { return r.overshadowed; });
}

double PriorFollowRate(
    const eval::ResultSet& results,
    const std::function<bool(const eval::PredictionRecord&)>& keep) {
  int64_t predicted = 0, followed = 0;
  for (const eval::PredictionRecord& r : results.records()) {
    if (!r.Eligible() || !r.HasPrediction() || !keep(r)) continue;
    ++predicted;
    if (r.prior_argmax_predicted) ++followed;
  }
  return predicted == 0
             ? 0.0
             : 100.0 * static_cast<double>(followed) / predicted;
}

double PriorFollowRate(const eval::ResultSet& results) {
  return PriorFollowRate(results,
                         [](const eval::PredictionRecord&) { return true; });
}

RobustReport RunRobustEvaluation(eval::NedScorer* model,
                                 const std::vector<data::Sentence>& sentences,
                                 const data::ExampleBuilder& builder,
                                 const data::ExampleOptions& options,
                                 const data::EntityCounts& counts,
                                 const OvershadowedIndex& index,
                                 const std::vector<double>& rates,
                                 uint64_t seed, int num_threads) {
  OBS_SPAN("robust.eval");
  RobustReport report;
  report.clean = eval::RunEvaluation(model, sentences, builder, options,
                                     counts, num_threads);
  TagOvershadowed(index, &report.clean);
  for (const double rate : rates) {
    NoisySlice slice;
    slice.rate = rate;
    const NoiseModel noise(NoiseOptions::FromRate(rate, seed));
    // PerturbAll is the identity at rate 0 — the slice then re-evaluates
    // sentences equal to the originals and is bit-identical to `clean`.
    slice.sentences = noise.PerturbAll(sentences);
    slice.results = eval::RunEvaluation(model, slice.sentences, builder,
                                        options, counts, num_threads);
    TagOvershadowed(index, &slice.results);
    report.noisy.push_back(std::move(slice));
  }
  return report;
}

}  // namespace bootleg::robust

#ifndef BOOTLEG_ROBUST_OVERSHADOW_H_
#define BOOTLEG_ROBUST_OVERSHADOW_H_

#include <string>
#include <unordered_map>

#include "kb/candidate_map.h"

namespace bootleg::robust {

/// Mining thresholds for overshadowed aliases (NICE, "Focusing on Context is
/// NICE": a rare entity sharing an alias with a dominant head entity).
struct OvershadowOptions {
  /// An alias is "skewed" when its top candidate's prior is at least this.
  float dominance = 0.8f;
  /// Skew is only meaningful for genuinely ambiguous aliases.
  int64_t min_candidates = 2;
};

/// Index of aliases whose candidate prior distribution is extremely skewed.
/// A mention is *overshadowed* when its alias is skewed and its gold entity
/// is not the dominant candidate — the prior actively argues against the
/// right answer, so only context can save the model.
class OvershadowedIndex {
 public:
  OvershadowedIndex() = default;

  /// Scans the finalized candidate map for skewed aliases. Deterministic:
  /// the result depends only on the map contents and the thresholds.
  static OvershadowedIndex Build(const kb::CandidateMap& candidates,
                                 const OvershadowOptions& options = {});

  const OvershadowOptions& options() const { return options_; }
  int64_t num_skewed_aliases() const {
    return static_cast<int64_t>(dominant_.size());
  }

  /// True when `alias` is skewed (top prior >= dominance over >= 2 cands).
  bool Skewed(const std::string& alias) const {
    return dominant_.count(alias) > 0;
  }

  /// The dominant entity of a skewed alias, or kInvalidId.
  kb::EntityId Dominant(const std::string& alias) const;

  /// The overshadowed predicate: skewed alias, gold is not the head.
  bool Overshadowed(const std::string& alias, kb::EntityId gold) const;

 private:
  OvershadowOptions options_;
  std::unordered_map<std::string, kb::EntityId> dominant_;
};

}  // namespace bootleg::robust

#endif  // BOOTLEG_ROBUST_OVERSHADOW_H_

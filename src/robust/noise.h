#ifndef BOOTLEG_ROBUST_NOISE_H_
#define BOOTLEG_ROBUST_NOISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "util/rng.h"

namespace bootleg::robust {

/// Calibrated corruption rates for the noise-injection transform (the
/// failure modes of Eshel et al., "NED for Noisy Text": typos, casing loss,
/// truncated context). All rates are per-token Bernoulli probabilities;
/// everything at 0.0 makes the transform the identity, bit for bit.
struct NoiseOptions {
  /// Probability a token receives one character edit (adjacent swap, drop,
  /// or insert, chosen uniformly).
  double char_edit_rate = 0.0;
  /// Probability a token is upper-cased. Corpus tokens are stored
  /// lower-cased, so a folded token misses the vocabulary exactly the way a
  /// casing-corrupted crawl does.
  double case_fold_rate = 0.0;
  /// Probability a non-mention context token is dropped outright (truncated
  /// or garbled context). Mention tokens are never dropped — the mention
  /// still exists, the model just sees less evidence around it.
  double context_dropout_rate = 0.0;
  /// Base seed. Each sentence derives its own generator from (seed, sentence
  /// index), so the transform is deterministic per sentence regardless of
  /// evaluation order or thread count.
  uint64_t seed = 1234;

  /// The single-dial calibration used by the `noisy@{rate}` eval slices:
  /// char edits at `rate`, case folding and context dropout at `rate / 2`.
  static NoiseOptions FromRate(double rate, uint64_t seed = 1234);
};

/// Deterministic, seedable sentence perturber. The transform runs over
/// already-tokenized corpus sentences (the representation every eval
/// consumes), so any existing benchmark can be re-run clean vs. noisy.
///
/// Mention handling is the load-bearing design point: when a mention's
/// surface token is corrupted, the mention's `candidate_alias` is pinned to
/// the original surface before `alias` is rewritten. Candidate generation
/// (and therefore eval eligibility) still resolves through Γ with the clean
/// alias, while the encoder sees the corrupted — typically OOV — token. The
/// noisy slices thereby measure exactly the encoder/context degradation, not
/// a candidate-generation artifact.
class NoiseModel {
 public:
  explicit NoiseModel(const NoiseOptions& options) : options_(options) {}

  const NoiseOptions& options() const { return options_; }

  /// True when any rate is non-zero; false means Perturb* are the identity.
  bool Active() const {
    return options_.char_edit_rate > 0.0 || options_.case_fold_rate > 0.0 ||
           options_.context_dropout_rate > 0.0;
  }

  /// Perturbs one sentence. `sentence_index` keys the per-sentence RNG
  /// stream: the same (seed, index, sentence) triple always produces the
  /// same output, independent of every other sentence.
  data::Sentence PerturbSentence(const data::Sentence& sentence,
                                 uint64_t sentence_index) const;

  /// Perturbs a whole split, indexing sentences by position.
  std::vector<data::Sentence> PerturbAll(
      const std::vector<data::Sentence>& sentences) const;

  /// One uniformly chosen character edit (swap / drop / insert) applied to
  /// `token`. Exposed for tests and for the serve-drill traffic generator.
  static std::string ApplyCharEdit(const std::string& token, util::Rng* rng);

 private:
  NoiseOptions options_;
};

}  // namespace bootleg::robust

#endif  // BOOTLEG_ROBUST_NOISE_H_

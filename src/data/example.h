#ifndef BOOTLEG_DATA_EXAMPLE_H_
#define BOOTLEG_DATA_EXAMPLE_H_

#include <unordered_map>
#include <vector>

#include "data/corpus.h"
#include "kb/candidate_map.h"
#include "text/vocabulary.h"

namespace bootleg::data {

/// A model-ready mention: the span, the candidate set Γ(m) with priors, and
/// the gold index within the candidates (-1 when candidate generation missed
/// the gold — such mentions are filtered from eval, per the paper).
struct MentionExample {
  int64_t span_start = 0;
  int64_t span_end = 0;
  std::vector<kb::EntityId> candidates;
  std::vector<float> priors;
  int64_t gold_index = -1;
  kb::EntityId gold = kb::kInvalidId;
  bool weak_labeled = false;
  /// Index of this mention in the source Sentence::mentions (for slice and
  /// error analyses that need the raw sentence).
  int64_t sentence_mention_index = -1;

  bool GoldInCandidates() const { return gold_index >= 0; }
  bool HasMultipleCandidates() const { return candidates.size() > 1; }
};

/// A model-ready sentence: token ids plus its mentions.
struct SentenceExample {
  std::vector<int64_t> token_ids;
  std::vector<MentionExample> mentions;
};

/// Options controlling example construction.
struct ExampleOptions {
  /// Include weak-labeled mentions (training uses them; evaluation is over
  /// true anchors only, per the paper's metrics section).
  bool include_weak_labels = true;
  /// Prepend "<doc title> [SEP]" to the tokens — the paper's document
  /// encoding for AIDA.
  bool prepend_title = false;
  /// Route unknown tokens through Vocabulary::IdWithTypoFallback so a
  /// single-character typo recovers the clean embedding instead of [UNK].
  /// In-vocabulary tokens encode identically either way, so clean text is
  /// bit-identical with the flag on or off.
  bool char_fallback = false;
};

/// Converts corpus sentences into model-ready examples by tokenizing against
/// a vocabulary and running candidate generation through Γ.
class ExampleBuilder {
 public:
  ExampleBuilder(const kb::CandidateMap* candidates, const text::Vocabulary* vocab)
      : candidates_(candidates), vocab_(vocab) {}

  SentenceExample Build(const Sentence& sentence, const ExampleOptions& options) const;

  std::vector<SentenceExample> BuildAll(const std::vector<Sentence>& sentences,
                                        const ExampleOptions& options) const;

 private:
  const kb::CandidateMap* candidates_;
  const text::Vocabulary* vocab_;
};

/// Popularity bucket by training-time gold occurrence count. Thresholds are
/// the paper's: tail ≤ 10, torso 11–1000, head > 1000; unseen = 0.
enum class PopularityBucket { kUnseen = 0, kTail = 1, kTorso = 2, kHead = 3 };

const char* PopularityBucketName(PopularityBucket b);

/// Counts how often each entity is a (labeled) gold in training, Wikipedia
/// anchors plus weak labels — "the number of times an entity is seen by
/// Bootleg".
class EntityCounts {
 public:
  static EntityCounts FromTraining(const std::vector<Sentence>& train,
                                   bool include_weak = true);

  int64_t Count(kb::EntityId e) const;
  PopularityBucket BucketOf(kb::EntityId e) const;

  const std::unordered_map<kb::EntityId, int64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<kb::EntityId, int64_t> counts_;
};

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_EXAMPLE_H_

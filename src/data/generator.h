#ifndef BOOTLEG_DATA_GENERATOR_H_
#define BOOTLEG_DATA_GENERATOR_H_

#include <vector>

#include "data/corpus.h"
#include "data/world.h"
#include "util/rng.h"

namespace bootleg::data {

/// Generates the synthetic Wikipedia corpus from a SynthWorld. Pages are
/// generated per split (so unseen-holdout entities never become train golds),
/// sentences instantiate the four reasoning-pattern templates, anchors are
/// labeled with dropout (Wikipedia's missing links), and pronoun/alt-name
/// page references are left unlabeled for the weak labeler to recover.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(const SynthWorld* world);

  /// Full corpus with page-based 80/10/10 splits.
  Corpus Generate();

  /// KORE50-like suite: short, difficult sentences whose gold entity is the
  /// lowest-prior candidate of its alias.
  std::vector<Sentence> GenerateKoreLike(int64_t num_sentences);

  /// RSS500-like suite: news-style sentences with a single mention sampled
  /// by natural popularity.
  std::vector<Sentence> GenerateRssLike(int64_t num_sentences);

  /// AIDA-like suite: documents of several sentences sharing a title entity;
  /// each sentence carries the document title (encoded as title [SEP]
  /// sentence downstream, following the paper).
  std::vector<Sentence> GenerateAidaLike(int64_t num_docs,
                                         int64_t sentences_per_doc);

 private:
  enum class Template { kAffordance, kRelation, kConsistency, kMemorization };

  Template SampleTemplate();
  Sentence MakeSentence(kb::EntityId gold, bool allow_holdout, Template tmpl);
  Sentence MakeAffordance(kb::EntityId gold);
  Sentence MakeRelation(kb::EntityId gold, bool allow_holdout);
  Sentence MakeConsistency(kb::EntityId gold, bool allow_holdout);
  Sentence MakeMemorization(kb::EntityId gold);
  Sentence MakePageRef(kb::EntityId page_entity);

  void AddMention(Sentence* s, kb::EntityId gold, const std::string& alias,
                  MentionKind kind, bool labeled);
  void AppendFiller(Sentence* s, int64_t count);
  void MaybeAddCue(Sentence* s, kb::EntityId gold);
  void MaybeAddTypeKeyword(Sentence* s, kb::EntityId gold,
                           const std::string& alias);

  /// Picks the type of `gold` that the fewest other candidates of `alias`
  /// share — the discriminative type a Wikipedia sentence would evoke.
  kb::TypeId DiscriminativeType(kb::EntityId gold, const std::string& alias);
  void FinishSentence(Sentence* s);

  std::vector<Sentence> GeneratePages(int64_t num_pages, bool allow_holdout,
                                      double holdout_boost, int64_t* next_page_id);

  const SynthWorld* world_;
  util::Rng rng_;
};

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_GENERATOR_H_

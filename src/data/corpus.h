#ifndef BOOTLEG_DATA_CORPUS_H_
#define BOOTLEG_DATA_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/kb.h"

namespace bootleg::data {

/// How a mention's label entered the data. Anchor mentions mirror Wikipedia
/// anchor links; pronoun/alt-name mentions start unlabeled (Wikipedia's
/// missing-anchor problem) and can be recovered by weak labeling.
enum class MentionKind : int8_t {
  kAnchor = 0,
  kPronoun = 1,
  kAltName = 2,
};

/// A mention span inside a sentence. Spans are token indices, inclusive.
struct Mention {
  int64_t span_start = 0;
  int64_t span_end = 0;
  std::string alias;            // surface form (single lower-case token)
  /// Alias used for candidate generation when it differs from the surface
  /// form — pronoun weak labels resolve candidates through an alias of the
  /// page entity ("he" is not in Γ). Empty means "use `alias`".
  std::string candidate_alias;
  kb::EntityId gold = kb::kInvalidId;
  MentionKind kind = MentionKind::kAnchor;
  bool labeled = false;         // participates in training
  bool weak_labeled = false;    // label recovered by the weak labeler
};

/// One training/eval sentence, tied to the "Wikipedia page" it came from.
struct Sentence {
  std::vector<std::string> tokens;
  std::vector<Mention> mentions;
  kb::EntityId page_entity = kb::kInvalidId;  // entity whose page this is
  int64_t page_id = -1;                       // page grouping for splits
  std::string doc_title;                      // document title (AIDA-style)
};

/// A corpus with page-based train/dev/test splits (sentences of one page
/// never straddle splits, matching the paper's 80/10/10 page split).
struct Corpus {
  std::vector<Sentence> train;
  std::vector<Sentence> dev;
  std::vector<Sentence> test;

  int64_t TotalSentences() const {
    return static_cast<int64_t>(train.size() + dev.size() + test.size());
  }
};

/// Number of labeled mentions in a sentence set (weak labels included when
/// `include_weak` is true).
int64_t CountLabeledMentions(const std::vector<Sentence>& sentences,
                             bool include_weak = true);

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_CORPUS_H_

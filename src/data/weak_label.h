#ifndef BOOTLEG_DATA_WEAK_LABEL_H_
#define BOOTLEG_DATA_WEAK_LABEL_H_

#include <vector>

#include "data/corpus.h"
#include "kb/kb.h"

namespace bootleg::data {

/// Outcome of a weak-labeling pass.
struct WeakLabelStats {
  int64_t anchor_labels = 0;      // labels present before the pass
  int64_t pronoun_labels = 0;     // added by the pronoun heuristic
  int64_t altname_labels = 0;     // added by the alternative-name heuristic
  int64_t total_labels_after = 0;

  double Multiplier() const {
    return anchor_labels == 0
               ? 1.0
               : static_cast<double>(total_labels_after) /
                     static_cast<double>(anchor_labels);
  }
};

/// Applies the paper's two weak-labeling heuristics (Sec. 3.3.2) in place:
///   1. pronouns matching the gender of a person's page are labeled as that
///      person;
///   2. known alternative names of the page entity appearing in sentences of
///      its page are labeled as the page entity.
/// The second heuristic is deliberately noisy: an unlabeled mention whose
/// surface form is an alias of the page entity is labeled as the page entity
/// even when the true referent differs — matching the noise the paper
/// discusses for torso entities.
WeakLabelStats ApplyWeakLabeling(const kb::KnowledgeBase& kb,
                                 std::vector<Sentence>* sentences);

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_WEAK_LABEL_H_

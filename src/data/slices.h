#ifndef BOOTLEG_DATA_SLICES_H_
#define BOOTLEG_DATA_SLICES_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/corpus.h"
#include "kb/kb.h"

namespace bootleg::data {

/// The four reasoning-pattern slices of Section 5.
enum class PatternSlice {
  kEntity = 0,       // gold has no relation or type signals
  kConsistency = 1,  // ≥3 sequential distinct golds sharing a type
  kKgRelation = 2,   // golds connected by a known KG relation
  kAffordance = 3,   // sentence contains a TF-IDF affordance keyword of the
                     // gold's type
};

const char* PatternSliceName(PatternSlice s);

/// TF-IDF-mined affordance keywords per type (top `top_k` tokens by TF-IDF
/// over training sentences whose gold entity carries that type), mirroring
/// the paper's affordance-slice construction.
class AffordanceKeywords {
 public:
  static AffordanceKeywords MineTfIdf(const kb::KnowledgeBase& kb,
                                      const std::vector<Sentence>& train,
                                      int top_k = 15);

  const std::vector<std::string>& KeywordsFor(kb::TypeId t) const;
  bool IsKeyword(kb::TypeId t, const std::string& token) const;

  /// Fraction of eval mentions whose gold type's keywords appear in the
  /// sentence (coverage statistic from Appendix D).
  double Coverage(const kb::KnowledgeBase& kb,
                  const std::vector<Sentence>& sentences) const;

 private:
  std::vector<std::vector<std::string>> keywords_;
  std::vector<std::unordered_set<std::string>> keyword_sets_;
  std::vector<std::string> empty_;
};

/// True if mention `mention_idx` of `sentence` belongs to `slice`.
/// `affordance` is required only for kAffordance.
bool InSlice(const kb::KnowledgeBase& kb, const Sentence& sentence,
             size_t mention_idx, PatternSlice slice,
             const AffordanceKeywords* affordance);

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_SLICES_H_

#ifndef BOOTLEG_DATA_CORPUS_IO_H_
#define BOOTLEG_DATA_CORPUS_IO_H_

#include <string>

#include "data/corpus.h"
#include "util/status.h"

namespace bootleg::data {

/// Binary corpus snapshot (all three splits, mention annotations included).
util::Status SaveCorpus(const Corpus& corpus, const std::string& path);
util::Status LoadCorpus(const std::string& path, Corpus* corpus);

/// Human-readable one-line rendering: tokens with inline [alias→gold]
/// annotations, e.g. "the [ak_3→ttl_e41|WL] was t2kw0 f7 ."
/// Requires the KB only for entity titles; pass nullptr to print raw ids.
std::string RenderSentence(const Sentence& sentence,
                           const kb::KnowledgeBase* kb = nullptr);

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_CORPUS_IO_H_

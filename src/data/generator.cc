#include "data/generator.h"

#include <algorithm>

namespace bootleg::data {

using kb::EntityId;
using kb::RelationId;
using kb::TypeId;

namespace {

int64_t CountLabeled(const Sentence& s, bool include_weak) {
  int64_t n = 0;
  for (const Mention& m : s.mentions) {
    if (m.labeled && (include_weak || !m.weak_labeled)) ++n;
  }
  return n;
}

}  // namespace

int64_t CountLabeledMentions(const std::vector<Sentence>& sentences,
                             bool include_weak) {
  int64_t n = 0;
  for (const Sentence& s : sentences) n += CountLabeled(s, include_weak);
  return n;
}

CorpusGenerator::CorpusGenerator(const SynthWorld* world)
    : world_(world), rng_(world->config.seed ^ 0x9e3779b97f4a7c15ull) {}

void CorpusGenerator::AddMention(Sentence* s, EntityId gold,
                                 const std::string& alias, MentionKind kind,
                                 bool labeled) {
  Mention m;
  m.span_start = static_cast<int64_t>(s->tokens.size());
  m.span_end = m.span_start;
  m.alias = alias;
  m.gold = gold;
  m.kind = kind;
  m.labeled = labeled;
  s->tokens.push_back(alias);
  s->mentions.push_back(std::move(m));
}

void CorpusGenerator::AppendFiller(Sentence* s, int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    s->tokens.push_back(rng_.Choice(world_->filler_words));
  }
}

void CorpusGenerator::MaybeAddCue(Sentence* s, EntityId gold) {
  if (rng_.Uniform() < world_->config.extra_cue_prob) {
    const auto& cues = world_->entity_cues[static_cast<size_t>(gold)];
    if (!cues.empty()) s->tokens.push_back(rng_.Choice(cues));
  }
}

kb::TypeId CorpusGenerator::DiscriminativeType(EntityId gold,
                                               const std::string& alias) {
  const auto& types = world_->kb.entity(gold).types;
  BOOTLEG_CHECK(!types.empty());
  const auto* cands = world_->candidates.Lookup(alias);
  if (cands == nullptr || cands->size() < 2) return rng_.Choice(types);
  TypeId best = types.front();
  int64_t best_collisions = std::numeric_limits<int64_t>::max();
  for (TypeId t : types) {
    int64_t collisions = 0;
    for (const kb::Candidate& c : *cands) {
      if (c.entity == gold) continue;
      const auto& other_types = world_->kb.entity(c.entity).types;
      if (std::find(other_types.begin(), other_types.end(), t) !=
          other_types.end()) {
        ++collisions;
      }
    }
    if (collisions < best_collisions) {
      best_collisions = collisions;
      best = t;
    }
  }
  return best;
}

void CorpusGenerator::MaybeAddTypeKeyword(Sentence* s, EntityId gold,
                                          const std::string& alias) {
  if (rng_.Uniform() >= world_->config.extra_affordance_prob) return;
  const auto& types = world_->kb.entity(gold).types;
  if (types.empty()) return;
  const TypeId t = DiscriminativeType(gold, alias);
  s->tokens.push_back(rng_.Choice(world_->type_keywords[static_cast<size_t>(t)]));
}

void CorpusGenerator::FinishSentence(Sentence* s) { s->tokens.push_back("."); }

CorpusGenerator::Template CorpusGenerator::SampleTemplate() {
  const SynthConfig& c = world_->config;
  const double u = rng_.Uniform();
  if (u < c.relation_sentence_prob) return Template::kRelation;
  if (u < c.relation_sentence_prob + c.consistency_sentence_prob) {
    return Template::kConsistency;
  }
  if (u < c.relation_sentence_prob + c.consistency_sentence_prob +
              c.memorization_sentence_prob) {
    return Template::kMemorization;
  }
  return Template::kAffordance;
}

Sentence CorpusGenerator::MakeAffordance(EntityId gold) {
  const kb::Entity& e = world_->kb.entity(gold);
  if (e.types.empty()) return MakeMemorization(gold);
  Sentence s;
  const std::string alias = world_->SampleAlias(gold, &rng_);
  // The affordance keyword evokes the *discriminative* type of the gold, as
  // the textual context around a real anchor does ("ordered a Manhattan").
  const TypeId t = DiscriminativeType(gold, alias);
  const auto& kws = world_->type_keywords[static_cast<size_t>(t)];
  const bool keyword_first = rng_.Bernoulli(0.35);
  if (keyword_first) {
    s.tokens.push_back(rng_.Choice(kws));
    s.tokens.push_back("the");
    AddMention(&s, gold, alias, MentionKind::kAnchor, /*labeled=*/true);
    s.tokens.push_back("was");
  } else {
    s.tokens.push_back("the");
    AddMention(&s, gold, alias, MentionKind::kAnchor, /*labeled=*/true);
    s.tokens.push_back("was");
    s.tokens.push_back(rng_.Choice(kws));
    if (rng_.Bernoulli(0.4)) s.tokens.push_back(rng_.Choice(kws));
  }
  MaybeAddCue(&s, gold);
  AppendFiller(&s, rng_.UniformInt(1, 3));
  FinishSentence(&s);
  return s;
}

Sentence CorpusGenerator::MakeRelation(EntityId gold, bool allow_holdout) {
  const auto& neighbors = world_->kb.Neighbors(gold);
  // Pick a neighbor respecting the holdout constraint.
  std::vector<std::pair<EntityId, RelationId>> eligible;
  for (const auto& [other, rel] : neighbors) {
    if (allow_holdout || !world_->is_unseen_holdout[static_cast<size_t>(other)]) {
      eligible.emplace_back(other, rel);
    }
  }
  if (eligible.empty()) return MakeAffordance(gold);
  const auto [other, rel] = rng_.Choice(eligible);
  Sentence s;
  const std::string gold_alias = world_->SampleAlias(gold, &rng_);
  s.tokens.push_back("the");
  AddMention(&s, gold, gold_alias, MentionKind::kAnchor, /*labeled=*/true);
  s.tokens.push_back(
      rng_.Choice(world_->relation_keywords[static_cast<size_t>(rel)]));
  s.tokens.push_back("the");
  const std::string other_alias = world_->SampleAlias(other, &rng_);
  AddMention(&s, other, other_alias, MentionKind::kAnchor, /*labeled=*/true);
  MaybeAddTypeKeyword(&s, gold, gold_alias);
  MaybeAddTypeKeyword(&s, other, other_alias);
  MaybeAddCue(&s, gold);
  AppendFiller(&s, rng_.UniformInt(0, 2));
  FinishSentence(&s);
  return s;
}

Sentence CorpusGenerator::MakeConsistency(EntityId gold, bool allow_holdout) {
  const kb::Entity& e = world_->kb.entity(gold);
  if (e.types.empty()) return MakeMemorization(gold);
  // Find a type of `gold` with at least three member entities.
  for (TypeId t : e.types) {
    const auto& members = world_->entities_by_type[static_cast<size_t>(t)];
    if (members.size() < 3) continue;
    std::vector<EntityId> others;
    for (int attempt = 0; attempt < 40 && others.size() < 2; ++attempt) {
      const EntityId cand = rng_.Choice(members);
      if (cand == gold) continue;
      if (!allow_holdout && world_->is_unseen_holdout[static_cast<size_t>(cand)]) {
        continue;
      }
      if (std::find(others.begin(), others.end(), cand) != others.end()) continue;
      others.push_back(cand);
    }
    if (others.size() < 2) continue;
    Sentence s;
    AddMention(&s, gold, world_->SampleAlias(gold, &rng_), MentionKind::kAnchor,
               /*labeled=*/true);
    s.tokens.push_back(",");
    AddMention(&s, others[0], world_->SampleAlias(others[0], &rng_),
               MentionKind::kAnchor, /*labeled=*/true);
    s.tokens.push_back(rng_.Bernoulli(0.5) ? "or" : "and");
    AddMention(&s, others[1], world_->SampleAlias(others[1], &rng_),
               MentionKind::kAnchor, /*labeled=*/true);
    s.tokens.push_back("are");
    // The optional keyword evokes the *shared* type — the consistency cue.
    if (rng_.Uniform() < world_->config.extra_affordance_prob) {
      s.tokens.push_back(
          rng_.Choice(world_->type_keywords[static_cast<size_t>(t)]));
    }
    AppendFiller(&s, rng_.UniformInt(0, 2));
    FinishSentence(&s);
    return s;
  }
  return MakeAffordance(gold);
}

Sentence CorpusGenerator::MakeMemorization(EntityId gold) {
  Sentence s;
  const std::string alias = world_->SampleAlias(gold, &rng_);
  s.tokens.push_back("the");
  AddMention(&s, gold, alias, MentionKind::kAnchor, /*labeled=*/true);
  const auto& cues = world_->entity_cues[static_cast<size_t>(gold)];
  for (const std::string& cue : cues) s.tokens.push_back(cue);
  MaybeAddTypeKeyword(&s, gold, alias);
  AppendFiller(&s, rng_.UniformInt(1, 3));
  FinishSentence(&s);
  return s;
}

Sentence CorpusGenerator::MakePageRef(EntityId page_entity) {
  const kb::Entity& e = world_->kb.entity(page_entity);
  Sentence s;
  const bool use_pronoun = e.IsPerson() && rng_.Bernoulli(0.6);
  std::string candidate_alias;
  if (use_pronoun) {
    const std::string pron = e.gender == 'f' ? "she" : "he";
    AddMention(&s, page_entity, pron, MentionKind::kPronoun, /*labeled=*/false);
    candidate_alias = e.aliases.front();
  } else {
    // Alternative name on the entity's own page: unlabeled until the weak
    // labeler recovers it.
    candidate_alias = world_->SampleAlias(page_entity, &rng_);
    AddMention(&s, page_entity, candidate_alias, MentionKind::kAltName,
               /*labeled=*/false);
  }
  s.tokens.push_back("was");
  if (!e.types.empty()) {
    const TypeId t = DiscriminativeType(page_entity, candidate_alias);
    s.tokens.push_back(
        rng_.Choice(world_->type_keywords[static_cast<size_t>(t)]));
  }
  MaybeAddCue(&s, page_entity);
  AppendFiller(&s, rng_.UniformInt(1, 2));
  FinishSentence(&s);
  return s;
}

Sentence CorpusGenerator::MakeSentence(EntityId gold, bool allow_holdout,
                                       Template tmpl) {
  switch (tmpl) {
    case Template::kAffordance:
      return MakeAffordance(gold);
    case Template::kRelation:
      return MakeRelation(gold, allow_holdout);
    case Template::kConsistency:
      return MakeConsistency(gold, allow_holdout);
    case Template::kMemorization:
      return MakeMemorization(gold);
  }
  return MakeAffordance(gold);
}

std::vector<Sentence> CorpusGenerator::GeneratePages(int64_t num_pages,
                                                     bool allow_holdout,
                                                     double holdout_boost,
                                                     int64_t* next_page_id) {
  const SynthConfig& c = world_->config;
  std::vector<EntityId> holdout_pool;
  if (allow_holdout) {
    for (EntityId e = 0; e < c.num_entities; ++e) {
      if (world_->is_unseen_holdout[static_cast<size_t>(e)]) holdout_pool.push_back(e);
    }
  }
  auto sample_gold = [&]() -> EntityId {
    if (allow_holdout && !holdout_pool.empty() && rng_.Uniform() < holdout_boost) {
      return rng_.Choice(holdout_pool);
    }
    return world_->SampleEntity(&rng_, allow_holdout);
  };

  std::vector<Sentence> out;
  for (int64_t p = 0; p < num_pages; ++p) {
    const int64_t page_id = (*next_page_id)++;
    const EntityId page_entity = sample_gold();
    const kb::Entity& pe = world_->kb.entity(page_entity);
    const int64_t num_sents =
        rng_.UniformInt(c.min_sentences_per_page, c.max_sentences_per_page);
    for (int64_t i = 0; i < num_sents; ++i) {
      const EntityId gold = (i == 0 || rng_.Bernoulli(0.4)) ? page_entity
                                                            : sample_gold();
      Sentence s = MakeSentence(gold, allow_holdout, SampleTemplate());
      // Anchor label dropout: Wikipedia misses most labels; some anchors stay
      // unlabeled (they remain in the text and in eval-side truth, but carry
      // no training signal).
      for (Mention& m : s.mentions) {
        if (m.kind == MentionKind::kAnchor && !rng_.Bernoulli(c.anchor_label_prob)) {
          m.labeled = false;
        }
      }
      s.page_entity = page_entity;
      s.page_id = page_id;
      s.doc_title = pe.title;
      out.push_back(std::move(s));
      // Page-reference sentence (pronoun/alt-name), fodder for weak labeling.
      if (rng_.Uniform() < c.pageref_sentence_prob) {
        Sentence ref = MakePageRef(page_entity);
        ref.page_entity = page_entity;
        ref.page_id = page_id;
        ref.doc_title = pe.title;
        out.push_back(std::move(ref));
      }
    }
  }
  return out;
}

Corpus CorpusGenerator::Generate() {
  const SynthConfig& c = world_->config;
  const auto train_pages = static_cast<int64_t>(c.num_pages * c.train_fraction);
  const auto dev_pages = static_cast<int64_t>(c.num_pages * c.dev_fraction);
  const int64_t test_pages = c.num_pages - train_pages - dev_pages;
  int64_t next_page_id = 0;
  Corpus corpus;
  corpus.train = GeneratePages(train_pages, /*allow_holdout=*/false,
                               /*holdout_boost=*/0.0, &next_page_id);
  corpus.dev = GeneratePages(dev_pages, /*allow_holdout=*/true,
                             /*holdout_boost=*/0.12, &next_page_id);
  corpus.test = GeneratePages(test_pages, /*allow_holdout=*/true,
                              /*holdout_boost=*/0.12, &next_page_id);
  return corpus;
}

std::vector<Sentence> CorpusGenerator::GenerateKoreLike(int64_t num_sentences) {
  std::vector<Sentence> out;
  while (static_cast<int64_t>(out.size()) < num_sentences) {
    // Hard case: gold is the *least* popular candidate of a shared alias.
    const EntityId probe = world_->SampleEntity(&rng_, /*allow_holdout=*/true);
    const kb::Entity& pe = world_->kb.entity(probe);
    if (pe.aliases.size() < 2) continue;
    const std::string& alias = pe.aliases.front();
    const auto* cands = world_->candidates.Lookup(alias);
    if (cands == nullptr || cands->size() < 2) continue;
    const EntityId gold = cands->back().entity;  // lowest prior
    Sentence s = MakeSentence(gold, /*allow_holdout=*/true, SampleTemplate());
    // The templates sample their own alias for the gold; keep only sentences
    // where that alias still makes the gold a non-top-prior candidate, so
    // the suite stays hard for prior-based systems (KORE50's character).
    bool hard = true;
    for (const Mention& m : s.mentions) {
      if (m.gold != gold) continue;
      const auto* mc = world_->candidates.Lookup(m.alias);
      if (mc == nullptr || mc->size() < 2 || mc->front().entity == gold) {
        hard = false;
      }
    }
    if (!hard) continue;
    s.page_id = static_cast<int64_t>(out.size());
    s.page_entity = gold;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Sentence> CorpusGenerator::GenerateRssLike(int64_t num_sentences) {
  std::vector<Sentence> out;
  for (int64_t i = 0; i < num_sentences; ++i) {
    const EntityId gold = world_->SampleEntity(&rng_, /*allow_holdout=*/true);
    Sentence s = rng_.Bernoulli(0.7) ? MakeAffordance(gold) : MakeMemorization(gold);
    s.page_id = i;
    s.page_entity = gold;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Sentence> CorpusGenerator::GenerateAidaLike(
    int64_t num_docs, int64_t sentences_per_doc) {
  std::vector<Sentence> out;
  for (int64_t d = 0; d < num_docs; ++d) {
    const EntityId doc_entity = world_->SampleEntity(&rng_, /*allow_holdout=*/true);
    const std::string title = world_->kb.entity(doc_entity).title;
    for (int64_t i = 0; i < sentences_per_doc; ++i) {
      const EntityId gold = (i == 0 || rng_.Bernoulli(0.5))
                                ? doc_entity
                                : world_->SampleEntity(&rng_, true);
      Sentence s = MakeSentence(gold, /*allow_holdout=*/true, SampleTemplate());
      s.page_id = d;
      s.page_entity = doc_entity;
      s.doc_title = title;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace bootleg::data

#ifndef BOOTLEG_DATA_MENTION_EXTRACTOR_H_
#define BOOTLEG_DATA_MENTION_EXTRACTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/example.h"
#include "kb/candidate_map.h"
#include "text/vocabulary.h"

namespace bootleg::data {

/// Mention extraction for raw text: a greedy leftmost-longest scan over the
/// token stream against the aliases of Γ. The paper's Bootleg is a pure
/// disambiguation system (mention boundaries given); this extractor supplies
/// the boundaries for end-to-end use (the TACRED pipeline of Appendix C does
/// the same n-gram-over-candidate-maps scan). With `disambiguate_text` this
/// is the server's untrusted input surface, so it must tolerate anything:
/// empty input, overlong tokens, punctuation-only text, and overlapping
/// alias matches (leftmost-longest wins, deterministically).
class MentionExtractor {
 public:
  /// Alias-existence predicate used during the scan. The default consults
  /// Γ directly; the serving engine supplies a CandidateCache-backed one so
  /// extraction warms the same cache example assembly then reads.
  using AliasFn = std::function<bool(const std::string&)>;

  /// `candidates` must be finalized; the constructor scans it once for the
  /// longest alias (in tokens) to bound the n-gram window.
  explicit MentionExtractor(const kb::CandidateMap* candidates);

  /// Greedy leftmost-longest scan: at each position the longest n-gram
  /// (n <= max_alias_tokens()) matching a known alias becomes an unlabeled
  /// mention and the scan resumes after its last token. Overlapping matches
  /// resolve deterministically — earlier start wins, then longer span.
  std::vector<Mention> Extract(const std::vector<std::string>& tokens) const;

  /// Same scan through a caller-supplied existence predicate.
  std::vector<Mention> Extract(const std::vector<std::string>& tokens,
                               const AliasFn& known_alias) const;

  /// Longest alias in Γ, in whitespace-delimited tokens (>= 1).
  int64_t max_alias_tokens() const { return max_alias_tokens_; }

  /// Tokenizes raw text, extracts mentions, and assembles a model-ready
  /// example (golds unknown: gold_index = -1, usable with Predict only).
  SentenceExample BuildExample(const text::Vocabulary& vocab,
                               const std::string& text) const;

 private:
  const kb::CandidateMap* candidates_;
  int64_t max_alias_tokens_ = 1;
};

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_MENTION_EXTRACTOR_H_

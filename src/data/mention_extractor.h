#ifndef BOOTLEG_DATA_MENTION_EXTRACTOR_H_
#define BOOTLEG_DATA_MENTION_EXTRACTOR_H_

#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/example.h"
#include "kb/candidate_map.h"
#include "text/vocabulary.h"

namespace bootleg::data {

/// Mention extraction for raw text: every token whose surface form is a
/// known alias in Γ becomes a mention. The paper's Bootleg is a pure
/// disambiguation system (mention boundaries given); this extractor supplies
/// the boundaries for end-to-end use (the TACRED pipeline of Appendix C does
/// the same n-gram-over-candidate-maps scan).
class MentionExtractor {
 public:
  explicit MentionExtractor(const kb::CandidateMap* candidates)
      : candidates_(candidates) {}

  /// Marks every alias-matching token as an unlabeled mention.
  std::vector<Mention> Extract(const std::vector<std::string>& tokens) const;

  /// Tokenizes raw text, extracts mentions, and assembles a model-ready
  /// example (golds unknown: gold_index = -1, usable with Predict only).
  SentenceExample BuildExample(const text::Vocabulary& vocab,
                               const std::string& text) const;

 private:
  const kb::CandidateMap* candidates_;
};

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_MENTION_EXTRACTOR_H_

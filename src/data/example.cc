#include "data/example.h"

#include "text/vocabulary.h"
#include "util/logging.h"

namespace bootleg::data {

SentenceExample ExampleBuilder::Build(const Sentence& sentence,
                                      const ExampleOptions& options) const {
  SentenceExample ex;
  int64_t offset = 0;
  if (options.prepend_title && !sentence.doc_title.empty()) {
    ex.token_ids.push_back(vocab_->Id(sentence.doc_title));
    ex.token_ids.push_back(text::kSepId);
    offset = 2;
  }
  for (const std::string& tok : sentence.tokens) {
    ex.token_ids.push_back(options.char_fallback
                               ? vocab_->IdWithTypoFallback(tok)
                               : vocab_->Id(tok));
  }
  for (size_t mi = 0; mi < sentence.mentions.size(); ++mi) {
    const Mention& m = sentence.mentions[mi];
    if (!m.labeled) continue;
    if (m.weak_labeled && !options.include_weak_labels) continue;
    MentionExample me;
    me.sentence_mention_index = static_cast<int64_t>(mi);
    me.span_start = m.span_start + offset;
    me.span_end = m.span_end + offset;
    me.gold = m.gold;
    me.weak_labeled = m.weak_labeled;
    const auto* cands = candidates_->Lookup(
        m.candidate_alias.empty() ? m.alias : m.candidate_alias);
    if (cands != nullptr) {
      for (size_t i = 0; i < cands->size(); ++i) {
        me.candidates.push_back((*cands)[i].entity);
        me.priors.push_back((*cands)[i].prior);
        if ((*cands)[i].entity == m.gold) {
          me.gold_index = static_cast<int64_t>(i);
        }
      }
    }
    ex.mentions.push_back(std::move(me));
  }
  return ex;
}

std::vector<SentenceExample> ExampleBuilder::BuildAll(
    const std::vector<Sentence>& sentences, const ExampleOptions& options) const {
  std::vector<SentenceExample> out;
  out.reserve(sentences.size());
  for (const Sentence& s : sentences) out.push_back(Build(s, options));
  return out;
}

const char* PopularityBucketName(PopularityBucket b) {
  switch (b) {
    case PopularityBucket::kUnseen:
      return "unseen";
    case PopularityBucket::kTail:
      return "tail";
    case PopularityBucket::kTorso:
      return "torso";
    case PopularityBucket::kHead:
      return "head";
  }
  return "?";
}

EntityCounts EntityCounts::FromTraining(const std::vector<Sentence>& train,
                                        bool include_weak) {
  EntityCounts counts;
  for (const Sentence& s : train) {
    for (const Mention& m : s.mentions) {
      if (!m.labeled) continue;
      if (m.weak_labeled && !include_weak) continue;
      ++counts.counts_[m.gold];
    }
  }
  return counts;
}

int64_t EntityCounts::Count(kb::EntityId e) const {
  auto it = counts_.find(e);
  return it == counts_.end() ? 0 : it->second;
}

PopularityBucket EntityCounts::BucketOf(kb::EntityId e) const {
  const int64_t c = Count(e);
  if (c == 0) return PopularityBucket::kUnseen;
  if (c <= 10) return PopularityBucket::kTail;
  if (c <= 1000) return PopularityBucket::kTorso;
  return PopularityBucket::kHead;
}

}  // namespace bootleg::data

#include "data/weak_label.h"

#include <algorithm>

namespace bootleg::data {

WeakLabelStats ApplyWeakLabeling(const kb::KnowledgeBase& kb,
                                 std::vector<Sentence>* sentences) {
  WeakLabelStats stats;
  for (Sentence& s : *sentences) {
    for (const Mention& m : s.mentions) {
      if (m.labeled) ++stats.anchor_labels;
    }
  }
  for (Sentence& s : *sentences) {
    if (s.page_entity == kb::kInvalidId) continue;
    const kb::Entity& page = kb.entity(s.page_entity);
    for (Mention& m : s.mentions) {
      if (m.labeled) continue;
      if (m.kind == MentionKind::kPronoun) {
        // Heuristic 1: gender-matched pronoun on a person's page.
        if (!page.IsPerson()) continue;
        const bool match = (m.alias == "she" && page.gender == 'f') ||
                           (m.alias == "he" && page.gender == 'm');
        if (match) {
          m.labeled = true;
          m.weak_labeled = true;
          m.gold = s.page_entity;  // heuristic asserts the page entity
          // Pronouns are not in Γ; candidates come from an alias of the page
          // entity (its most ambiguous one, so the example stays non-trivial).
          m.candidate_alias = page.aliases.front();
          ++stats.pronoun_labels;
        }
      } else {
        // Heuristic 2: surface form is a known alias of the page entity.
        const bool is_alias =
            std::find(page.aliases.begin(), page.aliases.end(), m.alias) !=
            page.aliases.end();
        if (is_alias) {
          m.labeled = true;
          m.weak_labeled = true;
          m.gold = s.page_entity;  // may be noisy when the true gold differs
          ++stats.altname_labels;
        }
      }
    }
  }
  stats.total_labels_after =
      stats.anchor_labels + stats.pronoun_labels + stats.altname_labels;
  return stats;
}

}  // namespace bootleg::data

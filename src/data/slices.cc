#include "data/slices.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace bootleg::data {

const char* PatternSliceName(PatternSlice s) {
  switch (s) {
    case PatternSlice::kEntity:
      return "Entity";
    case PatternSlice::kConsistency:
      return "Type Consistency";
    case PatternSlice::kKgRelation:
      return "KG Relation";
    case PatternSlice::kAffordance:
      return "Type Affordance";
  }
  return "?";
}

AffordanceKeywords AffordanceKeywords::MineTfIdf(
    const kb::KnowledgeBase& kb, const std::vector<Sentence>& train, int top_k) {
  const auto num_types = static_cast<size_t>(kb.num_types());
  // Term frequency per type and document frequency across types.
  std::vector<std::unordered_map<std::string, int64_t>> tf(num_types);
  std::unordered_map<std::string, int64_t> df;

  for (const Sentence& s : train) {
    // The "document" for type t is the union of sentences whose (labeled)
    // gold entity carries type t.
    std::unordered_set<kb::TypeId> sentence_types;
    for (const Mention& m : s.mentions) {
      if (!m.labeled) continue;
      for (kb::TypeId t : kb.entity(m.gold).types) sentence_types.insert(t);
    }
    if (sentence_types.empty()) continue;
    for (kb::TypeId t : sentence_types) {
      for (const std::string& tok : s.tokens) {
        if (tok == "." || tok == ",") continue;
        ++tf[static_cast<size_t>(t)][tok];
      }
    }
  }
  for (size_t t = 0; t < num_types; ++t) {
    for (const auto& [tok, count] : tf[t]) {
      (void)count;
      ++df[tok];
    }
  }

  AffordanceKeywords out;
  out.keywords_.resize(num_types);
  out.keyword_sets_.resize(num_types);
  const double nt = static_cast<double>(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    std::vector<std::pair<double, std::string>> scored;
    scored.reserve(tf[t].size());
    for (const auto& [tok, count] : tf[t]) {
      const double idf = std::log(nt / (1.0 + static_cast<double>(df[tok])));
      scored.emplace_back(static_cast<double>(count) * idf, tok);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const size_t k = std::min<size_t>(static_cast<size_t>(top_k), scored.size());
    for (size_t i = 0; i < k; ++i) {
      out.keywords_[t].push_back(scored[i].second);
      out.keyword_sets_[t].insert(scored[i].second);
    }
  }
  return out;
}

const std::vector<std::string>& AffordanceKeywords::KeywordsFor(
    kb::TypeId t) const {
  if (t < 0 || static_cast<size_t>(t) >= keywords_.size()) return empty_;
  return keywords_[static_cast<size_t>(t)];
}

bool AffordanceKeywords::IsKeyword(kb::TypeId t, const std::string& token) const {
  if (t < 0 || static_cast<size_t>(t) >= keyword_sets_.size()) return false;
  return keyword_sets_[static_cast<size_t>(t)].count(token) > 0;
}

double AffordanceKeywords::Coverage(const kb::KnowledgeBase& kb,
                                    const std::vector<Sentence>& sentences) const {
  int64_t with_type = 0;
  int64_t covered = 0;
  for (const Sentence& s : sentences) {
    for (size_t mi = 0; mi < s.mentions.size(); ++mi) {
      const Mention& m = s.mentions[mi];
      if (kb.entity(m.gold).types.empty()) continue;
      ++with_type;
      if (InSlice(kb, s, mi, PatternSlice::kAffordance, this)) ++covered;
    }
  }
  return with_type == 0 ? 0.0
                        : static_cast<double>(covered) / static_cast<double>(with_type);
}

namespace {

/// True if the mentions at [start, start+2] (by sentence order) are distinct
/// golds all sharing at least one type.
bool IsConsistencyRun(const kb::KnowledgeBase& kb, const Sentence& s,
                      size_t start) {
  if (start + 2 >= s.mentions.size()) return false;
  const kb::EntityId a = s.mentions[start].gold;
  const kb::EntityId b = s.mentions[start + 1].gold;
  const kb::EntityId c = s.mentions[start + 2].gold;
  if (a == b || b == c || a == c) return false;
  // All three must share one common type.
  for (kb::TypeId t : kb.entity(a).types) {
    const auto& tb = kb.entity(b).types;
    const auto& tc = kb.entity(c).types;
    if (std::find(tb.begin(), tb.end(), t) != tb.end() &&
        std::find(tc.begin(), tc.end(), t) != tc.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool InSlice(const kb::KnowledgeBase& kb, const Sentence& sentence,
             size_t mention_idx, PatternSlice slice,
             const AffordanceKeywords* affordance) {
  BOOTLEG_CHECK(mention_idx < sentence.mentions.size());
  const Mention& m = sentence.mentions[mention_idx];
  const kb::Entity& gold = kb.entity(m.gold);
  switch (slice) {
    case PatternSlice::kEntity:
      return gold.types.empty() && gold.relations.empty();
    case PatternSlice::kConsistency: {
      for (size_t start = 0; start + 2 < sentence.mentions.size(); ++start) {
        if (mention_idx >= start && mention_idx <= start + 2 &&
            IsConsistencyRun(kb, sentence, start)) {
          return true;
        }
      }
      return false;
    }
    case PatternSlice::kKgRelation: {
      for (size_t i = 0; i < sentence.mentions.size(); ++i) {
        if (i == mention_idx) continue;
        if (kb.Connected(m.gold, sentence.mentions[i].gold)) return true;
      }
      return false;
    }
    case PatternSlice::kAffordance: {
      BOOTLEG_CHECK(affordance != nullptr);
      for (kb::TypeId t : gold.types) {
        for (const std::string& tok : sentence.tokens) {
          if (affordance->IsKeyword(t, tok)) return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace bootleg::data

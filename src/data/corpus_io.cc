#include "data/corpus_io.h"

#include <sstream>

#include "util/io.h"

namespace bootleg::data {

namespace {

void WriteSentences(util::BinaryWriter* w, const std::vector<Sentence>& sentences) {
  w->WriteU64(sentences.size());
  for (const Sentence& s : sentences) {
    w->WriteU64(s.tokens.size());
    for (const std::string& t : s.tokens) w->WriteString(t);
    w->WriteU64(s.mentions.size());
    for (const Mention& m : s.mentions) {
      w->WriteI64(m.span_start);
      w->WriteI64(m.span_end);
      w->WriteString(m.alias);
      w->WriteString(m.candidate_alias);
      w->WriteI64(m.gold);
      w->WriteI64(static_cast<int64_t>(m.kind));
      w->WriteU32(static_cast<uint32_t>((m.labeled ? 1 : 0) |
                                        (m.weak_labeled ? 2 : 0)));
    }
    w->WriteI64(s.page_entity);
    w->WriteI64(s.page_id);
    w->WriteString(s.doc_title);
  }
}

bool ReadSentences(util::BinaryReader* r, std::vector<Sentence>* sentences) {
  const uint64_t n = r->ReadU64();
  sentences->clear();
  sentences->reserve(n);
  for (uint64_t i = 0; i < n && r->status().ok(); ++i) {
    Sentence s;
    const uint64_t nt = r->ReadU64();
    for (uint64_t j = 0; j < nt && r->status().ok(); ++j) {
      s.tokens.push_back(r->ReadString());
    }
    const uint64_t nm = r->ReadU64();
    for (uint64_t j = 0; j < nm && r->status().ok(); ++j) {
      Mention m;
      m.span_start = r->ReadI64();
      m.span_end = r->ReadI64();
      m.alias = r->ReadString();
      m.candidate_alias = r->ReadString();
      m.gold = r->ReadI64();
      m.kind = static_cast<MentionKind>(r->ReadI64());
      const uint32_t flags = r->ReadU32();
      m.labeled = (flags & 1u) != 0;
      m.weak_labeled = (flags & 2u) != 0;
      s.mentions.push_back(std::move(m));
    }
    s.page_entity = r->ReadI64();
    s.page_id = r->ReadI64();
    s.doc_title = r->ReadString();
    sentences->push_back(std::move(s));
  }
  return r->status().ok();
}

}  // namespace

util::Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  util::AtomicFileWriter atomic(path);
  util::BinaryWriter w(atomic.temp_path());
  w.WriteU32(0xB0071ED0);
  WriteSentences(&w, corpus.train);
  WriteSentences(&w, corpus.dev);
  WriteSentences(&w, corpus.test);
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::Status LoadCorpus(const std::string& path, Corpus* corpus) {
  util::BinaryReader r(path);
  if (r.ReadU32() != 0xB0071ED0) {
    return util::Status::Corruption("bad corpus magic: " + path);
  }
  if (!ReadSentences(&r, &corpus->train) || !ReadSentences(&r, &corpus->dev) ||
      !ReadSentences(&r, &corpus->test)) {
    return r.status();
  }
  return r.status();
}

std::string RenderSentence(const Sentence& sentence,
                           const kb::KnowledgeBase* kb) {
  std::ostringstream out;
  for (size_t i = 0; i < sentence.tokens.size(); ++i) {
    if (i > 0) out << ' ';
    const Mention* mention = nullptr;
    for (const Mention& m : sentence.mentions) {
      if (m.span_start == static_cast<int64_t>(i)) mention = &m;
    }
    if (mention == nullptr) {
      out << sentence.tokens[i];
      continue;
    }
    out << "[" << sentence.tokens[i] << "->";
    if (kb != nullptr && mention->gold >= 0 &&
        mention->gold < kb->num_entities()) {
      out << kb->entity(mention->gold).title;
    } else {
      out << mention->gold;
    }
    if (!mention->labeled) {
      out << "|UNLABELED";
    } else if (mention->weak_labeled) {
      out << "|WL";
    }
    out << ']';
  }
  return out.str();
}

}  // namespace bootleg::data

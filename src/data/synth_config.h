#ifndef BOOTLEG_DATA_SYNTH_CONFIG_H_
#define BOOTLEG_DATA_SYNTH_CONFIG_H_

#include <cstdint>

namespace bootleg::data {

/// Parameters of the synthetic Wikipedia+Wikidata world. The defaults are the
/// "main" scale used by the Table 2 family of experiments; MicroScale() is
/// the regularization/weak-labeling ablation scale (paper Appendix B uses a
/// KORE50-derived Wikipedia subset the same way).
struct SynthConfig {
  uint64_t seed = 1234;

  // Knowledge-base shape.
  int64_t num_entities = 4000;
  int64_t num_types = 80;
  int64_t num_relations = 30;
  int64_t num_coarse_per_type = 1;   // each fine type maps to one coarse type
  double type_zipf_s = 0.9;          // type popularity skew (distinct type tail)
  double relation_zipf_s = 1.05;     // relation popularity skew
  double entity_zipf_s = 0.95;       // entity popularity skew (the entity tail)
  int64_t triples_per_entity = 2;    // average KG degree
  double no_type_fraction = 0.08;    // entities with no fine types at all
  double no_relation_fraction = 0.10;  // entities excluded from triples
  /// Entities with *neither* types nor relations — only textual cues can
  /// resolve them (the Entity reasoning-pattern slice of Sec. 5).
  double no_signal_fraction = 0.05;
  double person_fraction = 0.25;     // persons get gendered pronouns + name aliases

  // Alias ambiguity.
  int64_t min_alias_ambiguity = 2;   // entities sharing one alias
  int64_t max_alias_ambiguity = 6;
  int64_t max_candidates = 5;        // K (paper uses 30 at Wikipedia scale)

  // Language model of the templates. Small lexicons keep each keyword token
  // frequent enough to learn at this corpus scale (Wikipedia-scale corpora
  // see each affordance keyword thousands of times; see DESIGN.md).
  int64_t keywords_per_type = 2;
  int64_t keywords_per_relation = 2;
  int64_t cue_words_per_entity = 2;
  int64_t num_filler_words = 80;

  // Corpus shape.
  int64_t num_pages = 2400;
  int64_t min_sentences_per_page = 2;
  int64_t max_sentences_per_page = 5;
  double relation_sentence_prob = 0.25;   // KG-relation template share
  double consistency_sentence_prob = 0.10;  // type-consistency template share
  double memorization_sentence_prob = 0.15;  // entity-cue template share
  double extra_cue_prob = 0.35;       // add entity cue words to other templates
  double extra_affordance_prob = 0.7;  // add type keywords to non-affordance templates
  double anchor_label_prob = 0.85;    // anchors that actually carry labels
  double pageref_sentence_prob = 0.55;  // sentences that carry an unlabeled
                                        // pronoun/alt-name page reference
  double unseen_holdout_fraction = 0.06;  // entities never gold in train pages

  // Split fractions by page.
  double train_fraction = 0.8;
  double dev_fraction = 0.1;

  /// The micro-ablation scale (fast enough for 12-model sweeps).
  static SynthConfig MicroScale() {
    SynthConfig c;
    c.seed = 777;
    c.num_entities = 1200;
    c.num_types = 40;
    c.num_relations = 18;
    c.num_pages = 1000;
    return c;
  }
};

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_SYNTH_CONFIG_H_

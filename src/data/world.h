#ifndef BOOTLEG_DATA_WORLD_H_
#define BOOTLEG_DATA_WORLD_H_

#include <string>
#include <vector>

#include "data/synth_config.h"
#include "kb/candidate_map.h"
#include "kb/kb.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace bootleg::data {

/// The generated world: a knowledge base with long-tailed entity, type, and
/// relation distributions; an ambiguous alias → candidate map Γ; and the
/// lexicons (type affordance keywords, relation keywords, entity cue words)
/// that the sentence templates draw from. Stands in for Wikipedia + Wikidata
/// + YAGO (see DESIGN.md substitution table).
struct SynthWorld {
  SynthConfig config;
  kb::KnowledgeBase kb;
  kb::CandidateMap candidates;
  text::Vocabulary vocab;

  /// Per-entity sampling weight (Zipfian; entity 0 is most popular).
  std::vector<double> popularity;

  /// Affordance keywords per fine type ("people have heights").
  std::vector<std::vector<std::string>> type_keywords;

  /// Relation keywords per relation ("in" for "capital of").
  std::vector<std::vector<std::string>> relation_keywords;

  /// Entity-specific cue words (the memorization pattern); for year-titled
  /// event entities the first cue is the year token.
  std::vector<std::vector<std::string>> entity_cues;

  std::vector<std::string> filler_words;

  /// Entities never used as gold in training pages, guaranteeing a
  /// non-trivial unseen-entity bucket.
  std::vector<char> is_unseen_holdout;

  std::vector<std::vector<kb::EntityId>> entities_by_type;

  /// Samples an entity by popularity; skips holdout entities when
  /// `allow_holdout` is false.
  kb::EntityId SampleEntity(util::Rng* rng, bool allow_holdout) const;

  /// Uniformly picks one of the entity's shared aliases (prefers ambiguous
  /// aliases over the unique title when possible).
  const std::string& SampleAlias(kb::EntityId e, util::Rng* rng) const;
};

/// Builds the world deterministically from `config.seed`.
SynthWorld BuildWorld(const SynthConfig& config);

}  // namespace bootleg::data

#endif  // BOOTLEG_DATA_WORLD_H_

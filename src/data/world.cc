#include "data/world.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace bootleg::data {

namespace {

using kb::CoarseType;
using kb::EntityId;
using kb::RelationId;
using kb::TypeId;

/// Function words every sentence template may use.
const char* kFunctionWords[] = {
    "the", "a",    "is",   "was",  "in",   "of",    "and",  "or",
    "he",  "she",  "it",   "near", "with", "today", "for",  "also",
    ",",   ".",    "are",  "many", "like", "old",   "new",  "famous",
};

/// Years used for numerically-titled event entities.
const int kEventYears[] = {1960, 1964, 1968, 1972, 1976, 1980, 1984, 1988};

}  // namespace

EntityId SynthWorld::SampleEntity(util::Rng* rng, bool allow_holdout) const {
  const int64_t n = kb.num_entities();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const EntityId e = rng->Zipf(n, config.entity_zipf_s);
    if (allow_holdout || !is_unseen_holdout[static_cast<size_t>(e)]) return e;
  }
  // Extremely unlikely fallback: linear scan for any non-holdout entity.
  for (EntityId e = 0; e < n; ++e) {
    if (!is_unseen_holdout[static_cast<size_t>(e)]) return e;
  }
  return 0;
}

const std::string& SynthWorld::SampleAlias(EntityId e, util::Rng* rng) const {
  const kb::Entity& ent = kb.entity(e);
  BOOTLEG_CHECK(!ent.aliases.empty());
  // Prefer shared (ambiguous) aliases: the title is always the last alias
  // entry; draw it only 25% of the time when alternatives exist.
  if (ent.aliases.size() > 1 && rng->Uniform() < 0.75) {
    const size_t idx = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(ent.aliases.size()) - 2));
    return ent.aliases[idx];
  }
  return ent.aliases.back();
}

SynthWorld BuildWorld(const SynthConfig& config) {
  SynthWorld world;
  world.config = config;
  util::Rng rng(config.seed);

  // --- Types (fine, with a coarse type each; type popularity is Zipfian so
  // there is a distinct type-tail, per paper Appendix D.1). ------------------
  for (int64_t t = 0; t < config.num_types; ++t) {
    const auto coarse = static_cast<CoarseType>(t % kb::kNumCoarseTypes);
    world.kb.AddType("type_" + std::to_string(t), coarse);
  }
  for (int64_t r = 0; r < config.num_relations; ++r) {
    world.kb.AddRelation("relation_" + std::to_string(r));
  }

  // Person-compatible fine types (coarse == person).
  std::vector<TypeId> person_types;
  std::vector<TypeId> event_types;
  for (int64_t t = 0; t < config.num_types; ++t) {
    if (world.kb.type(t).coarse == CoarseType::kPerson) person_types.push_back(t);
    if (world.kb.type(t).coarse == CoarseType::kEvent) event_types.push_back(t);
  }

  // --- Entities --------------------------------------------------------------
  // Entity id order is popularity order (id 0 most popular). Popularity is
  // the Zipf sampling weight used everywhere downstream.
  world.popularity.resize(static_cast<size_t>(config.num_entities));
  for (int64_t i = 0; i < config.num_entities; ++i) {
    world.popularity[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i) + 1.0, config.entity_zipf_s);
  }

  world.entities_by_type.assign(static_cast<size_t>(config.num_types), {});

  auto sample_type = [&](bool person) -> TypeId {
    if (person && !person_types.empty()) {
      const auto idx = static_cast<size_t>(rng.Zipf(
          static_cast<int64_t>(person_types.size()), config.type_zipf_s));
      return person_types[idx];
    }
    return rng.Zipf(config.num_types, config.type_zipf_s);
  };

  const int64_t num_event_entities =
      std::max<int64_t>(8, config.num_entities / 50);
  std::vector<char> no_signal(static_cast<size_t>(config.num_entities), 0);
  for (int64_t i = 0; i < config.num_entities; ++i) {
    kb::Entity e;
    // No-signal entities have neither types nor relations: only entity
    // memorization can resolve them (the paper's Entity pattern slice).
    no_signal[static_cast<size_t>(i)] =
        rng.Uniform() < config.no_signal_fraction ? 1 : 0;
    const bool is_person =
        !no_signal[static_cast<size_t>(i)] && rng.Uniform() < config.person_fraction;
    const bool no_types = no_signal[static_cast<size_t>(i)] ||
                          rng.Uniform() < config.no_type_fraction;
    const bool is_event = !is_person && !no_types && i % 50 == 7 &&
                          i / 50 < num_event_entities && !event_types.empty();
    if (is_event) {
      // Year-titled event entities feed the numerical error bucket: siblings
      // share an alias and differ only by the year token in the title.
      const int year = kEventYears[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(std::size(kEventYears)) - 1))];
      e.title = "games_" + std::to_string(year) + "_e" + std::to_string(i);
      e.types.push_back(rng.Choice(event_types));
      e.coarse_type = CoarseType::kEvent;
    } else {
      e.title = "ttl_e" + std::to_string(i);
      if (!no_types) {
        const int64_t nt = rng.UniformInt(1, 3);
        for (int64_t k = 0; k < nt; ++k) {
          const TypeId t = sample_type(is_person);
          if (std::find(e.types.begin(), e.types.end(), t) == e.types.end()) {
            e.types.push_back(t);
          }
        }
        e.coarse_type = world.kb.type(e.types.front()).coarse;
      } else {
        e.coarse_type = CoarseType::kMisc;
      }
      if (is_person && !e.types.empty()) {
        e.coarse_type = CoarseType::kPerson;
      }
      // Any person-coarse entity (whether forced or via its first type)
      // carries a gender for the pronoun weak-labeling heuristic.
      if (e.coarse_type == CoarseType::kPerson) {
        e.gender = rng.Bernoulli(0.5) ? 'f' : 'm';
      }
    }
    const EntityId id = world.kb.AddEntity(std::move(e));
    for (TypeId t : world.kb.entity(id).types) {
      world.entities_by_type[static_cast<size_t>(t)].push_back(id);
    }
  }

  // --- Shared aliases (the ambiguity structure of Γ) --------------------------
  // Shuffle entities and partition into alias groups. Shuffling mixes popular
  // and unpopular entities in one group, so most aliases have a popular prior
  // candidate and several tail candidates — the paper's hard case.
  {
    std::vector<EntityId> order(static_cast<size_t>(config.num_entities));
    for (int64_t i = 0; i < config.num_entities; ++i) order[static_cast<size_t>(i)] = i;
    rng.Shuffle(&order);
    size_t pos = 0;
    int64_t group_id = 0;
    while (pos < order.size()) {
      const int64_t g = rng.UniformInt(config.min_alias_ambiguity,
                                       config.max_alias_ambiguity);
      const std::string alias = "ak_" + std::to_string(group_id++);
      for (int64_t k = 0; k < g && pos < order.size(); ++k, ++pos) {
        kb::Entity& ent = world.kb.mutable_entity(order[pos]);
        ent.aliases.insert(ent.aliases.begin(), alias);
      }
    }
  }

  // Persons additionally share first/last-name aliases ("for each person, we
  // further add their first and last name as aliases").
  {
    const int64_t name_pool = std::max<int64_t>(4, config.num_entities / 40);
    for (EntityId id = 0; id < config.num_entities; ++id) {
      kb::Entity& ent = world.kb.mutable_entity(id);
      if (!ent.IsPerson()) continue;
      const std::string first = "fn_" + std::to_string(rng.UniformInt(0, name_pool - 1));
      const std::string last = "ln_" + std::to_string(rng.UniformInt(0, name_pool - 1));
      ent.aliases.insert(ent.aliases.begin(), first);
      ent.aliases.insert(ent.aliases.begin(), last);
    }
  }

  // Granularity pairs: a child entity is a finer-grained variant of a more
  // popular parent of the same coarse type; they share an alias.
  for (EntityId id = 10; id < config.num_entities; ++id) {
    if (id % 40 != 3) continue;
    const EntityId parent = rng.UniformInt(0, std::max<int64_t>(1, id / 4));
    if (parent == id) continue;
    world.kb.AddSubclass(id, parent);
    kb::Entity& child = world.kb.mutable_entity(id);
    const std::string shared = "gen_" + std::to_string(parent);
    child.aliases.insert(child.aliases.begin(), shared);
    kb::Entity& par = world.kb.mutable_entity(parent);
    if (std::find(par.aliases.begin(), par.aliases.end(), shared) ==
        par.aliases.end()) {
      par.aliases.insert(par.aliases.begin(), shared);
    }
  }

  // --- Triples ---------------------------------------------------------------
  std::vector<char> no_relation(static_cast<size_t>(config.num_entities), 0);
  for (EntityId id = 0; id < config.num_entities; ++id) {
    if (no_signal[static_cast<size_t>(id)] ||
        rng.Uniform() < config.no_relation_fraction) {
      no_relation[static_cast<size_t>(id)] = 1;
    }
  }
  for (EntityId id = 0; id < config.num_entities; ++id) {
    if (no_relation[static_cast<size_t>(id)]) continue;
    const int64_t deg = rng.UniformInt(1, 2 * config.triples_per_entity - 1);
    for (int64_t k = 0; k < deg; ++k) {
      const RelationId r = rng.Zipf(config.num_relations, config.relation_zipf_s);
      // Objects are popularity-sampled so popular entities are KG hubs.
      EntityId obj = rng.Zipf(config.num_entities, config.entity_zipf_s);
      if (obj == id || no_relation[static_cast<size_t>(obj)]) continue;
      world.kb.AddTriple(id, r, obj);
    }
  }

  // --- Lexicons ----------------------------------------------------------------
  for (const char* w : kFunctionWords) world.vocab.AddToken(w);
  world.filler_words.reserve(static_cast<size_t>(config.num_filler_words));
  for (int64_t i = 0; i < config.num_filler_words; ++i) {
    world.filler_words.push_back("f" + std::to_string(i));
    world.vocab.AddToken(world.filler_words.back());
  }
  world.type_keywords.resize(static_cast<size_t>(config.num_types));
  for (int64_t t = 0; t < config.num_types; ++t) {
    for (int64_t k = 0; k < config.keywords_per_type; ++k) {
      std::string kw = "t" + std::to_string(t) + "kw" + std::to_string(k);
      world.vocab.AddToken(kw);
      world.type_keywords[static_cast<size_t>(t)].push_back(std::move(kw));
    }
  }
  world.relation_keywords.resize(static_cast<size_t>(config.num_relations));
  for (int64_t r = 0; r < config.num_relations; ++r) {
    for (int64_t k = 0; k < config.keywords_per_relation; ++k) {
      std::string kw = "r" + std::to_string(r) + "kw" + std::to_string(k);
      world.vocab.AddToken(kw);
      world.relation_keywords[static_cast<size_t>(r)].push_back(std::move(kw));
    }
  }
  world.entity_cues.resize(static_cast<size_t>(config.num_entities));
  for (EntityId id = 0; id < config.num_entities; ++id) {
    auto& cues = world.entity_cues[static_cast<size_t>(id)];
    const std::string& title = world.kb.entity(id).title;
    if (util::StartsWith(title, "games_")) {
      // Year token: "games_1976_e357" → "y1976".
      const std::string year = title.substr(6, 4);
      cues.push_back("y" + year);
      world.vocab.AddToken(cues.back());
    }
    for (int64_t k = static_cast<int64_t>(cues.size());
         k < config.cue_words_per_entity; ++k) {
      cues.push_back("cue" + std::to_string(id) + (k == 0 ? "a" : "b"));
      world.vocab.AddToken(cues.back());
    }
  }
  // Aliases and titles are vocabulary tokens too.
  for (EntityId id = 0; id < config.num_entities; ++id) {
    for (const std::string& a : world.kb.entity(id).aliases) world.vocab.AddToken(a);
  }

  // --- Candidate map Γ ---------------------------------------------------------
  // Alias weights mirror anchor-link counts: proportional to entity
  // popularity, so the prior-ranked candidate list behaves like the paper's.
  for (EntityId id = 0; id < config.num_entities; ++id) {
    for (const std::string& a : world.kb.entity(id).aliases) {
      world.candidates.AddAlias(
          a, id, static_cast<float>(world.popularity[static_cast<size_t>(id)]));
    }
  }
  world.candidates.Finalize(static_cast<int>(config.max_candidates));

  // --- Unseen holdout ----------------------------------------------------------
  world.is_unseen_holdout.assign(static_cast<size_t>(config.num_entities), 0);
  for (EntityId id = config.num_entities / 2; id < config.num_entities; ++id) {
    if (rng.Uniform() < 2.0 * config.unseen_holdout_fraction) {
      world.is_unseen_holdout[static_cast<size_t>(id)] = 1;
    }
  }

  return world;
}

}  // namespace bootleg::data

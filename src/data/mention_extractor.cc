#include "data/mention_extractor.h"

#include <algorithm>

namespace bootleg::data {

MentionExtractor::MentionExtractor(const kb::CandidateMap* candidates)
    : candidates_(candidates) {
  if (candidates_ != nullptr && candidates_->finalized()) {
    for (const auto& [alias, cands] : candidates_->map()) {
      (void)cands;
      int64_t words = 1;
      for (const char c : alias) words += (c == ' ');
      max_alias_tokens_ = std::max(max_alias_tokens_, words);
    }
  }
}

std::vector<Mention> MentionExtractor::Extract(
    const std::vector<std::string>& tokens) const {
  return Extract(tokens, [this](const std::string& alias) {
    const auto* cands = candidates_->Lookup(alias);
    return cands != nullptr && !cands->empty();
  });
}

std::vector<Mention> MentionExtractor::Extract(
    const std::vector<std::string>& tokens, const AliasFn& known_alias) const {
  std::vector<Mention> mentions;
  size_t i = 0;
  while (i < tokens.size()) {
    const size_t max_n = std::min(static_cast<size_t>(max_alias_tokens_),
                                  tokens.size() - i);
    size_t matched = 0;
    std::string alias;
    for (size_t n = max_n; n >= 1; --n) {
      std::string surface = tokens[i];
      for (size_t k = 1; k < n; ++k) {
        surface += ' ';
        surface += tokens[i + k];
      }
      if (known_alias(surface)) {
        matched = n;
        alias = std::move(surface);
        break;
      }
    }
    if (matched == 0) {
      ++i;
      continue;
    }
    Mention m;
    m.span_start = static_cast<int64_t>(i);
    m.span_end = static_cast<int64_t>(i + matched - 1);
    m.alias = std::move(alias);
    mentions.push_back(std::move(m));
    i += matched;
  }
  return mentions;
}

SentenceExample MentionExtractor::BuildExample(const text::Vocabulary& vocab,
                                               const std::string& text) const {
  const std::vector<std::string> tokens = text::Tokenize(text);
  SentenceExample ex;
  ex.token_ids = text::Encode(vocab, tokens);
  for (const Mention& m : Extract(tokens)) {
    const auto* cands = candidates_->Lookup(m.alias);
    if (cands == nullptr || cands->empty()) continue;
    MentionExample me;
    me.span_start = m.span_start;
    me.span_end = m.span_end;
    for (size_t k = 0; k < cands->size(); ++k) {
      me.candidates.push_back((*cands)[k].entity);
      me.priors.push_back((*cands)[k].prior);
    }
    ex.mentions.push_back(std::move(me));
  }
  return ex;
}

}  // namespace bootleg::data

#include "data/mention_extractor.h"

namespace bootleg::data {

std::vector<Mention> MentionExtractor::Extract(
    const std::vector<std::string>& tokens) const {
  std::vector<Mention> mentions;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const auto* cands = candidates_->Lookup(tokens[i]);
    if (cands == nullptr || cands->empty()) continue;
    Mention m;
    m.span_start = static_cast<int64_t>(i);
    m.span_end = m.span_start;
    m.alias = tokens[i];
    mentions.push_back(std::move(m));
  }
  return mentions;
}

SentenceExample MentionExtractor::BuildExample(const text::Vocabulary& vocab,
                                               const std::string& text) const {
  const std::vector<std::string> tokens = text::Tokenize(text);
  SentenceExample ex;
  ex.token_ids = text::Encode(vocab, tokens);
  for (const Mention& m : Extract(tokens)) {
    MentionExample me;
    me.span_start = m.span_start;
    me.span_end = m.span_end;
    const auto* cands = candidates_->Lookup(m.alias);
    for (size_t k = 0; k < cands->size(); ++k) {
      me.candidates.push_back((*cands)[k].entity);
      me.priors.push_back((*cands)[k].prior);
    }
    ex.mentions.push_back(std::move(me));
  }
  return ex;
}

}  // namespace bootleg::data

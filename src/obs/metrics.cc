#include "obs/metrics.h"

#include <cmath>

namespace bootleg::obs {

namespace {

// Complete 1-2-5 ladder: 1, 2, 5, 10, 20, 50, … 100'000'000 µs (25 finite
// bounds), plus one overflow bucket.
constexpr int64_t kBounds[LatencyHistogram::kNumBuckets - 1] = {
    1,        2,        5,        10,       20,
    50,       100,      200,      500,      1000,
    2000,     5000,     10000,    20000,    50000,
    100000,   200000,   500000,   1000000,  2000000,
    5000000,  10000000, 20000000, 50000000, 100000000};

int BucketFor(int64_t micros) {
  for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    if (micros <= kBounds[i]) return i;
  }
  return LatencyHistogram::kNumBuckets - 1;
}

void AppendJsonKey(std::string* out, const std::string& name, bool first) {
  if (!first) *out += ", ";
  *out += '"';
  *out += name;  // registry names are dot-scoped identifiers, never escaped
  *out += "\": ";
}

}  // namespace

LatencyHistogram::LatencyHistogram() { Reset(); }

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[static_cast<size_t>(BucketFor(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
}

int64_t LatencyHistogram::PercentileUs(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t counts[kNumBuckets];
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Rank of the q-quantile observation (1-based, ceiling).
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketBoundUs(i);
  }
  return BucketBoundUs(kNumBuckets - 1);
}

double LatencyHistogram::MeanUs() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_us()) / static_cast<double>(n);
}

int64_t LatencyHistogram::BucketBoundUs(int i) {
  if (i < 0) i = 0;
  if (i >= kNumBuckets - 1) return kBounds[kNumBuckets - 2];
  return kBounds[i];
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Snapshot(const LatencyHistogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.sum_us = h.sum_us();
  s.mean_us = h.MeanUs();
  s.p50_us = h.PercentileUs(0.50);
  s.p95_us = h.PercentileUs(0.95);
  s.p99_us = h.PercentileUs(0.99);
  return s;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, Snapshot(*h));
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : CounterValues()) {
    AppendJsonKey(&out, name, first);
    out += std::to_string(value);
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : GaugeValues()) {
    AppendJsonKey(&out, name, first);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += buf;
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, s] : HistogramValues()) {
    AppendJsonKey(&out, name, first);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %lld, \"sum_us\": %lld, \"mean_us\": %.3f, "
                  "\"p50_us\": %lld, \"p95_us\": %lld, \"p99_us\": %lld}",
                  static_cast<long long>(s.count),
                  static_cast<long long>(s.sum_us), s.mean_us,
                  static_cast<long long>(s.p50_us),
                  static_cast<long long>(s.p95_us),
                  static_cast<long long>(s.p99_us));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace bootleg::obs

#include "obs/trace.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "util/io.h"

namespace bootleg::obs {

namespace {

// Leaked intentionally: stages are referenced from function-local statics in
// arbitrary translation units, so the map must outlive every destructor.
std::mutex& StageMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<std::string, std::unique_ptr<StageStats>>& StageMap() {
  static auto* stages = new std::map<std::string, std::unique_ptr<StageStats>>();
  return *stages;
}

}  // namespace

void StageStats::Record(int64_t us) {
  hist_.Record(us);
  int64_t prev = max_us_.load(std::memory_order_relaxed);
  while (us > prev &&
         !max_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
  }
}

void StageStats::Reset() {
  hist_.Reset();
  max_us_.store(0, std::memory_order_relaxed);
}

std::string SpanSummary::ToJson() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"span\": \"%s\", \"count\": %lld, \"total_us\": %lld, "
      "\"mean_us\": %.3f, \"p50_us\": %lld, \"p95_us\": %lld, "
      "\"p99_us\": %lld, \"max_us\": %lld}",
      name.c_str(), static_cast<long long>(count),
      static_cast<long long>(total_us), mean_us, static_cast<long long>(p50_us),
      static_cast<long long>(p95_us), static_cast<long long>(p99_us),
      static_cast<long long>(max_us));
  return buf;
}

std::atomic<bool>& Trace::enabled_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

StageStats* Trace::Stage(const std::string& name) {
  std::lock_guard<std::mutex> lock(StageMutex());
  std::unique_ptr<StageStats>& slot = StageMap()[name];
  if (slot == nullptr) slot = std::make_unique<StageStats>(name);
  return slot.get();
}

std::vector<SpanSummary> Trace::Summaries() {
  std::lock_guard<std::mutex> lock(StageMutex());
  std::vector<SpanSummary> out;
  out.reserve(StageMap().size());
  for (const auto& [name, stage] : StageMap()) {
    const HistogramSnapshot s = Snapshot(stage->histogram());
    if (s.count == 0) continue;
    SpanSummary row;
    row.name = name;
    row.count = s.count;
    row.total_us = s.sum_us;
    row.mean_us = s.mean_us;
    row.p50_us = s.p50_us;
    row.p95_us = s.p95_us;
    row.p99_us = s.p99_us;
    row.max_us = stage->max_us();
    out.push_back(std::move(row));
  }
  return out;
}

util::Status Trace::WriteJsonl(const std::string& path) {
  std::string body;
  for (const SpanSummary& row : Summaries()) {
    body += row.ToJson();
    body += '\n';
  }
  return util::WriteTextFile(path, body);
}

void Trace::Reset() {
  std::lock_guard<std::mutex> lock(StageMutex());
  for (auto& [name, stage] : StageMap()) stage->Reset();
}

}  // namespace bootleg::obs

#ifndef BOOTLEG_OBS_METRICS_H_
#define BOOTLEG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bootleg::obs {

/// Monotonically increasing event counter. Add() is one relaxed atomic
/// fetch_add, so counters sit on request/step hot paths without serializing
/// the threads that bump them.
class Counter {
 public:
  void Add(int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, loaded-model epoch, …).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram in microseconds. Record() is lock-free
/// (one relaxed atomic increment), so it sits on the per-request hot path of
/// every server thread without serializing them; percentile reads scan the
/// buckets and are approximate to one bucket width, which is all a serving
/// dashboard needs.
///
/// Buckets are exponential (a complete 1-2-5 ladder per decade) from 1µs to
/// 100s plus an overflow bucket, so p50/p95/p99 stay meaningful from
/// cache-hit micro-latencies up to cold multi-second outliers.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 26;

  LatencyHistogram();

  /// Adds one observation. Thread-safe, wait-free.
  void Record(int64_t micros);

  /// Upper bound (µs) of the bucket containing the q-quantile, q in [0, 1].
  /// The quantile observation is the ceiling 1-based rank ⌈q·n⌉ (clamped to
  /// [1, n]), so p50 of 3 observations is the 2nd. Returns 0 when empty.
  /// Concurrent Record() calls may be partially visible; the result is a
  /// consistent-enough snapshot for reporting.
  int64_t PercentileUs(double q) const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  double MeanUs() const;

  /// Inclusive upper bound of bucket i (the last bucket is unbounded and
  /// reports its lower edge).
  static int64_t BucketBoundUs(int i);

  /// Zeroes every bucket and the count/sum (tests, registry reset). Not
  /// atomic with respect to concurrent Record() calls.
  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
};

/// Point-in-time percentile summary of one histogram.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum_us = 0;
  double mean_us = 0.0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
};

HistogramSnapshot Snapshot(const LatencyHistogram& h);

/// Process-wide home for named counters, gauges and latency histograms.
///
/// Get*() returns a stable pointer that stays valid for the life of the
/// registry (instruments are never removed, only Reset()); callers look a
/// name up once and then touch the instrument lock-free. Names are
/// dot-scoped, lowercase, subsystem-first: `serve.requests`,
/// `train.steps`, `serve.queue_wait_us`.
///
/// The Global() instance is what the serve `stats` op, `--trace_out` and the
/// bench harness export; tests may construct private registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Sorted name → value snapshots (deterministic export order).
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

  /// The whole registry as one compact JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, ...}}}.
  /// Self-contained (no serve::Json dependency) so tools and benches below
  /// the serving layer can export it too.
  std::string DumpJson() const;

  /// Zeroes every registered instrument in place; pointers handed out by
  /// Get*() remain valid. Tests and bench harness only.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps; instruments are internally safe
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace bootleg::obs

#endif  // BOOTLEG_OBS_METRICS_H_

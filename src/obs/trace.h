#ifndef BOOTLEG_OBS_TRACE_H_
#define BOOTLEG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace bootleg::obs {

/// Aggregated wall-time statistics for one named trace stage: a latency
/// histogram (count/sum/percentiles) plus the worst single span. Record() is
/// thread-safe and wait-free, so spans may close concurrently on any thread.
class StageStats {
 public:
  explicit StageStats(std::string name) : name_(std::move(name)) {}

  void Record(int64_t us);

  const std::string& name() const { return name_; }
  const LatencyHistogram& histogram() const { return hist_; }
  int64_t count() const { return hist_.count(); }
  int64_t total_us() const { return hist_.sum_us(); }
  int64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  const std::string name_;
  LatencyHistogram hist_;
  std::atomic<int64_t> max_us_{0};
};

/// One row of the per-stage trace report.
struct SpanSummary {
  std::string name;
  int64_t count = 0;
  int64_t total_us = 0;
  double mean_us = 0.0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;

  /// The row as one compact JSON object (the `--trace_out` JSONL format).
  std::string ToJson() const;
};

/// Process-wide trace-span aggregator. Tracing is off by default; every
/// OBS_SPAN call site caches its StageStats pointer in a function-local
/// static, so a disabled span costs one relaxed atomic load and a branch —
/// cheap enough to leave compiled into every hot path.
///
/// Stage names are dot-scoped, lowercase, subsystem-first, matching the
/// metrics registry scheme: `train.epoch`, `infer.encode`, `serve.request`.
class Trace {
 public:
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void Enable(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Stable stats slot for `name`, created on first use; never removed, so
  /// call sites may cache the pointer for the process lifetime.
  static StageStats* Stage(const std::string& name);

  /// Sorted per-stage summaries of everything recorded so far (stages with
  /// zero spans are omitted).
  static std::vector<SpanSummary> Summaries();

  /// Writes Summaries() as JSON-lines, one stage per line, via an atomic
  /// temp+rename so a crash never leaves a torn trace file.
  static util::Status WriteJsonl(const std::string& path);

  /// Zeroes every stage in place; pointers cached at call sites stay valid.
  static void Reset();

 private:
  static std::atomic<bool>& enabled_flag();
};

/// RAII scope timing one span. Reads the clock only when tracing is enabled
/// at entry; a span that straddles an Enable/Disable flip is recorded iff
/// tracing was on when it opened.
class SpanScope {
 public:
  explicit SpanScope(StageStats* stats)
      : stats_(Trace::enabled() ? stats : nullptr) {
    if (stats_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SpanScope() {
    if (stats_ == nullptr) return;
    stats_->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  StageStats* const stats_;
  std::chrono::steady_clock::time_point start_;
};

#define BOOTLEG_OBS_CONCAT_INNER(a, b) a##b
#define BOOTLEG_OBS_CONCAT(a, b) BOOTLEG_OBS_CONCAT_INNER(a, b)

/// Times the rest of the enclosing scope under stage `name` (a string
/// literal). The stage lookup happens once per call site; afterwards a
/// disabled span is one atomic load + branch.
#define OBS_SPAN(name)                                                      \
  static ::bootleg::obs::StageStats* BOOTLEG_OBS_CONCAT(                    \
      bootleg_obs_stage_, __LINE__) = ::bootleg::obs::Trace::Stage(name);   \
  ::bootleg::obs::SpanScope BOOTLEG_OBS_CONCAT(bootleg_obs_span_, __LINE__)( \
      BOOTLEG_OBS_CONCAT(bootleg_obs_stage_, __LINE__))

}  // namespace bootleg::obs

#endif  // BOOTLEG_OBS_TRACE_H_

#include "util/io.h"

#include <sstream>

namespace bootleg::util {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for write: " + path);
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_.good()) status_ = Status::IOError("write failure");
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(int64_t));
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::IOError("flush failure");
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for read: " + path);
  }
}

void BinaryReader::ReadBytes(void* data, size_t n) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (in_.gcount() != static_cast<std::streamsize>(n)) {
    status_ = Status::Corruption("short read");
  }
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
float BinaryReader::ReadF32() {
  float v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok() || n > (1ull << 32)) {
    if (status_.ok()) status_ = Status::Corruption("string too long");
    return {};
  }
  std::string s(n, '\0');
  ReadBytes(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!status_.ok() || n > (1ull << 32)) {
    if (status_.ok()) status_ = Status::Corruption("vector too long");
    return {};
  }
  std::vector<float> v(n);
  ReadBytes(v.data(), n * sizeof(float));
  return v;
}

std::vector<int64_t> BinaryReader::ReadI64Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok() || n > (1ull << 32)) {
    if (status_.ok()) status_ = Status::Corruption("vector too long");
    return {};
  }
  std::vector<int64_t> v(n);
  ReadBytes(v.data(), n * sizeof(int64_t));
  return v;
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for write: " + path);
  out << contents;
  out.flush();
  if (!out.good()) return Status::IOError("write failure: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace bootleg::util

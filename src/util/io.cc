#include "util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "util/crc32.h"

namespace bootleg::util {

// --- FaultInjector -----------------------------------------------------------

namespace {

struct FaultState {
  bool armed = false;
  bool crashed = false;
  int64_t written = 0;  // bytes written since Arm, across all writers
  FaultInjector::Plan plan;
};

FaultState& faults() {
  static FaultState state;
  return state;
}

}  // namespace

void FaultInjector::Arm(const Plan& plan) {
  faults() = FaultState{/*armed=*/true, /*crashed=*/false, /*written=*/0, plan};
}

void FaultInjector::Disarm() { faults() = FaultState{}; }

bool FaultInjector::armed() { return faults().armed; }

bool FaultInjector::crash_simulated() { return faults().crashed; }

bool FaultInjector::InterceptWrite(char* data, size_t n, size_t* allowed) {
  FaultState& f = faults();
  *allowed = n;
  if (!f.armed) return true;
  const int64_t offset = f.written;
  f.written += static_cast<int64_t>(n);
  if (f.plan.flip_byte_at >= offset &&
      f.plan.flip_byte_at < offset + static_cast<int64_t>(n)) {
    data[f.plan.flip_byte_at - offset] ^= static_cast<char>(f.plan.flip_mask);
  }
  if (f.plan.fail_after_bytes >= 0 &&
      offset + static_cast<int64_t>(n) > f.plan.fail_after_bytes) {
    *allowed = static_cast<size_t>(
        std::max<int64_t>(0, f.plan.fail_after_bytes - offset));
    f.crashed = true;
    return false;
  }
  return true;
}

bool FaultInjector::InterceptCommit() {
  FaultState& f = faults();
  if (f.armed && f.plan.fail_commit) {
    f.crashed = true;
    return false;
  }
  return true;
}

// --- BinaryWriter ------------------------------------------------------------

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for write: " + path);
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (!status_.ok()) return;
  // The section checksum covers the bytes we intend to write; an injected
  // flip below then corrupts the file relative to its checksum, exactly as
  // on-media corruption would.
  if (in_section_) section_crc_ = Crc32(data, n, section_crc_);
  if (FaultInjector::armed()) {
    std::string buf(static_cast<const char*>(data), n);
    size_t allowed = n;
    const bool ok = FaultInjector::InterceptWrite(buf.data(), n, &allowed);
    out_.write(buf.data(), static_cast<std::streamsize>(allowed));
    bytes_ += allowed;
    if (!ok) {
      status_ = Status::IOError("injected write fault");
      return;
    }
  } else {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    bytes_ += n;
  }
  if (!out_.good()) status_ = Status::IOError("write failure");
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  WriteBytes(data, n);
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(int64_t));
}

void BinaryWriter::BeginSection() {
  section_crc_ = 0;
  in_section_ = true;
}

void BinaryWriter::EndSection() {
  in_section_ = false;
  WriteU32(section_crc_);
}

void BinaryWriter::WriteFooter() {
  in_section_ = false;
  const uint64_t payload = bytes_;
  WriteU32(kFooterMagic);
  WriteU64(payload);
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::IOError("flush failure");
  }
  out_.close();
  return status_;
}

// --- BinaryReader ------------------------------------------------------------

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for read: " + path);
    return;
  }
  // Stat once at open: every length prefix is bounded by remaining(), so a
  // corrupt prefix can never drive an allocation past the file size.
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  in_.seekg(0, std::ios::beg);
  if (size < 0 || !in_.good()) {
    status_ = Status::IOError("cannot stat: " + path);
    return;
  }
  file_size_ = static_cast<uint64_t>(size);
}

void BinaryReader::ReadBytes(void* data, size_t n) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  const auto got = static_cast<uint64_t>(in_.gcount());
  consumed_ += got;
  if (got != n) {
    status_ = Status::Corruption("short read");
    return;
  }
  if (in_section_) section_crc_ = Crc32(data, n, section_crc_);
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
float BinaryReader::ReadF32() {
  float v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}
double BinaryReader::ReadF64() {
  double v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

bool BinaryReader::BoundLength(uint64_t count, uint64_t elem_size) {
  if (!status_.ok()) return false;
  if (count > remaining() / elem_size) {
    status_ = Status::Corruption("length prefix exceeds remaining file size");
    return false;
  }
  return true;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!BoundLength(n, 1)) return {};
  std::string s(n, '\0');
  ReadBytes(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!BoundLength(n, sizeof(float))) return {};
  std::vector<float> v(n);
  ReadBytes(v.data(), n * sizeof(float));
  return v;
}

std::vector<int64_t> BinaryReader::ReadI64Vector() {
  const uint64_t n = ReadU64();
  if (!BoundLength(n, sizeof(int64_t))) return {};
  std::vector<int64_t> v(n);
  ReadBytes(v.data(), n * sizeof(int64_t));
  return v;
}

void BinaryReader::BeginSection() {
  section_crc_ = 0;
  in_section_ = true;
}

void BinaryReader::EndSection() {
  in_section_ = false;
  const uint32_t computed = section_crc_;
  const uint32_t stored = ReadU32();
  if (status_.ok() && stored != computed) {
    status_ = Status::Corruption("section checksum mismatch");
  }
}

void BinaryReader::VerifyFooter() {
  in_section_ = false;
  const uint64_t payload = consumed_;
  if (ReadU32() != kFooterMagic) {
    if (status_.ok()) status_ = Status::Corruption("bad or missing footer");
    return;
  }
  const uint64_t stored = ReadU64();
  if (!status_.ok()) return;
  if (stored != payload) {
    status_ = Status::Corruption("footer length mismatch");
    return;
  }
  if (remaining() != 0) {
    status_ = Status::Corruption("trailing garbage after footer");
  }
}

// --- AtomicFileWriter --------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {}

AtomicFileWriter::~AtomicFileWriter() {
  // A simulated crash must leave its torn temp file behind, exactly as a
  // real kill would, so recovery scans get exercised against it.
  if (committed_ || FaultInjector::crash_simulated()) return;
  std::error_code ec;
  std::filesystem::remove(temp_path_, ec);
}

Status AtomicFileWriter::Commit() {
  if (!FaultInjector::InterceptCommit()) {
    return Status::IOError("injected commit fault: " + path_);
  }
  // fsync the temp file so the data precedes the rename in durability order.
  const int fd = ::open(temp_path_.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for fsync: " + temp_path_);
  const int sync_rc = ::fsync(fd);
  ::close(fd);
  if (sync_rc != 0) return Status::IOError("fsync failed: " + temp_path_);

  std::error_code ec;
  std::filesystem::rename(temp_path_, path_, ec);
  if (ec) {
    return Status::IOError("rename failed: " + temp_path_ + " -> " + path_ +
                           ": " + ec.message());
  }
  committed_ = true;

  // fsync the directory so the rename itself survives a crash.
  std::string dir = std::filesystem::path(path_).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; the rename is already visible
    ::close(dfd);
  }
  return Status::OK();
}

// --- Text files --------------------------------------------------------------

Status WriteTextFile(const std::string& path, const std::string& contents) {
  AtomicFileWriter atomic(path);
  {
    std::ofstream out(atomic.temp_path(), std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open for write: " + atomic.temp_path());
    }
    out << contents;
    out.flush();
    if (!out.good()) return Status::IOError("write failure: " + path);
  }
  return atomic.Commit();
}

StatusOr<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace bootleg::util

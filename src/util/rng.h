#ifndef BOOTLEG_UTIL_RNG_H_
#define BOOTLEG_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "util/logging.h"

namespace bootleg::util {

/// Deterministic, seedable random number generator used throughout the
/// project so that corpus generation, initialization, and training are
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    BOOTLEG_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Samples an index in [0, n) with probability proportional to a Zipfian
  /// law with exponent `s`: P(i) ∝ 1 / (i + 1)^s. Used to generate the
  /// long-tailed popularity distributions the paper studies.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one element uniformly at random. `v` must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    BOOTLEG_CHECK(!v.empty());
    return v[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Forks an independent generator seeded from this one (for parallel or
  /// per-component streams that must not perturb each other).
  Rng Fork() { return Rng(engine_()); }

  /// Serializes the full engine state (std::mt19937_64's textual form) so a
  /// resumed training run replays the exact random stream an uninterrupted
  /// run would have drawn.
  std::string SerializeState() const {
    std::ostringstream ss;
    ss << engine_;
    return ss.str();
  }

  /// Restores a state produced by SerializeState; false on malformed input
  /// (the engine is left unspecified but valid).
  bool DeserializeState(const std::string& state) {
    std::istringstream ss(state);
    ss >> engine_;
    return !ss.fail();
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_RNG_H_

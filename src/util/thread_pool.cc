#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "util/logging.h"

namespace bootleg::util {

namespace {

/// Set while the current thread is executing pool work (a queued task or the
/// caller's inline share of a dispatch). Nested parallel primitives check it
/// and run serially.
thread_local bool t_in_task = false;

struct InTaskScope {
  bool prev;
  InTaskScope() : prev(t_in_task) { t_in_task = true; }
  ~InTaskScope() { t_in_task = prev; }
};

/// Completion state shared by one blocking dispatch.
struct DispatchState {
  std::atomic<int> remaining;
  std::mutex mu;
  std::condition_variable done;

  explicit DispatchState(int n) : remaining(n) {}

  void Finish() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      done.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int spawn = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    InTaskScope scope;
    task();
  }
}

void ThreadPool::HelpWhile(const std::function<bool()>& done) {
  while (!done()) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      InTaskScope scope;
      task();
    } else {
      std::this_thread::yield();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  if (grain < 1) grain = 1;
  const int p = num_threads();
  if (p == 1 || t_in_task || n <= grain) {
    fn(begin, end);
    return;
  }
  int64_t chunks = (n + grain - 1) / grain;
  if (chunks > p) chunks = p;
  const int64_t chunk = (n + chunks - 1) / chunks;

  auto state = std::make_shared<DispatchState>(static_cast<int>(chunks) - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t c = 1; c < chunks; ++c) {
      const int64_t lo = begin + c * chunk;
      const int64_t hi = std::min(end, lo + chunk);
      queue_.emplace_back([state, &fn, lo, hi] {
        fn(lo, hi);
        state->Finish();
      });
    }
  }
  // One wakeup per queued chunk: notify_all would also wake workers that
  // will find the queue empty and go straight back to sleep.
  for (int64_t c = 1; c < chunks; ++c) cv_.notify_one();

  {
    // The caller takes the first chunk, then helps drain the queue so the
    // dispatch completes even if every worker is busy elsewhere.
    InTaskScope scope;
    fn(begin, std::min(end, begin + chunk));
  }
  HelpWhile([&state] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::RunWorkers(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1 || t_in_task) {
    for (int i = 0; i < n; ++i) {
      InTaskScope scope;
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<DispatchState>(n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 1; i < n; ++i) {
      queue_.emplace_back([state, &fn, i] {
        fn(i);
        state->Finish();
      });
    }
  }
  for (int i = 1; i < n; ++i) cv_.notify_one();
  {
    InTaskScope scope;
    fn(0);
  }
  HelpWhile([&state] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::InWorker() { return t_in_task; }

namespace {
std::mutex g_global_mu;
// Leaked intentionally: workers live to process exit. Atomic so the hot
// Global() read is lock-free — it runs on every kernel call.
std::atomic<ThreadPool*> g_global{nullptr};
}  // namespace

ThreadPool* ThreadPool::Global() {
  ThreadPool* pool = g_global.load(std::memory_order_acquire);
  if (pool != nullptr) return pool;
  std::lock_guard<std::mutex> lock(g_global_mu);
  pool = g_global.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    pool = new ThreadPool(DefaultThreads());
    g_global.store(pool, std::memory_order_release);
  }
  return pool;
}

void ThreadPool::ResetGlobal(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  ThreadPool* old = g_global.exchange(new ThreadPool(num_threads),
                                      std::memory_order_acq_rel);
  delete old;
}

int ThreadPool::DefaultThreads() {
  const int env = EnvThreads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ThreadPool::EnvThreads() {
  if (const char* env = std::getenv("BOOTLEG_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
    BOOTLEG_LOG(Warning) << "ignoring invalid BOOTLEG_THREADS=" << env;
  }
  return 0;
}

}  // namespace bootleg::util

#ifndef BOOTLEG_UTIL_STRING_UTIL_H_
#define BOOTLEG_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bootleg::util {

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims = " \t\n");

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (the synthetic corpus is ASCII-only).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` contains any ASCII digit; used by the "numerical" error bucket.
bool ContainsDigit(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_STRING_UTIL_H_

#ifndef BOOTLEG_UTIL_TIMER_H_
#define BOOTLEG_UTIL_TIMER_H_

#include <chrono>

namespace bootleg::util {

/// Wall-clock stopwatch used by the trainer and bench harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_TIMER_H_

#ifndef BOOTLEG_UTIL_THREAD_POOL_H_
#define BOOTLEG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bootleg::util {

/// Persistent worker pool behind every parallel code path in the repo:
/// blocked matmul kernels, row-wise tensor ops, data-parallel training and
/// parallel evaluation all dispatch onto one shared pool.
///
/// Concurrency model:
///   - A pool with `num_threads` total parallelism owns `num_threads - 1`
///     background workers; the calling thread always participates, so
///     ThreadPool(1) spawns nothing and every primitive degrades to a plain
///     serial loop on the caller.
///   - Calls made from inside a pool task run inline (serial). Nested
///     parallelism never deadlocks and never oversubscribes: the data-parallel
///     trainer fans sentences out to workers while the tensor kernels those
///     workers invoke stay serial.
///   - ParallelFor partitions [begin, end) into contiguous chunks. Each index
///     is processed exactly once by exactly one thread, so any kernel whose
///     per-index computation is independent of the partition produces
///     bit-identical results at every thread count.
class ThreadPool {
 public:
  /// Spawns max(0, num_threads - 1) workers. num_threads < 1 is treated as 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(lo, hi) over a partition of [begin, end) into contiguous chunks
  /// of at least `grain` indices (the final chunk may be smaller). Blocks
  /// until every chunk completes. Runs serially when the range is small, the
  /// pool has one thread, or the caller is itself a pool task.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Runs fn(worker) for worker in [0, n). The caller executes worker 0 and
  /// helps drain the remaining tasks, so this works at any pool size. Used by
  /// the data-parallel trainer, where `worker` indexes gradient scopes and
  /// forked RNGs.
  void RunWorkers(int n, const std::function<void(int)>& fn);

  /// True on a thread currently executing a pool task (used to run nested
  /// parallel sections inline).
  static bool InWorker();

  /// True when ParallelFor(0, n, grain, ...) would actually fan out. Kernels
  /// check this first and run their loop directly otherwise, skipping the
  /// std::function conversion that a ParallelFor call requires — that
  /// allocation dominates small-tensor ops if paid on every call.
  bool WouldParallelize(int64_t n, int64_t grain) const {
    return num_threads() > 1 && n > (grain < 1 ? 1 : grain) && !InWorker();
  }

  /// Process-wide pool, created on first use with DefaultThreads() threads.
  /// Never destroyed before exit; tests may call Reset to resize it.
  static ThreadPool* Global();

  /// Replaces the global pool (e.g. to honor a --threads flag after
  /// startup). Not safe while parallel work is in flight.
  static void ResetGlobal(int num_threads);

  /// BOOTLEG_THREADS env var if set and positive, else
  /// std::thread::hardware_concurrency().
  static int DefaultThreads();

  /// BOOTLEG_THREADS env var if set and positive, else 0. Callers choose the
  /// fallback: the global pool falls back to hardware concurrency, while the
  /// trainer and evaluator fall back to 1 (serial) so default runs stay
  /// bit-identical to the pre-parallel code.
  static int EnvThreads();

 private:
  void WorkerLoop();
  /// Pops and runs queued tasks until `remaining` hits zero. The caller's
  /// share of a blocking dispatch: guarantees progress with zero workers.
  void HelpWhile(const std::function<bool()>& done);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_THREAD_POOL_H_

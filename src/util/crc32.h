#ifndef BOOTLEG_UTIL_CRC32_H_
#define BOOTLEG_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace bootleg::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding every
/// snapshot section (see docs/ARCHITECTURE.md, "Durability & recovery").
/// Extendable: pass the previous return value as `crc` to checksum a stream
/// incrementally. Crc32(data, n) == Crc32(data + k, n - k, Crc32(data, k)).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_CRC32_H_

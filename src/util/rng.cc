#include "util/rng.h"

#include <cmath>

namespace bootleg::util {

int64_t Rng::Zipf(int64_t n, double s) {
  BOOTLEG_CHECK_GT(n, 0);
  // Inverse-CDF sampling over the discrete Zipf pmf. n is small (≤ a few
  // hundred thousand) in this project, so a linear scan over a cached
  // normalizer would work, but we avoid per-call O(n) by rejection sampling
  // from the continuous bounding distribution (Devroye's method).
  if (s <= 0.0) return UniformInt(0, n - 1);
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = Uniform();
    const double v = Uniform();
    // X ~ floor(U^(-1/(s-1))) style sampler; specialize s == 1 via log.
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
      x = std::pow(static_cast<double>(n) + 1.0, u);
    } else {
      const double t = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const int64_t k = static_cast<int64_t>(x);
    if (k < 1 || k > n) continue;
    // Accept with probability pmf(k)/bound(k); the simple ratio below is a
    // standard acceptance test adequate for s in (0, 4].
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (v * b <= ratio * b) {
      return k - 1;
    }
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  BOOTLEG_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    BOOTLEG_CHECK_GE(w, 0.0);
    total += w;
  }
  BOOTLEG_CHECK_GT(total, 0.0);
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace bootleg::util

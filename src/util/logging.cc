#include "util/logging.h"

#include <atomic>

namespace bootleg::util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel MinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_min_level.load()) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

namespace internal_logging {

void CheckFailure(const char* expr, const char* file, int line,
                  const std::string& msg) {
  {
    // Scoped so the destructor emits the message (and aborts, as kFatal).
    LogMessage m(LogLevel::kFatal, file, line);
    m.stream() << "Check failed: " << expr;
    if (!msg.empty()) m.stream() << " — " << msg;
  }
  // Unreachable; keeps the [[noreturn]] contract explicit for the compiler.
  std::abort();
}

}  // namespace internal_logging

}  // namespace bootleg::util

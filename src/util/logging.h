#ifndef BOOTLEG_UTIL_LOGGING_H_
#define BOOTLEG_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace bootleg::util {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Returns the process-wide minimum severity that is emitted.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity that is emitted.
void SetMinLogLevel(LogLevel level);

/// Stream-style log message. Emits on destruction; aborts for kFatal.
///
/// Usage: `LogMessage(LogLevel::kInfo, __FILE__, __LINE__).stream() << "msg";`
/// or via the BOOTLEG_LOG / BOOTLEG_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Helper that swallows a log stream when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace bootleg::util

#define BOOTLEG_LOG(level)                                                      \
  ::bootleg::util::LogMessage(::bootleg::util::LogLevel::k##level, __FILE__,    \
                              __LINE__)                                         \
      .stream()

/// Aborts with a message when `cond` is false. Used for programming errors
/// (shape mismatches, index bounds) in the style of database-kernel asserts;
/// recoverable errors use bootleg::util::Status instead.
#define BOOTLEG_CHECK(cond)                                                     \
  (cond) ? (void)0                                                             \
         : ::bootleg::util::internal_logging::CheckFailure(#cond, __FILE__,    \
                                                           __LINE__)

#define BOOTLEG_CHECK_MSG(cond, msg)                                           \
  (cond) ? (void)0                                                             \
         : ::bootleg::util::internal_logging::CheckFailure(#cond, __FILE__,    \
                                                           __LINE__, (msg))

#define BOOTLEG_CHECK_EQ(a, b) BOOTLEG_CHECK((a) == (b))
#define BOOTLEG_CHECK_NE(a, b) BOOTLEG_CHECK((a) != (b))
#define BOOTLEG_CHECK_LT(a, b) BOOTLEG_CHECK((a) < (b))
#define BOOTLEG_CHECK_LE(a, b) BOOTLEG_CHECK((a) <= (b))
#define BOOTLEG_CHECK_GT(a, b) BOOTLEG_CHECK((a) > (b))
#define BOOTLEG_CHECK_GE(a, b) BOOTLEG_CHECK((a) >= (b))

namespace bootleg::util::internal_logging {

[[noreturn]] void CheckFailure(const char* expr, const char* file, int line,
                               const std::string& msg = "");

}  // namespace bootleg::util::internal_logging

#endif  // BOOTLEG_UTIL_LOGGING_H_

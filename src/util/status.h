#ifndef BOOTLEG_UTIL_STATUS_H_
#define BOOTLEG_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

namespace bootleg::util {

/// Error codes for recoverable failures (I/O, parsing, lookup misses).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Lightweight status object in the RocksDB/Arrow style. Library functions
/// that can fail for data-dependent reasons return Status (or StatusOr);
/// programming errors use BOOTLEG_CHECK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient overload (a full serving queue); the caller should back off
  /// and retry rather than treat the request as failed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The caller's deadline passed before the work could run (load shedding);
  /// retrying with a larger budget may succeed, retrying as-is will not.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "NotFound: no such alias".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value or an error Status. Minimal StatusOr for this project.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                  // NOLINT
    BOOTLEG_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    BOOTLEG_CHECK_MSG(ok(), status_.ToString());
    return value_;
  }
  T& value() & {
    BOOTLEG_CHECK_MSG(ok(), status_.ToString());
    return value_;
  }
  T&& value() && {
    BOOTLEG_CHECK_MSG(ok(), status_.ToString());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace bootleg::util

/// Propagates a non-OK status to the caller.
#define BOOTLEG_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::bootleg::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // BOOTLEG_UTIL_STATUS_H_

#include "util/crc32.h"

#include <array>

namespace bootleg::util {

namespace {

/// 8 tables of 256 entries for slice-by-8: eight input bytes are folded per
/// step instead of one, which keeps checksum cost negligible next to the
/// float payloads it guards.
struct Crc32Tables {
  uint32_t t[8][256];

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFu];
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (n >= 8) {
    const uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace bootleg::util

#ifndef BOOTLEG_UTIL_IO_H_
#define BOOTLEG_UTIL_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace bootleg::util {

/// Binary writer for model checkpoints and KB snapshots. Little-endian,
/// length-prefixed strings and vectors. All methods are no-ops after the
/// first failure; call status() once at the end.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);

  /// Flushes and returns the accumulated status.
  Status Finish();

 private:
  void WriteBytes(const void* data, size_t n);

  std::ofstream out_;
  Status status_;
};

/// Binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int64_t> ReadI64Vector();

  const Status& status() const { return status_; }

 private:
  void ReadBytes(void* data, size_t n);

  std::ifstream in_;
  Status status_;
};

/// Writes `contents` to `path`, replacing any existing file.
Status WriteTextFile(const std::string& path, const std::string& contents);

/// Reads the entire file at `path`.
StatusOr<std::string> ReadTextFile(const std::string& path);

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_IO_H_

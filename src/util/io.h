#ifndef BOOTLEG_UTIL_IO_H_
#define BOOTLEG_UTIL_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace bootleg::util {

/// Magic word closing every v1 snapshot; followed by the payload byte count.
inline constexpr uint32_t kFooterMagic = 0xB007F007;

/// Test-only fault injection for the snapshot write path, in the style of
/// RocksDB's FaultInjectionTestEnv. While armed, every BinaryWriter byte
/// consults the plan: writes can be truncated-and-failed after a byte budget
/// (a torn file, as a crash mid-write would leave), a single byte can be
/// flipped (simulated media corruption that checksums must catch), and
/// AtomicFileWriter::Commit can be failed before the rename (a crash after
/// the temp file is complete but before it becomes canonical).
///
/// An injected failure latches "crash simulation": cleanup that a real crash
/// would skip (temp-file removal) is skipped too, so recovery code is
/// exercised against the artifacts a genuine kill leaves behind. Not
/// thread-safe; arm only in single-threaded test setup.
class FaultInjector {
 public:
  struct Plan {
    /// Fail every write once this many bytes have been written (across all
    /// writers) since Arm; the failing write lands only the bytes within
    /// budget, leaving a torn file. -1 disables.
    int64_t fail_after_bytes = -1;
    /// XOR `flip_mask` into the byte at this global offset. -1 disables.
    int64_t flip_byte_at = -1;
    uint8_t flip_mask = 0x01;
    /// Fail AtomicFileWriter::Commit before the rename, leaving the
    /// complete temp file on disk but the canonical path untouched.
    bool fail_commit = false;
  };

  static void Arm(const Plan& plan);
  static void Disarm();
  static bool armed();
  /// True once an injected failure has fired; cleanup paths leave files
  /// in place (crash simulation) while this holds. Cleared by Arm/Disarm.
  static bool crash_simulated();

  /// Called by BinaryWriter for every write while armed. Applies byte flips
  /// to `data` in place, truncates the write to `*allowed` bytes, and
  /// returns false when the write must then report an injected IOError.
  static bool InterceptWrite(char* data, size_t n, size_t* allowed);
  /// Called by AtomicFileWriter::Commit; false means "crash before rename".
  static bool InterceptCommit();
};

/// Binary writer for model checkpoints and KB snapshots. Little-endian,
/// length-prefixed strings and vectors. All methods are no-ops after the
/// first failure; call status() or Finish() once at the end.
///
/// v1 snapshot formats guard their payload with per-section CRC32 checksums
/// and a footer: BeginSection() starts a checksum scope, EndSection() writes
/// the accumulated CRC, and WriteFooter() closes the file with kFooterMagic
/// plus the total payload length so readers can reject truncation and
/// trailing garbage.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);

  /// Unprefixed raw bytes (section checksums and fault injection apply).
  /// Used by formats that track their own offsets, e.g. the mmap-read
  /// embedding-store shards whose payload layout is fixed by the header.
  void WriteRaw(const void* data, size_t n);

  /// Starts accumulating a section checksum over subsequent writes.
  void BeginSection();
  /// Writes the section's CRC32 (the CRC word itself is not checksummed).
  void EndSection();
  /// Writes the end-of-file footer: kFooterMagic + payload byte count.
  void WriteFooter();

  uint64_t bytes_written() const { return bytes_; }

  const Status& status() const { return status_; }

  /// Flushes, closes, and returns the accumulated status.
  Status Finish();

 private:
  void WriteBytes(const void* data, size_t n);

  std::ofstream out_;
  Status status_;
  uint64_t bytes_ = 0;
  uint32_t section_crc_ = 0;
  bool in_section_ = false;
};

/// Binary reader mirroring BinaryWriter. The file size is stat'd once at
/// open and every length prefix is bounded by the bytes actually remaining,
/// so corrupt input can never trigger a multi-GB allocation: the worst a bad
/// prefix can cost is one allocation no larger than the file itself.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int64_t> ReadI64Vector();

  /// Starts accumulating a checksum over subsequent reads.
  void BeginSection();
  /// Reads the stored section CRC and fails with Corruption on mismatch.
  void EndSection();
  /// Reads the footer and fails with Corruption unless the stored payload
  /// length matches the bytes consumed and no trailing garbage follows.
  void VerifyFooter();

  /// Bytes between the read cursor and end-of-file.
  uint64_t remaining() const { return file_size_ - consumed_; }
  uint64_t consumed() const { return consumed_; }

  const Status& status() const { return status_; }

 private:
  void ReadBytes(void* data, size_t n);
  /// Validates a length prefix of `count` elements of `elem_size` bytes
  /// against remaining(); sets Corruption and returns false if oversized.
  bool BoundLength(uint64_t count, uint64_t elem_size);

  std::ifstream in_;
  Status status_;
  uint64_t file_size_ = 0;
  uint64_t consumed_ = 0;
  uint32_t section_crc_ = 0;
  bool in_section_ = false;
};

/// Durable replace-on-commit file writer: stream to `temp_path()`, then
/// Commit() fsyncs the temp file, renames it over the final path, and fsyncs
/// the directory. The canonical path therefore always holds either the old
/// complete file or the new complete file — a crash at any point leaves at
/// worst a torn `.tmp` sibling, which recovery scans ignore. Destroying the
/// writer without a successful Commit removes the temp file (unless a fault
/// injection "crash" is being simulated).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  const std::string& temp_path() const { return temp_path_; }

  /// fsync(temp) → rename(temp, final) → fsync(dir).
  Status Commit();

 private:
  std::string path_;
  std::string temp_path_;
  bool committed_ = false;
};

/// Writes `contents` to `path`, replacing any existing file. The replace is
/// atomic (temp file + rename), so readers never observe a partial file.
Status WriteTextFile(const std::string& path, const std::string& contents);

/// Reads the entire file at `path`.
StatusOr<std::string> ReadTextFile(const std::string& path);

}  // namespace bootleg::util

#endif  // BOOTLEG_UTIL_IO_H_

#ifndef BOOTLEG_INDEX_LIVE_INDEX_H_
#define BOOTLEG_INDEX_LIVE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "kb/candidate_map.h"
#include "kb/kb.h"
#include "store/embedding_store.h"
#include "util/status.h"

namespace bootleg::index {

/// Live index mutation: add a never-trained entity to a serving deployment
/// without retraining or re-exporting the store.
///
/// The paper's central claim (Sec. 3, Sec. D.1) is that tail and unseen
/// entities are recoverable from their types and relations — ~90% of tail
/// entities keep non-tail types/relations. This subsystem turns that
/// inductive story into an online operation:
///
///   1. InduceRow() synthesizes the new entity's frozen feature row from its
///      declared types and relations through the frozen type/relation
///      embedding tables and pooling weights (the exact math
///      PrepareFrozenInference runs per trained entity); the untrainable
///      entity-embedding slot is filled with a sibling centroid gathered
///      from the live store.
///   2. PublishDelta() appends the row as a delta shard plus an INDEX_DELTA
///      aux file (the KB/alias/candidate mutations) and publishes generation
///      N+1 whose chained manifest references the parent's unchanged shards
///      by content (exact size + payload CRC) instead of rewriting them.
///   3. ApplyDeltas() replays a chain's INDEX_DELTA files onto the serving
///      KnowledgeBase and CandidateMap, idempotently, so the store rows and
///      the KB agree before the model adopts the new view.
///   4. Compact() folds a long chain back into one flat generation by
///      byte-copying the referenced shard files (gathers stay bit-identical)
///      and merging the aux files.
///
/// Crash safety matches WriteStore: every delta artifact is committed before
/// the manifest, the manifest itself is atomic, and a torn publish leaves a
/// directory without a valid manifest that generation scans skip.

/// One alias under which the new entity should be a candidate. `prior` is
/// the mass the entity takes inside an existing alias's candidate list (the
/// survivors are rescaled by 1-prior); a brand-new alias gets the entity as
/// its only candidate regardless of `prior`.
struct DeltaAlias {
  std::string alias;
  float prior = 0.5f;
};

/// One KG edge of the new entity. `object` may be any entity already in the
/// chain, including one added earlier in the same delta.
struct DeltaTriple {
  kb::RelationId relation = kb::kInvalidId;
  kb::EntityId object = kb::kInvalidId;
};

/// A new entity, fully resolved against the base KB (type/relation ids, not
/// names — resolution from names happens at the admin-op / CLI boundary).
struct DeltaEntity {
  std::string title;
  kb::CoarseType coarse = kb::CoarseType::kMisc;
  char gender = 'n';
  std::vector<kb::TypeId> types;
  std::vector<DeltaTriple> triples;
  std::vector<DeltaAlias> aliases;  // must include the title alias
  /// Vocabulary id of the title token (resolved at publish time so applying
  /// a delta needs no vocabulary); feeds the title feature.
  int64_t title_token_id = 0;
};

/// The KB-side mutations of one published delta generation, persisted as an
/// aux file in that generation's directory. `base_entities` records the
/// chain's entity count before this delta — replays skip already-applied
/// records, so applying a chain is idempotent.
struct IndexDelta {
  int64_t base_entities = 0;
  std::vector<DeltaEntity> entities;
};

/// Aux files whose name starts with this prefix are index deltas.
inline constexpr char kIndexDeltaFilePrefix[] = "index_delta_";

/// CRC-checked v1 binary round trip (AtomicFileWriter on the write side).
util::Status WriteIndexDelta(const std::string& path, const IndexDelta& delta);
util::StatusOr<IndexDelta> ReadIndexDelta(const std::string& path);

/// Validates a DeltaEntity against the current KB + candidate map state:
/// unused title, known gender code, in-range type/relation/object ids,
/// non-empty alias list containing the title, priors in (0,1). Returns
/// InvalidArgument with a
/// human-readable reason — the admin op surfaces it as a structured error.
util::Status ValidateDeltaEntity(const kb::KnowledgeBase& kb,
                                 const kb::CandidateMap& candidates,
                                 int64_t chain_entities,
                                 const DeltaEntity& entity);

/// Synthesizes the frozen static-feature row of `entity` (the paper's
/// inductive path): entity slot = centroid of sibling entities (fine-type
/// siblings first, then coarse-type, then a global sample) gathered from the
/// live store view's entity columns; type/relation slots pooled through the
/// frozen tables by model.SynthesizeFrozenRow(). `row` receives
/// model.FrozenStaticCols() floats.
util::Status InduceRow(const core::BootlegModel& model,
                       const kb::KnowledgeBase& kb,
                       const store::StoreView& view, const DeltaEntity& entity,
                       std::vector<float>* row);

struct PublishResult {
  std::string dir;         // the new generation's directory
  int64_t generation = 0;  // its parsed number
};

/// Publishes `delta` (whose rows were induced into `rows`, a
/// [delta.entities.size() × static-cols] row-major matrix) as an incremental
/// generation chained onto `parent`: a delta shard appended to the "static"
/// table (quantized to the table's dtype), an INDEX_DELTA aux file, and a v2
/// manifest referencing every unchanged parent file by content. The parent
/// must live in a `gen_<digits>` directory under `store_root`.
util::Status PublishDelta(const std::string& store_root,
                          const store::EmbeddingStore& parent,
                          int64_t parent_generation, const IndexDelta& delta,
                          const float* rows, PublishResult* out);

struct ApplyStats {
  int64_t entities_applied = 0;  // newly applied (not previously replayed)
  int64_t deltas_seen = 0;       // INDEX_DELTA files in the chain
  std::vector<std::string> touched_aliases;  // for candidate-cache invalidation
};

/// Replays the chain's INDEX_DELTA aux files (base → tip) onto `kb` and
/// `candidates`, skipping records already applied (by entity count). When
/// `title_token_ids` is non-null the applied entities' title token ids are
/// appended to it (the serving model's SetTitleTokenIds bookkeeping).
/// On error the KB may hold a prefix of the chain's mutations — callers
/// must treat the (kb, candidates) pair as unservable for this store.
util::Status ApplyDeltas(const store::EmbeddingStore& store,
                         kb::KnowledgeBase* kb, kb::CandidateMap* candidates,
                         std::vector<int64_t>* title_token_ids,
                         ApplyStats* stats);

struct CompactResult {
  std::string dir;                // the flat generation's directory
  int64_t generation = 0;         // its number
  int64_t source_generation = 0;  // the chain tip that was compacted
  int64_t files_copied = 0;
  bool already_flat = false;      // nothing to do; dir/generation = source
};

/// Folds the newest valid chain under `store_root` into one flat generation:
/// every referenced shard file is byte-copied (payload CRCs carry over, so
/// gathers from the compacted generation are bit-identical to the chain),
/// aux files are renumbered into the new directory, and a v2 manifest with
/// no cross-directory references lands last. The source chain is left in
/// place — the caller (or an operator) prunes old generations once the
/// compacted one is adopted. No-op when the newest generation is already
/// flat.
util::Status Compact(const std::string& store_root, CompactResult* out);

}  // namespace bootleg::index

#endif  // BOOTLEG_INDEX_LIVE_INDEX_H_

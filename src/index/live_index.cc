#include "index/live_index.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "util/crc32.h"
#include "util/io.h"
#include "util/logging.h"

namespace bootleg::index {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kIndexDeltaMagic = 0xB0071DE1;
constexpr uint32_t kIndexDeltaVersion = 1;

/// Bounds against a doctored delta file claiming absurd counts; the serving
/// replay allocates per record, so counts are capped before trusting them.
constexpr uint64_t kMaxDeltaEntities = 1u << 20;
constexpr uint64_t kMaxPerEntityList = 1u << 16;

std::string GenDirName(int64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen_%06lld", static_cast<long long>(n));
  return buf;
}

bool IsGenDirName(const std::string& name) {
  if (name.rfind("gen_", 0) != 0 || name.size() <= 4) return false;
  for (size_t i = 4; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

std::string DeltaFileName(int64_t n) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%06lld.bin", kIndexDeltaFilePrefix,
                static_cast<long long>(n));
  return buf;
}

bool IsDeltaFileName(const std::string& name) {
  return name.rfind(kIndexDeltaFilePrefix, 0) == 0;
}

/// First unused generation number strictly above `above` — a crashed publish
/// may have left a manifest-less `gen_<n+1>` husk that scans skip but whose
/// directory still exists.
int64_t FirstFreeGeneration(const std::string& store_root, int64_t above) {
  int64_t n = above + 1;
  while (fs::exists(fs::path(store_root) / GenDirName(n))) ++n;
  return n;
}

/// Full path of a chained-manifest file reference (shard or aux).
std::string RefPath(const std::string& store_root, const std::string& own_dir,
                    const std::string& dir_ref, const std::string& file) {
  if (dir_ref.empty()) return own_dir + "/" + file;
  return (fs::path(store_root) / dir_ref / file).string();
}

util::Status CopyFileBytes(const std::string& src, const std::string& dst,
                           uint64_t want_bytes) {
  auto bytes = util::ReadTextFile(src);
  if (!bytes.ok()) return bytes.status();
  if (bytes.value().size() != want_bytes) {
    return util::Status::Corruption("compaction source changed size: " + src);
  }
  return util::WriteTextFile(dst, bytes.value());
}

}  // namespace

util::Status WriteIndexDelta(const std::string& path,
                             const IndexDelta& delta) {
  util::AtomicFileWriter atomic(path);
  util::BinaryWriter w(atomic.temp_path());
  w.WriteU32(kIndexDeltaMagic);
  w.WriteU32(kIndexDeltaVersion);
  w.BeginSection();
  w.WriteI64(delta.base_entities);
  w.WriteU64(delta.entities.size());
  for (const DeltaEntity& e : delta.entities) {
    w.WriteString(e.title);
    w.WriteI64(static_cast<int64_t>(e.coarse));
    w.WriteU32(static_cast<uint32_t>(e.gender));
    w.WriteI64(e.title_token_id);
    w.WriteI64Vector(e.types);
    w.WriteU64(e.triples.size());
    for (const DeltaTriple& t : e.triples) {
      w.WriteI64(t.relation);
      w.WriteI64(t.object);
    }
    w.WriteU64(e.aliases.size());
    for (const DeltaAlias& a : e.aliases) {
      w.WriteString(a.alias);
      w.WriteF32(a.prior);
    }
  }
  w.EndSection();
  w.WriteFooter();
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::StatusOr<IndexDelta> ReadIndexDelta(const std::string& path) {
  util::BinaryReader r(path);
  BOOTLEG_RETURN_IF_ERROR(r.status());
  auto corrupt = [&path](const std::string& what) {
    return util::Status::Corruption("index delta: " + what + ": " + path);
  };
  if (r.ReadU32() != kIndexDeltaMagic) return corrupt("bad magic");
  if (r.ReadU32() != kIndexDeltaVersion) return corrupt("unsupported version");
  r.BeginSection();
  IndexDelta delta;
  delta.base_entities = r.ReadI64();
  const uint64_t n = r.ReadU64();
  if (!r.status().ok()) return corrupt(r.status().message());
  if (delta.base_entities < 0 || n > kMaxDeltaEntities) {
    return corrupt("implausible header counts");
  }
  delta.entities.reserve(n);
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    DeltaEntity e;
    e.title = r.ReadString();
    e.coarse = static_cast<kb::CoarseType>(r.ReadI64());
    e.gender = static_cast<char>(r.ReadU32());
    e.title_token_id = r.ReadI64();
    e.types = r.ReadI64Vector();
    const uint64_t nt = r.ReadU64();
    if (!r.status().ok() || nt > kMaxPerEntityList) break;
    e.triples.reserve(nt);
    for (uint64_t j = 0; j < nt && r.status().ok(); ++j) {
      DeltaTriple t;
      t.relation = r.ReadI64();
      t.object = r.ReadI64();
      e.triples.push_back(t);
    }
    const uint64_t na = r.ReadU64();
    if (!r.status().ok() || na > kMaxPerEntityList) break;
    e.aliases.reserve(na);
    for (uint64_t j = 0; j < na && r.status().ok(); ++j) {
      DeltaAlias a;
      a.alias = r.ReadString();
      a.prior = r.ReadF32();
      e.aliases.push_back(a);
    }
    const int64_t coarse = static_cast<int64_t>(e.coarse);
    if (coarse < 0 || coarse >= kb::kNumCoarseTypes) {
      return corrupt("coarse type out of range");
    }
    delta.entities.push_back(std::move(e));
  }
  r.EndSection();
  r.VerifyFooter();
  if (!r.status().ok()) return corrupt(r.status().message());
  if (delta.entities.size() != n) return corrupt("truncated entity list");
  return delta;
}

util::Status ValidateDeltaEntity(const kb::KnowledgeBase& kb,
                                 const kb::CandidateMap& candidates,
                                 int64_t chain_entities,
                                 const DeltaEntity& entity) {
  if (entity.title.empty()) {
    return util::Status::InvalidArgument("entity title must not be empty");
  }
  if (kb.FindByTitle(entity.title) != kb::kInvalidId) {
    return util::Status::InvalidArgument("title already in the KB: '" +
                                         entity.title + "'");
  }
  if (entity.gender != 'm' && entity.gender != 'f' && entity.gender != 'n') {
    return util::Status::InvalidArgument(
        "gender must be 'm', 'f', or 'n'");
  }
  for (kb::TypeId t : entity.types) {
    if (t < 0 || t >= kb.num_types()) {
      return util::Status::InvalidArgument("unknown type id " +
                                           std::to_string(t));
    }
  }
  for (const DeltaTriple& t : entity.triples) {
    if (t.relation < 0 || t.relation >= kb.num_relations()) {
      return util::Status::InvalidArgument("unknown relation id " +
                                           std::to_string(t.relation));
    }
    if (t.object < 0 || t.object >= chain_entities) {
      return util::Status::InvalidArgument("triple object " +
                                           std::to_string(t.object) +
                                           " is not an existing entity");
    }
  }
  if (entity.aliases.empty()) {
    return util::Status::InvalidArgument(
        "at least one alias (the title) is required");
  }
  bool has_title_alias = false;
  std::set<std::string> seen;
  for (const DeltaAlias& a : entity.aliases) {
    if (a.alias.empty()) {
      return util::Status::InvalidArgument("empty alias");
    }
    if (!seen.insert(a.alias).second) {
      return util::Status::InvalidArgument("duplicate alias '" + a.alias +
                                           "'");
    }
    if (!(a.prior > 0.0f && a.prior < 1.0f)) {
      return util::Status::InvalidArgument("alias '" + a.alias +
                                           "' prior must be in (0, 1)");
    }
    has_title_alias |= a.alias == entity.title;
    // Dry-run the candidate insertion rule so a prior too small to survive
    // the top-K cut is rejected at publish time, not at replay time.
    const std::vector<kb::Candidate>* cands = candidates.Lookup(a.alias);
    if (cands != nullptr &&
        static_cast<int>(cands->size()) >= candidates.max_candidates()) {
      float kth = cands->back().prior * (1.0f - a.prior);
      if (a.prior <= kth) {
        return util::Status::InvalidArgument(
            "alias '" + a.alias + "' prior " + std::to_string(a.prior) +
            " would rank below the existing top-" +
            std::to_string(candidates.max_candidates()) + " candidates");
      }
    }
  }
  if (!has_title_alias) {
    return util::Status::InvalidArgument(
        "the alias list must include the title");
  }
  return util::Status::OK();
}

util::Status InduceRow(const core::BootlegModel& model,
                       const kb::KnowledgeBase& kb,
                       const store::StoreView& view, const DeltaEntity& entity,
                       std::vector<float>* row) {
  const core::BootlegConfig& config = model.config();
  const int64_t cols = model.FrozenStaticCols();
  if (view.cols() != cols) {
    return util::Status::InvalidArgument(
        "store view has " + std::to_string(view.cols()) +
        " columns but the model's frozen layout needs " +
        std::to_string(cols));
  }
  row->assign(static_cast<size_t>(cols), 0.0f);

  std::vector<float> slot;
  if (config.use_entity) {
    // The entity-embedding slot cannot come from training, so it borrows the
    // centroid of the new entity's structural siblings — entities sharing a
    // fine type, then any entity of the same coarse type, then a global
    // sample. The sibling rows are gathered from the *live* view, so induced
    // entities published earlier in the chain contribute too.
    const int64_t limit = std::min(view.rows(), kb.num_entities());
    constexpr int64_t kMaxSiblings = 64;
    std::vector<int64_t> siblings;
    auto scan = [&](auto&& match) {
      for (int64_t e = 0;
           e < limit && static_cast<int64_t>(siblings.size()) < kMaxSiblings;
           ++e) {
        if (match(kb.entity(e))) siblings.push_back(e);
      }
    };
    if (!entity.types.empty()) {
      scan([&](const kb::Entity& other) {
        for (kb::TypeId t : other.types) {
          if (std::find(entity.types.begin(), entity.types.end(), t) !=
              entity.types.end()) {
            return true;
          }
        }
        return false;
      });
    }
    if (siblings.empty()) {
      scan([&](const kb::Entity& other) {
        return other.coarse_type == entity.coarse;
      });
    }
    if (siblings.empty()) {
      const int64_t sample = std::min<int64_t>(limit, 256);
      for (int64_t e = 0; e < sample; ++e) siblings.push_back(e);
    }
    if (siblings.empty()) {
      return util::Status::FailedPrecondition(
          "cannot induce an entity slot from an empty store");
    }
    const int64_t entity_dim = config.entity_dim;
    slot.assign(static_cast<size_t>(entity_dim), 0.0f);
    std::vector<float> buf(static_cast<size_t>(cols));
    for (int64_t e : siblings) {
      view.GatherRow(e, buf.data());
      for (int64_t j = 0; j < entity_dim; ++j) slot[j] += buf[j];
    }
    const float inv = 1.0f / static_cast<float>(siblings.size());
    for (int64_t j = 0; j < entity_dim; ++j) slot[j] *= inv;
  }

  // Dedup relations in first-triple order — the same order AddTriple builds
  // Entity::relations in, so replayed KB state and this synthesis agree.
  kb::Entity synth;
  synth.title = entity.title;
  synth.coarse_type = entity.coarse;
  synth.types = entity.types;
  for (const DeltaTriple& t : entity.triples) {
    if (std::find(synth.relations.begin(), synth.relations.end(),
                  t.relation) == synth.relations.end()) {
      synth.relations.push_back(t.relation);
    }
  }
  return model.SynthesizeFrozenRow(synth, slot.empty() ? nullptr : slot.data(),
                                   entity.title_token_id, row->data());
}

util::Status PublishDelta(const std::string& store_root,
                          const store::EmbeddingStore& parent,
                          int64_t parent_generation, const IndexDelta& delta,
                          const float* rows, PublishResult* out) {
  if (delta.entities.empty()) {
    return util::Status::InvalidArgument("empty delta");
  }
  const std::string parent_name = fs::path(parent.dir()).filename().string();
  if (!IsGenDirName(parent_name)) {
    return util::Status::InvalidArgument(
        "cannot chain onto a store outside a gen_<number> directory: " +
        parent.dir());
  }

  const store::TableInfo* static_table = parent.FindTable("static");
  if (static_table == nullptr) {
    return util::Status::InvalidArgument("parent store has no 'static' table");
  }
  if (delta.base_entities != static_table->rows) {
    return util::Status::InvalidArgument(
        "delta bases on " + std::to_string(delta.base_entities) +
        " entities but the parent serves " +
        std::to_string(static_table->rows));
  }

  const int64_t generation = FirstFreeGeneration(store_root, parent_generation);
  const std::string dir =
      (fs::path(store_root) / GenDirName(generation)).string();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create " + dir + ": " + ec.message());
  }

  // Child tables: every parent shard re-referenced by content (its dir tag
  // now naming the directory it physically lives in), plus one fresh delta
  // shard appended to "static".
  const int64_t num_new = static_cast<int64_t>(delta.entities.size());
  std::vector<store::TableInfo> tables = parent.tables();
  std::vector<store::AuxFileInfo> aux = parent.aux_files();
  for (store::TableInfo& t : tables) {
    for (store::ShardInfo& s : t.shards) {
      if (s.dir.empty()) s.dir = parent_name;
    }
  }
  for (store::AuxFileInfo& a : aux) {
    if (a.dir.empty()) a.dir = parent_name;
  }
  for (store::TableInfo& t : tables) {
    if (t.name != "static") continue;
    char shard_name[64];
    std::snprintf(shard_name, sizeof(shard_name), "static.delta_%06lld.bin",
                  static_cast<long long>(generation));
    store::ShardInfo info;
    double max_err = 0.0, sum_err = 0.0;
    BOOTLEG_RETURN_IF_ERROR(store::WriteTableShard(
        dir, shard_name, "static", rows, t.rows, num_new, t.cols, t.dtype,
        &info, &max_err, &sum_err));
    // Fold the delta rows into the table-wide quantization error stats.
    const double old_elems = static_cast<double>(t.rows) * t.cols;
    const double new_elems = static_cast<double>(num_new) * t.cols;
    t.max_abs_error = std::max(t.max_abs_error, max_err);
    t.mean_abs_error = (t.mean_abs_error * old_elems + sum_err) /
                       (old_elems + new_elems);
    t.rows += num_new;
    t.shards.push_back(std::move(info));
  }

  // The INDEX_DELTA aux file: committed (atomically) before the manifest
  // that references it.
  const std::string delta_file = DeltaFileName(generation);
  BOOTLEG_RETURN_IF_ERROR(WriteIndexDelta(dir + "/" + delta_file, delta));
  auto bytes = util::ReadTextFile(dir + "/" + delta_file);
  BOOTLEG_RETURN_IF_ERROR(bytes.status());
  store::AuxFileInfo delta_aux;
  delta_aux.file = delta_file;
  delta_aux.file_bytes = bytes.value().size();
  delta_aux.crc = util::Crc32(bytes.value().data(), bytes.value().size());
  aux.push_back(std::move(delta_aux));

  BOOTLEG_RETURN_IF_ERROR(store::WriteChainedManifest(dir, tables, aux));
  if (out != nullptr) {
    out->dir = dir;
    out->generation = generation;
  }
  return util::Status::OK();
}

util::Status ApplyDeltas(const store::EmbeddingStore& store,
                         kb::KnowledgeBase* kb, kb::CandidateMap* candidates,
                         std::vector<int64_t>* title_token_ids,
                         ApplyStats* stats) {
  if (stats != nullptr) *stats = ApplyStats();
  for (const store::AuxFileInfo& a : store.aux_files()) {
    if (!IsDeltaFileName(a.file)) continue;
    auto delta = ReadIndexDelta(store.AuxPath(a));
    BOOTLEG_RETURN_IF_ERROR(delta.status());
    if (stats != nullptr) ++stats->deltas_seen;
    if (delta.value().base_entities > kb->num_entities()) {
      return util::Status::Corruption(
          "delta chain gap: " + a.file + " bases on " +
          std::to_string(delta.value().base_entities) +
          " entities but only " + std::to_string(kb->num_entities()) +
          " are present");
    }
    // Idempotent replay: records below the current entity count were applied
    // by an earlier adoption of a shorter chain.
    const int64_t skip = kb->num_entities() - delta.value().base_entities;
    const auto& records = delta.value().entities;
    for (size_t i = static_cast<size_t>(skip); i < records.size(); ++i) {
      const DeltaEntity& rec = records[i];
      util::Status valid =
          ValidateDeltaEntity(*kb, *candidates, kb->num_entities(), rec);
      if (!valid.ok()) {
        return util::Status::Corruption("delta record rejected (" + a.file +
                                        "): " + valid.message());
      }
      kb::Entity e;
      e.title = rec.title;
      e.coarse_type = rec.coarse;
      e.gender = rec.gender;
      e.types = rec.types;
      for (const DeltaAlias& al : rec.aliases) {
        if (al.alias != rec.title) e.aliases.push_back(al.alias);
      }
      const kb::EntityId id = kb->AddEntity(std::move(e));
      for (const DeltaTriple& t : rec.triples) {
        kb->AddTriple(id, t.relation, t.object);
      }
      for (const DeltaAlias& al : rec.aliases) {
        util::Status cs = candidates->AddCandidateLive(al.alias, id, al.prior);
        if (!cs.ok()) {
          return util::Status::Corruption("candidate delta rejected (" +
                                          a.file + "): " + cs.message());
        }
        if (stats != nullptr) stats->touched_aliases.push_back(al.alias);
      }
      if (title_token_ids != nullptr) {
        title_token_ids->push_back(rec.title_token_id);
      }
      if (stats != nullptr) ++stats->entities_applied;
    }
  }
  return util::Status::OK();
}

util::Status Compact(const std::string& store_root, CompactResult* out) {
  BOOTLEG_CHECK(out != nullptr);
  *out = CompactResult();
  int64_t source_gen = -1;
  auto opened = store::OpenNewestGeneration(store_root, &source_gen);
  BOOTLEG_RETURN_IF_ERROR(opened.status());
  const store::EmbeddingStore& src = *opened.value();
  out->source_generation = source_gen;

  bool flat = true;
  for (const store::TableInfo& t : src.tables()) {
    for (const store::ShardInfo& s : t.shards) flat &= s.dir.empty();
  }
  for (const store::AuxFileInfo& a : src.aux_files()) flat &= a.dir.empty();
  if (flat) {
    out->already_flat = true;
    out->dir = src.dir();
    out->generation = source_gen;
    return util::Status::OK();
  }

  const int64_t generation = FirstFreeGeneration(store_root, source_gen);
  const std::string dir =
      (fs::path(store_root) / GenDirName(generation)).string();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create " + dir + ": " + ec.message());
  }

  // Byte-copy every referenced shard into the flat directory under fresh
  // sequential names (delta shards from different generations may otherwise
  // collide). The bytes — and so the payload CRCs and every gathered row —
  // are identical to the chain's.
  std::vector<store::TableInfo> tables = src.tables();
  for (store::TableInfo& t : tables) {
    for (size_t si = 0; si < t.shards.size(); ++si) {
      store::ShardInfo& s = t.shards[si];
      char name[96];
      std::snprintf(name, sizeof(name), "%s.shard_%06lld.bin", t.name.c_str(),
                    static_cast<long long>(si));
      BOOTLEG_RETURN_IF_ERROR(
          CopyFileBytes(RefPath(store_root, src.dir(), s.dir, s.file),
                        dir + "/" + name, s.file_bytes));
      s.file = name;
      s.dir.clear();
      ++out->files_copied;
    }
  }
  std::vector<store::AuxFileInfo> aux = src.aux_files();
  int64_t aux_seq = 0;
  for (store::AuxFileInfo& a : aux) {
    char name[96];
    std::snprintf(name, sizeof(name), "%s%06lld.bin", kIndexDeltaFilePrefix,
                  static_cast<long long>(aux_seq));
    // Non-delta aux files (none today) keep their name; deltas renumber.
    const std::string fresh = IsDeltaFileName(a.file) ? name : a.file;
    ++aux_seq;
    BOOTLEG_RETURN_IF_ERROR(CopyFileBytes(src.AuxPath(a), dir + "/" + fresh,
                                          a.file_bytes));
    a.file = fresh;
    a.dir.clear();
    ++out->files_copied;
  }

  BOOTLEG_RETURN_IF_ERROR(store::WriteChainedManifest(dir, tables, aux));

  // Certify before reporting success: the compacted generation must open and
  // fully CRC-verify, or the caller should not point traffic at it.
  auto check = store::EmbeddingStore::Open(dir);
  BOOTLEG_RETURN_IF_ERROR(check.status());
  BOOTLEG_RETURN_IF_ERROR(check.value()->Verify());

  out->dir = dir;
  out->generation = generation;
  return util::Status::OK();
}

}  // namespace bootleg::index

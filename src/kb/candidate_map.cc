#include "kb/candidate_map.h"

#include <algorithm>

#include "util/io.h"
#include "util/logging.h"

namespace bootleg::kb {

void CandidateMap::AddAlias(const std::string& alias, EntityId entity,
                            float weight) {
  BOOTLEG_CHECK_MSG(!finalized_, "CandidateMap already finalized");
  auto& cands = map_[alias];
  for (Candidate& c : cands) {
    if (c.entity == entity) {
      c.prior += weight;
      return;
    }
  }
  cands.push_back({entity, weight});
}

void CandidateMap::Finalize(int max_candidates) {
  BOOTLEG_CHECK_MSG(!finalized_, "CandidateMap already finalized");
  BOOTLEG_CHECK_GT(max_candidates, 0);
  max_candidates_ = max_candidates;
  for (auto& [alias, cands] : map_) {
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.prior != b.prior) return a.prior > b.prior;
                       return a.entity < b.entity;
                     });
    if (static_cast<int>(cands.size()) > max_candidates) {
      cands.resize(static_cast<size_t>(max_candidates));
    }
    float total = 0.0f;
    for (const Candidate& c : cands) total += c.prior;
    if (total > 0.0f) {
      for (Candidate& c : cands) c.prior /= total;
    }
  }
  finalized_ = true;
}

util::Status CandidateMap::AddCandidateLive(const std::string& alias,
                                            EntityId entity, float prior) {
  BOOTLEG_CHECK_MSG(finalized_, "CandidateMap not finalized");
  if (alias.empty()) {
    return util::Status::InvalidArgument("empty alias");
  }
  if (!(prior > 0.0f && prior < 1.0f)) {
    return util::Status::InvalidArgument("prior must be in (0, 1)");
  }
  auto it = map_.find(alias);
  if (it == map_.end()) {
    map_.emplace(alias, std::vector<Candidate>{{entity, 1.0f}});
    return util::Status::OK();
  }
  std::vector<Candidate> next = it->second;
  for (const Candidate& c : next) {
    if (c.entity == entity) {
      return util::Status::InvalidArgument(
          "entity already a candidate for alias '" + alias + "'");
    }
  }
  // Mirror Finalize: rescale-then-insert keeps the list a distribution,
  // rank by prior (entity id tiebreak), truncate to the finalized K, and
  // renormalize if truncation dropped mass.
  for (Candidate& c : next) c.prior *= 1.0f - prior;
  next.push_back({entity, prior});
  std::stable_sort(next.begin(), next.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.prior != b.prior) return a.prior > b.prior;
                     return a.entity < b.entity;
                   });
  if (static_cast<int>(next.size()) > max_candidates_) {
    next.resize(static_cast<size_t>(max_candidates_));
    bool survived = false;
    for (const Candidate& c : next) survived |= c.entity == entity;
    if (!survived) {
      return util::Status::InvalidArgument(
          "prior too small: entity would rank below the top-" +
          std::to_string(max_candidates_) + " candidates of alias '" + alias +
          "'");
    }
    float total = 0.0f;
    for (const Candidate& c : next) total += c.prior;
    if (total > 0.0f) {
      for (Candidate& c : next) c.prior /= total;
    }
  }
  it->second = std::move(next);
  return util::Status::OK();
}

const std::vector<Candidate>* CandidateMap::Lookup(const std::string& alias) const {
  BOOTLEG_CHECK_MSG(finalized_, "CandidateMap not finalized");
  auto it = map_.find(alias);
  return it == map_.end() ? nullptr : &it->second;
}

util::Status CandidateMap::Save(const std::string& path) const {
  BOOTLEG_CHECK(finalized_);
  util::AtomicFileWriter atomic(path);
  util::BinaryWriter w(atomic.temp_path());
  w.WriteU32(0xB0071EC0);
  w.WriteU32(static_cast<uint32_t>(max_candidates_));
  w.WriteU64(map_.size());
  for (const auto& [alias, cands] : map_) {
    w.WriteString(alias);
    w.WriteU64(cands.size());
    for (const Candidate& c : cands) {
      w.WriteI64(c.entity);
      w.WriteF32(c.prior);
    }
  }
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::Status CandidateMap::Load(const std::string& path) {
  util::BinaryReader r(path);
  if (r.ReadU32() != 0xB0071EC0) {
    return util::Status::Corruption("bad candidate map magic: " + path);
  }
  map_.clear();
  max_candidates_ = static_cast<int>(r.ReadU32());
  const uint64_t n = r.ReadU64();
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    const std::string alias = r.ReadString();
    const uint64_t nc = r.ReadU64();
    std::vector<Candidate> cands;
    cands.reserve(nc);
    for (uint64_t j = 0; j < nc && r.status().ok(); ++j) {
      Candidate c;
      c.entity = r.ReadI64();
      c.prior = r.ReadF32();
      cands.push_back(c);
    }
    map_.emplace(alias, std::move(cands));
  }
  finalized_ = true;
  return r.status();
}

}  // namespace bootleg::kb

#ifndef BOOTLEG_KB_CANDIDATE_MAP_H_
#define BOOTLEG_KB_CANDIDATE_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kb/kb.h"
#include "util/status.h"

namespace bootleg::kb {

/// One candidate entity for an alias, with its prior probability (mined from
/// anchor-link statistics, as the paper mines Γ from Wikipedia anchors and
/// Wikidata "also known as").
struct Candidate {
  EntityId entity = kInvalidId;
  float prior = 0.0f;
};

/// The candidate map Γ: alias string → top-K candidate entities ranked by
/// prior. Build by accumulating (alias, entity, weight) observations, then
/// Finalize(K) to sort, truncate, and normalize.
class CandidateMap {
 public:
  CandidateMap() = default;

  /// Accumulates weight for (alias → entity). Aliases are matched exactly
  /// (the corpus is pre-lowercased by the tokenizer).
  void AddAlias(const std::string& alias, EntityId entity, float weight = 1.0f);

  /// Sorts candidates by accumulated weight, truncates to `max_candidates`,
  /// and normalizes priors to sum to 1 per alias. Must be called once after
  /// all AddAlias calls and before Lookup.
  void Finalize(int max_candidates);

  /// Candidate list for an alias, or nullptr if the alias is unknown.
  const std::vector<Candidate>* Lookup(const std::string& alias) const;

  /// Live mutation for online entity induction: inserts `entity` into the
  /// (already finalized) candidate list of `alias` with prior `prior`,
  /// scaling the existing candidates by (1 - prior) so the list stays
  /// normalized. A previously unknown alias gets a fresh single-candidate
  /// list with prior 1. The list is re-ranked and truncated to the
  /// finalized max_candidates; if the new entity itself would be truncated
  /// away (prior too small for a full list) the call fails with
  /// kInvalidArgument and the list is left untouched. Untouched aliases are
  /// never modified — their candidate lists stay bit-identical.
  util::Status AddCandidateLive(const std::string& alias, EntityId entity,
                                float prior);

  bool finalized() const { return finalized_; }
  int64_t num_aliases() const { return static_cast<int64_t>(map_.size()); }
  int max_candidates() const { return max_candidates_; }

  /// Iteration support (tests, stats).
  const std::unordered_map<std::string, std::vector<Candidate>>& map() const {
    BOOTLEG_CHECK(finalized_);
    return map_;
  }

  util::Status Save(const std::string& path) const;
  util::Status Load(const std::string& path);

 private:
  bool finalized_ = false;
  int max_candidates_ = 0;
  std::unordered_map<std::string, std::vector<Candidate>> map_;
};

}  // namespace bootleg::kb

#endif  // BOOTLEG_KB_CANDIDATE_MAP_H_

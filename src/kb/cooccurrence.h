#ifndef BOOTLEG_KB_COOCCURRENCE_H_
#define BOOTLEG_KB_COOCCURRENCE_H_

#include <cstdint>
#include <unordered_map>

#include "kb/kb.h"

namespace bootleg::kb {

/// Sentence co-occurrence statistics between entity pairs, mined from the
/// training corpus. The benchmark Bootleg model uses log(count) of sentence
/// co-occurrence as an additional KG2Ent adjacency matrix (Appendix B), with
/// pairs co-occurring fewer than `min_count` times weighted 0.
class CooccurrenceStats {
 public:
  explicit CooccurrenceStats(int64_t min_count = 3) : min_count_(min_count) {}

  /// Records that `a` and `b` were gold entities in the same sentence.
  void AddPair(EntityId a, EntityId b);

  /// Raw co-occurrence count.
  int64_t Count(EntityId a, EntityId b) const;

  /// Adjacency weight: log(count) if count ≥ min_count, else 0.
  float Weight(EntityId a, EntityId b) const;

  int64_t num_pairs() const { return static_cast<int64_t>(counts_.size()); }
  int64_t min_count() const { return min_count_; }

 private:
  static uint64_t Key(EntityId a, EntityId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  }

  int64_t min_count_;
  std::unordered_map<uint64_t, int64_t> counts_;
};

}  // namespace bootleg::kb

#endif  // BOOTLEG_KB_COOCCURRENCE_H_

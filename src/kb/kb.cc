#include "kb/kb.h"

#include <algorithm>

#include "util/io.h"
#include "util/logging.h"

namespace bootleg::kb {

const char* CoarseTypeName(CoarseType t) {
  switch (t) {
    case CoarseType::kPerson:
      return "person";
    case CoarseType::kLocation:
      return "location";
    case CoarseType::kOrganization:
      return "organization";
    case CoarseType::kArtifact:
      return "artifact";
    case CoarseType::kEvent:
      return "event";
    case CoarseType::kMisc:
      return "miscellaneous";
  }
  return "?";
}

std::optional<CoarseType> CoarseTypeFromName(const std::string& name) {
  for (int64_t i = 0; i < kNumCoarseTypes; ++i) {
    const CoarseType t = static_cast<CoarseType>(i);
    if (name == CoarseTypeName(t)) return t;
  }
  return std::nullopt;
}

TypeId KnowledgeBase::AddType(const std::string& name, CoarseType coarse) {
  const TypeId id = num_types();
  types_.push_back({id, name, coarse});
  return id;
}

RelationId KnowledgeBase::AddRelation(const std::string& name) {
  const RelationId id = num_relations();
  relations_.push_back({id, name});
  return id;
}

EntityId KnowledgeBase::AddEntity(Entity entity) {
  const EntityId id = num_entities();
  entity.id = id;
  if (std::find(entity.aliases.begin(), entity.aliases.end(), entity.title) ==
      entity.aliases.end()) {
    entity.aliases.push_back(entity.title);
  }
  title_index_.emplace(entity.title, id);
  entities_.push_back(std::move(entity));
  return id;
}

void KnowledgeBase::AddTriple(EntityId subject, RelationId relation,
                              EntityId object) {
  BOOTLEG_CHECK(subject >= 0 && subject < num_entities());
  BOOTLEG_CHECK(object >= 0 && object < num_entities());
  BOOTLEG_CHECK(relation >= 0 && relation < num_relations());
  triples_.push_back({subject, relation, object});
  neighbors_[subject].emplace_back(object, relation);
  neighbors_[object].emplace_back(subject, relation);
  auto add_rel = [this](EntityId e, RelationId r) {
    auto& rels = entities_[static_cast<size_t>(e)].relations;
    if (std::find(rels.begin(), rels.end(), r) == rels.end()) rels.push_back(r);
  };
  add_rel(subject, relation);
  add_rel(object, relation);
}

void KnowledgeBase::AddSubclass(EntityId child, EntityId parent) {
  subclass_parents_[child].push_back(parent);
}

const Entity& KnowledgeBase::entity(EntityId id) const {
  BOOTLEG_CHECK(id >= 0 && id < num_entities());
  return entities_[static_cast<size_t>(id)];
}

Entity& KnowledgeBase::mutable_entity(EntityId id) {
  BOOTLEG_CHECK(id >= 0 && id < num_entities());
  return entities_[static_cast<size_t>(id)];
}

const TypeInfo& KnowledgeBase::type(TypeId id) const {
  BOOTLEG_CHECK(id >= 0 && id < num_types());
  return types_[static_cast<size_t>(id)];
}

const RelationInfo& KnowledgeBase::relation(RelationId id) const {
  BOOTLEG_CHECK(id >= 0 && id < num_relations());
  return relations_[static_cast<size_t>(id)];
}

bool KnowledgeBase::Connected(EntityId a, EntityId b) const {
  return RelationBetween(a, b).has_value();
}

std::optional<RelationId> KnowledgeBase::RelationBetween(EntityId a,
                                                         EntityId b) const {
  auto it = neighbors_.find(a);
  if (it == neighbors_.end()) return std::nullopt;
  for (const auto& [other, rel] : it->second) {
    if (other == b) return rel;
  }
  return std::nullopt;
}

const std::vector<std::pair<EntityId, RelationId>>& KnowledgeBase::Neighbors(
    EntityId id) const {
  auto it = neighbors_.find(id);
  return it == neighbors_.end() ? empty_neighbors_ : it->second;
}

bool KnowledgeBase::TwoHopConnected(EntityId a, EntityId b) const {
  if (Connected(a, b)) return false;
  auto it = neighbors_.find(a);
  if (it == neighbors_.end()) return false;
  for (const auto& [mid, rel] : it->second) {
    (void)rel;
    if (mid != b && Connected(mid, b)) return true;
  }
  return false;
}

bool KnowledgeBase::IsSubclassOf(EntityId child, EntityId parent,
                                 int max_depth) const {
  if (max_depth <= 0) return false;
  auto it = subclass_parents_.find(child);
  if (it == subclass_parents_.end()) return false;
  for (EntityId p : it->second) {
    if (p == parent || IsSubclassOf(p, parent, max_depth - 1)) return true;
  }
  return false;
}

bool KnowledgeBase::SubclassRelated(EntityId a, EntityId b) const {
  return IsSubclassOf(a, b, 4) || IsSubclassOf(b, a, 4);
}

bool KnowledgeBase::SharesType(EntityId a, EntityId b) const {
  const auto& ta = entity(a).types;
  const auto& tb = entity(b).types;
  for (TypeId t : ta) {
    if (std::find(tb.begin(), tb.end(), t) != tb.end()) return true;
  }
  return false;
}

EntityId KnowledgeBase::FindByTitle(const std::string& title) const {
  auto it = title_index_.find(title);
  return it == title_index_.end() ? kInvalidId : it->second;
}

TypeId KnowledgeBase::FindTypeByName(const std::string& name) const {
  for (const TypeInfo& t : types_) {
    if (t.name == name) return t.id;
  }
  return kInvalidId;
}

RelationId KnowledgeBase::FindRelationByName(const std::string& name) const {
  for (const RelationInfo& r : relations_) {
    if (r.name == name) return r.id;
  }
  return kInvalidId;
}

namespace {

// Snapshot format magics. v0 is the legacy unchecksummed layout; v1 adds the
// version word, per-section CRC32s, and an end-of-file footer.
constexpr uint32_t kKbMagicV0 = 0xB0071EB0;
constexpr uint32_t kKbMagicV1 = 0xB0071EB1;
constexpr uint32_t kKbFormatVersion = 1;

bool InRange(int64_t id, int64_t limit) { return id >= 0 && id < limit; }

}  // namespace

util::Status KnowledgeBase::Save(const std::string& path) const {
  util::AtomicFileWriter atomic(path);
  util::BinaryWriter w(atomic.temp_path());
  w.WriteU32(kKbMagicV1);
  w.WriteU32(kKbFormatVersion);
  w.BeginSection();
  w.WriteU64(types_.size());
  for (const TypeInfo& t : types_) {
    w.WriteString(t.name);
    w.WriteI64(static_cast<int64_t>(t.coarse));
  }
  w.WriteU64(relations_.size());
  for (const RelationInfo& r : relations_) w.WriteString(r.name);
  w.EndSection();
  w.BeginSection();
  w.WriteU64(entities_.size());
  for (const Entity& e : entities_) {
    w.WriteString(e.title);
    w.WriteU64(e.aliases.size());
    for (const std::string& a : e.aliases) w.WriteString(a);
    w.WriteI64Vector(e.types);
    w.WriteI64(static_cast<int64_t>(e.coarse_type));
    w.WriteU32(static_cast<uint32_t>(e.gender));
  }
  w.EndSection();
  w.BeginSection();
  w.WriteU64(triples_.size());
  for (const Triple& t : triples_) {
    w.WriteI64(t.subject);
    w.WriteI64(t.relation);
    w.WriteI64(t.object);
  }
  w.WriteU64(subclass_parents_.size());
  for (const auto& [child, parents] : subclass_parents_) {
    w.WriteI64(child);
    w.WriteI64Vector(parents);
  }
  w.EndSection();
  w.WriteFooter();
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::Status KnowledgeBase::Load(const std::string& path) {
  util::BinaryReader r(path);
  BOOTLEG_RETURN_IF_ERROR(r.status());
  const uint32_t magic = r.ReadU32();
  const bool legacy = magic == kKbMagicV0;
  if (!legacy) {
    if (magic != kKbMagicV1) {
      return util::Status::Corruption("bad KB magic: " + path);
    }
    const uint32_t version = r.ReadU32();
    if (r.status().ok() && version != kKbFormatVersion) {
      return util::Status::Corruption("unsupported KB version: " + path);
    }
  }
  *this = KnowledgeBase();
  // Every id read below is range-checked before use: construction helpers
  // like AddTriple CHECK-fail on bad ids, and a corrupt or bit-flipped file
  // must surface as Status::Corruption, never a crash.
  if (!legacy) r.BeginSection();
  const uint64_t nt = r.ReadU64();
  for (uint64_t i = 0; i < nt && r.status().ok(); ++i) {
    const std::string name = r.ReadString();
    const int64_t coarse = r.ReadI64();
    if (!r.status().ok()) break;
    if (!InRange(coarse, kNumCoarseTypes)) {
      return util::Status::Corruption("type coarse id out of range: " + path);
    }
    AddType(name, static_cast<CoarseType>(coarse));
  }
  const uint64_t nr = r.ReadU64();
  for (uint64_t i = 0; i < nr && r.status().ok(); ++i) AddRelation(r.ReadString());
  if (!legacy) r.EndSection();
  if (!legacy) r.BeginSection();
  const uint64_t ne = r.ReadU64();
  for (uint64_t i = 0; i < ne && r.status().ok(); ++i) {
    Entity e;
    e.title = r.ReadString();
    const uint64_t na = r.ReadU64();
    for (uint64_t j = 0; j < na && r.status().ok(); ++j) {
      e.aliases.push_back(r.ReadString());
    }
    e.types = r.ReadI64Vector();
    const int64_t coarse = r.ReadI64();
    e.gender = static_cast<char>(r.ReadU32());
    if (!r.status().ok()) break;
    if (!InRange(coarse, kNumCoarseTypes)) {
      return util::Status::Corruption("entity coarse id out of range: " + path);
    }
    e.coarse_type = static_cast<CoarseType>(coarse);
    for (TypeId t : e.types) {
      if (!InRange(t, num_types())) {
        return util::Status::Corruption("entity type id out of range: " + path);
      }
    }
    AddEntity(std::move(e));
  }
  if (!legacy) r.EndSection();
  if (!legacy) r.BeginSection();
  const uint64_t ntr = r.ReadU64();
  for (uint64_t i = 0; i < ntr && r.status().ok(); ++i) {
    const EntityId s = r.ReadI64();
    const RelationId rel = r.ReadI64();
    const EntityId o = r.ReadI64();
    if (!r.status().ok()) break;
    if (!InRange(s, num_entities()) || !InRange(o, num_entities()) ||
        !InRange(rel, num_relations())) {
      return util::Status::Corruption("triple id out of range: " + path);
    }
    AddTriple(s, rel, o);
  }
  const uint64_t ns = r.ReadU64();
  for (uint64_t i = 0; i < ns && r.status().ok(); ++i) {
    const EntityId child = r.ReadI64();
    const std::vector<EntityId> parents = r.ReadI64Vector();
    if (!r.status().ok()) break;
    if (!InRange(child, num_entities())) {
      return util::Status::Corruption("subclass child out of range: " + path);
    }
    for (EntityId parent : parents) {
      if (!InRange(parent, num_entities())) {
        return util::Status::Corruption("subclass parent out of range: " + path);
      }
      AddSubclass(child, parent);
    }
  }
  if (!legacy) r.EndSection();
  if (!legacy) r.VerifyFooter();
  if (!r.status().ok()) {
    return util::Status::Corruption(r.status().message() + ": " + path);
  }
  return util::Status::OK();
}

}  // namespace bootleg::kb

#ifndef BOOTLEG_KB_KB_H_
#define BOOTLEG_KB_KB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace bootleg::kb {

using EntityId = int64_t;
using TypeId = int64_t;
using RelationId = int64_t;

inline constexpr int64_t kInvalidId = -1;

/// Coarse NER-style types (the paper uses the 5 coarse HYENA types plus
/// miscellaneous for mention type prediction).
enum class CoarseType : int64_t {
  kPerson = 0,
  kLocation = 1,
  kOrganization = 2,
  kArtifact = 3,
  kEvent = 4,
  kMisc = 5,
};
inline constexpr int64_t kNumCoarseTypes = 6;

const char* CoarseTypeName(CoarseType t);

/// Inverse of CoarseTypeName; nullopt for an unknown name.
std::optional<CoarseType> CoarseTypeFromName(const std::string& name);

/// A fine-grained type (Wikidata "instance of"/"occupation"-style).
struct TypeInfo {
  TypeId id = kInvalidId;
  std::string name;
  CoarseType coarse = CoarseType::kMisc;
};

/// A KG relation (Wikidata property-style, e.g. "capital of").
struct RelationInfo {
  RelationId id = kInvalidId;
  std::string name;
};

/// A knowledge-base entity with its structural signals.
struct Entity {
  EntityId id = kInvalidId;
  std::string title;
  std::vector<std::string> aliases;      // includes the title
  std::vector<TypeId> types;             // fine-grained types (possibly empty)
  CoarseType coarse_type = CoarseType::kMisc;
  std::vector<RelationId> relations;     // relations the entity participates in
  char gender = 'n';                     // 'm'/'f' for persons, 'n' otherwise

  bool IsPerson() const { return coarse_type == CoarseType::kPerson; }
};

/// A KG triple (subject, relation, object).
struct Triple {
  EntityId subject = kInvalidId;
  RelationId relation = kInvalidId;
  EntityId object = kInvalidId;
};

/// In-memory knowledge base: entities, types, relations, triples, and a
/// subclass hierarchy (used by the granularity error bucket). This is the
/// stand-in for Wikidata + YAGO in the paper.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  // -- construction -----------------------------------------------------------
  TypeId AddType(const std::string& name, CoarseType coarse);
  RelationId AddRelation(const std::string& name);
  EntityId AddEntity(Entity entity);  // entity.id is assigned; aliases may be empty
  void AddTriple(EntityId subject, RelationId relation, EntityId object);
  /// Declares `child` a subclass (finer-granularity variant) of `parent`.
  void AddSubclass(EntityId child, EntityId parent);

  // -- queries ----------------------------------------------------------------
  int64_t num_entities() const { return static_cast<int64_t>(entities_.size()); }
  int64_t num_types() const { return static_cast<int64_t>(types_.size()); }
  int64_t num_relations() const { return static_cast<int64_t>(relations_.size()); }
  int64_t num_triples() const { return static_cast<int64_t>(triples_.size()); }

  const Entity& entity(EntityId id) const;
  Entity& mutable_entity(EntityId id);
  const TypeInfo& type(TypeId id) const;
  const RelationInfo& relation(RelationId id) const;
  const std::vector<Triple>& triples() const { return triples_; }

  /// True if a and b are connected by any triple in either direction.
  bool Connected(EntityId a, EntityId b) const;

  /// The relation on an edge a→b or b→a, if any.
  std::optional<RelationId> RelationBetween(EntityId a, EntityId b) const;

  /// Outgoing+incoming neighbors of an entity with the joining relation.
  const std::vector<std::pair<EntityId, RelationId>>& Neighbors(EntityId id) const;

  /// True if the two entities are 2-hop connected through some intermediate
  /// entity but not directly connected (the paper's multi-hop error bucket).
  bool TwoHopConnected(EntityId a, EntityId b) const;

  /// True if a is a (transitive, depth ≤ 4) subclass of b or vice versa.
  bool SubclassRelated(EntityId a, EntityId b) const;

  /// True if both entities share at least one fine type.
  bool SharesType(EntityId a, EntityId b) const;

  /// Lookup of an entity by exact title; kInvalidId if absent.
  EntityId FindByTitle(const std::string& title) const;

  /// Lookup of a type / relation by exact name; kInvalidId if absent.
  /// Linear scans — these serve the rare live-add admin path, not the
  /// per-request hot path.
  TypeId FindTypeByName(const std::string& name) const;
  RelationId FindRelationByName(const std::string& name) const;

  // -- serialization ----------------------------------------------------------
  /// v1 snapshot format (versioned header, per-section CRC32 checksums,
  /// footer), written atomically via temp file + rename. Load verifies
  /// checksums and every id range, rejecting truncation, bit flips, and
  /// trailing garbage with Status::Corruption — never a crash or oversized
  /// allocation — and still reads legacy v0 files. On a non-OK Load the KB
  /// contents are unspecified; reload before use.
  util::Status Save(const std::string& path) const;
  util::Status Load(const std::string& path);

 private:
  bool IsSubclassOf(EntityId child, EntityId parent, int max_depth) const;

  std::vector<Entity> entities_;
  std::vector<TypeInfo> types_;
  std::vector<RelationInfo> relations_;
  std::vector<Triple> triples_;
  std::unordered_map<EntityId, std::vector<std::pair<EntityId, RelationId>>>
      neighbors_;
  std::unordered_map<EntityId, std::vector<EntityId>> subclass_parents_;
  std::unordered_map<std::string, EntityId> title_index_;
  std::vector<std::pair<EntityId, RelationId>> empty_neighbors_;
};

}  // namespace bootleg::kb

#endif  // BOOTLEG_KB_KB_H_

#include "kb/cooccurrence.h"

#include <cmath>

namespace bootleg::kb {

void CooccurrenceStats::AddPair(EntityId a, EntityId b) {
  if (a == b) return;
  ++counts_[Key(a, b)];
}

int64_t CooccurrenceStats::Count(EntityId a, EntityId b) const {
  auto it = counts_.find(Key(a, b));
  return it == counts_.end() ? 0 : it->second;
}

float CooccurrenceStats::Weight(EntityId a, EntityId b) const {
  const int64_t c = Count(a, b);
  if (c < min_count_) return 0.0f;
  return std::log(static_cast<float>(c));
}

}  // namespace bootleg::kb

#include "harness/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/model_loader.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace bootleg::harness {

std::vector<int64_t> Environment::TitleTokenIds() const {
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(world.kb.num_entities()));
  for (kb::EntityId e = 0; e < world.kb.num_entities(); ++e) {
    ids.push_back(world.vocab.Id(world.kb.entity(e).title));
  }
  return ids;
}

Environment BuildEnvironment(const data::SynthConfig& config,
                             bool apply_weak_labels) {
  Environment env;
  env.synth_config = config;
  env.world = data::BuildWorld(config);
  data::CorpusGenerator generator(&env.world);
  env.corpus = generator.Generate();
  env.counts_anchor_only = data::EntityCounts::FromTraining(
      env.corpus.train, /*include_weak=*/false);
  if (apply_weak_labels) {
    env.wl_stats = data::ApplyWeakLabeling(env.world.kb, &env.corpus.train);
  }
  env.counts = data::EntityCounts::FromTraining(env.corpus.train);
  for (const data::Sentence& s : env.corpus.train) {
    for (size_t i = 0; i < s.mentions.size(); ++i) {
      if (!s.mentions[i].labeled) continue;
      for (size_t j = i + 1; j < s.mentions.size(); ++j) {
        if (!s.mentions[j].labeled) continue;
        env.cooc.AddPair(s.mentions[i].gold, s.mentions[j].gold);
      }
    }
  }
  env.builder = std::make_unique<data::ExampleBuilder>(&env.world.candidates,
                                                       &env.world.vocab);
  data::ExampleOptions options;
  env.train_examples = env.builder->BuildAll(env.corpus.train, options);
  return env;
}

data::SynthConfig MainScale() { return data::SynthConfig(); }

core::BootlegConfig DefaultBootlegConfig() {
  core::BootlegConfig config;
  config.encoder.max_len = 32;
  return config;
}

core::TrainOptions DefaultTrainOptions() {
  core::TrainOptions options;
  // The paper trains 2 epochs over 5.7M Wikipedia sentences; at this corpus
  // scale more passes are needed to reach the same convergence regime.
  options.epochs = 5;
  return options;
}

std::string CacheDir() {
  const char* toggle = std::getenv("BOOTLEG_CACHE");
  if (toggle != nullptr && std::string(toggle) == "0") return "";
  const char* dir = std::getenv("BOOTLEG_CACHE_DIR");
  return dir != nullptr ? dir : "bootleg_cache";
}

namespace {

/// Cache file name: spec name + environment fingerprint + training recipe,
/// so a changed schedule or scale never silently reuses a stale checkpoint.
std::string CachePath(const Environment& env, const std::string& name,
                      const core::TrainOptions& train) {
  const std::string dir = CacheDir();
  if (dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  return util::StrFormat(
      "%s/%s_s%llu_p%lld_e%lld_wl%lld_ep%lld_lr%g.ckpt", dir.c_str(),
      name.c_str(), static_cast<unsigned long long>(env.synth_config.seed),
      static_cast<long long>(env.synth_config.num_pages),
      static_cast<long long>(env.synth_config.num_entities),
      static_cast<long long>(env.wl_stats.total_labels_after),
      static_cast<long long>(train.epochs), static_cast<double>(train.lr));
}

}  // namespace

std::unique_ptr<core::BootlegModel> TrainBootleg(Environment* env,
                                                 const BootlegSpec& spec) {
  auto model = std::make_unique<core::BootlegModel>(
      &env->world.kb, env->world.vocab.size(), spec.config, spec.model_seed);
  model->SetEntityCounts(&env->counts);
  if (spec.config.use_cooccurrence_kg) model->SetCooccurrence(&env->cooc);
  if (spec.config.use_title_feature) {
    model->SetTitleTokenIds(env->TitleTokenIds());
  }
  const std::string cache = CachePath(*env, spec.name, spec.train);
  if (!cache.empty() && std::filesystem::exists(cache) &&
      core::LoadSnapshotOrInvalidate(cache, &model->store()).ok()) {
    BOOTLEG_LOG(Info) << "loaded cached model " << cache;
    return model;
  }
  core::Trainable<core::BootlegModel> trainable(model.get());
  const core::TrainStats stats =
      core::Train(&trainable, env->train_examples, spec.train);
  BOOTLEG_LOG(Info) << "trained " << spec.name << ": "
                    << stats.sentences_seen << " sentences in "
                    << stats.seconds << "s";
  if (!cache.empty()) {
    const util::Status st = model->store().Save(cache);
    if (!st.ok()) BOOTLEG_LOG(Warning) << "cache save failed: " << st.ToString();
  }
  return model;
}

std::unique_ptr<baseline::NedBaseModel> TrainNedBase(
    Environment* env, const std::string& name,
    const core::TrainOptions& train_options, uint64_t model_seed) {
  baseline::NedBaseConfig config;
  config.encoder.max_len = 32;
  auto model = std::make_unique<baseline::NedBaseModel>(
      env->world.kb.num_entities(), env->world.vocab.size(), config, model_seed);
  const std::string cache = CachePath(*env, name, train_options);
  if (!cache.empty() && std::filesystem::exists(cache) &&
      core::LoadSnapshotOrInvalidate(cache, &model->store()).ok()) {
    BOOTLEG_LOG(Info) << "loaded cached model " << cache;
    return model;
  }
  core::Trainable<baseline::NedBaseModel> trainable(model.get());
  const core::TrainStats stats =
      core::Train(&trainable, env->train_examples, train_options);
  BOOTLEG_LOG(Info) << "trained " << name << ": " << stats.sentences_seen
                    << " sentences in " << stats.seconds << "s";
  if (!cache.empty()) {
    const util::Status st = model->store().Save(cache);
    if (!st.ok()) BOOTLEG_LOG(Warning) << "cache save failed: " << st.ToString();
  }
  return model;
}

BucketResult EvaluateBuckets(eval::NedScorer* model, const Environment& env,
                             const std::vector<data::Sentence>& sentences,
                             bool prepend_title,
                             const data::EntityCounts* bucket_counts) {
  data::ExampleOptions options;
  options.prepend_title = prepend_title;
  const data::EntityCounts& counts =
      bucket_counts != nullptr ? *bucket_counts : env.counts;
  BucketResult out{
      {}, {}, {}, {},
      eval::RunEvaluation(model, sentences, *env.builder, options, counts)};
  out.all = out.results.Overall();
  out.torso = out.results.ByBucket(data::PopularityBucket::kTorso);
  out.tail = out.results.ByBucket(data::PopularityBucket::kTail);
  out.unseen = out.results.ByBucket(data::PopularityBucket::kUnseen);
  return out;
}

std::vector<data::Sentence> DevPlusTest(const Environment& env) {
  std::vector<data::Sentence> out = env.corpus.dev;
  out.insert(out.end(), env.corpus.test.begin(), env.corpus.test.end());
  return out;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-28s", "Model");
  for (const std::string& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < 28 + columns.size() * 15; ++i) std::printf("-");
  std::printf("\n");
}

void PrintTableRow(const std::string& name, const std::vector<double>& values) {
  std::printf("%-28s", name.c_str());
  for (double v : values) std::printf(" %14.1f", v);
  std::printf("\n");
}

void PrintTableRowText(const std::string& name,
                       const std::vector<std::string>& values) {
  std::printf("%-28s", name.c_str());
  for (const std::string& v : values) std::printf(" %14s", v.c_str());
  std::printf("\n");
}

}  // namespace bootleg::harness

#ifndef BOOTLEG_HARNESS_EXPERIMENT_H_
#define BOOTLEG_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/ned_base.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "kb/cooccurrence.h"

namespace bootleg::harness {

/// A fully prepared experiment environment: world + corpus + weak labels +
/// counts + co-occurrence stats + model-ready training examples. Every bench
/// binary starts by building one of these (deterministic given the config).
struct Environment {
  data::SynthConfig synth_config;
  data::SynthWorld world;
  data::Corpus corpus;  // train split already weak-labeled when requested
  data::WeakLabelStats wl_stats;
  data::EntityCounts counts;              // anchors + weak labels
  data::EntityCounts counts_anchor_only;  // pre-weak-label counts (Table 11)
  kb::CooccurrenceStats cooc{/*min_count=*/3};
  std::unique_ptr<data::ExampleBuilder> builder;
  std::vector<data::SentenceExample> train_examples;

  std::vector<int64_t> TitleTokenIds() const;
};

/// Builds the environment. When `apply_weak_labels` is false the corpus keeps
/// only anchor labels (the Table 11 "No WL" arm).
Environment BuildEnvironment(const data::SynthConfig& config,
                             bool apply_weak_labels = true);

/// The main experiment scale (Table 2 family).
data::SynthConfig MainScale();

/// One named, trainable model configuration. The name keys the disk cache:
/// a second binary requesting the same spec on the same environment loads
/// the checkpoint instead of retraining (disable with BOOTLEG_CACHE=0).
struct BootlegSpec {
  std::string name;
  core::BootlegConfig config;
  core::TrainOptions train;
  uint64_t model_seed = 7;
};

/// Default Bootleg configuration at this repo's scale.
core::BootlegConfig DefaultBootlegConfig();
core::TrainOptions DefaultTrainOptions();

/// Trains (or cache-loads) a Bootleg model on the environment.
std::unique_ptr<core::BootlegModel> TrainBootleg(Environment* env,
                                                 const BootlegSpec& spec);

/// Trains (or cache-loads) the NED-Base baseline.
std::unique_ptr<baseline::NedBaseModel> TrainNedBase(
    Environment* env, const std::string& name,
    const core::TrainOptions& train_options, uint64_t model_seed = 13);

/// Evaluation over the paper's popularity buckets.
struct BucketResult {
  eval::Prf all, torso, tail, unseen;
  eval::ResultSet results;  // kept for slice / error analyses
};

/// `bucket_counts` overrides the counts used for bucket membership (Table 11
/// buckets by pre-weak-label counts); defaults to env.counts.
BucketResult EvaluateBuckets(eval::NedScorer* model, const Environment& env,
                             const std::vector<data::Sentence>& sentences,
                             bool prepend_title = false,
                             const data::EntityCounts* bucket_counts = nullptr);

/// dev + test concatenated — used by the micro ablations to shrink the
/// per-bucket noise (the micro unseen bucket is small).
std::vector<data::Sentence> DevPlusTest(const Environment& env);

/// Pretty-printing helpers shared by the bench binaries.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::string& name, const std::vector<double>& values);
void PrintTableRowText(const std::string& name,
                       const std::vector<std::string>& values);

/// Cache directory (BOOTLEG_CACHE_DIR, default "bootleg_cache"); empty string
/// when caching is disabled via BOOTLEG_CACHE=0.
std::string CacheDir();

}  // namespace bootleg::harness

#endif  // BOOTLEG_HARNESS_EXPERIMENT_H_

#ifndef BOOTLEG_STORE_RESIDENCY_H_
#define BOOTLEG_STORE_RESIDENCY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bootleg::store {

/// Knobs for hot-set residency management of a mapped store.
struct ResidencyOptions {
  /// Resident-set byte budget across every shard of every table. The clock
  /// sweep keeps the most-accessed shards (the Zipf head) advised resident
  /// and MADV_DONTNEEDs the rest. 0 disables management entirely (the
  /// classic unmanaged mmap behavior: the kernel keeps whatever it likes).
  int64_t budget_bytes = 0;
  /// Clock-sweep cadence. Each sweep halves every shard's access counter
  /// (so stale popularity ages out), re-ranks shards, and applies the
  /// advisory deltas.
  int64_t sweep_interval_ms = 1000;
  /// When false the background sweeper thread is not started; callers (tests,
  /// benches) drive SweepOnce() themselves for deterministic schedules.
  bool start_sweeper = true;
};

/// Residency counters for observability. All values monotonically increase
/// except resident_bytes/resident_shards, which snapshot the last sweep.
struct ResidencyStats {
  int64_t budget_bytes = 0;
  int64_t resident_bytes = 0;    // pagemap-sampled estimate at last sweep
  int64_t resident_shards = 0;   // shards currently advised resident
  int64_t prefetch_issued = 0;   // MADV_WILLNEED advisories issued
  int64_t evictions = 0;         // MADV_DONTNEED advisories issued
  int64_t cold_faults = 0;       // gathers that hit an evicted shard
  int64_t sweeps = 0;            // clock passes completed
};

/// The seam between a StoreView and the residency machinery: mapped views
/// report the rows a gather is about to touch (batch-ahead) and individual
/// shard accesses (zero-copy row-pointer path). Implementations are purely
/// advisory — they may issue madvise() on the mapped ranges but never change
/// a single gathered byte. Heap views have no policy and every hook is a
/// no-op there.
class ResidencyPolicy {
 public:
  virtual ~ResidencyPolicy() = default;

  /// Rows ids[0..n) of this policy's table are about to be gathered. Bumps
  /// the popularity of every touched shard and, for any touched shard the
  /// clock previously evicted, issues MADV_WILLNEED over just the row range
  /// the batch touches — the advisory cost scales with the batch, not the
  /// shard, and the pages are in flight before the gather loop reaches them.
  virtual void WillGather(const int64_t* ids, int64_t n) = 0;

  /// One row of shard `shard` is being read (RowPtr / single GatherRow).
  virtual void NoteRow(int64_t shard) = 0;
};

struct ResidencyShardState;  // per-shard clock state (internal)

/// One shard's advisory range: the full mapped file (mmap bases are
/// page-aligned, as madvise requires).
struct ResidencyShardSpec {
  const uint8_t* base = nullptr;
  size_t bytes = 0;
};

/// One table's shard geometry, mirrored from the store's mapped layout so
/// the per-row hooks can locate shards without reaching back into the store.
struct ResidencyTableSpec {
  std::string name;
  int64_t rows_per_shard = 0;        // 0 = ragged tiling (binary search)
  std::vector<int64_t> row_begins;   // shards+1 cumulative boundaries
  std::vector<ResidencyShardSpec> shards;
};

/// Popularity-clock residency manager for one mapped store generation.
///
/// Ownership and generation-swap safety: an EmbeddingStore owns its manager
/// and destroys it (joining the sweeper) before any shard unmaps, and the
/// serving layer only enables residency on the shared_ptr store snapshot it
/// is about to publish — so every madvise this class ever issues targets
/// mappings that are still pinned. The manager never touches another
/// generation's memory.
///
/// Concurrency: gather threads call the per-table ResidencyPolicy hooks
/// (relaxed atomics plus a CAS-guarded demand re-admission); the sweeper
/// (or a test calling SweepOnce) ranks and applies advisory deltas under an
/// internal mutex. Advisories never change mapped bytes — the mappings are
/// read-only and file-backed, so an evicted page reloads bit-identically.
class ResidencyManager {
 public:
  ResidencyManager(const ResidencyOptions& options,
                   std::vector<ResidencyTableSpec> tables);
  ~ResidencyManager();

  ResidencyManager(const ResidencyManager&) = delete;
  ResidencyManager& operator=(const ResidencyManager&) = delete;

  /// Carries shard popularity over from a displaced generation's manager
  /// when the table/shard geometry matches (by name and shard count), so the
  /// warm-up after a generation swap prefetches the shards that were hot
  /// before the swap instead of guessing. Call before Start().
  void SeedFrom(const ResidencyManager& previous);

  /// Launches the background sweeper. Its first pass is the warm-up: it
  /// ranks shards by (seeded) popularity, MADV_WILLNEEDs the head that fits
  /// the budget and evicts the rest, so first requests after a swap do not
  /// eat page-in latency on the hot set. No-op when budget_bytes == 0 or the
  /// options disabled the sweeper.
  void Start();

  /// One clock pass: halve every access counter, rank shards by popularity,
  /// keep the head within budget (the hottest shard is always kept, even if
  /// it alone exceeds the budget), MADV_DONTNEED newly cold shards and
  /// re-admit sweep-promoted ones. With warm_kept, every kept shard gets a
  /// MADV_WILLNEED touch (the warm-up pass). Updates the resident-bytes
  /// estimate via EstimateResidentBytes.
  void SweepOnce(bool warm_kept = false);

  /// The view-facing policy hook for `table`, or nullptr if unknown.
  ResidencyPolicy* TableHook(const std::string& table);

  ResidencyStats stats() const;

  /// Resident byte count across all managed shards, walked from
  /// /proc/self/pagemap (pages mapped into this address space — the quantity
  /// VmRSS charges and MADV_DONTNEED reclaims), falling back to mincore and
  /// then to the advised-state counters when sampling is unavailable.
  int64_t EstimateResidentBytes() const;

 private:
  class Table;

  /// Re-admits an evicted shard that traffic just touched: counts the cold
  /// fault and issues MADV_WILLNEED over the whole shard so the rest of the
  /// batch reads warm pages. CAS-guarded so racing gather threads admit
  /// once. This is the un-batched (RowPtr / single GatherRow) fallback;
  /// batched gathers go through AdmitRange with a tighter span.
  void DemandAdmit(ResidencyShardState& s);

  /// Batch-ahead re-admission: flips the shard resident (counting the cold
  /// fault exactly once across racing threads) and MADV_WILLNEEDs only
  /// `[addr, addr+len)` — the page span of the rows the imminent batch
  /// touches — instead of the whole shard, keeping the in-band advisory
  /// cost proportional to the batch.
  void AdmitRange(ResidencyShardState& s, const uint8_t* addr, size_t len);

  const ResidencyOptions options_;
  std::vector<std::unique_ptr<Table>> tables_;

  // Event counters shared by hooks and sweeps (mirrored into the global
  // metrics registry at the increment sites).
  std::atomic<int64_t> prefetch_issued_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> cold_faults_{0};
  std::atomic<int64_t> sweeps_{0};
  std::atomic<int64_t> resident_bytes_{0};
  std::atomic<int64_t> resident_shards_{0};

  mutable std::mutex sweep_mu_;  // serializes SweepOnce

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread sweeper_;

  friend class ResidencyManagerTestPeer;
};

}  // namespace bootleg::store

#endif  // BOOTLEG_STORE_RESIDENCY_H_

#include "store/embedding_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <utility>

#include "backend/simd_primitives.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace bootleg::store {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kManifestMagic = 0xB007E5D0;
constexpr uint32_t kShardMagic = 0xB007E5D1;
constexpr uint32_t kVersion = 1;
/// Manifest version carrying chained-generation references: per-shard
/// directory tags pointing at sibling generations plus an aux-file section.
/// Shard files themselves are unversioned-by-chain (still kVersion).
constexpr uint32_t kVersionChained = 2;

/// Manifests may reference files in sibling generation directories, but only
/// through a strict `gen_<digits>` component — never a path that could
/// escape the store root.
bool ValidDirRef(const std::string& d) {
  if (d.empty()) return true;
  if (d.rfind("gen_", 0) != 0 || d.size() <= 4) return false;
  for (size_t i = 4; i < d.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(d[i]))) return false;
  }
  return true;
}

/// Resolves a (dir ref, file) pair against the directory holding the
/// manifest: own-dir files live next to it, dir-tagged files in a sibling
/// generation directory under the common store root.
std::string ResolveChained(const std::string& manifest_dir,
                           const std::string& dir_ref,
                           const std::string& file) {
  if (dir_ref.empty()) return manifest_dir + "/" + file;
  return (fs::path(manifest_dir).parent_path() / dir_ref / file).string();
}

/// Shard payloads start on a 64-byte boundary so mapped float scales and
/// rows are cache-line aligned regardless of the header's string lengths.
constexpr uint64_t kPayloadAlign = 64;

constexpr const char* kManifestName = "MANIFEST";

uint64_t ElemBytes(Dtype dtype) { return dtype == Dtype::kInt8 ? 1 : 4; }

uint64_t PayloadBytes(Dtype dtype, int64_t row_count, int64_t cols) {
  const uint64_t rows_bytes = static_cast<uint64_t>(row_count) *
                              static_cast<uint64_t>(cols) * ElemBytes(dtype);
  const uint64_t scale_bytes =
      dtype == Dtype::kInt8 ? static_cast<uint64_t>(row_count) * 4 : 0;
  return scale_bytes + rows_bytes;
}

uint64_t AlignUp(uint64_t v) {
  return (v + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
}

std::string ShardFileName(const std::string& table, int64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".shard_%06lld.bin",
                static_cast<long long>(index));
  return table + buf;
}

/// Process-wide gather accounting shared by every mapped view (serving runs
/// one store generation at a time; tests reset the registry).
obs::Counter* GatherRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("store.gather_rows");
  return c;
}

}  // namespace

const char* DtypeName(Dtype dtype) {
  switch (dtype) {
    case Dtype::kFloat32: return "float32";
    case Dtype::kInt8: return "int8";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

float QuantizeRow(const float* src, int64_t cols, int8_t* dst) {
  float max_abs = 0.0f;
  for (int64_t j = 0; j < cols; ++j) {
    max_abs = std::max(max_abs, std::fabs(src[j]));
  }
  if (max_abs == 0.0f) {
    std::memset(dst, 0, static_cast<size_t>(cols));
    return 0.0f;
  }
  const float scale = max_abs / 127.0f;
  const float inv = 127.0f / max_abs;
  for (int64_t j = 0; j < cols; ++j) {
    const float q = std::nearbyintf(src[j] * inv);
    dst[j] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, q)));
  }
  return scale;
}

void DequantizeRow(const int8_t* src, int64_t cols, float scale, float* dst) {
  for (int64_t j = 0; j < cols; ++j) {
    dst[j] = static_cast<float>(src[j]) * scale;
  }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

/// Writes one shard file atomically and fills `info` (including payload
/// CRC). `data` points at the first row to write; `row_begin` is only
/// recorded in the header/manifest (delta shards write rows whose table
/// offset is far from their buffer offset).
util::Status WriteShardFile(const std::string& dir, const std::string& file,
                            const std::string& table, const float* data,
                            int64_t row_begin, int64_t row_count, int64_t cols,
                            Dtype dtype, ShardInfo* info,
                            double* max_abs_error, double* sum_abs_error) {
  info->file = file;
  info->row_begin = row_begin;
  info->row_count = row_count;

  util::AtomicFileWriter atomic(dir + "/" + info->file);
  util::BinaryWriter w(atomic.temp_path());
  w.WriteU32(kShardMagic);
  w.WriteU32(kVersion);
  w.BeginSection();
  w.WriteString(table);
  w.WriteU32(static_cast<uint32_t>(dtype));
  w.WriteI64(row_begin);
  w.WriteI64(row_count);
  w.WriteI64(cols);
  w.WriteU64(PayloadBytes(dtype, row_count, cols));
  w.EndSection();

  // Pad so the payload starts cache-line aligned (the reader recomputes the
  // same offset from its consumed byte count).
  const uint64_t pad = AlignUp(w.bytes_written()) - w.bytes_written();
  const char zeros[kPayloadAlign] = {};
  w.WriteRaw(zeros, pad);

  const float* rows = data;
  uint32_t crc = 0;
  if (dtype == Dtype::kFloat32) {
    const size_t n = static_cast<size_t>(row_count * cols) * 4;
    crc = util::Crc32(rows, n);
    w.WriteRaw(rows, n);
  } else {
    std::vector<float> scales(static_cast<size_t>(row_count));
    std::vector<int8_t> q(static_cast<size_t>(row_count * cols));
    double max_err = 0.0, sum_err = 0.0;
    for (int64_t r = 0; r < row_count; ++r) {
      const float* x = rows + r * cols;
      int8_t* qr = q.data() + r * cols;
      const float scale = QuantizeRow(x, cols, qr);
      scales[static_cast<size_t>(r)] = scale;
      for (int64_t j = 0; j < cols; ++j) {
        const double err =
            std::fabs(static_cast<double>(x[j]) -
                      static_cast<double>(qr[j]) * static_cast<double>(scale));
        max_err = std::max(max_err, err);
        sum_err += err;
      }
    }
    *max_abs_error = max_err;
    *sum_abs_error = sum_err;
    const size_t scale_bytes = scales.size() * 4;
    crc = util::Crc32(scales.data(), scale_bytes);
    crc = util::Crc32(q.data(), q.size(), crc);
    w.WriteRaw(scales.data(), scale_bytes);
    w.WriteRaw(q.data(), q.size());
  }
  info->payload_crc = crc;
  w.WriteU32(crc);
  w.WriteFooter();
  info->file_bytes = w.bytes_written();
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

void SaveManifestTo(util::BinaryWriter* w, uint32_t version,
                    const std::vector<TableInfo>& tables,
                    const std::vector<AuxFileInfo>& aux) {
  w->WriteU32(kManifestMagic);
  w->WriteU32(version);
  w->BeginSection();
  w->WriteU64(tables.size());
  for (const TableInfo& t : tables) {
    w->WriteString(t.name);
    w->WriteI64(t.rows);
    w->WriteI64(t.cols);
    w->WriteU32(static_cast<uint32_t>(t.dtype));
    w->WriteF64(t.max_abs_error);
    w->WriteF64(t.mean_abs_error);
    w->WriteU64(t.shards.size());
    for (const ShardInfo& s : t.shards) {
      w->WriteString(s.file);
      if (version >= kVersionChained) w->WriteString(s.dir);
      w->WriteI64(s.row_begin);
      w->WriteI64(s.row_count);
      w->WriteU64(s.file_bytes);
      w->WriteU32(s.payload_crc);
    }
  }
  w->EndSection();
  if (version >= kVersionChained) {
    w->BeginSection();
    w->WriteU64(aux.size());
    for (const AuxFileInfo& a : aux) {
      w->WriteString(a.file);
      w->WriteString(a.dir);
      w->WriteU64(a.file_bytes);
      w->WriteU32(a.crc);
    }
    w->EndSection();
  }
  w->WriteFooter();
}

util::Status LoadManifest(const std::string& path,
                          std::vector<TableInfo>* tables,
                          std::vector<AuxFileInfo>* aux) {
  util::BinaryReader r(path);
  BOOTLEG_RETURN_IF_ERROR(r.status());
  auto corrupt = [&path](const std::string& what) {
    return util::Status::Corruption("store manifest: " + what + ": " + path);
  };
  if (r.ReadU32() != kManifestMagic) return corrupt("bad magic");
  const uint32_t version = r.ReadU32();
  if (version != kVersion && version != kVersionChained) {
    return corrupt("unsupported version");
  }
  r.BeginSection();
  const uint64_t num_tables = r.ReadU64();
  if (!r.status().ok() || num_tables > 64) return corrupt("bad table count");
  tables->clear();
  aux->clear();
  for (uint64_t i = 0; i < num_tables; ++i) {
    TableInfo t;
    t.name = r.ReadString();
    t.rows = r.ReadI64();
    t.cols = r.ReadI64();
    const uint32_t dtype = r.ReadU32();
    t.max_abs_error = r.ReadF64();
    t.mean_abs_error = r.ReadF64();
    const uint64_t num_shards = r.ReadU64();
    if (!r.status().ok()) return corrupt("truncated table entry");
    if (t.rows < 0 || t.cols <= 0 || dtype > 1 ||
        num_shards > static_cast<uint64_t>(t.rows) + 1) {
      return corrupt("invalid table geometry");
    }
    t.dtype = static_cast<Dtype>(dtype);
    for (uint64_t si = 0; si < num_shards; ++si) {
      ShardInfo s;
      s.file = r.ReadString();
      if (version >= kVersionChained) s.dir = r.ReadString();
      s.row_begin = r.ReadI64();
      s.row_count = r.ReadI64();
      s.file_bytes = r.ReadU64();
      s.payload_crc = r.ReadU32();
      if (!r.status().ok()) return corrupt("truncated shard entry");
      if (s.row_begin < 0 || s.row_count < 0 ||
          s.row_begin + s.row_count > t.rows ||
          s.file.find('/') != std::string::npos || !ValidDirRef(s.dir)) {
        return corrupt("invalid shard entry");
      }
      t.shards.push_back(std::move(s));
    }
    tables->push_back(std::move(t));
  }
  r.EndSection();
  if (version >= kVersionChained) {
    r.BeginSection();
    const uint64_t num_aux = r.ReadU64();
    if (!r.status().ok() || num_aux > 4096) return corrupt("bad aux count");
    for (uint64_t i = 0; i < num_aux; ++i) {
      AuxFileInfo a;
      a.file = r.ReadString();
      a.dir = r.ReadString();
      a.file_bytes = r.ReadU64();
      a.crc = r.ReadU32();
      if (!r.status().ok()) return corrupt("truncated aux entry");
      if (a.file.empty() || a.file.find('/') != std::string::npos ||
          !ValidDirRef(a.dir)) {
        return corrupt("invalid aux entry");
      }
      aux->push_back(std::move(a));
    }
    r.EndSection();
  }
  r.VerifyFooter();
  if (!r.status().ok()) {
    return corrupt(r.status().message());
  }
  return util::Status::OK();
}

}  // namespace

util::Status WriteStore(const std::string& dir,
                        const std::vector<TableSource>& tables,
                        const WriteOptions& options) {
  if (tables.empty()) {
    return util::Status::InvalidArgument("store export needs at least one table");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create store dir " + dir + ": " +
                                 ec.message());
  }

  std::vector<TableInfo> manifest;
  for (const TableSource& src : tables) {
    if (src.data == nullptr || src.rows <= 0 || src.cols <= 0) {
      return util::Status::InvalidArgument("store table " + src.name +
                                           " has no data");
    }
    TableInfo info;
    info.name = src.name;
    info.rows = src.rows;
    info.cols = src.cols;
    info.dtype = options.dtype;

    const int64_t want = std::max<int64_t>(1, options.shards);
    const int64_t rows_per_shard = (src.rows + want - 1) / want;
    const int64_t num_shards = (src.rows + rows_per_shard - 1) / rows_per_shard;
    info.shards.resize(static_cast<size_t>(num_shards));
    std::vector<double> max_errs(static_cast<size_t>(num_shards), 0.0);
    std::vector<double> sum_errs(static_cast<size_t>(num_shards), 0.0);
    std::vector<util::Status> shard_status(static_cast<size_t>(num_shards));

    // Shards cover disjoint row ranges, so they build and commit in parallel.
    util::ThreadPool::Global()->ParallelFor(
        0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi) {
          for (int64_t si = lo; si < hi; ++si) {
            const int64_t begin = si * rows_per_shard;
            const int64_t count = std::min(rows_per_shard, src.rows - begin);
            shard_status[static_cast<size_t>(si)] = WriteShardFile(
                dir, ShardFileName(src.name, si), src.name,
                src.data + begin * src.cols, begin, count, src.cols,
                options.dtype, &info.shards[static_cast<size_t>(si)],
                &max_errs[static_cast<size_t>(si)],
                &sum_errs[static_cast<size_t>(si)]);
          }
        });
    for (const util::Status& st : shard_status) BOOTLEG_RETURN_IF_ERROR(st);

    if (options.dtype == Dtype::kInt8) {
      double sum = 0.0;
      for (int64_t si = 0; si < num_shards; ++si) {
        info.max_abs_error =
            std::max(info.max_abs_error, max_errs[static_cast<size_t>(si)]);
        sum += sum_errs[static_cast<size_t>(si)];
      }
      info.mean_abs_error =
          sum / (static_cast<double>(src.rows) * static_cast<double>(src.cols));
    }
    manifest.push_back(std::move(info));
  }

  // MANIFEST last: its presence certifies every shard above was committed.
  util::AtomicFileWriter atomic(dir + "/" + kManifestName);
  util::BinaryWriter w(atomic.temp_path());
  SaveManifestTo(&w, kVersion, manifest, {});
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::Status WriteTableShard(const std::string& dir, const std::string& file,
                             const std::string& table, const float* data,
                             int64_t row_begin, int64_t row_count,
                             int64_t cols, Dtype dtype, ShardInfo* info,
                             double* max_abs_error, double* sum_abs_error) {
  if (data == nullptr || row_count <= 0 || cols <= 0) {
    return util::Status::InvalidArgument("delta shard for " + table +
                                         " has no rows");
  }
  if (file.empty() || file.find('/') != std::string::npos) {
    return util::Status::InvalidArgument("bad shard file name: " + file);
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create store dir " + dir + ": " +
                                 ec.message());
  }
  double max_err = 0.0, sum_err = 0.0;
  BOOTLEG_RETURN_IF_ERROR(WriteShardFile(dir, file, table, data, row_begin,
                                         row_count, cols, dtype, info,
                                         &max_err, &sum_err));
  if (max_abs_error != nullptr) *max_abs_error = max_err;
  if (sum_abs_error != nullptr) *sum_abs_error = sum_err;
  return util::Status::OK();
}

util::Status WriteChainedManifest(const std::string& dir,
                                  const std::vector<TableInfo>& tables,
                                  const std::vector<AuxFileInfo>& aux) {
  for (const TableInfo& t : tables) {
    for (const ShardInfo& s : t.shards) {
      if (!ValidDirRef(s.dir)) {
        return util::Status::InvalidArgument("bad shard dir ref: " + s.dir);
      }
    }
  }
  for (const AuxFileInfo& a : aux) {
    if (!ValidDirRef(a.dir)) {
      return util::Status::InvalidArgument("bad aux dir ref: " + a.dir);
    }
  }
  util::AtomicFileWriter atomic(dir + "/" + kManifestName);
  util::BinaryWriter w(atomic.temp_path());
  SaveManifestTo(&w, kVersionChained, tables, aux);
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

MappedFile::~MappedFile() { Reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

util::Status MappedFile::Map(const std::string& path) {
  Reset();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("stat " + path + ": " + err);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return util::Status::Corruption("empty file: " + path);
  }
  void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                   MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) {
    return util::Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  data_ = static_cast<uint8_t*>(p);
  size_ = static_cast<uint64_t>(st.st_size);
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Mapped views
// ---------------------------------------------------------------------------

class MmapFloatView : public StoreView {
 public:
  MmapFloatView(const EmbeddingStore::MappedTable* table,
                ResidencyPolicy* residency)
      : table_(table), residency_(residency) {}

  int64_t rows() const override { return table_->info.rows; }
  int64_t cols() const override { return table_->info.cols; }

  const float* RowPtr(int64_t id) const override {
    GatherRowsCounter()->Add(1);
    int64_t local, si;
    const EmbeddingStore::MappedShard* s = Locate(id, &local, &si);
    if (residency_ != nullptr) residency_->NoteRow(si);
    return reinterpret_cast<const float*>(s->rows) + local * table_->info.cols;
  }

  void GatherRow(int64_t id, float* dst) const override {
    const float* src = RowPtr(id);
    for (int64_t j = 0; j < table_->info.cols; ++j) dst[j] = src[j];
  }

  void GatherRows(const int64_t* ids, int64_t n, float* dst) const override {
    if (n <= 0) return;
    GatherRowsCounter()->Add(n);  // one update for the whole batch
    // Batch-ahead residency pass: bump shard popularity once per row and
    // WILLNEED the touched row ranges of any evicted shard before the copy
    // loop faults on them. The loop itself skips the per-row NoteRow — the
    // batch pass already counted these rows.
    if (residency_ != nullptr) residency_->WillGather(ids, n);
    const int64_t cols = table_->info.cols;
    for (int64_t i = 0; i < n; ++i) {
      int64_t local, si;
      const EmbeddingStore::MappedShard* s = Locate(ids[i], &local, &si);
      const float* src =
          reinterpret_cast<const float*>(s->rows) + local * cols;
      float* out = dst + i * cols;
      for (int64_t j = 0; j < cols; ++j) out[j] = src[j];
    }
  }

  void PrefetchRow(int64_t id) const override {
    int64_t local, si;
    const EmbeddingStore::MappedShard* s = Locate(id, &local, &si);
    const int64_t cols = table_->info.cols;
    const char* p = reinterpret_cast<const char*>(
        reinterpret_cast<const float*>(s->rows) + local * cols);
    const char* end = p + cols * static_cast<int64_t>(sizeof(float));
    for (; p < end; p += 64) __builtin_prefetch(p, 0, 3);
  }

  void WillGather(const int64_t* ids, int64_t n) const override {
    if (residency_ != nullptr) residency_->WillGather(ids, n);
  }

  ResidencyPolicy* residency_policy() const override { return residency_; }

 private:
  /// O(1) divide on uniform tilings; binary search over the cumulative
  /// shard boundaries on the ragged tilings a delta chain produces.
  const EmbeddingStore::MappedShard* Locate(int64_t id, int64_t* local,
                                            int64_t* shard) const {
    const int64_t rps = table_->rows_per_shard;
    int64_t si;
    if (rps > 0) {
      si = id / rps;
    } else {
      const auto& b = table_->row_begins;
      si = static_cast<int64_t>(std::upper_bound(b.begin(), b.end(), id) -
                                b.begin()) -
           1;
    }
    *local = id - table_->row_begins[static_cast<size_t>(si)];
    *shard = si;
    return &table_->shards[static_cast<size_t>(si)];
  }

  const EmbeddingStore::MappedTable* table_;  // borrowed from the store
  ResidencyPolicy* residency_;                // nullable; owned by the store
};

class MmapInt8View : public StoreView {
 public:
  MmapInt8View(const EmbeddingStore::MappedTable* table,
               ResidencyPolicy* residency)
      : table_(table), residency_(residency) {}

  int64_t rows() const override { return table_->info.rows; }
  int64_t cols() const override { return table_->info.cols; }

  void GatherRow(int64_t id, float* dst) const override {
    GatherRowsCounter()->Add(1);
    int64_t local, si;
    const EmbeddingStore::MappedShard& s = *Locate(id, &local, &si);
    if (residency_ != nullptr) residency_->NoteRow(si);
    const int64_t cols = table_->info.cols;
    const int8_t* q = reinterpret_cast<const int8_t*>(s.rows) + local * cols;
    // Fused gather+dequant: convert straight from the mapped int8 row into
    // dst with the SIMD core (one pass, no staging copy). Bit-identical to
    // DequantizeRow — int8→f32 is exact and the per-element multiply is
    // correctly rounded in both paths.
    backend::DequantRow(q, cols, s.scales[local], dst);
  }

  void GatherRows(const int64_t* ids, int64_t n, float* dst) const override {
    if (n <= 0) return;
    GatherRowsCounter()->Add(n);  // one update for the whole batch
    // Batch-ahead residency pass: bump shard popularity and WILLNEED any
    // evicted shard this batch touches before the gather loop reaches it.
    if (residency_ != nullptr) residency_->WillGather(ids, n);
    const int64_t cols = table_->info.cols;
    const int64_t rps = table_->rows_per_shard;
    // One double multiply + boundary fixup instead of an int64 divide per
    // shard lookup; exact for every id the mantissa can hold (rows are far
    // below 2^52), and the fixup corrects any boundary rounding regardless.
    // Ragged (delta-chain) tilings take the binary-search path instead.
    const double inv = rps > 0 ? 1.0 / static_cast<double>(rps) : 0.0;
    const auto locate = [&](int64_t id, const float** scale) {
      int64_t si;
      if (rps > 0) {
        si = static_cast<int64_t>(static_cast<double>(id) * inv);
        if (id < si * rps) {
          --si;
        } else if (id >= (si + 1) * rps) {
          ++si;
        }
      } else {
        const auto& b = table_->row_begins;
        si = static_cast<int64_t>(std::upper_bound(b.begin(), b.end(), id) -
                                  b.begin()) -
             1;
      }
      const EmbeddingStore::MappedShard& s =
          table_->shards[static_cast<size_t>(si)];
      const int64_t local = id - table_->row_begins[static_cast<size_t>(si)];
      *scale = s.scales + local;
      return reinterpret_cast<const int8_t*>(s.rows) + local * cols;
    };
    // Keep a window of upcoming rows' cache lines in flight so the fused
    // dequant runs at bandwidth, not per-row miss latency. High-locality
    // hint (pull into L1, not just L2/L3) and a deep window measure fastest
    // for the ~100-byte rows this serves.
    constexpr int64_t kLookahead = 32;
    const auto prefetch = [&](int64_t id) {
      const float* scale;
      const char* p = reinterpret_cast<const char*>(locate(id, &scale));
      __builtin_prefetch(scale, 0, 3);
      for (const char* end = p + cols; p < end; p += 64) {
        __builtin_prefetch(p, 0, 3);
      }
    };
    for (int64_t i = 0; i < std::min(kLookahead, n); ++i) prefetch(ids[i]);
    for (int64_t i = 0; i < n; ++i) {
      if (i + kLookahead < n) prefetch(ids[i + kLookahead]);
      const float* scale;
      const int8_t* q = locate(ids[i], &scale);
      backend::DequantRow(q, cols, *scale, dst + i * cols);
    }
  }

  void PrefetchRow(int64_t id) const override {
    int64_t local, si;
    const EmbeddingStore::MappedShard& s = *Locate(id, &local, &si);
    const int64_t cols = table_->info.cols;
    const char* p = reinterpret_cast<const char*>(
        reinterpret_cast<const int8_t*>(s.rows) + local * cols);
    const char* end = p + cols;
    // The row's scale sits in a separate mapped region; pull it too.
    __builtin_prefetch(s.scales + local, 0, 3);
    for (; p < end; p += 64) __builtin_prefetch(p, 0, 3);
  }

  void WillGather(const int64_t* ids, int64_t n) const override {
    if (residency_ != nullptr) residency_->WillGather(ids, n);
  }

  ResidencyPolicy* residency_policy() const override { return residency_; }

 private:
  const EmbeddingStore::MappedShard* Locate(int64_t id, int64_t* local,
                                            int64_t* shard) const {
    const int64_t rps = table_->rows_per_shard;
    int64_t si;
    if (rps > 0) {
      si = id / rps;
    } else {
      const auto& b = table_->row_begins;
      si = static_cast<int64_t>(std::upper_bound(b.begin(), b.end(), id) -
                                b.begin()) -
           1;
    }
    *local = id - table_->row_begins[static_cast<size_t>(si)];
    *shard = si;
    return &table_->shards[static_cast<size_t>(si)];
  }

  const EmbeddingStore::MappedTable* table_;  // borrowed from the store
  ResidencyPolicy* residency_;                // nullable; owned by the store
};

// ---------------------------------------------------------------------------
// EmbeddingStore
// ---------------------------------------------------------------------------

util::StatusOr<std::unique_ptr<EmbeddingStore>> EmbeddingStore::Open(
    const std::string& dir) {
  std::unique_ptr<EmbeddingStore> store(new EmbeddingStore());
  util::Status st = store->Load(dir);
  if (!st.ok()) return st;
  return store;
}

util::Status EmbeddingStore::Load(const std::string& dir) {
  dir_ = dir;
  BOOTLEG_RETURN_IF_ERROR(
      LoadManifest(dir + "/" + kManifestName, &tables_, &aux_));

  for (const TableInfo& info : tables_) {
    MappedTable mt;
    mt.info = info;
    if (info.shards.empty()) {
      return util::Status::Corruption("store table " + info.name +
                                      " has no shards: " + dir);
    }
    // Shard ranges must tile [0, rows) contiguously with no empty shards.
    // A flat export tiles uniformly (O(1) divide lookup); a delta chain
    // appends small ragged shards, for which lookups binary-search the
    // cumulative boundaries instead.
    int64_t expect_begin = 0;
    mt.row_begins.reserve(info.shards.size() + 1);
    for (const ShardInfo& shard : info.shards) {
      if (shard.row_begin != expect_begin) {
        return util::Status::Corruption("store table " + info.name +
                                        " shard ranges are not contiguous");
      }
      if (shard.row_count <= 0) {
        return util::Status::Corruption("store table " + info.name +
                                        " has an empty shard: " + dir);
      }
      mt.row_begins.push_back(shard.row_begin);
      expect_begin += shard.row_count;
    }
    mt.row_begins.push_back(expect_begin);
    if (expect_begin != info.rows) {
      return util::Status::Corruption("store table " + info.name +
                                      " shards do not cover every row");
    }
    const int64_t tile = info.shards[0].row_count;
    bool uniform = info.shards.back().row_count <= tile;
    for (size_t si = 0; si + 1 < info.shards.size() && uniform; ++si) {
      uniform = info.shards[si].row_count == tile;
    }
    mt.rows_per_shard = uniform ? tile : 0;

    for (const ShardInfo& shard : info.shards) {
      const std::string path = ResolveChained(dir, shard.dir, shard.file);
      auto corrupt = [&path](const std::string& what) {
        return util::Status::Corruption("store shard: " + what + ": " + path);
      };

      // Header parse + checksum through the bounded reader, then map.
      util::BinaryReader r(path);
      if (!r.status().ok()) return corrupt("unreadable");
      if (r.ReadU32() != kShardMagic) return corrupt("bad magic");
      if (r.ReadU32() != kVersion) return corrupt("unsupported version");
      r.BeginSection();
      const std::string table_name = r.ReadString();
      const Dtype dtype = static_cast<Dtype>(r.ReadU32());
      const int64_t row_begin = r.ReadI64();
      const int64_t row_count = r.ReadI64();
      const int64_t cols = r.ReadI64();
      const uint64_t payload_bytes = r.ReadU64();
      r.EndSection();
      if (!r.status().ok()) return corrupt(r.status().message());
      if (table_name != info.name || dtype != info.dtype ||
          row_begin != shard.row_begin || row_count != shard.row_count ||
          cols != info.cols ||
          payload_bytes != PayloadBytes(info.dtype, row_count, cols)) {
        return corrupt("header disagrees with manifest");
      }
      const uint64_t header_end = r.consumed();
      const uint64_t payload_offset = AlignUp(header_end);
      // payload + trailing CRC word + footer (magic u32 + length u64).
      const uint64_t want_bytes = payload_offset + payload_bytes + 4 + 12;

      MappedShard ms;
      util::Status mst = ms.file.Map(path);
      if (!mst.ok()) {
        return mst.code() == util::StatusCode::kCorruption
                   ? mst
                   : corrupt(mst.message());
      }
      if (ms.file.size() != want_bytes || shard.file_bytes != want_bytes) {
        return corrupt("size mismatch (truncated or trailing garbage)");
      }
      const uint8_t* base = ms.file.data();
      // The alignment padding sits outside both the header-section CRC and
      // the payload CRC, so it gets its own check: it must be all zero.
      for (uint64_t i = header_end; i < payload_offset; ++i) {
        if (base[i] != 0) return corrupt("nonzero alignment padding");
      }
      uint32_t footer_magic = 0;
      uint64_t footer_len = 0;
      std::memcpy(&footer_magic, base + ms.file.size() - 12, 4);
      std::memcpy(&footer_len, base + ms.file.size() - 8, 8);
      if (footer_magic != util::kFooterMagic ||
          footer_len != ms.file.size() - 12) {
        return corrupt("bad footer");
      }
      ms.payload = base + payload_offset;
      ms.payload_bytes = payload_bytes;
      if (info.dtype == Dtype::kInt8) {
        ms.scales = reinterpret_cast<const float*>(ms.payload);
        ms.rows = ms.payload + static_cast<uint64_t>(row_count) * 4;
      } else {
        ms.scales = nullptr;
        ms.rows = ms.payload;
      }
      mt.shards.push_back(std::move(ms));
    }
    mapped_.push_back(std::move(mt));
  }

  // Aux files: exact-size check at open (cheap truncation/garbage catch);
  // their byte content is verified by Verify() like shard payloads.
  for (const AuxFileInfo& a : aux_) {
    const std::string path = AuxPath(a);
    std::error_code ec;
    const uint64_t size = fs::file_size(path, ec);
    if (ec || size != a.file_bytes) {
      return util::Status::Corruption("store aux file size mismatch: " + path);
    }
  }
  return util::Status::OK();
}

util::Status EmbeddingStore::Verify() const {
  for (const AuxFileInfo& a : aux_) {
    const std::string path = AuxPath(a);
    auto contents = util::ReadTextFile(path);
    if (!contents.ok() || contents.value().size() != a.file_bytes ||
        util::Crc32(contents.value().data(), contents.value().size()) !=
            a.crc) {
      return util::Status::Corruption("store aux file checksum mismatch: " +
                                      path);
    }
  }
  for (const MappedTable& mt : mapped_) {
    for (size_t si = 0; si < mt.shards.size(); ++si) {
      const MappedShard& ms = mt.shards[si];
      const ShardInfo& shard = mt.info.shards[si];
      const uint32_t computed = util::Crc32(ms.payload, ms.payload_bytes);
      uint32_t stored = 0;
      std::memcpy(&stored, ms.payload + ms.payload_bytes, 4);
      if (computed != stored || computed != shard.payload_crc) {
        return util::Status::Corruption("store shard payload checksum "
                                        "mismatch: " +
                                        dir_ + "/" + shard.file);
      }
    }
  }
  return util::Status::OK();
}

std::string EmbeddingStore::AuxPath(const AuxFileInfo& aux) const {
  return ResolveChained(dir_, aux.dir, aux.file);
}

const TableInfo* EmbeddingStore::FindTable(const std::string& name) const {
  for (const TableInfo& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

uint64_t EmbeddingStore::mapped_bytes() const {
  uint64_t total = 0;
  for (const MappedTable& mt : mapped_) {
    for (const MappedShard& ms : mt.shards) total += ms.file.size();
  }
  return total;
}

int64_t EmbeddingStore::num_shards() const {
  int64_t total = 0;
  for (const MappedTable& mt : mapped_) {
    total += static_cast<int64_t>(mt.shards.size());
  }
  return total;
}

util::StatusOr<std::shared_ptr<StoreView>> EmbeddingStore::View(
    const std::string& name) const {
  for (const MappedTable& mt : mapped_) {
    if (mt.info.name != name) continue;
    ResidencyPolicy* hook =
        residency_ != nullptr ? residency_->TableHook(name) : nullptr;
    if (mt.info.dtype == Dtype::kInt8) {
      return std::shared_ptr<StoreView>(new MmapInt8View(&mt, hook));
    }
    return std::shared_ptr<StoreView>(new MmapFloatView(&mt, hook));
  }
  return util::Status::NotFound("store has no table named " + name);
}

void EmbeddingStore::EnableResidency(const ResidencyOptions& options,
                                     const ResidencyManager* previous) {
  if (options.budget_bytes <= 0 || residency_ != nullptr) return;
  std::vector<ResidencyTableSpec> specs;
  specs.reserve(mapped_.size());
  for (const MappedTable& mt : mapped_) {
    ResidencyTableSpec spec;
    spec.name = mt.info.name;
    spec.rows_per_shard = mt.rows_per_shard;
    spec.row_begins = mt.row_begins;
    spec.shards.reserve(mt.shards.size());
    for (const MappedShard& ms : mt.shards) {
      // Advise the whole mapped file: the base is page-aligned (an mmap
      // return value) as madvise/mincore require, and re-reading the header
      // pages after an eviction is harmless.
      spec.shards.push_back(ResidencyShardSpec{ms.file.data(),
                                               static_cast<size_t>(ms.file.size())});
    }
    specs.push_back(std::move(spec));
  }
  residency_ = std::make_unique<ResidencyManager>(options, std::move(specs));
  if (previous != nullptr) residency_->SeedFrom(*previous);
  residency_->Start();
}

ResidencyStats EmbeddingStore::residency_stats() const {
  return residency_ != nullptr ? residency_->stats() : ResidencyStats{};
}

util::StatusOr<std::unique_ptr<EmbeddingStore>> OpenNewestGeneration(
    const std::string& dir, int64_t* generation) {
  // A MANIFEST directly in `dir` is a fixed single-generation deployment.
  if (fs::exists(fs::path(dir) / kManifestName)) {
    auto store = EmbeddingStore::Open(dir);
    if (store.ok() && generation != nullptr) *generation = 0;
    return store;
  }

  std::vector<std::pair<int64_t, std::string>> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("gen_", 0) != 0) continue;
    // Require a digit right after "gen_": strtoll would otherwise accept a
    // sign ("gen_-1"), and a negative generation collides with the engine's
    // -1 "no store" sentinel.
    if (name.size() <= 4 ||
        !std::isdigit(static_cast<unsigned char>(name[4]))) {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const long long num = std::strtoll(name.c_str() + 4, &end, 10);
    if (end == name.c_str() + 4 || *end != '\0' || errno != 0) continue;
    candidates.emplace_back(static_cast<int64_t>(num), entry.path().string());
  }
  if (ec) {
    return util::Status::IOError("cannot scan store dir " + dir + ": " +
                                 ec.message());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [num, path] : candidates) {
    auto store = EmbeddingStore::Open(path);
    if (store.ok()) {
      if (generation != nullptr) *generation = num;
      return store;
    }
    BOOTLEG_LOG(Warning) << "skipping store generation " << path << ": "
                         << store.status().ToString();
  }
  return util::Status::NotFound("no servable store generation under " + dir);
}

}  // namespace bootleg::store

#ifndef BOOTLEG_STORE_EMBEDDING_STORE_H_
#define BOOTLEG_STORE_EMBEDDING_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/residency.h"
#include "util/status.h"

namespace bootleg::store {

/// Read-only [rows × cols] float matrix abstraction between the model's
/// frozen-inference gather path and whatever holds the rows: a heap tensor
/// (the classic PrepareFrozenInference table), a memory-mapped float shard
/// set (zero-copy), or a memory-mapped int8 shard set (dequantize-on-gather
/// into the caller's staging buffer).
///
/// Contract: RowPtr() returns a pointer to `cols()` contiguous floats when
/// the storage is raw float (heap or mmap) and nullptr otherwise; callers
/// fall back to GatherRow(), which always works. Implementations are
/// immutable after construction and safe to share across serving threads.
class StoreView {
 public:
  virtual ~StoreView() = default;

  virtual int64_t rows() const = 0;
  virtual int64_t cols() const = 0;

  /// Copies (dequantizing if needed) row `id` into dst[0..cols()).
  virtual void GatherRow(int64_t id, float* dst) const = 0;

  /// Zero-copy row pointer, or nullptr when the storage is not raw float.
  virtual const float* RowPtr(int64_t /*id*/) const { return nullptr; }

  /// Hints that row `id` will be gathered shortly. Batch gather loops call
  /// this a few ids ahead so the row's cache lines are in flight by the time
  /// GatherRow/RowPtr touches them; purely advisory, never changes results.
  virtual void PrefetchRow(int64_t /*id*/) const {}

  /// Gathers rows ids[0..n) into dst rows of cols() floats each — bitwise
  /// the same values as n GatherRow calls, but implementations amortize the
  /// per-row costs (metrics update, shard lookup) and keep a prefetch window
  /// of upcoming rows in flight, so batch gathers are bandwidth-bound rather
  /// than per-row-miss-latency-bound.
  virtual void GatherRows(const int64_t* ids, int64_t n, float* dst) const {
    const int64_t c = cols();
    for (int64_t i = 0; i < n; ++i) GatherRow(ids[i], dst + i * c);
  }

  /// Advisory: rows ids[0..n) are about to be gathered (by GatherRows or a
  /// zero-copy RowPtr loop). Mapped views under residency management forward
  /// this to their ResidencyPolicy, which bumps shard popularity and issues
  /// batch-ahead MADV_WILLNEED on any touched shard the clock evicted; a
  /// no-op everywhere else (heap views, unmanaged stores). Never changes
  /// gather results.
  virtual void WillGather(const int64_t* /*ids*/, int64_t /*n*/) const {}

  /// The residency policy consulted by this view, or nullptr when the view
  /// is not under residency management (heap views, unmanaged stores).
  virtual ResidencyPolicy* residency_policy() const { return nullptr; }
};

/// StoreView over caller-owned contiguous float rows (the in-memory frozen
/// table). Does not own the data; the owner must outlive the view.
class HeapView : public StoreView {
 public:
  HeapView(const float* data, int64_t rows, int64_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  int64_t rows() const override { return rows_; }
  int64_t cols() const override { return cols_; }
  void GatherRow(int64_t id, float* dst) const override {
    const float* src = data_ + id * cols_;
    for (int64_t j = 0; j < cols_; ++j) dst[j] = src[j];
  }
  const float* RowPtr(int64_t id) const override {
    return data_ + id * cols_;
  }
  void PrefetchRow(int64_t id) const override {
    const char* p = reinterpret_cast<const char*>(data_ + id * cols_);
    const char* end = reinterpret_cast<const char*>(data_ + (id + 1) * cols_);
    for (; p < end; p += 64) __builtin_prefetch(p, 0, 3);
  }

 private:
  const float* data_;
  int64_t rows_;
  int64_t cols_;
};

/// Element encoding of a stored table.
enum class Dtype : uint32_t {
  kFloat32 = 0,  // rows are raw little-endian float32 — mapped zero-copy
  kInt8 = 1,     // per-row symmetric int8: value ≈ q * scale, zero_point = 0
};

const char* DtypeName(Dtype dtype);

/// Per-shard description, as recorded in the MANIFEST and re-validated
/// against the shard file headers at open.
///
/// `dir` is the chained-generation hook (manifest v2): when non-empty it
/// names a sibling generation directory (strictly `gen_<digits>`) holding
/// the shard file, so an incremental generation can reference its parent's
/// unchanged shards by content (exact byte size + payload CRC32) instead of
/// rewriting them. v1 manifests carry no dir field (always own-dir).
struct ShardInfo {
  std::string file;        // filename relative to the owning directory
  std::string dir;         // "" = manifest's own dir; else sibling gen dir
  int64_t row_begin = 0;   // first entity row in this shard
  int64_t row_count = 0;
  uint64_t file_bytes = 0; // exact on-disk size (truncation check at open)
  uint32_t payload_crc = 0;  // CRC32 over the payload (scales + row data)
};

/// One auxiliary file carried by a v2 generation manifest — opaque to the
/// store (the live-index layer keeps its KB/alias deltas here) but covered
/// by the same integrity contract as shards: exact byte size checked at
/// Open, whole-file CRC32 checked by Verify. Like shards, aux files of
/// parent generations are referenced by `dir` rather than copied.
struct AuxFileInfo {
  std::string file;        // filename, no '/' allowed
  std::string dir;         // "" = manifest's own dir; else sibling gen dir
  uint64_t file_bytes = 0;
  uint32_t crc = 0;        // CRC32 over the whole file
};

/// One named table inside the store (e.g. "static", "entity_emb").
struct TableInfo {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
  Dtype dtype = Dtype::kFloat32;
  /// Quantization error stats measured at export against the exact floats:
  /// max/mean |x - dequant(quant(x))| over the whole table (0 for float32).
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  std::vector<ShardInfo> shards;
};

/// Options controlling WriteStore.
struct WriteOptions {
  Dtype dtype = Dtype::kFloat32;
  /// Number of shards to split each table into (entity-id ranges of equal
  /// size; the last shard takes the remainder). Shards are built and written
  /// in parallel through the global thread pool. Clamped to [1, rows].
  int64_t shards = 4;
};

/// One table to export: `name` plus `rows × cols` contiguous floats.
struct TableSource {
  std::string name;
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
};

/// Writes a store directory: one shard file per table per entity-id range,
/// each through util::AtomicFileWriter with a v1 CRC32 footer, then the
/// MANIFEST (also atomic, checksummed) describing every table and shard.
/// Because the MANIFEST lands last, a complete MANIFEST implies the shards
/// it names were all committed; a crash mid-export leaves at worst torn
/// `.tmp` siblings that Open/generation scans ignore.
util::Status WriteStore(const std::string& dir,
                        const std::vector<TableSource>& tables,
                        const WriteOptions& options);

/// Writes one standalone shard file into `dir` holding `row_count` rows that
/// begin at table row `row_begin` — the delta-append path. `data` points at
/// the first row to write (not at table row 0), and `file` is caller-chosen
/// so delta shards from different generations never collide when a
/// compaction gathers a chain's files into one directory. Fills `info`
/// (including the payload CRC); for int8, `max_abs_error` / `sum_abs_error`
/// receive the quantization error stats of the written rows.
util::Status WriteTableShard(const std::string& dir, const std::string& file,
                             const std::string& table, const float* data,
                             int64_t row_begin, int64_t row_count,
                             int64_t cols, Dtype dtype, ShardInfo* info,
                             double* max_abs_error, double* sum_abs_error);

/// Writes a v2 (chained-generation) MANIFEST into `dir`: tables whose shards
/// may live in sibling generation directories (ShardInfo::dir) plus the
/// generation's auxiliary files. Written atomically, last — its presence
/// certifies the files it references were all committed. The open path
/// re-validates every referenced file (header, exact size) so a manifest
/// naming a missing or doctored parent shard fails with kCorruption.
util::Status WriteChainedManifest(const std::string& dir,
                                  const std::vector<TableInfo>& tables,
                                  const std::vector<AuxFileInfo>& aux);

/// A memory-mapped read-only file. Movable, closes (munmap) on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. IOError when the file cannot be opened/mapped.
  util::Status Map(const std::string& path);

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  void Reset();
  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
};

/// A read-only, memory-mapped, sharded entity-table store, as written by
/// WriteStore / `bootleg_cli export-store`.
///
/// Open() parses and checksum-verifies the MANIFEST, then maps every shard
/// and validates its header and exact byte size against the manifest —
/// structural corruption (truncation, wrong shapes, renamed files) fails
/// with kCorruption at open. Payload bit flips are caught by Verify(), which
/// walks every mapped byte against the per-shard CRC32 (`bootleg_cli store
/// --verify`, the fuzz tests, and the check.sh drill run it; the serving
/// open path skips it to keep page-ins lazy).
///
/// All reads after Open are lock-free over the mappings; an EmbeddingStore
/// is immutable and safe to share across threads. Serving swaps generations
/// by replacing a shared_ptr under a lock; readers take shared_ptr
/// snapshots, which keep a displaced generation mapped until released.
class EmbeddingStore {
 public:
  static util::StatusOr<std::unique_ptr<EmbeddingStore>> Open(
      const std::string& dir);

  /// Full payload CRC32 check of every shard of every table, plus a
  /// whole-file CRC32 check of every aux file the manifest references.
  util::Status Verify() const;

  const std::string& dir() const { return dir_; }
  const std::vector<TableInfo>& tables() const { return tables_; }
  const TableInfo* FindTable(const std::string& name) const;

  /// Aux files referenced by the manifest (v2 only; empty for v1 stores),
  /// ordered base generation → tip so deltas apply in publish order.
  const std::vector<AuxFileInfo>& aux_files() const { return aux_; }
  /// Resolves an aux file to its full on-disk path.
  std::string AuxPath(const AuxFileInfo& aux) const;

  /// Total mapped bytes across all shards (the store's resident ceiling).
  uint64_t mapped_bytes() const;
  /// Number of mapped shard files across all tables.
  int64_t num_shards() const;

  /// A view gathering rows of `name` through the mappings. The view borrows
  /// the store's mappings: callers must keep the EmbeddingStore alive (the
  /// serving layer holds both in one shared generation object). NotFound
  /// when no such table exists.
  util::StatusOr<std::shared_ptr<StoreView>> View(const std::string& name) const;

  /// Enables hot-set residency management over the mappings. Call before
  /// View() so the views pick up the policy hooks — the serving layer
  /// enables it on a freshly opened generation before publishing the
  /// shared_ptr snapshot, which keeps every advisory confined to pinned
  /// mappings. budget_bytes ≤ 0 leaves the store unmanaged (no manager, no
  /// hooks, nothing changes). Starts the background clock sweeper unless the
  /// options say otherwise; `previous` (nullable) seeds shard popularity
  /// from the displaced generation so the warm-up prefetches the right head.
  void EnableResidency(const ResidencyOptions& options,
                       const ResidencyManager* previous = nullptr);

  /// The residency manager, or nullptr when unmanaged.
  ResidencyManager* residency() const { return residency_.get(); }

  /// Residency counters; all zero (budget_bytes == 0) when unmanaged.
  ResidencyStats residency_stats() const;

 private:
  struct MappedShard {
    MappedFile file;
    const uint8_t* payload = nullptr;  // scales (int8 only) + row data
    const float* scales = nullptr;     // [row_count] (int8 only)
    const uint8_t* rows = nullptr;     // row-major payload
    uint64_t payload_bytes = 0;
  };
  struct MappedTable {
    TableInfo info;
    std::vector<MappedShard> shards;
    /// Uniform tile size when every non-last shard holds the same row count
    /// and the last holds no more (the flat-export layout; O(1) divide
    /// lookup). 0 for the ragged tilings a delta chain produces — lookups
    /// then binary-search `row_begins`.
    int64_t rows_per_shard = 0;
    std::vector<int64_t> row_begins;  // shards.size()+1 cumulative boundaries
  };

  util::Status Load(const std::string& dir);

  std::string dir_;
  std::vector<TableInfo> tables_;
  std::vector<AuxFileInfo> aux_;
  std::vector<MappedTable> mapped_;
  /// Declared after mapped_ so destruction joins the sweeper before any
  /// shard unmaps — advisories never chase a dead mapping.
  std::unique_ptr<ResidencyManager> residency_;

  friend class MmapFloatView;
  friend class MmapInt8View;
};

// ---------------------------------------------------------------------------
// Quantization (symmetric per-row int8: scale = max|x| / 127, zero_point 0).
// ---------------------------------------------------------------------------

/// Quantizes one row: scale = max|x|/127 (0 for an all-zero row), q =
/// round(x/scale) in [-127, 127]. Returns the scale.
float QuantizeRow(const float* src, int64_t cols, int8_t* dst);

/// Dequantizes one row: dst = q * scale.
void DequantizeRow(const int8_t* src, int64_t cols, float scale, float* dst);

/// Worst-case reconstruction error bound for a row with the given scale:
/// |x - dequant(quant(x))| ≤ scale/2 (rounding half-step).
inline float RowErrorBound(float scale) { return 0.5f * scale; }

/// Scans `dir`'s subdirectories for store generations named `gen_<number>`
/// and returns the openable one with the highest number, skipping corrupt or
/// incomplete generations (logged). `generation` receives the parsed number.
/// When `dir` itself holds a MANIFEST it is returned as generation 0.
/// NotFound when nothing is servable.
util::StatusOr<std::unique_ptr<EmbeddingStore>> OpenNewestGeneration(
    const std::string& dir, int64_t* generation);

}  // namespace bootleg::store

#endif  // BOOTLEG_STORE_EMBEDDING_STORE_H_

#include "store/residency.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace bootleg::store {
namespace {

/// Registry instruments, looked up once. These are global (shared across
/// store generations) like store.gather_rows; the per-generation view lives
/// in ResidencyManager::stats().
obs::Counter* PrefetchCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("store.prefetch_issued");
  return c;
}
obs::Counter* EvictionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("store.evictions");
  return c;
}
obs::Counter* ColdFaultCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("store.cold_faults");
  return c;
}
obs::Gauge* ResidentBytesGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("store.resident_bytes");
  return g;
}

}  // namespace

/// Per-shard clock state. `hits` is the decayed popularity counter; the
/// `resident` flag tracks the advisory state (true = the clock wants this
/// shard's pages kept; false = MADV_DONTNEED was issued and the next access
/// counts as a cold fault and re-admits on demand).
struct ResidencyShardState {
  const uint8_t* base = nullptr;
  size_t bytes = 0;
  std::atomic<uint64_t> hits{0};
  std::atomic<bool> resident{true};
};

namespace {

void Advise(const ResidencyShardState& s, int advice) {
  if (s.base == nullptr || s.bytes == 0) return;
  // Mapping bases are page-aligned (mmap return values) as madvise requires;
  // failure is ignored — advisories are best-effort and never affect
  // correctness.
  ::madvise(const_cast<uint8_t*>(s.base), s.bytes, advice);
}

}  // namespace

/// One table's shard set plus the geometry needed to map row ids onto
/// shards. Implements the view-facing ResidencyPolicy hooks.
class ResidencyManager::Table : public ResidencyPolicy {
 public:
  Table(ResidencyManager* mgr, ResidencyTableSpec spec)
      : mgr_(mgr),
        name_(std::move(spec.name)),
        rows_per_shard_(spec.rows_per_shard),
        row_begins_(std::move(spec.row_begins)),
        n_(static_cast<int64_t>(spec.shards.size())),
        shards_(std::make_unique<ResidencyShardState[]>(spec.shards.size())) {
    for (size_t i = 0; i < spec.shards.size(); ++i) {
      shards_[i].base = spec.shards[i].base;
      shards_[i].bytes = spec.shards[i].bytes;
    }
  }

  void WillGather(const int64_t* ids, int64_t n) override {
    // One pass bumps popularity and collects, per evicted shard the batch
    // touches, the local row span it is about to read. The spans then turn
    // into MADV_WILLNEED over just those rows' pages — issuing a whole-shard
    // advisory from the gather path would put a syscall proportional to the
    // shard size in the request's latency tail.
    struct Span {
      int64_t shard;
      int64_t lo;
      int64_t hi;
    };
    Span spans[kMaxSpans];
    int nspans = 0;
    for (int64_t i = 0; i < n; ++i) {
      int64_t local;
      const int64_t si = LocateShard(ids[i], &local);
      if (si < 0) continue;
      ResidencyShardState& s = shards_[si];
      s.hits.fetch_add(1, std::memory_order_relaxed);
      if (s.resident.load(std::memory_order_relaxed)) continue;
      int sp = 0;
      while (sp < nspans && spans[sp].shard != si) ++sp;
      if (sp < nspans) {
        spans[sp].lo = std::min(spans[sp].lo, local);
        spans[sp].hi = std::max(spans[sp].hi, local);
      } else if (nspans < kMaxSpans) {
        spans[nspans++] = {si, local, local};
      } else {
        mgr_->DemandAdmit(s);  // span table full: whole-shard fallback
      }
    }
    for (int sp = 0; sp < nspans; ++sp) {
      AdmitSpan(spans[sp].shard, spans[sp].lo, spans[sp].hi);
    }
  }

  void NoteRow(int64_t shard) override {
    if (shard >= 0 && shard < n_) Touch(shards_[shard]);
  }

  const std::string& name() const { return name_; }
  int64_t num_shards() const { return n_; }
  ResidencyShardState& shard(int64_t i) { return shards_[i]; }
  const ResidencyShardState& shard(int64_t i) const { return shards_[i]; }

 private:
  /// Distinct evicted shards tracked per batch before falling back to
  /// whole-shard re-admission. Covers every flat export (a handful of
  /// shards) and all but pathological delta chains.
  static constexpr int kMaxSpans = 32;

  void Touch(ResidencyShardState& s) {
    s.hits.fetch_add(1, std::memory_order_relaxed);
    if (!s.resident.load(std::memory_order_relaxed)) mgr_->DemandAdmit(s);
  }

  /// Same shard mapping as the mmap views: O(1) divide on uniform tilings,
  /// binary search over cumulative boundaries on ragged ones. Fills `local`
  /// with the row index relative to the shard's first row.
  int64_t LocateShard(int64_t id, int64_t* local = nullptr) const {
    if (n_ == 0 || id < 0) return -1;
    int64_t si;
    if (rows_per_shard_ > 0) {
      si = id / rows_per_shard_;
      if (si >= n_) si = n_ - 1;
      if (local != nullptr) *local = id - si * rows_per_shard_;
    } else {
      si = static_cast<int64_t>(std::upper_bound(row_begins_.begin(),
                                                 row_begins_.end(), id) -
                                row_begins_.begin()) -
           1;
      if (si < 0 || si >= n_) return -1;
      if (local != nullptr) {
        *local = id - row_begins_[static_cast<size_t>(si)];
      }
    }
    return si;
  }

  /// Re-admits shard `si` ahead of a batch that reads local rows [lo, hi].
  /// The byte span is estimated proportionally (headers and scales amortize
  /// into the per-row stride), page-aligned outward — an over-approximation
  /// is fine, the advisory is never correctness-bearing.
  void AdmitSpan(int64_t si, int64_t lo, int64_t hi) {
    ResidencyShardState& s = shards_[si];
    const int64_t rows = RowsInShard(si);
    if (rows <= 0 || s.bytes == 0) {
      mgr_->DemandAdmit(s);
      return;
    }
    static const int64_t page = static_cast<int64_t>(sysconf(_SC_PAGESIZE));
    const int64_t bytes = static_cast<int64_t>(s.bytes);
    int64_t off = bytes * lo / rows;
    off -= off % page;
    int64_t end = bytes * (hi + 1) / rows + page;
    end = std::min(end - end % page + page, bytes);
    mgr_->AdmitRange(s, s.base + off, static_cast<size_t>(end - off));
  }

  int64_t RowsInShard(int64_t si) const {
    if (static_cast<int64_t>(row_begins_.size()) == n_ + 1) {
      return row_begins_[static_cast<size_t>(si + 1)] -
             row_begins_[static_cast<size_t>(si)];
    }
    return rows_per_shard_;  // uniform tiling (over-counts the last shard)
  }

  ResidencyManager* mgr_;
  std::string name_;
  int64_t rows_per_shard_;
  std::vector<int64_t> row_begins_;
  int64_t n_;
  std::unique_ptr<ResidencyShardState[]> shards_;
};

ResidencyManager::ResidencyManager(const ResidencyOptions& options,
                                   std::vector<ResidencyTableSpec> tables)
    : options_(options) {
  tables_.reserve(tables.size());
  for (ResidencyTableSpec& spec : tables) {
    tables_.push_back(std::make_unique<Table>(this, std::move(spec)));
  }
  // Everything starts in the advised-resident state: a fresh mapping has no
  // pages yet, but the clock only begins evicting once a sweep ranks shards.
  int64_t shards = 0;
  for (const auto& t : tables_) shards += t->num_shards();
  resident_shards_.store(shards, std::memory_order_relaxed);
}

ResidencyManager::~ResidencyManager() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void ResidencyManager::SeedFrom(const ResidencyManager& previous) {
  for (const auto& t : tables_) {
    for (const auto& pt : previous.tables_) {
      if (pt->name() != t->name() || pt->num_shards() != t->num_shards()) {
        continue;
      }
      for (int64_t i = 0; i < t->num_shards(); ++i) {
        t->shard(i).hits.store(
            pt->shard(i).hits.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      break;
    }
  }
}

void ResidencyManager::Start() {
  if (options_.budget_bytes <= 0 || !options_.start_sweeper) return;
  if (sweeper_.joinable()) return;
  sweeper_ = std::thread([this] {
    bool first = true;
    for (;;) {
      if (!first) {
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.sweep_interval_ms),
                          [this] { return stopping_; });
        if (stopping_) return;
      } else {
        std::lock_guard<std::mutex> lock(stop_mu_);
        if (stopping_) return;
      }
      // The first pass is the post-swap warm-up: it runs immediately (in the
      // background, never blocking the generation publish) and WILLNEEDs the
      // kept head so early requests don't eat page-in latency.
      SweepOnce(/*warm_kept=*/first);
      first = false;
    }
  });
}

void ResidencyManager::DemandAdmit(ResidencyShardState& s) {
  bool expected = false;
  if (!s.resident.compare_exchange_strong(expected, true,
                                          std::memory_order_relaxed)) {
    return;  // another thread already re-admitted it
  }
  cold_faults_.fetch_add(1, std::memory_order_relaxed);
  ColdFaultCounter()->Add(1);
  Advise(s, MADV_WILLNEED);
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  PrefetchCounter()->Add(1);
}

void ResidencyManager::AdmitRange(ResidencyShardState& s, const uint8_t* addr,
                                  size_t len) {
  bool expected = false;
  if (s.resident.compare_exchange_strong(expected, true,
                                         std::memory_order_relaxed)) {
    cold_faults_.fetch_add(1, std::memory_order_relaxed);
    ColdFaultCounter()->Add(1);
  }
  // Issue the advisory even when another thread won the re-admission race:
  // the racing batch may touch different rows, and WILLNEED over a few
  // already-cached pages is cheap.
  ::madvise(const_cast<uint8_t*>(addr), len, MADV_WILLNEED);
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  PrefetchCounter()->Add(1);
}

void ResidencyManager::SweepOnce(bool warm_kept) {
  std::lock_guard<std::mutex> lock(sweep_mu_);
  struct Ranked {
    uint64_t hits;
    ResidencyShardState* s;
  };
  std::vector<Ranked> ranked;
  for (const auto& t : tables_) {
    for (int64_t i = 0; i < t->num_shards(); ++i) {
      ResidencyShardState& s = t->shard(i);
      const uint64_t h = s.hits.load(std::memory_order_relaxed);
      // Clock decay: halve toward zero so stale popularity ages out over a
      // few sweeps. Concurrent increments between the load and store can be
      // lost; the counter is advisory, not an exact tally.
      s.hits.store(h - h / 2, std::memory_order_relaxed);
      ranked.push_back({h, &s});
    }
  }
  // Stable sort keeps registration order among ties, so a cold start (all
  // counters zero) deterministically keeps the leading shards.
  std::stable_sort(
      ranked.begin(), ranked.end(),
      [](const Ranked& a, const Ranked& b) { return a.hits > b.hits; });

  int64_t planned_bytes = 0;
  int64_t kept = 0;
  for (const Ranked& r : ranked) {
    const int64_t bytes = static_cast<int64_t>(r.s->bytes);
    // The hottest shard is always pinned, even when it alone exceeds the
    // budget — the Zipf head must stay servable without faulting every batch.
    const bool keep =
        kept == 0 || planned_bytes + bytes <= options_.budget_bytes;
    if (keep) {
      planned_bytes += bytes;
      ++kept;
      bool expected = false;
      const bool readmitted = r.s->resident.compare_exchange_strong(
          expected, true, std::memory_order_relaxed);
      if (readmitted || warm_kept) {
        Advise(*r.s, MADV_WILLNEED);
        prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
        PrefetchCounter()->Add(1);
      }
    } else {
      bool expected = true;
      if (r.s->resident.compare_exchange_strong(expected, false,
                                                std::memory_order_relaxed)) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
        EvictionCounter()->Add(1);
      }
      // Advise even when the flag was already clear: pages the kernel
      // faulted back in since the last sweep (reads that raced the flag,
      // speculative readahead) would otherwise accumulate past the budget.
      // DONTNEED over an already-cold range is a cheap no-op.
      Advise(*r.s, MADV_DONTNEED);
    }
  }
  resident_shards_.store(kept, std::memory_order_relaxed);
  const int64_t resident = EstimateResidentBytes();
  resident_bytes_.store(resident, std::memory_order_relaxed);
  ResidentBytesGauge()->Set(static_cast<double>(resident));
  sweeps_.fetch_add(1, std::memory_order_relaxed);
}

ResidencyPolicy* ResidencyManager::TableHook(const std::string& table) {
  for (const auto& t : tables_) {
    if (t->name() == table) return t.get();
  }
  return nullptr;
}

ResidencyStats ResidencyManager::stats() const {
  ResidencyStats s;
  s.budget_bytes = options_.budget_bytes;
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.resident_shards = resident_shards_.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.cold_faults = cold_faults_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  return s;
}

int64_t ResidencyManager::EstimateResidentBytes() const {
  const int64_t page = static_cast<int64_t>(sysconf(_SC_PAGESIZE));
  // Primary source is /proc/self/pagemap: its present bit reports whether the
  // page is mapped into *our* address space — the quantity MADV_DONTNEED
  // reclaims and VmRSS charges. mincore() is the fallback, but it reports
  // page-cache residency for file-backed ranges, which eviction cannot lower
  // on a warm cache (and never lowers on tmpfs), so it overestimates.
  const int pagemap_fd = ::open("/proc/self/pagemap", O_RDONLY);
  std::vector<uint64_t> entries;
  std::vector<unsigned char> vec;
  int64_t resident = 0;
  for (const auto& t : tables_) {
    for (int64_t i = 0; i < t->num_shards(); ++i) {
      const ResidencyShardState& s = t->shard(i);
      if (s.base == nullptr || s.bytes == 0) continue;
      const size_t pages = (s.bytes + page - 1) / page;
      if (pagemap_fd >= 0) {
        const uint64_t first =
            reinterpret_cast<uintptr_t>(s.base) / static_cast<uint64_t>(page);
        entries.resize(pages);
        const ssize_t want = static_cast<ssize_t>(pages * sizeof(uint64_t));
        if (::pread(pagemap_fd, entries.data(), static_cast<size_t>(want),
                    static_cast<off_t>(first * sizeof(uint64_t))) == want) {
          for (size_t p = 0; p < pages; ++p) {
            if (entries[p] & (1ull << 63)) resident += page;  // present
          }
          continue;
        }
      }
      vec.resize(pages);
      if (::mincore(const_cast<uint8_t*>(s.base), s.bytes, vec.data()) == 0) {
        for (size_t p = 0; p < pages; ++p) {
          if (vec[p] & 1) resident += page;
        }
      } else if (s.resident.load(std::memory_order_relaxed)) {
        // Sampling unavailable entirely: the counter estimate (advised
        // state × mapped bytes).
        resident += static_cast<int64_t>(s.bytes);
      }
    }
  }
  if (pagemap_fd >= 0) ::close(pagemap_fd);
  return resident;
}

}  // namespace bootleg::store

#include "text/word_encoder.h"

#include "obs/trace.h"

namespace bootleg::text {

using tensor::Tensor;
using tensor::Var;

WordEncoder::WordEncoder(nn::ParameterStore* store, const std::string& prefix,
                         int64_t vocab_size, const WordEncoderConfig& config,
                         util::Rng* rng)
    : prefix_(prefix),
      config_(config),
      token_embedding_(store->CreateEmbedding(prefix + ".tok", vocab_size,
                                              config.hidden, rng)),
      position_table_(nn::SinusoidalPositionTable(config.max_len, config.hidden)) {
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.emplace_back(store, prefix + ".layer" + std::to_string(l),
                         config.hidden, config.num_heads, config.ff_inner, rng);
  }
}

Var WordEncoder::Encode(const std::vector<int64_t>& token_ids, util::Rng* rng,
                        bool train) const {
  std::vector<int64_t> ids = token_ids;
  if (static_cast<int64_t>(ids.size()) > config_.max_len) {
    ids.resize(static_cast<size_t>(config_.max_len));
  }
  BOOTLEG_CHECK(!ids.empty());
  Var h = token_embedding_->Lookup(ids);
  // Add the (constant) sinusoidal position encodings.
  Tensor pos = tensor::SliceRows(position_table_, 0,
                                 static_cast<int64_t>(ids.size()));
  h = tensor::Add(h, Var::Constant(std::move(pos)));
  for (const nn::AttentionBlock& layer : layers_) {
    h = layer.Forward(h, rng, train);
  }
  return h;
}

Tensor WordEncoder::EncodeBatchValue(
    const std::vector<const std::vector<int64_t>*>& sequences,
    std::vector<std::pair<int64_t, int64_t>>* ranges,
    const backend::Backend* be) const {
  OBS_SPAN("text.encode_batch");
  std::vector<int64_t> all_ids;
  std::vector<nn::AttentionSegment> segments;
  ranges->clear();
  ranges->reserve(sequences.size());
  segments.reserve(sequences.size());
  for (const std::vector<int64_t>* seq : sequences) {
    BOOTLEG_CHECK(!seq->empty());
    const int64_t n = std::min<int64_t>(static_cast<int64_t>(seq->size()),
                                        config_.max_len);
    const int64_t off = static_cast<int64_t>(all_ids.size());
    all_ids.insert(all_ids.end(), seq->begin(), seq->begin() + n);
    ranges->emplace_back(off, n);
    segments.push_back({off, n, off, n});
  }

  Tensor h = token_embedding_->LookupValue(all_ids);
  // Per-sequence position add: row i of a sequence gets position_table_ row
  // i, the same elementwise sum Encode computes via tensor::Add.
  const int64_t hidden = config_.hidden;
  for (const auto& [off, n] : *ranges) {
    for (int64_t i = 0; i < n; ++i) {
      float* dst = h.data() + (off + i) * hidden;
      const float* pos = position_table_.data() + i * hidden;
      for (int64_t j = 0; j < hidden; ++j) dst[j] += pos[j];
    }
  }
  for (const nn::AttentionBlock& layer : layers_) {
    h = layer.ForwardSegmentsValue(h, h, segments, be);
  }
  return h;
}

void WordEncoder::AppendFrozenWeights(
    const std::string& name, std::vector<backend::FrozenWeight>* out) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].AppendFrozenWeights(name + ".layer" + std::to_string(i), out);
  }
}

Var WordEncoder::MentionEmbedding(const Var& w, int64_t span_start,
                                  int64_t span_end) {
  const int64_t n = w.value().size(0);
  BOOTLEG_CHECK(span_start >= 0 && span_start < n);
  BOOTLEG_CHECK(span_end >= span_start);
  const int64_t last = std::min(span_end, n - 1);
  Var first_tok = tensor::SliceRows(w, span_start, 1);
  Var last_tok = tensor::SliceRows(w, last, 1);
  return tensor::Add(first_tok, last_tok);
}

}  // namespace bootleg::text

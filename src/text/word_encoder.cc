#include "text/word_encoder.h"

namespace bootleg::text {

using tensor::Tensor;
using tensor::Var;

WordEncoder::WordEncoder(nn::ParameterStore* store, const std::string& prefix,
                         int64_t vocab_size, const WordEncoderConfig& config,
                         util::Rng* rng)
    : prefix_(prefix),
      config_(config),
      token_embedding_(store->CreateEmbedding(prefix + ".tok", vocab_size,
                                              config.hidden, rng)),
      position_table_(nn::SinusoidalPositionTable(config.max_len, config.hidden)) {
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.emplace_back(store, prefix + ".layer" + std::to_string(l),
                         config.hidden, config.num_heads, config.ff_inner, rng);
  }
}

Var WordEncoder::Encode(const std::vector<int64_t>& token_ids, util::Rng* rng,
                        bool train) const {
  std::vector<int64_t> ids = token_ids;
  if (static_cast<int64_t>(ids.size()) > config_.max_len) {
    ids.resize(static_cast<size_t>(config_.max_len));
  }
  BOOTLEG_CHECK(!ids.empty());
  Var h = token_embedding_->Lookup(ids);
  // Add the (constant) sinusoidal position encodings.
  Tensor pos = tensor::SliceRows(position_table_, 0,
                                 static_cast<int64_t>(ids.size()));
  h = tensor::Add(h, Var::Constant(std::move(pos)));
  for (const nn::AttentionBlock& layer : layers_) {
    h = layer.Forward(h, rng, train);
  }
  return h;
}

Var WordEncoder::MentionEmbedding(const Var& w, int64_t span_start,
                                  int64_t span_end) {
  const int64_t n = w.value().size(0);
  BOOTLEG_CHECK(span_start >= 0 && span_start < n);
  BOOTLEG_CHECK(span_end >= span_start);
  const int64_t last = std::min(span_end, n - 1);
  Var first_tok = tensor::SliceRows(w, span_start, 1);
  Var last_tok = tensor::SliceRows(w, last, 1);
  return tensor::Add(first_tok, last_tok);
}

}  // namespace bootleg::text

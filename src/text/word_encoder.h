#ifndef BOOTLEG_TEXT_WORD_ENCODER_H_
#define BOOTLEG_TEXT_WORD_ENCODER_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/param_store.h"
#include "text/vocabulary.h"

namespace bootleg::text {

/// Configuration for the contextual word encoder.
struct WordEncoderConfig {
  int64_t hidden = 64;
  int64_t num_layers = 1;
  int64_t num_heads = 4;
  int64_t ff_inner = 128;
  int64_t max_len = 64;
};

/// Small trainable Transformer encoder standing in for BERT. The paper uses
/// a frozen pretrained BERT for Bootleg's word embeddings W and a fine-tuned
/// BERT for NED-Base; since no pretrained weights exist in this offline
/// reproduction, the encoder is trained jointly by default, and the owner
/// may freeze it via ParameterStore::Freeze(prefix) to reproduce the frozen
/// setting (the substitution is documented in DESIGN.md).
class WordEncoder {
 public:
  WordEncoder(nn::ParameterStore* store, const std::string& prefix,
              int64_t vocab_size, const WordEncoderConfig& config,
              util::Rng* rng);

  /// Encodes a token-id sequence into contextual embeddings W of shape
  /// [num_tokens, hidden]. Sequences longer than max_len are truncated.
  tensor::Var Encode(const std::vector<int64_t>& token_ids, util::Rng* rng,
                     bool train) const;

  /// Forward-only batched encoding for inference. Each sequence is truncated
  /// to max_len exactly as Encode does, all sequences are stacked row-wise in
  /// input order, and the attention layers run with per-sequence segments —
  /// so every sequence's output rows are bit-identical to
  /// Encode(seq, rng, /*train=*/false) on that sequence alone, with the
  /// projection matmuls batched across the whole stack and no tape built.
  /// `ranges[i]` receives {first_row, num_rows} of sequence i. With a
  /// backend, the attention layers run their compute cores through it
  /// (nullptr: the process-wide reference backend).
  tensor::Tensor EncodeBatchValue(
      const std::vector<const std::vector<int64_t>*>& sequences,
      std::vector<std::pair<int64_t, int64_t>>* ranges,
      const backend::Backend* be = nullptr) const;

  /// Registers every attention layer's Linears under `name + ".layer<i>"`
  /// for Backend::LoadModel.
  void AppendFrozenWeights(const std::string& name,
                           std::vector<backend::FrozenWeight>* out) const;

  /// Contextualized mention embedding m: sum of the first and last token
  /// vectors of the mention span (paper Appendix A).
  static tensor::Var MentionEmbedding(const tensor::Var& w, int64_t span_start,
                                      int64_t span_end);

  const WordEncoderConfig& config() const { return config_; }
  const std::string& prefix() const { return prefix_; }

  /// The token-embedding table (used by the title entity feature).
  nn::Embedding* token_embedding() const { return token_embedding_; }

 private:
  std::string prefix_;
  WordEncoderConfig config_;
  nn::Embedding* token_embedding_;
  tensor::Tensor position_table_;  // constant sinusoidal table
  std::vector<nn::AttentionBlock> layers_;
};

}  // namespace bootleg::text

#endif  // BOOTLEG_TEXT_WORD_ENCODER_H_

#ifndef BOOTLEG_TEXT_VOCABULARY_H_
#define BOOTLEG_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace bootleg::text {

/// Token id constants shared across the project.
inline constexpr int64_t kPadId = 0;
inline constexpr int64_t kUnkId = 1;
inline constexpr int64_t kSepId = 2;
inline constexpr int64_t kClsId = 3;

/// Word-level vocabulary with reserved special tokens. The synthetic corpus
/// is whitespace-tokenizable ASCII so no subword machinery is needed.
class Vocabulary {
 public:
  Vocabulary();

  /// Adds `token` if absent; returns its id either way.
  int64_t AddToken(const std::string& token);

  /// Id of `token`, or kUnkId when unknown.
  int64_t Id(const std::string& token) const;

  bool Contains(const std::string& token) const {
    return index_.count(token) > 0;
  }

  const std::string& Token(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

  /// Builds the SymSpell-style deletion-neighborhood index used by
  /// IdWithTypoFallback: for every vocabulary token of length >= 3, each
  /// single-character deletion maps back to the token (smallest id wins on
  /// collision, so the mapping is deterministic). Idempotent; call after the
  /// vocabulary is fully populated (rebuild after live additions).
  void BuildTypoIndex();

  bool HasTypoIndex() const { return typo_index_built_; }

  /// Id of `token` with single-edit typo recovery for unknown tokens:
  /// exact match, then lower-cased, then adjacent transpositions, then
  /// single deletions of `token`, then the deletion-neighborhood index
  /// (recovers insertions and substitutions). Falls back to kUnkId. Exactly
  /// Id(token) for in-vocabulary tokens, so clean text encodes identically.
  /// Requires BuildTypoIndex() for the last stage (earlier stages work
  /// without it).
  int64_t IdWithTypoFallback(const std::string& token) const;

  util::Status Save(const std::string& path) const;
  util::Status Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int64_t> index_;
  bool typo_index_built_ = false;
  /// deletion string -> smallest id of a vocab token one insertion away.
  std::unordered_map<std::string, int64_t> deletion_index_;
};

/// Lower-cases and splits `sentence` into word tokens, separating trailing
/// punctuation (. , ? ! ;) into their own tokens.
std::vector<std::string> Tokenize(const std::string& sentence);

/// Maps tokens to ids (unknown → kUnkId).
std::vector<int64_t> Encode(const Vocabulary& vocab,
                            const std::vector<std::string>& tokens);

}  // namespace bootleg::text

#endif  // BOOTLEG_TEXT_VOCABULARY_H_
